//! Cross-crate property tests: invariants that must hold for arbitrary
//! configurations.

use insitu::core::IMAGE_BYTES;
use insitu::data::{Campaign, Condition, Dataset, PermutationSet};
use insitu::devices::{ConvShape, FcShape, GpuModel, LayerShape, NetworkShapes};
use insitu::fpga::{corun_traffic, DotProductEngine, PeArrayEngine, SharingLevel};
use insitu::tensor::Rng;
use proptest::prelude::*;

fn conv_strategy() -> impl Strategy<Value = ConvShape> {
    (1usize..512, 1usize..512, 1usize..8, 1usize..64, 1usize..64)
        .prop_map(|(m, n, k, r, c)| ConvShape { m, n, k, r, c })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gpu_utilization_is_in_unit_interval(grid in 1u64..100_000) {
        let gpu = GpuModel::tx1();
        let u = gpu.utilization(grid);
        prop_assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn gpu_times_are_positive_and_finite(shape in conv_strategy(), batch in 1usize..64) {
        let gpu = GpuModel::tx1();
        let t = gpu.conv_time(&shape, batch);
        prop_assert!(t.is_finite() && t > 0.0);
        let u = gpu.conv_utilization(&shape, batch);
        prop_assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn fc_roofline_never_beats_pure_compute_or_memory(
        input in 1usize..8192, output in 1usize..8192, batch in 1usize..64
    ) {
        let gpu = GpuModel::tx1();
        let fc = FcShape { input, output };
        let t = gpu.fc_time(&fc, batch);
        // At least as slow as the pure-bandwidth floor on the weights.
        let floor = (fc.dw_elems() * 4) as f64 / gpu.spec().mem_bw;
        prop_assert!(t >= floor * 0.999);
    }

    #[test]
    fn optimal_batch_is_feasible_and_maximal(
        t_user_ms in 10.0f64..2000.0
    ) {
        let gpu = GpuModel::tx1();
        let net = NetworkShapes::alexnet();
        let t_user = t_user_ms / 1e3;
        if let Some(b) = gpu.optimal_batch(&net, t_user, 128) {
            prop_assert!(gpu.batch_latency(&net, b) <= t_user);
            if b < 128 {
                prop_assert!(gpu.batch_latency(&net, b + 1) > t_user);
            }
        } else {
            prop_assert!(gpu.batch_latency(&net, 1) > t_user);
        }
    }

    #[test]
    fn dot_product_engine_cycles_consistent(shape in conv_strategy(), tm in 1u32..128, tn in 1u32..64) {
        let e = DotProductEngine { tm, tn };
        let cycles = e.conv_cycles(&shape);
        // Work conservation: cycles x PEs >= total MACs x utilization-free bound.
        let macs = (shape.m * shape.n * shape.k * shape.k * shape.r * shape.c) as u64;
        prop_assert!(cycles * e.pe_count() as u64 >= macs);
        let u = e.utilization(&shape);
        prop_assert!(u > 0.0 && u <= 1.0);
    }

    #[test]
    fn pe_array_group_scaling_never_increases_cycles(
        shape in conv_strategy(), g1 in 1usize..8, g2 in 1usize..8
    ) {
        let e = PeArrayEngine { tr: 14, tc: 14 };
        let (small, large) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        prop_assert!(e.conv_cycles(&shape, large) <= e.conv_cycles(&shape, small));
    }

    #[test]
    fn traffic_monotone_in_sharing_depth(depth in 0usize..6) {
        let convs = NetworkShapes::alexnet().convs();
        let d = depth.min(convs.len());
        let t_d = corun_traffic(&convs, d, 9, SharingLevel::TwoLevel).total_bytes();
        let t_full = corun_traffic(&convs, convs.len(), 9, SharingLevel::TwoLevel).total_bytes();
        let t_none = corun_traffic(&convs, 0, 9, SharingLevel::TwoLevel).total_bytes();
        prop_assert!(t_full <= t_d && t_d <= t_none);
    }

    #[test]
    fn permutation_sets_always_valid(count in 1usize..40, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let set = PermutationSet::generate(count, &mut rng).unwrap();
        prop_assert_eq!(set.len(), count);
        for i in 0..count {
            let mut p = *set.permutation(i);
            p.sort_unstable();
            prop_assert_eq!(p, [0, 1, 2, 3, 4, 5, 6, 7, 8]);
        }
    }

    #[test]
    fn dataset_generation_deterministic(seed in 0u64..200, n in 1usize..12) {
        let a = Dataset::generate(n, 3, &Condition::in_situ(), &mut Rng::seed_from(seed)).unwrap();
        let b = Dataset::generate(n, 3, &Condition::in_situ(), &mut Rng::seed_from(seed)).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn campaign_stage_counts_scale(scale in 1usize..5, classes in 1usize..6, seed in 0u64..100) {
        let c = Campaign::paper_schedule(scale, classes, seed).unwrap();
        prop_assert_eq!(c.total_images(), 1200 * scale);
        prop_assert_eq!(c.stages().len(), 5);
    }

    #[test]
    fn layer_shape_ops_additive(shape in conv_strategy()) {
        let l = LayerShape::Conv(shape);
        let net = NetworkShapes::new("t", vec![l, l]);
        prop_assert_eq!(net.total_ops(), 2 * l.ops());
    }

    #[test]
    fn image_bytes_matches_image_geometry(n in 1u64..100) {
        // Uploading n images always costs exactly n x IMAGE_BYTES.
        prop_assert_eq!(n * IMAGE_BYTES, n * 3 * 36 * 36 * 4);
    }
}
