//! End-to-end telemetry: a traced streaming session produces a valid
//! Chrome trace spanning every layer — tensor kernels, the worker
//! pool, node stages and the Cloud's incremental-update cycles — and
//! disabled telemetry records exactly nothing.
//!
//! Telemetry state is process-global, so the whole scenario lives in
//! one test function (this file is its own test binary).

use insitu::cloud::{pretrain, Cloud, IncrementalConfig, PretrainConfig};
use insitu::core::{run_streaming_session, DiagnosisPolicy, InsituNode};
use insitu::data::{Condition, Dataset};
use insitu::nn::models::mini_alexnet;
use insitu::nn::transfer::transfer_and_freeze;
use insitu::telemetry;
use insitu::telemetry::json::Value;
use insitu::tensor::Rng;
use parking_lot::Mutex;
use std::sync::Arc;

const CLASSES: usize = 4;

fn deployment(seed: u64) -> (InsituNode, Arc<Mutex<Cloud>>) {
    let mut rng = Rng::seed_from(seed);
    let raw = Dataset::generate(30, CLASSES, &Condition::ideal(), &mut rng).unwrap();
    let pre = pretrain(
        &raw,
        &PretrainConfig { permutations: 4, epochs: 1, batch_size: 8, lr: 0.02, threads: None },
        &mut rng,
    )
    .unwrap();
    // An untrained inference net: the Oracle policy then uploads most
    // of the stream, guaranteeing incremental-update traffic.
    let mut inference = mini_alexnet(CLASSES, &mut rng).unwrap();
    transfer_and_freeze(pre.jigsaw.trunk(), &mut inference, 3, 3).unwrap();
    let node = InsituNode::new(
        inference.clone(),
        pre.jigsaw.clone(),
        pre.set.clone(),
        DiagnosisPolicy::Oracle,
        3,
        seed ^ 1,
    )
    .unwrap();
    let cloud = Cloud::new(
        inference,
        pre,
        IncrementalConfig { epochs: 1, batch_size: 8, lr: 0.01, threads: None, holdout: None },
        seed ^ 2,
    );
    (node, Arc::new(Mutex::new(cloud)))
}

fn stream(seed: u64) -> Vec<Dataset> {
    let mut rng = Rng::seed_from(seed);
    (0..3)
        .map(|_| Dataset::generate(16, CLASSES, &Condition::in_situ(), &mut rng).unwrap())
        .collect()
}

#[test]
fn traced_session_exports_chrome_trace() {
    // --- Disabled: a full session records zero events. ----------------
    telemetry::set_enabled(false);
    telemetry::reset();
    let (node, cloud) = deployment(61);
    let (_, stats) = run_streaming_session(node, cloud, stream(62), 8).unwrap();
    assert!(stats.images_uploaded > 0, "oracle policy should upload");
    assert!(
        stats.telemetry.is_empty(),
        "disabled telemetry recorded events: {:?}",
        stats.telemetry
    );

    // --- Enabled: the same session traces every layer. ----------------
    // Two kernel threads so the conv batch loop engages the worker pool.
    insitu::tensor::set_num_threads(2);
    telemetry::set_enabled(true);
    telemetry::reset();
    let (node, cloud) = deployment(63);
    let (_, stats) = run_streaming_session(node, cloud, stream(64), 8).unwrap();
    telemetry::set_enabled(false);
    insitu::tensor::set_num_threads(1);

    let snap = &stats.telemetry;
    for prefix in [
        "tensor.",
        "tensor.pack",
        "tensor.simd.",
        "pool.job",
        "node.stage",
        "cloud.update_cycle",
        "runtime.session",
    ] {
        assert!(snap.has_span(prefix), "missing {prefix} spans:\n{}", snap.summary());
    }
    assert!(snap.counter("pool.jobs", "").unwrap().calls >= 1);
    // The SIMD dispatch layer accounts its traffic per op: the session
    // runs ReLU and maxpool forward on every image, so both ops must
    // show up with nonzero bytes.
    for op in ["tensor.simd.relu", "tensor.simd.maxpool"] {
        assert!(snap.has_span(op), "missing {op} spans:\n{}", snap.summary());
        let bytes: u64 = snap
            .counters
            .iter()
            .filter(|c| c.name == "tensor.simd.bytes" && c.label == op)
            .map(|c| c.total)
            .sum();
        assert!(bytes > 0, "{op} should account bytes:\n{}", snap.summary());
    }
    let gemm_bytes: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name == "tensor.bytes")
        .map(|c| c.total)
        .sum();
    assert!(gemm_bytes > 0, "kernels should account bytes");
    // The packing arenas grew from cold during this session, and every
    // growth is accounted: pack-vs-compute time and scratch footprints
    // are both visible in the trace.
    let scratch_bytes: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name == "tensor.scratch_bytes")
        .map(|c| c.total)
        .sum();
    assert!(scratch_bytes > 0, "scratch growth should be accounted:\n{}", snap.summary());
    // The frozen-prefix activation cache accounts every sample it is
    // asked for: hits + misses always equals requests, the miss
    // batches ran under the cloud.prefix_forward span (auto-fed into
    // the latency histogram), and admitted entries were billed.
    let cache_total = |name: &str| -> u64 {
        snap.counters.iter().filter(|c| c.name == name).map(|c| c.total).sum()
    };
    let requests = cache_total("cloud.cache.request");
    assert!(requests > 0, "update cycles should route through the cache:\n{}", snap.summary());
    assert_eq!(
        cache_total("cloud.cache.hit") + cache_total("cloud.cache.miss"),
        requests,
        "cache accounting leak:\n{}",
        snap.summary()
    );
    assert!(snap.has_span("cloud.prefix_forward"), "missing prefix-forward spans");
    assert!(cache_total("cloud.cache.bytes") > 0, "admitted entries should be billed");
    // Later update cycles reuse the retained archive's entries.
    assert!(cache_total("cloud.cache.hit") > 0, "archive reuse produced no hits");

    // Node and Cloud actors recorded on distinct threads.
    let session_tid =
        snap.spans.iter().find(|s| s.name == "runtime.session").unwrap().tid;
    let cloud_tid =
        snap.spans.iter().find(|s| s.name == "cloud.update_cycle").unwrap().tid;
    assert_ne!(session_tid, cloud_tid);

    // --- The Chrome trace round-trips through the JSON parser. --------
    let json = snap.chrome_trace_json();
    let doc = telemetry::json::parse(&json).expect("exporter emits valid JSON");
    let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
    for expected in ["node.stage", "cloud.update_cycle", "pool.job", "thread_name"] {
        assert!(names.contains(&expected), "trace lacks {expected}");
    }
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap();
        assert!(matches!(ph, "X" | "i" | "M"), "unexpected phase {ph}");
        if ph == "X" {
            assert!(ev.get("dur").and_then(Value::as_f64).unwrap() >= 0.0);
        }
    }
    // The machine-readable report is valid JSON too.
    assert!(telemetry::json::parse(&snap.to_json()).is_ok());

    telemetry::reset();
}
