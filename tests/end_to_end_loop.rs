//! Cross-crate integration: the full In-situ AI loop — pre-train,
//! transfer, deploy, diagnose, upload, update — improves accuracy on a
//! drifted environment while uploading only part of the stream.

use insitu::cloud::{
    build_inference, pretrain, Cloud, DeployConfig, IncrementalConfig, PretrainConfig,
};
use insitu::core::{CloudEndpoint, DiagnosisPolicy, InsituNode};
use insitu::data::{Condition, Dataset};
use insitu::nn::transfer::conv_prefix_identical;
use insitu::tensor::Rng;

struct Deployment {
    node: InsituNode,
    cloud: Cloud,
    rng: Rng,
}

fn deploy(seed: u64, classes: usize) -> Deployment {
    let mut rng = Rng::seed_from(seed);
    let raw = Dataset::generate(240, classes, &Condition::ideal(), &mut rng).unwrap();
    let pre = pretrain(
        &raw,
        &PretrainConfig { permutations: 8, epochs: 6, batch_size: 16, lr: 0.015, threads: None },
        &mut rng,
    )
    .unwrap();
    let labeled = Dataset::generate(160, classes, &Condition::ideal(), &mut rng).unwrap();
    // A deliberately short deployment budget: the initial model must
    // have real headroom on the drifted environment.
    let (inference, _) = build_inference(
        &pre,
        &labeled,
        &DeployConfig { epochs: 5, ..Default::default() },
        &mut rng,
    )
    .unwrap();
    let node = InsituNode::new(
        inference.clone(),
        pre.jigsaw.clone(),
        pre.set.clone(),
        DiagnosisPolicy::Oracle,
        3,
        seed ^ 1,
    )
    .unwrap();
    let cloud = Cloud::new(
        inference,
        pre,
        IncrementalConfig { epochs: 4, batch_size: 16, lr: 0.002, threads: None, holdout: None },
        seed ^ 2,
    );
    Deployment { node, cloud, rng }
}

#[test]
fn incremental_updates_improve_drifted_accuracy() {
    let classes = 4;
    let mut d = deploy(11, classes);
    let drift = Condition::with_severity(0.75).unwrap();
    let eval = Dataset::generate(160, classes, &drift, &mut d.rng).unwrap();
    let before = d.node.accuracy_on(&eval, 32).unwrap();

    let mut fractions = Vec::new();
    for _ in 0..3 {
        let stream = Dataset::generate(200, classes, &drift, &mut d.rng).unwrap();
        let outcome = d.node.process_stage(&stream, 32).unwrap();
        fractions.push(outcome.upload_fraction());
        let payload = d.node.upload_payload(&stream, &outcome).unwrap();
        let update = d.cloud.incremental_update(&payload).unwrap();
        d.node.install_update(&update).unwrap();
    }
    let after = d.node.accuracy_on(&eval, 32).unwrap();
    assert!(
        after > before + 0.08,
        "accuracy should improve on the drifted environment: {before} -> {after}"
    );
    // Upload fraction never exceeds 1 and the final round uploads less
    // than the first (the model recognizes more of the stream).
    assert!(fractions.iter().all(|&f| (0.0..=1.0).contains(&f)));
    assert!(
        fractions.last().unwrap() < fractions.first().unwrap(),
        "upload fraction should fall: {fractions:?}"
    );
    assert_eq!(d.node.version(), 3);
}

#[test]
fn weight_shared_prefix_survives_updates() {
    let classes = 4;
    let mut d = deploy(13, classes);
    // The Cloud's master keeps conv1-3 frozen, so every update must
    // leave the node's shared prefix identical to the jigsaw trunk —
    // the invariant the WSS hardware's shared weight buffers rely on.
    let drift = Condition::with_severity(0.5).unwrap();
    for _ in 0..2 {
        let stream = Dataset::generate(80, classes, &drift, &mut d.rng).unwrap();
        let outcome = d.node.process_stage(&stream, 32).unwrap();
        let payload = d.node.upload_payload(&stream, &outcome).unwrap();
        let update = d.cloud.incremental_update(&payload).unwrap();
        d.node.install_update(&update).unwrap();
        assert!(conv_prefix_identical(
            d.node.jigsaw().trunk(),
            d.node.inference(),
            d.node.shared_convs()
        )
        .unwrap());
    }
}

#[test]
fn movement_meter_accumulates_across_stages() {
    let classes = 4;
    let mut d = deploy(17, classes);
    let drift = Condition::with_severity(0.5).unwrap();
    let mut total_seen = 0u64;
    for n in [60usize, 90] {
        let stream = Dataset::generate(n, classes, &drift, &mut d.rng).unwrap();
        let _ = d.node.process_stage(&stream, 32).unwrap();
        total_seen += n as u64;
    }
    let meter = d.node.movement();
    assert_eq!(meter.images_seen, total_seen);
    assert!(meter.images_uploaded <= meter.images_seen);
    assert_eq!(
        meter.bytes_uploaded,
        meter.images_uploaded * insitu::core::IMAGE_BYTES
    );
}
