//! Cross-crate integration: the analytical planner against the device
//! models and the FPGA pipeline.

use insitu::core::{plan, select_mode, Availability, Platform, PlanRequest, WorkingMode};
use insitu::devices::{FpgaModel, GpuModel, NetworkShapes};
use insitu::fpga::{design_throughput, Design, WssNwsPipeline};

#[test]
fn planner_decisions_are_consistent_with_the_models() {
    let inference = NetworkShapes::alexnet();
    let diagnosis = NetworkShapes::diagnosis_of(&inference, 9);
    let gpu = GpuModel::tx1();
    for &t_user in &[0.05, 0.1, 0.4] {
        let req = PlanRequest {
            availability: Availability::Scheduled,
            t_user,
            max_batch: 256,
        };
        let p = plan(&req, &inference, &diagnosis).unwrap();
        // The plan's prediction must match a direct model query.
        assert!((p.predicted_latency_s - gpu.batch_latency(&inference, p.inference_batch))
            .abs()
            < 1e-12);
        assert!(p.predicted_latency_s <= t_user);
        // Maximality: one more image would miss the deadline.
        if p.inference_batch < 256 {
            assert!(gpu.batch_latency(&inference, p.inference_batch + 1) > t_user);
        }
    }
}

#[test]
fn co_running_plan_matches_pipeline_model() {
    let inference = NetworkShapes::alexnet();
    let diagnosis = NetworkShapes::diagnosis_of(&inference, 9);
    let req = PlanRequest { availability: Availability::AlwaysOn, t_user: 0.2, max_batch: 256 };
    let p = plan(&req, &inference, &diagnosis).unwrap();
    assert_eq!(p.platform, Platform::Fpga);
    let spec = insitu::devices::FpgaSpec::vx690t();
    let pipe = WssNwsPipeline::configure(spec, &inference.convs(), &inference.fcs());
    assert_eq!(p.wss_group_size, pipe.group_size);
    let direct = pipe
        .best_under_latency(&inference.convs(), &inference.fcs(), 0.2, 256)
        .unwrap();
    assert_eq!(p.inference_batch, direct.batch);
}

#[test]
fn mode_selection_rule() {
    assert_eq!(
        select_mode(Availability::Scheduled),
        (WorkingMode::SingleRunning, Platform::MobileGpu)
    );
    assert_eq!(
        select_mode(Availability::AlwaysOn),
        (WorkingMode::CoRunning, Platform::Fpga)
    );
}

#[test]
fn characterization_headlines_hold() {
    // The four characterization findings of the paper's Section IV.A:
    let gpu = GpuModel::tx1();
    let fpga = FpgaModel::vx690t();
    let net = NetworkShapes::alexnet();
    // (1)+(2): batching trades latency for efficiency.
    assert!(gpu.batch_latency(&net, 32) > gpu.batch_latency(&net, 1));
    assert!(gpu.perf_per_watt(&net, 32) > gpu.perf_per_watt(&net, 1));
    // (3): GPU beats FPGA when a single task runs …
    assert!(gpu.perf_per_watt(&net, 8) > fpga.perf_per_watt(&net, 8));
    // … but suffers under co-running while the FPGA partitions.
    let diag = NetworkShapes::diagnosis_of(&net, 9);
    assert!(gpu.corun_slowdown(&net, &diag) > 2.0);
    // (4): the weight-shared design is what makes the FPGA viable.
    let spec = insitu::devices::FpgaSpec::vx690t();
    let ours = design_throughput(Design::WssNws, spec, &net, 0.1, 256).unwrap();
    let ws = design_throughput(Design::Ws, spec, &net, 0.1, 256).unwrap();
    assert!(ours.throughput > 2.0 * ws.throughput);
}

#[test]
fn vgg_plans_need_looser_deadlines() {
    let vgg = NetworkShapes::vgg16();
    let diag = NetworkShapes::diagnosis_of(&vgg, 9);
    // A 30 fps deadline is infeasible for VGG-16 on a TX1-class GPU.
    let strict = PlanRequest {
        availability: Availability::Scheduled,
        t_user: 0.033,
        max_batch: 64,
    };
    assert!(plan(&strict, &vgg, &diag).is_err());
    // A relaxed deadline plans fine.
    let relaxed = PlanRequest {
        availability: Availability::Scheduled,
        t_user: 1.0,
        max_batch: 64,
    };
    assert!(plan(&relaxed, &vgg, &diag).is_ok());
}
