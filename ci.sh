#!/bin/sh
# Tier-1 gate: release build, full test suite, zero clippy warnings.
set -eu
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
