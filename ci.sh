#!/bin/sh
# Tier-1 gate: release build, full test suite, zero clippy warnings.
set -eu
cd "$(dirname "$0")"

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Packed-GEMM gate: the ragged-shape property suite, run explicitly so
# a kernel regression names itself even if the workspace sweep is
# trimmed later (bitwise-vs-naive across the tile-edge ladder at
# 1/2/4 threads, plus the scratch-reuse allocation contract).
cargo test -q -p insitu-tensor --test packed_gemm

# Fixed-point gates: the i8 GEMM must stay bitwise identical to its
# naive i32 oracle at any shape and thread count, under both the
# vectorized and the portable kernel (INSITU_GEMM_KERNEL=scalar pins
# the i8 micro-kernel together with the f32 one), and the quantized
# end-to-end path must hold held-out accuracy within two points of
# f32 (plus exact f32 restoration when the precision knob flips back).
cargo test -q -p insitu-tensor --test quant_gemm
INSITU_GEMM_KERNEL=scalar cargo test -q -p insitu-tensor --test quant_gemm
cargo test -q -p insitu-core --test quantized_inference

# SIMD dispatch gates: every dispatched op must match its scalar body
# bitwise across ragged shapes and 1/2/4 threads, under both the
# auto-detected ISA and the forced portable path (INSITU_SIMD=scalar —
# the suite itself asserts the override is in force).
cargo test -q -p insitu-tensor --test simd_ops
INSITU_SIMD=scalar cargo test -q -p insitu-tensor --test simd_ops

# AVX-512 leg: forced only where the host actually has the feature set
# the dispatcher requires (f+bw+dq+vl); elsewhere the leg is skipped
# visibly rather than silently passing.
if grep -q avx512f /proc/cpuinfo 2>/dev/null \
    && grep -q avx512bw /proc/cpuinfo \
    && grep -q avx512dq /proc/cpuinfo \
    && grep -q avx512vl /proc/cpuinfo; then
    INSITU_SIMD=avx512 cargo test -q -p insitu-tensor --test simd_ops
    INSITU_GEMM_KERNEL=avx512 cargo test -q -p insitu-tensor --test packed_gemm
    INSITU_GEMM_KERNEL=avx512 cargo test -q -p insitu-tensor --test quant_gemm
else
    echo "ci: SKIPPED avx512 leg (host lacks avx512f/bw/dq/vl)"
fi

# aarch64 cross-check leg: compile the NEON bodies when the rust-std
# for the target is installed; best-effort, visibly skipped otherwise.
if [ -d "$(rustc --print sysroot)/lib/rustlib/aarch64-unknown-linux-gnu/lib" ]; then
    cargo check -q --workspace --target aarch64-unknown-linux-gnu
else
    echo "ci: SKIPPED aarch64 cross-check (rust-std for aarch64-unknown-linux-gnu not installed)"
fi

# Telemetry gates: the end-to-end trace test, then a smoke of the
# Chrome-trace exporter through the bench bin (trace goes to stderr,
# snapshot JSON to stdout — both must stay well-formed). --quick keeps
# the timing sweep short; the fields are what CI checks, not the noise.
cargo test -q --test telemetry_trace
INSITU_TRACE=1 cargo run --release -q -p insitu-bench --bin kernels_snapshot -- --quick \
    >/tmp/ci_kernels.json 2>/tmp/ci_trace.json
grep -q '"ns_per_iter"' /tmp/ci_kernels.json
grep -q '"speedup_vs_baseline"' /tmp/ci_kernels.json
grep -q '"precision": "i8"' /tmp/ci_kernels.json
grep -q '"speedup_vs_f32"' /tmp/ci_kernels.json
# The per-op SIMD rows: each dispatched op must report its scalar
# comparison, and the header must name the ISA it ran under.
grep -q '"simd_isa"' /tmp/ci_kernels.json
grep -q '"op": "relu"' /tmp/ci_kernels.json
grep -q '"op": "maxpool"' /tmp/ci_kernels.json
grep -q '"op": "softmax"' /tmp/ci_kernels.json
grep -q '"op": "quantize_i8"' /tmp/ci_kernels.json
grep -q '"speedup_vs_scalar"' /tmp/ci_kernels.json
# Dispatch-latency percentiles from the counted pass, and the per-row
# ISA attribution added with the multi-ISA back-ends.
grep -q '"p90_ns"' /tmp/ci_kernels.json
grep -q '"p99_ns"' /tmp/ci_kernels.json
grep -q '"isa"' /tmp/ci_kernels.json
grep -q '"kind": "kernel"' /tmp/ci_kernels.json
grep -q '"traceEvents"' /tmp/ci_trace.json
rm -f /tmp/ci_kernels.json /tmp/ci_trace.json

# Observability gates: the log-bucketed histogram property suite
# (bucket bounds, merge algebra, percentile monotonicity, bitwise
# stability across 1/2/4 recording threads), the flight-recorder and
# metrics-hub unit tests, and the closed-loop integration suite whose
# end-to-end case perturbs a live session and requires it to re-plan.
cargo test -q -p insitu-telemetry --test hist
cargo test -q -p insitu-core --lib recorder::
cargo test -q -p insitu-core --lib hub::
cargo test -q -p insitu-core --test observability

# Activation-reuse gates: the fused co-running stage must stay bitwise
# identical to the unfused reference (property suite across policies,
# batch sizes and thread counts) and the trunk-pass counter must show
# one pass per image, not per probe. Then a --quick smoke of the node
# bench, which exits non-zero on any fused/unfused divergence and must
# emit the reuse fields CI consumes.
cargo test -q -p insitu-core --test reuse_properties
cargo test -q -p insitu-core --test trunk_pass_telemetry

# Update-cache gates: cached fine-tuning must be bitwise identical to
# uncached — same weights, ModelUpdates and seeded session trajectory —
# property-tested across archive sizes, epochs, eviction pressure
# (budget 0 / tiny / default) and 1/2/4 threads, plus the nn-level
# prefix/suffix split against the full forward.
cargo test -q -p insitu-cloud --test cache_equivalence
cargo test -q -p insitu-nn --lib net::tests::prefix
cargo test -q -p insitu-nn --lib train_from_activations

# Overlapped-ingestion gates: the producer/arena/queue unit suite in
# insitu-data, then the end-to-end contract in insitu-core — the Block
# overlapped session must be bitwise identical to the sequential
# oracle (proptest across seeds, queue capacities and 1/2/4 threads),
# each backpressure policy must trigger under a slow consumer, and a
# backed-up queue must re-plan the node into the i8 configuration
# live. Run under both SIMD modes: the bitwise gate must hold on the
# vectorized and the portable kernels alike.
cargo test -q -p insitu-data ingest
cargo test -q -p insitu-core --test ingestion
INSITU_SIMD=scalar cargo test -q -p insitu-data ingest
INSITU_SIMD=scalar cargo test -q -p insitu-core --test ingestion

INSITU_METRICS=1 cargo run --release -q -p insitu-bench --bin node_snapshot -- --quick \
    >/tmp/ci_node.json 2>/tmp/ci_node.prom
grep -q '"diag_speedup"' /tmp/ci_node.json
grep -q '"trunk_passes_fused"' /tmp/ci_node.json
grep -q '"identical": true' /tmp/ci_node.json
grep -q '"i8_ns_per_stage"' /tmp/ci_node.json
grep -q '"accuracy_delta_points"' /tmp/ci_node.json
# The update_cache record: cached vs uncached update-cycle ns, hit
# rate and resident bytes must all be present (the bin exits non-zero
# if any cycle's cached ModelUpdate diverges from the uncached one).
grep -q '"update_cache"' /tmp/ci_node.json
grep -q '"cached_ns_per_cycle"' /tmp/ci_node.json
grep -q '"uncached_ns_per_cycle"' /tmp/ci_node.json
grep -q '"hit_rate"' /tmp/ci_node.json
grep -q '"cache_bytes"' /tmp/ci_node.json
# The closed-loop fields: header ISA + telemetry totals, per-policy
# stage percentiles, and the measured re-plan record. The bin itself
# exits non-zero if its Prometheus export fails validation; the grep
# below additionally pins that the dump reached stderr.
grep -q '"simd_isa"' /tmp/ci_node.json
grep -q '"stage_p99_ns"' /tmp/ci_node.json
grep -q '"replan"' /tmp/ci_node.json
# The ingest_overlap record: sequential vs overlapped wall-clock,
# queue-depth percentiles and the arena's allocation counters must be
# present (the bin exits non-zero if the overlapped Block session
# diverges from the sequential oracle; timing itself is not gated —
# the numbers are for trend lines, not pass/fail).
grep -q '"ingest_overlap"' /tmp/ci_node.json
grep -q '"overlap_speedup"' /tmp/ci_node.json
grep -q '"queue_depth_p90"' /tmp/ci_node.json
grep -q '"fresh_buffers"' /tmp/ci_node.json
grep -q '^# TYPE insitu_h_node_stage summary$' /tmp/ci_node.prom
rm -f /tmp/ci_node.json /tmp/ci_node.prom

echo "ci: all gates passed"
