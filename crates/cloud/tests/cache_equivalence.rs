//! The frozen-prefix activation cache contract: a Cloud serving
//! fine-tunes from cached prefix activations must be **bitwise
//! identical** to one recomputing the frozen prefix every epoch — same
//! weights, same `ModelUpdate`s (version, params, ops, eval accuracy),
//! same seeded end-to-end session trajectory — across archive sizes,
//! epochs, byte budgets (including 0 and constant-eviction budgets),
//! holdout splits, duplicate re-uploads and 1/2/4 kernel threads.
//!
//! Two Clouds are built from the same seed; one keeps the default
//! cached path, the other runs `without_activation_cache()`. Every
//! update they produce is compared with `ModelUpdate`'s `PartialEq`
//! (tensor contents compare exactly), and the final inference state
//! dicts are compared bit for bit.

use insitu_cloud::{Cloud, IncrementalConfig, Pretrained, DEFAULT_CACHE_BUDGET};
use insitu_core::{CloudEndpoint, DiagnosisPolicy, InsituNode, ModelUpdate};
use insitu_data::{Condition, Dataset, PermutationSet};
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::serialize::state_dict;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_tensor::{num_threads, set_num_threads, Rng, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes access to the global kernel thread count.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

const CLASSES: usize = 4;
const PERMS: usize = 4;

/// One prefix activation of the deployed mini-AlexNet (32·9·9 floats)
/// plus entry overhead — used to size eviction-pressure budgets.
const ENTRY_BYTES: usize = 32 * 9 * 9 * 4 + 64;

/// Builds a deployed Cloud: jigsaw trunk transferred into the
/// inference net, conv1–3 frozen (the paper's deployment recipe).
fn make_cloud(seed: u64, cfg: IncrementalConfig) -> Cloud {
    let mut rng = Rng::seed_from(seed);
    let jigsaw = jigsaw_network(PERMS, &mut rng).unwrap();
    let mut inference = mini_alexnet(CLASSES, &mut rng).unwrap();
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
    let set = PermutationSet::generate(PERMS, &mut rng).unwrap();
    let pre = Pretrained { jigsaw, set, task_accuracy: 0.0, ops: 0 };
    Cloud::new(inference, pre, cfg, seed ^ 0x5A)
}

fn weights(c: &mut Cloud) -> Vec<Tensor> {
    state_dict(c.inference_mut())
}

/// Drives both Clouds through the same upload schedule and returns
/// (per-cycle update pairs, final weight pairs, cached-side stats).
#[allow(clippy::type_complexity)]
fn run_session(
    seed: u64,
    cycles: usize,
    upload: usize,
    cfg: &IncrementalConfig,
    budget: usize,
    duplicate_every: usize,
) -> (Vec<(ModelUpdate, ModelUpdate)>, (Vec<Tensor>, Vec<Tensor>), (u64, u64, u64)) {
    let mut cached = make_cloud(seed, cfg.clone()).with_activation_cache(budget);
    let mut uncached = make_cloud(seed, cfg.clone()).without_activation_cache();
    let mut data_rng = Rng::seed_from(seed ^ 0x77);
    let mut previous: Option<Dataset> = None;
    let mut updates = Vec::new();
    for cycle in 0..cycles {
        // Every `duplicate_every`-th cycle re-uploads the previous
        // upload verbatim (dedup pressure: the archive must not grow,
        // the cache keys must stay stable).
        let data = match (&previous, duplicate_every > 0 && cycle % duplicate_every.max(1) == 1) {
            (Some(prev), true) => prev.clone(),
            _ => Dataset::generate(upload, CLASSES, &Condition::in_situ(), &mut data_rng).unwrap(),
        };
        let ua = cached.incremental_update(&data).unwrap();
        let ub = uncached.incremental_update(&data).unwrap();
        previous = Some(data);
        updates.push((ua, ub));
    }
    let stats = cached.cache_stats().unwrap();
    assert_eq!(cached.archive_len(), uncached.archive_len());
    (updates, (weights(&mut cached), weights(&mut uncached)), (
        stats.hits,
        stats.misses,
        stats.evictions,
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: cached == uncached, bitwise, across
    /// archive growth, epochs, eviction pressure (budget 0, a ~3-entry
    /// budget that evicts constantly, and the roomy default), holdout
    /// splits, duplicate uploads and 1/2/4 kernel threads.
    #[test]
    fn cached_update_cycles_are_bitwise_identical(
        seed in 0u64..200,
        cycles in 1usize..4,
        upload in 2usize..7,
        epochs in 1usize..3,
        budget_sel in 0usize..3,
        holdout_sel in 0usize..2,
        threads_sel in 0usize..3,
    ) {
        let budget = [0, 3 * ENTRY_BYTES, DEFAULT_CACHE_BUDGET][budget_sel];
        let holdout = [None, Some(2)][holdout_sel];
        let threads = [1usize, 2, 4][threads_sel];
        let cfg = IncrementalConfig {
            epochs,
            batch_size: 4,
            lr: 0.01,
            threads: None,
            holdout,
        };
        let (updates, (wa, wb), (hits, misses, _)) = with_threads(threads, || {
            run_session(seed, cycles, upload, &cfg, budget, 2)
        });
        for (cycle, (ua, ub)) in updates.iter().enumerate() {
            prop_assert!(ua == ub, "cycle {} diverged", cycle);
            prop_assert_eq!(ua.eval_accuracy.is_some(), holdout.is_some());
        }
        prop_assert_eq!(&wa, &wb);
        // A roomy budget actually reuses entries across cycles.
        if cycles > 1 && budget == DEFAULT_CACHE_BUDGET {
            prop_assert!(hits > 0, "no hits: misses {}", misses);
        }
    }
}

/// Budget-0 and tiny-budget caches stay bitwise correct over many more
/// cycles than the property test covers, with the archive under
/// constant duplicate pressure.
#[test]
fn eviction_pressure_long_session_stays_identical() {
    let cfg = IncrementalConfig {
        epochs: 2,
        batch_size: 4,
        lr: 0.01,
        threads: None,
        holdout: Some(1),
    };
    for budget in [0, 2 * ENTRY_BYTES] {
        let (updates, (wa, wb), _) = run_session(9, 5, 3, &cfg, budget, 2);
        for (cycle, (ua, ub)) in updates.iter().enumerate() {
            assert_eq!(ua, ub, "budget {budget}, cycle {cycle} diverged");
        }
        assert_eq!(wa, wb, "budget {budget}: final weights diverged");
    }
}

/// The seeded end-to-end session: a node streaming stages against a
/// cached Cloud takes the exact trajectory of a node against an
/// uncached Cloud — predictions, upload selections, versions and
/// installed weights all match. (The sequential loop is used because
/// the threaded runtime's install timing is intentionally
/// opportunistic; bitwise-equal updates are what make even that racy
/// path distributionally identical.)
#[test]
fn seeded_session_trajectory_matches_uncached() {
    let make_node = |seed: u64| {
        let mut rng = Rng::seed_from(seed);
        let jigsaw = jigsaw_network(PERMS, &mut rng).unwrap();
        let mut inference = mini_alexnet(CLASSES, &mut rng).unwrap();
        transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
        let set = PermutationSet::generate(PERMS, &mut rng).unwrap();
        InsituNode::new(
            inference,
            jigsaw,
            set,
            DiagnosisPolicy::InferenceConfidence { threshold: 0.8 },
            3,
            seed ^ 0xA5,
        )
        .unwrap()
    };
    let cfg = IncrementalConfig {
        epochs: 1,
        batch_size: 4,
        lr: 0.01,
        threads: None,
        holdout: Some(1),
    };
    let mut node_a = make_node(21);
    let mut node_b = make_node(21);
    let mut cloud_a = make_cloud(21, cfg.clone()); // cached (default)
    let mut cloud_b = make_cloud(21, cfg).without_activation_cache();
    let mut stream_rng = Rng::seed_from(4242);
    for stage in 0..4 {
        let data = Dataset::generate(6, CLASSES, &Condition::in_situ(), &mut stream_rng).unwrap();
        let oa = node_a.process_stage(&data, 3).unwrap();
        let ob = node_b.process_stage(&data, 3).unwrap();
        assert_eq!(oa.predictions, ob.predictions, "stage {stage}");
        assert_eq!(oa.valuable, ob.valuable, "stage {stage}");
        let pa = node_a.upload_payload(&data, &oa).unwrap();
        let pb = node_b.upload_payload(&data, &ob).unwrap();
        let ua = cloud_a.incremental_update(&pa).unwrap();
        let ub = cloud_b.incremental_update(&pb).unwrap();
        assert_eq!(ua, ub, "stage {stage}: updates diverged");
        node_a.install_update(&ua).unwrap();
        node_b.install_update(&ub).unwrap();
        assert_eq!(node_a.version(), node_b.version());
    }
    assert_eq!(
        state_dict(node_a.inference_mut()),
        state_dict(node_b.inference_mut()),
        "node weights diverged after the session"
    );
    let stats = cloud_a.cache_stats().unwrap();
    assert!(stats.hits > 0, "archive reuse produced no cache hits");
}

/// Identical re-uploads are deduplicated: the archive stops growing,
/// yet training results keep matching the uncached Cloud (which
/// deduplicates identically).
#[test]
fn duplicate_uploads_do_not_grow_archive() {
    let cfg = IncrementalConfig {
        epochs: 1,
        batch_size: 4,
        lr: 0.01,
        threads: None,
        holdout: None,
    };
    let mut cloud = make_cloud(33, cfg);
    let data = Dataset::generate(5, CLASSES, &Condition::in_situ(), &mut Rng::seed_from(1)).unwrap();
    cloud.incremental_update(&data).unwrap();
    assert_eq!(cloud.archive_len(), 5);
    // Same payload again, and once more with an internal duplicate.
    cloud.incremental_update(&data).unwrap();
    assert_eq!(cloud.archive_len(), 5);
    let doubled = data.concat(&data).unwrap();
    cloud.incremental_update(&doubled).unwrap();
    assert_eq!(cloud.archive_len(), 5);
}
