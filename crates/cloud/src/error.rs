//! Error type for the Cloud side.

use insitu_core::CoreError;
use insitu_data::DataError;
use insitu_nn::NnError;
use std::fmt;

/// Error produced by pre-training, transfer, incremental updates or
/// the system simulations.
#[derive(Debug)]
pub enum CloudError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A data operation failed.
    Data(DataError),
    /// A framework operation failed.
    Core(CoreError),
    /// A configuration is inconsistent.
    BadConfig {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Nn(e) => write!(f, "network error: {e}"),
            CloudError::Data(e) => write!(f, "data error: {e}"),
            CloudError::Core(e) => write!(f, "framework error: {e}"),
            CloudError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
        }
    }
}

impl std::error::Error for CloudError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CloudError::Nn(e) => Some(e),
            CloudError::Data(e) => Some(e),
            CloudError::Core(e) => Some(e),
            CloudError::BadConfig { .. } => None,
        }
    }
}

impl From<NnError> for CloudError {
    fn from(e: NnError) -> Self {
        CloudError::Nn(e)
    }
}

impl From<DataError> for CloudError {
    fn from(e: DataError) -> Self {
        CloudError::Data(e)
    }
}

impl From<CoreError> for CloudError {
    fn from(e: CoreError) -> Self {
        CloudError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CloudError = NnError::NoSuchLayer { layer: "x".into() }.into();
        assert!(e.to_string().contains("network error"));
        let d: CloudError = DataError::BadConfig { reason: "y".into() }.into();
        assert!(std::error::Error::source(&d).is_some());
    }
}
