//! Incremental fine-tuning of a deployed model on newly uploaded data.

use crate::Result;
use insitu_data::Dataset;
use insitu_nn::{
    train, train_from_activations, LabeledBatch, Sequential, TrainConfig, TrainReport,
};
use insitu_tensor::Rng;
use insitu_telemetry as telemetry;

/// Configuration of one incremental update.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Fine-tuning passes over the uploaded data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (typically lower than initial training).
    pub lr: f32,
    /// Kernel threads for the fine-tuning loop (`None` keeps the
    /// process-wide setting; see [`insitu_tensor::set_num_threads`]).
    /// Never affects results.
    pub threads: Option<usize>,
    /// Hold out up to this many samples (taken from the end of the
    /// fine-tune set, capped so at least one training sample remains)
    /// as a per-epoch eval split, so the update can report post-update
    /// accuracy without a second manual pass. `None` trains on
    /// everything and reports no accuracy.
    pub holdout: Option<usize>,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig { epochs: 6, batch_size: 16, lr: 0.005, threads: None, holdout: None }
    }
}

/// Splits `data` into (train, held-out) the way [`fine_tune`] does:
/// the last `min(holdout, len - 1)` samples are held out. Exposed so
/// the cached activation path can reproduce the split exactly.
///
/// # Errors
///
/// Returns an error if the split is out of range (cannot happen for
/// the clamped sizes used here).
pub fn split_holdout(data: &Dataset, holdout: Option<usize>) -> Result<(Dataset, Option<Dataset>)> {
    let hold = holdout.unwrap_or(0).min(data.len().saturating_sub(1));
    if hold == 0 {
        return Ok((data.clone(), None));
    }
    let (train_part, hold_part) = data.split_at(data.len() - hold)?;
    Ok((train_part, Some(hold_part)))
}

/// Fine-tunes `net` in place on `uploaded`. The network's freezing
/// pattern is honoured: with the shared conv prefix locked (In-situ
/// AI's deployment), only the suffix retrains — the source of the
/// paper's update-time advantage.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn fine_tune(
    net: &mut Sequential,
    uploaded: &Dataset,
    cfg: &IncrementalConfig,
    rng: &mut Rng,
) -> Result<TrainReport> {
    let _t = telemetry::span_with("cloud.fine_tune", || {
        format!("{} uploaded samples x{} epochs", uploaded.len(), cfg.epochs)
    });
    let (train_part, hold_part) = split_holdout(uploaded, cfg.holdout)?;
    let eval = match &hold_part {
        Some(h) => Some(LabeledBatch::new(h.images(), h.labels())?),
        None => None,
    };
    Ok(train(
        net,
        LabeledBatch::new(train_part.images(), train_part.labels())?,
        eval,
        &train_config(cfg),
        rng,
    )?)
}

/// The cached-activation twin of [`fine_tune`]: trains the unfrozen
/// suffix of `net` from precomputed prefix activations (see
/// [`ActivationCache::prefix_activations`](crate::ActivationCache::prefix_activations)).
/// `acts`/`eval_acts` must correspond to the [`split_holdout`] parts of
/// the same fine-tune set; the loop, RNG trajectory and cost accounting
/// are shared with [`fine_tune`], so results are bitwise identical.
///
/// # Errors
///
/// Returns an error on shape disagreements between the suffix and the
/// activations.
pub fn fine_tune_from_activations(
    net: &mut Sequential,
    acts: LabeledBatch<'_>,
    eval_acts: Option<LabeledBatch<'_>>,
    cfg: &IncrementalConfig,
    rng: &mut Rng,
) -> Result<TrainReport> {
    let _t = telemetry::span_with("cloud.fine_tune", || {
        format!("{} cached activations x{} epochs", acts.len(), cfg.epochs)
    });
    Ok(train_from_activations(net, acts, eval_acts, &train_config(cfg), rng)?)
}

fn train_config(cfg: &IncrementalConfig) -> TrainConfig {
    TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        threads: cfg.threads,
        ..Default::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_data::Condition;
    use insitu_nn::models::mini_alexnet;
    use insitu_nn::Network;

    #[test]
    fn fine_tune_runs_and_counts_ops() {
        let mut rng = Rng::seed_from(41);
        let mut net = mini_alexnet(4, &mut rng).unwrap();
        let data = Dataset::generate(24, 4, &Condition::in_situ(), &mut rng).unwrap();
        let cfg = IncrementalConfig { epochs: 2, batch_size: 8, lr: 0.01, threads: None, holdout: None };
        let report = fine_tune(&mut net, &data, &cfg, &mut rng).unwrap();
        assert_eq!(report.history.len(), 2);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn frozen_prefix_cuts_update_cost() {
        // The paper's weight-sharing speedup: CONV-3 locking reduces the
        // per-sample training ops, hence the modeled update time.
        let mut rng = Rng::seed_from(42);
        let mut full = mini_alexnet(4, &mut rng).unwrap();
        let mut shared = mini_alexnet(4, &mut rng).unwrap();
        shared.freeze_first_convs(3).unwrap();
        assert!(shared.training_ops_per_sample() < full.training_ops_per_sample());
        let data = Dataset::generate(16, 4, &Condition::in_situ(), &mut rng).unwrap();
        let cfg = IncrementalConfig { epochs: 1, batch_size: 8, lr: 0.01, threads: None, holdout: None };
        let r_full = fine_tune(&mut full, &data, &cfg, &mut rng).unwrap();
        let r_shared = fine_tune(&mut shared, &data, &cfg, &mut rng).unwrap();
        assert!(r_shared.total_ops < r_full.total_ops);
    }
}
