//! Frozen-prefix activation cache for incremental fine-tuning.
//!
//! The deployment recipe freezes conv1–3, so during every fine-tune the
//! frozen prefix runs in Eval mode and its outputs are a pure function
//! of (frozen weights, input image). The Cloud retains its archive
//! across update cycles, which means the same images are pushed through
//! the same frozen prefix on every epoch of every cycle. This module
//! memoizes those feature maps: [`ActivationCache`] stores one
//! activation per (sample id, prefix fingerprint) pair under a byte
//! budget with LRU eviction, and [`ActivationCache::prefix_activations`]
//! assembles a training batch from cache hits plus one batched
//! [`Sequential::forward_prefix`] call over the misses.
//!
//! Correctness rests on two facts, both locked down by tests:
//!
//! * the frozen prefix is deterministic and per-sample independent
//!   (every kernel processes batch samples independently), so an
//!   activation computed in one batch is bit-identical in any other;
//! * the fingerprint hashes the freezing cut plus every frozen layer's
//!   topology and exact weight bits, so a transfer, re-deploy or
//!   changed `frozen_convs` can never be served stale entries.
//!
//! Telemetry: `cloud.cache.request` / `cloud.cache.hit` /
//! `cloud.cache.miss` / `cloud.cache.evictions` counters (per sample;
//! hits + misses always equals requests), `cloud.cache.bytes`
//! (cumulative bytes admitted), and a `cloud.prefix_forward` span —
//! auto-fed into the latency histogram — around each miss-batch
//! forward.

use std::collections::{BTreeMap, HashMap};

use crate::Result;
use insitu_data::Dataset;
use insitu_nn::{gather_samples, Sequential};
use insitu_tensor::Tensor;
use insitu_telemetry as telemetry;

/// Default cache budget: enough for ~6400 mini-AlexNet prefix maps
/// (32·9·9 floats ≈ 10 KiB each), far beyond the paper's archives.
pub const DEFAULT_CACHE_BUDGET: usize = 64 * 1024 * 1024;

/// Bookkeeping overhead charged per entry against the byte budget, on
/// top of the activation payload itself.
const ENTRY_OVERHEAD: usize = 64;

/// Lifetime statistics of an [`ActivationCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Samples served from the cache.
    pub hits: u64,
    /// Samples that had to run the frozen prefix.
    pub misses: u64,
    /// Entries evicted under byte-budget pressure.
    pub evictions: u64,
    /// Bytes currently resident (payload + per-entry overhead).
    pub resident_bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate over the cache's lifetime (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    act: Vec<f32>,
    tick: u64,
}

/// An LRU cache of frozen-prefix activations keyed by
/// `(sample id, prefix fingerprint)`.
#[derive(Debug)]
pub struct ActivationCache {
    budget: usize,
    entries: HashMap<(u64, u64), Entry>,
    /// LRU order: logical tick → key. Ticks are unique, so the first
    /// BTreeMap entry is always the least recently used.
    lru: BTreeMap<u64, (u64, u64)>,
    tick: u64,
    resident: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ActivationCache {
    /// Creates a cache bounded to `budget` bytes (0 disables storage:
    /// every lookup misses, which is the maximal eviction-pressure
    /// case the equivalence suite exercises).
    pub fn new(budget: usize) -> ActivationCache {
        ActivationCache {
            budget,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            resident: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident,
            entries: self.entries.len(),
        }
    }

    /// Configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.resident = 0;
    }

    /// Returns the prefix activations of every sample in `data`, in
    /// order, as one batched tensor — serving from the cache where
    /// possible and running `net.forward_prefix` once over the misses.
    ///
    /// `ids` are the content ids of the samples (see [`sample_ids`]),
    /// one per sample. Hit payloads are copied into the output *before*
    /// any miss is inserted, so eviction during population can never
    /// corrupt the assembled batch. When nothing is frozen the prefix
    /// is the identity and the images are returned untouched (no cache
    /// traffic is counted).
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements with the prefix, or if
    /// `ids.len() != data.len()`.
    pub fn prefix_activations(
        &mut self,
        net: &mut Sequential,
        data: &Dataset,
        ids: &[u64],
    ) -> Result<Tensor> {
        if ids.len() != data.len() {
            return Err(crate::CloudError::BadConfig {
                reason: format!("{} ids for {} samples", ids.len(), data.len()),
            });
        }
        if net.first_unfrozen() == 0 {
            // Nothing frozen: the prefix is the identity.
            return Ok(data.images().clone());
        }
        let n = data.len();
        let fp = net.prefix_fingerprint();
        let image_dims = data.images().dims().to_vec();
        let act_dims = net.prefix_output_dims(&image_dims)?;
        let sample_len: usize = act_dims[1..].iter().product();
        let mut out = vec![0.0f32; n * sample_len];

        telemetry::counter_add("cloud.cache.request", "", n as u64);
        // Pass 1: copy every hit out immediately — inserting misses
        // later may evict these very entries.
        let mut miss_indices = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            match self.entries.get_mut(&(id, fp)) {
                Some(entry) if entry.act.len() == sample_len => {
                    out[i * sample_len..(i + 1) * sample_len].copy_from_slice(&entry.act);
                    let old = entry.tick;
                    entry.tick = self.tick;
                    self.lru.remove(&old);
                    self.lru.insert(self.tick, (id, fp));
                    self.tick += 1;
                    self.hits += 1;
                }
                _ => miss_indices.push(i),
            }
        }
        telemetry::counter_add("cloud.cache.hit", "", (n - miss_indices.len()) as u64);
        telemetry::counter_add("cloud.cache.miss", "", miss_indices.len() as u64);
        self.misses += miss_indices.len() as u64;

        // Pass 2: one batched prefix forward over the misses. Kernels
        // treat batch samples independently, so these activations are
        // bit-identical to any other batching of the same images.
        if !miss_indices.is_empty() {
            let missed = miss_indices.len();
            let _t = telemetry::span_with("cloud.prefix_forward", || {
                format!("{missed}/{n} samples missed")
            });
            let images = gather_samples(data.images(), &miss_indices)?;
            let acts = net.forward_prefix(&images)?;
            let src = acts.as_slice();
            for (m, &i) in miss_indices.iter().enumerate() {
                let act = &src[m * sample_len..(m + 1) * sample_len];
                out[i * sample_len..(i + 1) * sample_len].copy_from_slice(act);
                self.insert((ids[i], fp), act.to_vec());
            }
        }

        let mut dims = act_dims;
        dims[0] = n;
        Ok(Tensor::from_vec(dims.as_slice(), out).map_err(insitu_nn::NnError::from)?)
    }

    /// Admits one entry, evicting LRU entries as needed. Entries larger
    /// than the whole budget are not admitted.
    fn insert(&mut self, key: (u64, u64), act: Vec<f32>) {
        let bytes = act.len() * std::mem::size_of::<f32>() + ENTRY_OVERHEAD;
        if bytes > self.budget {
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            // Same key re-admitted (e.g. evicted mid-cycle): replace.
            self.lru.remove(&old.tick);
            self.resident -= old.act.len() * std::mem::size_of::<f32>() + ENTRY_OVERHEAD;
        }
        while self.resident + bytes > self.budget {
            let Some((&tick, &victim)) = self.lru.iter().next() else { break };
            self.lru.remove(&tick);
            if let Some(e) = self.entries.remove(&victim) {
                self.resident -= e.act.len() * std::mem::size_of::<f32>() + ENTRY_OVERHEAD;
                self.evictions += 1;
                telemetry::counter_add("cloud.cache.evictions", "", 1);
            }
        }
        telemetry::counter_add("cloud.cache.bytes", "", bytes as u64);
        self.entries.insert(key, Entry { act, tick: self.tick });
        self.lru.insert(self.tick, key);
        self.tick += 1;
        self.resident += bytes;
    }
}

/// Content id of one sample: a 64-bit FNV-1a over the exact image bits
/// plus the label. Identical re-uploads map to identical ids, which
/// keeps cache keys stable and lets the endpoint deduplicate its
/// retained archive.
pub fn sample_ids(data: &Dataset) -> Vec<u64> {
    let dims = data.images().dims();
    let sample_len: usize = dims.iter().skip(1).product();
    let src = data.images().as_slice();
    let labels = data.labels();
    (0..data.len())
        .map(|i| {
            let mut h = Fnv::new();
            for &x in &src[i * sample_len..(i + 1) * sample_len] {
                h.u32(x.to_bits());
            }
            h.u64(labels[i] as u64);
            h.finish()
        })
        .collect()
}

/// Streaming 64-bit FNV-1a.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_data::Condition;
    use insitu_nn::models::mini_alexnet;
    use insitu_tensor::Rng;

    fn frozen_net() -> Sequential {
        let mut rng = Rng::seed_from(71);
        let mut net = mini_alexnet(4, &mut rng).unwrap();
        net.freeze_first_convs(3).unwrap();
        net
    }

    fn data(n: usize, seed: u64) -> Dataset {
        Dataset::generate(n, 4, &Condition::in_situ(), &mut Rng::seed_from(seed)).unwrap()
    }

    #[test]
    fn cached_batch_equals_direct_prefix_forward() {
        let mut net = frozen_net();
        let d = data(10, 72);
        let ids = sample_ids(&d);
        let direct = net.forward_prefix(d.images()).unwrap();
        let mut cache = ActivationCache::new(DEFAULT_CACHE_BUDGET);
        // Cold pass: all misses. Warm pass: all hits. Both bit-equal.
        let cold = cache.prefix_activations(&mut net, &d, &ids).unwrap();
        assert_eq!(cold.as_slice(), direct.as_slice());
        assert_eq!(cache.stats().misses, 10);
        let warm = cache.prefix_activations(&mut net, &d, &ids).unwrap();
        assert_eq!(warm.as_slice(), direct.as_slice());
        assert_eq!(cache.stats().hits, 10);
        assert!(cache.stats().resident_bytes > 0);
    }

    #[test]
    fn partial_overlap_mixes_hits_and_misses_bitwise() {
        let mut net = frozen_net();
        let first = data(8, 73);
        let both = first.concat(&data(8, 74)).unwrap();
        let mut cache = ActivationCache::new(DEFAULT_CACHE_BUDGET);
        cache.prefix_activations(&mut net, &first, &sample_ids(&first)).unwrap();
        let direct = net.forward_prefix(both.images()).unwrap();
        let mixed = cache.prefix_activations(&mut net, &both, &sample_ids(&both)).unwrap();
        assert_eq!(mixed.as_slice(), direct.as_slice());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (8, 16));
    }

    #[test]
    fn fingerprint_change_invalidates_entries() {
        let mut net = frozen_net();
        let d = data(6, 75);
        let ids = sample_ids(&d);
        let mut cache = ActivationCache::new(DEFAULT_CACHE_BUDGET);
        cache.prefix_activations(&mut net, &d, &ids).unwrap();
        assert_eq!(cache.stats().hits, 0);
        // Re-deploy with different frozen weights: same ids, new
        // fingerprint, so everything misses again — never stale data.
        let mut other = mini_alexnet(4, &mut Rng::seed_from(76)).unwrap();
        other.freeze_first_convs(3).unwrap();
        let direct = other.forward_prefix(d.images()).unwrap();
        let got = cache.prefix_activations(&mut other, &d, &ids).unwrap();
        assert_eq!(got.as_slice(), direct.as_slice());
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 12);
    }

    #[test]
    fn zero_budget_never_stores_but_stays_correct() {
        let mut net = frozen_net();
        let d = data(5, 77);
        let ids = sample_ids(&d);
        let mut cache = ActivationCache::new(0);
        let direct = net.forward_prefix(d.images()).unwrap();
        for _ in 0..2 {
            let got = cache.prefix_activations(&mut net, &d, &ids).unwrap();
            assert_eq!(got.as_slice(), direct.as_slice());
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.resident_bytes), (0, 10, 0, 0));
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let mut net = frozen_net();
        let d = data(6, 78);
        let ids = sample_ids(&d);
        // Room for roughly two entries.
        let one = {
            let dims = net.prefix_output_dims(d.images().dims()).unwrap();
            let per: usize = dims[1..].iter().product();
            per * 4 + ENTRY_OVERHEAD
        };
        let mut cache = ActivationCache::new(2 * one);
        let direct = net.forward_prefix(d.images()).unwrap();
        let got = cache.prefix_activations(&mut net, &d, &ids).unwrap();
        assert_eq!(got.as_slice(), direct.as_slice());
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert!(s.resident_bytes <= 2 * one);
        assert_eq!(s.evictions, 4);
        // The two most recent samples (4, 5) survived.
        let last_two = d.subset(&[4, 5]).unwrap();
        cache.prefix_activations(&mut net, &last_two, &sample_ids(&last_two)).unwrap();
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn unfrozen_net_passes_images_through() {
        let mut rng = Rng::seed_from(79);
        let mut net = mini_alexnet(4, &mut rng).unwrap();
        let d = data(3, 80);
        let ids = sample_ids(&d);
        let mut cache = ActivationCache::new(DEFAULT_CACHE_BUDGET);
        let got = cache.prefix_activations(&mut net, &d, &ids).unwrap();
        assert_eq!(got.as_slice(), d.images().as_slice());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn sample_ids_are_content_hashes() {
        let a = data(4, 81);
        let ids = sample_ids(&a);
        assert_eq!(ids, sample_ids(&a.clone()));
        // Identical content re-uploaded gets identical ids.
        let twice = a.concat(&a).unwrap();
        let tids = sample_ids(&twice);
        assert_eq!(&tids[..4], &tids[4..]);
        // Different content gets different ids.
        let b = data(4, 82);
        assert_ne!(ids, sample_ids(&b));
    }
}
