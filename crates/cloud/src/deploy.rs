//! Building the inference network from the unsupervised trunk
//! (transfer learning) — the paper's Fig. 4 deployment recipe.

use crate::pretrain::Pretrained;
use crate::Result;
use insitu_data::Dataset;
use insitu_nn::models::mini_alexnet;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_nn::{train, LabeledBatch, Sequential, TrainConfig, TrainReport};
use insitu_tensor::Rng;

/// Configuration of the transfer-learning job.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Conv layers copied from the unsupervised trunk.
    pub transfer_convs: usize,
    /// Of those, how many are locked (the paper's `CONV-i`).
    pub frozen_convs: usize,
    /// Supervised fine-tuning passes over the limited labeled data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for DeployConfig {
    fn default() -> Self {
        DeployConfig { transfer_convs: 3, frozen_convs: 3, epochs: 15, batch_size: 16, lr: 0.005 }
    }
}

/// Builds and fine-tunes an inference network on limited labeled data,
/// starting from the pre-trained unsupervised trunk.
///
/// Returns the deployed network plus the training report (for cost
/// accounting).
///
/// # Errors
///
/// Returns an error if the transfer is incompatible or training fails.
pub fn build_inference(
    pretrained: &Pretrained,
    labeled: &Dataset,
    cfg: &DeployConfig,
    rng: &mut Rng,
) -> Result<(Sequential, TrainReport)> {
    let mut net = mini_alexnet(labeled.num_classes(), rng)?;
    transfer_and_freeze(pretrained.jigsaw.trunk(), &mut net, cfg.transfer_convs, cfg.frozen_convs)?;
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        ..Default::default()
    };
    let report = train(
        &mut net,
        LabeledBatch::new(labeled.images(), labeled.labels())?,
        None,
        &train_cfg,
        rng,
    )?;
    Ok((net, report))
}

/// Trains an inference network *from scratch* on the same labeled data
/// — the baseline the paper's Fig. 5 compares transfer learning
/// against.
///
/// # Errors
///
/// Returns an error if training fails.
pub fn build_from_scratch(
    labeled: &Dataset,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut Rng,
) -> Result<(Sequential, TrainReport)> {
    let mut net = mini_alexnet(labeled.num_classes(), rng)?;
    let train_cfg = TrainConfig { epochs, batch_size, lr, ..Default::default() };
    let report = train(
        &mut net,
        LabeledBatch::new(labeled.images(), labeled.labels())?,
        None,
        &train_cfg,
        rng,
    )?;
    Ok((net, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainConfig};
    use insitu_data::Condition;
    use insitu_nn::transfer::conv_prefix_identical;

    #[test]
    fn deployed_net_shares_frozen_prefix() {
        let mut rng = Rng::seed_from(31);
        let raw = Dataset::generate(60, 4, &Condition::ideal(), &mut rng).unwrap();
        let pre = pretrain(
            &raw,
            &PretrainConfig { permutations: 4, epochs: 2, batch_size: 8, lr: 0.015, threads: None },
            &mut rng,
        )
        .unwrap();
        let labeled = Dataset::generate(40, 4, &Condition::ideal(), &mut rng).unwrap();
        let cfg = DeployConfig { epochs: 2, ..Default::default() };
        let (net, report) = build_inference(&pre, &labeled, &cfg, &mut rng).unwrap();
        // Frozen conv1..3 still identical to the trunk after training.
        assert!(conv_prefix_identical(pre.jigsaw.trunk(), &net, 3).unwrap());
        assert!(report.total_ops > 0);
        assert_eq!(net.conv_count(), 5);
    }

    #[test]
    fn scratch_baseline_trains() {
        let mut rng = Rng::seed_from(32);
        let labeled = Dataset::generate(40, 4, &Condition::ideal(), &mut rng).unwrap();
        let (net, report) = build_from_scratch(&labeled, 2, 8, 0.02, &mut rng).unwrap();
        assert_eq!(net.frozen_count(), 0);
        assert!(report.history.len() == 2);
    }

    #[test]
    fn unfrozen_transfer_keeps_copied_weights_trainable() {
        let mut rng = Rng::seed_from(33);
        let raw = Dataset::generate(50, 4, &Condition::ideal(), &mut rng).unwrap();
        let pre = pretrain(
            &raw,
            &PretrainConfig { permutations: 4, epochs: 1, batch_size: 8, lr: 0.015, threads: None },
            &mut rng,
        )
        .unwrap();
        let labeled = Dataset::generate(30, 4, &Condition::ideal(), &mut rng).unwrap();
        let cfg = DeployConfig {
            transfer_convs: 3,
            frozen_convs: 0, // CONV-0: everything retrains
            epochs: 2,
            batch_size: 8,
            lr: 0.05,
        };
        let (net, _) = build_inference(&pre, &labeled, &cfg, &mut rng).unwrap();
        // After training with no freezing, the prefix should have moved.
        assert!(!conv_prefix_identical(pre.jigsaw.trunk(), &net, 3).unwrap());
    }
}
