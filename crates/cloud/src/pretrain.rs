//! Unsupervised pre-training on big raw IoT data.
//!
//! The Cloud trains the jigsaw context-prediction network on *images
//! only* — no labels are ever consumed — which is the paper's answer
//! to the impracticality of hand-labelling IoT-scale data. The learned
//! trunk features then seed the supervised inference network via
//! transfer learning.

use crate::Result;
use insitu_data::{jigsaw_batch, Dataset, PermutationSet};
use insitu_nn::models::jigsaw_network;
use insitu_nn::{evaluate, train, JigsawNet, LabeledBatch, TrainConfig};
use insitu_tensor::Rng;
use insitu_telemetry as telemetry;

/// Configuration of the unsupervised pre-training job.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Size of the permutation set (the number of jigsaw classes; the
    /// paper uses 100, we default to a scale-appropriate 16).
    pub permutations: usize,
    /// Training passes over the raw data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Kernel threads for the training loop (`None` keeps the
    /// process-wide setting; see [`insitu_tensor::set_num_threads`]).
    /// The Cloud models abundant compute, so pre-training is the main
    /// beneficiary of the parallel kernels. Never affects results.
    pub threads: Option<usize>,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig { permutations: 16, epochs: 15, batch_size: 16, lr: 0.015, threads: None }
    }
}

/// The product of unsupervised pre-training.
#[derive(Debug, Clone)]
pub struct Pretrained {
    /// The trained jigsaw network (trunk + head).
    pub jigsaw: JigsawNet,
    /// The permutation set the network was trained against.
    pub set: PermutationSet,
    /// Held-out accuracy on the context-prediction task — the paper's
    /// "accuracy of the unsupervised pre-trained network" (its Fig. 5
    /// compares 71% vs 88% pre-trains).
    pub task_accuracy: f32,
    /// Multiply-accumulate operations spent training.
    pub ops: u64,
}

/// Pre-trains the jigsaw network on raw (unlabeled) IoT data.
///
/// # Errors
///
/// Returns an error if the configuration is degenerate or shapes
/// disagree.
pub fn pretrain(raw: &Dataset, cfg: &PretrainConfig, rng: &mut Rng) -> Result<Pretrained> {
    let _t = telemetry::span_with("cloud.pretrain", || {
        format!("{} raw samples, {} perms", raw.len(), cfg.permutations)
    });
    let set = PermutationSet::generate(cfg.permutations, rng)?;
    let mut jigsaw = jigsaw_network(cfg.permutations, rng)?;
    // Hold out ~20% of the raw data (as jigsaw samples) for the task
    // accuracy measurement.
    let holdout = (raw.len() / 5).max(1).min(raw.len());
    let (eval_raw, train_raw) = raw.split_at(holdout)?;
    let (train_x, train_y) = jigsaw_batch(&train_raw, &set, rng)?;
    let (eval_x, eval_y) = jigsaw_batch(&eval_raw, &set, rng)?;
    let train_cfg = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        threads: cfg.threads,
        ..Default::default()
    };
    let report = train(
        &mut jigsaw,
        LabeledBatch::new(&train_x, &train_y)?,
        None,
        &train_cfg,
        rng,
    )?;
    let task_accuracy =
        evaluate(&mut jigsaw, LabeledBatch::new(&eval_x, &eval_y)?, cfg.batch_size)?;
    Ok(Pretrained { jigsaw, set, task_accuracy, ops: report.total_ops })
}

/// Continues pre-training an existing jigsaw network on newly acquired
/// raw data (the incremental refresh of the diagnosis model).
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn continue_pretrain(
    pretrained: &mut Pretrained,
    raw: &Dataset,
    epochs: usize,
    batch_size: usize,
    lr: f32,
    rng: &mut Rng,
) -> Result<u64> {
    let _t =
        telemetry::span_with("cloud.continue_pretrain", || format!("{} raw samples", raw.len()));
    let (x, y) = jigsaw_batch(raw, &pretrained.set, rng)?;
    let cfg = TrainConfig { epochs, batch_size, lr, ..Default::default() };
    let report = train(&mut pretrained.jigsaw, LabeledBatch::new(&x, &y)?, None, &cfg, rng)?;
    pretrained.ops += report.total_ops;
    Ok(report.total_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_data::Condition;

    #[test]
    fn pretraining_learns_the_jigsaw_task() {
        let mut rng = Rng::seed_from(21);
        let raw = Dataset::generate(120, 4, &Condition::ideal(), &mut rng).unwrap();
        let cfg = PretrainConfig { permutations: 4, epochs: 12, batch_size: 16, lr: 0.015, threads: None };
        let out = pretrain(&raw, &cfg, &mut rng).unwrap();
        // 4 classes → chance is 25%; the trained net must beat it well.
        assert!(out.task_accuracy > 0.5, "jigsaw accuracy {}", out.task_accuracy);
        assert!(out.ops > 0);
        assert_eq!(out.set.len(), 4);
    }

    #[test]
    fn continue_pretrain_accumulates_ops() {
        let mut rng = Rng::seed_from(22);
        let raw = Dataset::generate(40, 4, &Condition::ideal(), &mut rng).unwrap();
        let cfg = PretrainConfig { permutations: 4, epochs: 1, batch_size: 8, lr: 0.02, threads: None };
        let mut out = pretrain(&raw, &cfg, &mut rng).unwrap();
        let before = out.ops;
        let more = Dataset::generate(16, 4, &Condition::in_situ(), &mut rng).unwrap();
        let spent = continue_pretrain(&mut out, &more, 1, 8, 0.02, &mut rng).unwrap();
        assert!(spent > 0);
        assert_eq!(out.ops, before + spent);
    }
}
