//! The four deep-learning IoT system organizations of the paper's
//! Fig. 24, simulated end-to-end on the same data stream.
//!
//! | | upload to Cloud | retraining set | weight sharing |
//! |---|---|---|---|
//! | (a) Traditional | everything | everything | none (all layers retrain) |
//! | (b) Cloud diagnosis | everything | valuable only | none |
//! | (c) In-situ diagnosis | valuable only | valuable only | none |
//! | (d) **In-situ AI** | valuable only | valuable only | conv1–3 locked |
//!
//! "Valuable" is the data the current model mispredicts — the paper's
//! "incorrect predictions" (its Section III). Stage 0 is the initial
//! 100k-equivalent bootstrap: everyone uploads and trains on all of it.

use crate::incremental::{fine_tune, IncrementalConfig};
use crate::Result;
use insitu_core::IMAGE_BYTES;
use insitu_data::{Campaign, Dataset};
use insitu_devices::{CloudGpuSpec, UplinkSpec};
use insitu_nn::models::mini_alexnet;
use insitu_nn::{evaluate, predictions, LabeledBatch, Sequential};
use insitu_tensor::Rng;
use serde::{Deserialize, Serialize};

/// Which of the paper's four IoT system organizations to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// (a) Traditional: everything uploaded, everything retrained.
    Traditional,
    /// (b) Diagnosis in the Cloud: everything uploaded, valuable
    /// retrained.
    CloudDiagnosis,
    /// (c) Diagnosis at the node: valuable uploaded and retrained.
    InsituDiagnosis,
    /// (d) In-situ AI: (c) plus weight-shared (locked) conv1–3.
    InsituAi,
}

impl SystemKind {
    /// All four, in the paper's (a)–(d) order.
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::Traditional,
            SystemKind::CloudDiagnosis,
            SystemKind::InsituDiagnosis,
            SystemKind::InsituAi,
        ]
    }

    /// The paper's subfigure letter.
    pub fn letter(&self) -> char {
        match self {
            SystemKind::Traditional => 'a',
            SystemKind::CloudDiagnosis => 'b',
            SystemKind::InsituDiagnosis => 'c',
            SystemKind::InsituAi => 'd',
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Traditional => "traditional",
            SystemKind::CloudDiagnosis => "cloud-diagnosis",
            SystemKind::InsituDiagnosis => "insitu-diagnosis",
            SystemKind::InsituAi => "in-situ-ai",
        }
    }

    /// Whether the node filters before uploading.
    pub fn diagnosis_at_node(&self) -> bool {
        matches!(self, SystemKind::InsituDiagnosis | SystemKind::InsituAi)
    }

    /// Whether retraining is restricted to valuable data.
    pub fn trains_on_valuable_only(&self) -> bool {
        !matches!(self, SystemKind::Traditional)
    }

    /// Conv layers locked during incremental updates.
    pub fn shared_convs(&self) -> usize {
        if matches!(self, SystemKind::InsituAi) {
            3
        } else {
            0
        }
    }
}

/// Cost/quality report of one update stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage index (0 = bootstrap).
    pub stage: usize,
    /// Stage name (e.g. `"400k"`).
    pub stage_name: String,
    /// Newly acquired images in this stage.
    pub new_images: usize,
    /// Images uploaded to the Cloud.
    pub uploaded_images: usize,
    /// Bytes uploaded.
    pub uploaded_bytes: u64,
    /// Images actually used for retraining.
    pub trained_images: usize,
    /// Multiply-accumulate operations spent retraining.
    pub training_ops: u64,
    /// Uplink transfer time, seconds.
    pub transfer_s: f64,
    /// Cloud training time, seconds.
    pub training_s: f64,
    /// Cloud training energy, joules.
    pub cloud_energy_j: f64,
    /// Radio transfer energy, joules.
    pub transfer_energy_j: f64,
    /// Held-out accuracy after the update, on this stage's environment.
    pub accuracy_after: f32,
}

impl StageReport {
    /// Total model-update latency (transfer + training).
    pub fn update_time_s(&self) -> f64 {
        self.transfer_s + self.training_s
    }

    /// Total modeled energy (Cloud + radio).
    pub fn total_energy_j(&self) -> f64 {
        self.cloud_energy_j + self.transfer_energy_j
    }

    /// Fraction of the stage's data that moved to the Cloud.
    pub fn movement_fraction(&self) -> f64 {
        if self.new_images == 0 {
            0.0
        } else {
            self.uploaded_images as f64 / self.new_images as f64
        }
    }
}

/// Shared simulation parameters.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Incremental-update hyperparameters.
    pub incremental: IncrementalConfig,
    /// Bootstrap (stage 0) hyperparameters.
    pub bootstrap: IncrementalConfig,
    /// Uplink model for transfer time/energy.
    pub uplink: UplinkSpec,
    /// Cloud trainer model for training time/energy.
    pub cloud_gpu: CloudGpuSpec,
    /// Held-out evaluation samples per stage.
    pub eval_per_stage: usize,
    /// RNG seed for model initialization and training order.
    pub seed: u64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            incremental: IncrementalConfig::default(),
            bootstrap: IncrementalConfig { epochs: 12, batch_size: 16, lr: 0.005, threads: None, holdout: None },
            uplink: UplinkSpec::lte(),
            cloud_gpu: CloudGpuSpec::titan_x(),
            eval_per_stage: 200,
            seed: 0xD1A6,
        }
    }
}

/// One simulated IoT system processing a campaign stage by stage.
#[derive(Debug)]
pub struct IotSystem {
    kind: SystemKind,
    model: Sequential,
    cfg: SystemConfig,
    rng: Rng,
    stages_done: usize,
    /// Everything the Cloud has retained for training so far. The
    /// Cloud keeps what was uploaded (the paper's organizations retrain
    /// on the accumulated IoT data), so incremental updates always mix
    /// the new valuable samples with the retained history — which is
    /// also what keeps fine-tuning on hard samples from erasing the
    /// model.
    archive: Option<Dataset>,
}

impl IotSystem {
    /// Creates a system with a freshly initialized model. All four
    /// kinds construct *identical* initial models for a given seed, so
    /// comparisons isolate the organizational differences.
    ///
    /// # Errors
    ///
    /// Returns an error only on internal geometry bugs.
    pub fn new(kind: SystemKind, num_classes: usize, cfg: SystemConfig) -> Result<IotSystem> {
        let mut model_rng = Rng::seed_from(cfg.seed);
        let model = mini_alexnet(num_classes, &mut model_rng)?;
        let rng = Rng::seed_from(cfg.seed ^ 0x5EED);
        Ok(IotSystem { kind, model, cfg, rng, stages_done: 0, archive: None })
    }

    /// The system's kind.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// The current model (for accuracy probes).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Selects the mispredicted ("valuable") samples under the current
    /// model.
    fn valuable(&mut self, data: &Dataset) -> Result<Vec<usize>> {
        let mut out = Vec::new();
        let idx: Vec<usize> = (0..data.len()).collect();
        for chunk in idx.chunks(64) {
            let sub = data.subset(chunk)?;
            let logits = self.model.predict(sub.images())?;
            let preds = predictions(&logits)?;
            for (j, (&p, &l)) in preds.iter().zip(sub.labels()).enumerate() {
                if p != l {
                    out.push(chunk[j]);
                }
            }
        }
        Ok(out)
    }

    /// Processes one campaign stage: uploads per the system's
    /// organization, retrains, and reports costs + resulting accuracy.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn process_stage(
        &mut self,
        stage_name: &str,
        data: &Dataset,
        eval: &Dataset,
    ) -> Result<StageReport> {
        let stage = self.stages_done;
        let bootstrap = stage == 0;
        let n = data.len();

        // --- Upload decision -------------------------------------------------
        let (uploaded_images, train_indices): (usize, Vec<usize>) = if bootstrap {
            (n, (0..n).collect())
        } else {
            match self.kind {
                SystemKind::Traditional => (n, (0..n).collect()),
                SystemKind::CloudDiagnosis => {
                    // Everything moves; the Cloud filters for training.
                    let v = self.valuable(data)?;
                    (n, v)
                }
                SystemKind::InsituDiagnosis | SystemKind::InsituAi => {
                    // The node filters; only valuable data moves.
                    let v = self.valuable(data)?;
                    (v.len(), v)
                }
            }
        };
        let uploaded_bytes = uploaded_images as u64 * IMAGE_BYTES;
        let new_training = data.subset(&train_indices)?;

        // --- Retraining -------------------------------------------------------
        // The Cloud retains its training data: every update runs over
        // the retained history plus the newly selected samples. The
        // all-data organization therefore retrains over everything it
        // ever received (the source of its ballooning update times in
        // the paper's Fig. 25); the diagnosis-based ones only over the
        // accumulated valuable data.
        let train_set = match self.archive.take() {
            Some(archive) => archive.concat(&new_training)?,
            None => new_training,
        };
        // Weight sharing: In-situ AI locks conv1-3 for incremental
        // updates (the bootstrap trains everything, like the others).
        if bootstrap {
            self.model.freeze_first_convs(0)?;
        } else {
            self.model.freeze_first_convs(self.kind.shared_convs())?;
        }
        let inc = if bootstrap { &self.cfg.bootstrap } else { &self.cfg.incremental };
        let report = if train_set.is_empty() {
            None
        } else {
            Some(fine_tune(&mut self.model, &train_set, inc, &mut self.rng)?)
        };
        let training_ops = report.as_ref().map_or(0, |r| r.total_ops);
        let trained_images = train_set.len();
        self.archive = Some(train_set);

        // --- Accounting -------------------------------------------------------
        let transfer_s = self.cfg.uplink.transfer_time(uploaded_bytes);
        let training_s = self.cfg.cloud_gpu.training_time(training_ops);
        let cloud_energy_j = self.cfg.cloud_gpu.training_energy(training_ops);
        let transfer_energy_j = self.cfg.uplink.transfer_energy(uploaded_bytes);
        let accuracy_after = evaluate(
            &mut self.model,
            LabeledBatch::new(eval.images(), eval.labels())?,
            64,
        )?;
        self.stages_done += 1;
        Ok(StageReport {
            stage,
            stage_name: stage_name.to_string(),
            new_images: n,
            uploaded_images,
            uploaded_bytes,
            trained_images,
            training_ops,
            transfer_s,
            training_s,
            cloud_energy_j,
            transfer_energy_j,
            accuracy_after,
        })
    }
}

/// Runs a full campaign through one system organization.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn run_campaign(
    kind: SystemKind,
    campaign: &Campaign,
    cfg: SystemConfig,
) -> Result<Vec<StageReport>> {
    let mut system = IotSystem::new(kind, campaign.num_classes(), cfg.clone())?;
    let mut reports = Vec::with_capacity(campaign.stages().len());
    for (i, stage) in campaign.stages().iter().enumerate() {
        let data = campaign.stage_data(i)?;
        let eval = campaign.eval_data(i, cfg.eval_per_stage)?;
        reports.push(system.process_stage(&stage.name, &data, &eval)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SystemConfig {
        SystemConfig {
            incremental: IncrementalConfig { epochs: 1, batch_size: 8, lr: 0.01, threads: None, holdout: None },
            bootstrap: IncrementalConfig { epochs: 2, batch_size: 8, lr: 0.02, threads: None, holdout: None },
            eval_per_stage: 24,
            ..Default::default()
        }
    }

    fn tiny_campaign() -> Campaign {
        Campaign::custom(
            vec![
                insitu_data::Stage {
                    name: "s0".into(),
                    new_images: 40,
                    condition: insitu_data::Condition::ideal(),
                },
                insitu_data::Stage {
                    name: "s1".into(),
                    new_images: 30,
                    condition: insitu_data::Condition::with_severity(0.5).unwrap(),
                },
            ],
            4,
            99,
        )
        .unwrap()
    }

    #[test]
    fn kind_properties() {
        assert_eq!(SystemKind::all().map(|k| k.letter()), ['a', 'b', 'c', 'd']);
        assert!(!SystemKind::Traditional.trains_on_valuable_only());
        assert!(SystemKind::CloudDiagnosis.trains_on_valuable_only());
        assert!(!SystemKind::CloudDiagnosis.diagnosis_at_node());
        assert!(SystemKind::InsituAi.diagnosis_at_node());
        assert_eq!(SystemKind::InsituAi.shared_convs(), 3);
        assert_eq!(SystemKind::InsituDiagnosis.shared_convs(), 0);
    }

    #[test]
    fn bootstrap_uploads_everything_for_all_kinds() {
        let campaign = tiny_campaign();
        for kind in SystemKind::all() {
            let reports = run_campaign(kind, &campaign, tiny_cfg()).unwrap();
            assert_eq!(reports[0].uploaded_images, 40, "{}", kind.name());
            assert_eq!(reports[0].trained_images, 40);
        }
    }

    #[test]
    fn insitu_kinds_upload_less_after_bootstrap() {
        let campaign = tiny_campaign();
        let a = run_campaign(SystemKind::Traditional, &campaign, tiny_cfg()).unwrap();
        let d = run_campaign(SystemKind::InsituAi, &campaign, tiny_cfg()).unwrap();
        assert_eq!(a[1].uploaded_images, 30);
        assert!(d[1].uploaded_images < 30, "d uploaded {}", d[1].uploaded_images);
        assert!(d[1].uploaded_bytes < a[1].uploaded_bytes);
        assert!(d[1].update_time_s() < a[1].update_time_s());
    }

    #[test]
    fn cloud_diagnosis_moves_all_but_trains_less() {
        let campaign = tiny_campaign();
        let b = run_campaign(SystemKind::CloudDiagnosis, &campaign, tiny_cfg()).unwrap();
        assert_eq!(b[1].uploaded_images, 30); // all data moved
        // Training covers the retained archive (40) plus at most the
        // 30 new images' valuable subset.
        assert!(b[1].trained_images <= 70);
        assert!(b[1].trained_images >= 40);
    }

    #[test]
    fn insitu_ai_trains_fewer_ops_than_insitu_diagnosis() {
        // Same valuable set, but conv1-3 locked → fewer ops per sample.
        let campaign = tiny_campaign();
        let c = run_campaign(SystemKind::InsituDiagnosis, &campaign, tiny_cfg()).unwrap();
        let d = run_campaign(SystemKind::InsituAi, &campaign, tiny_cfg()).unwrap();
        // Identical initial models → identical valuable sets at stage 1.
        assert_eq!(c[1].uploaded_images, d[1].uploaded_images);
        if d[1].trained_images > 0 {
            let ops_per_img_c = c[1].training_ops as f64 / c[1].trained_images as f64;
            let ops_per_img_d = d[1].training_ops as f64 / d[1].trained_images as f64;
            assert!(ops_per_img_d < ops_per_img_c);
        }
    }

    #[test]
    fn reports_account_consistently() {
        let campaign = tiny_campaign();
        let r = run_campaign(SystemKind::InsituAi, &campaign, tiny_cfg()).unwrap();
        for s in &r {
            assert_eq!(s.uploaded_bytes, s.uploaded_images as u64 * IMAGE_BYTES);
            assert!((s.update_time_s() - (s.transfer_s + s.training_s)).abs() < 1e-12);
            assert!(s.total_energy_j() >= 0.0);
            assert!((0.0..=1.0).contains(&s.accuracy_after));
            assert!(s.movement_fraction() <= 1.0);
        }
    }
}
