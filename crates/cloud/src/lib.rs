//! # insitu-cloud
//!
//! The Cloud side of In-situ AI: unsupervised jigsaw pre-training on
//! big raw IoT data, transfer learning that builds the inference
//! network from the shared trunk, incremental fine-tuning on uploaded
//! valuable data, and the four end-to-end IoT system organizations of
//! the paper's Fig. 24 — simulated on identical streams so that data
//! movement, update time and energy can be compared head-to-head
//! (Table II / Fig. 25).
//!
//! ## Example
//!
//! ```no_run
//! use insitu_cloud::{run_campaign, SystemConfig, SystemKind};
//! use insitu_data::Campaign;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let campaign = Campaign::paper_schedule(1, 6, 42)?;
//! let ours = run_campaign(SystemKind::InsituAi, &campaign, SystemConfig::default())?;
//! let base = run_campaign(SystemKind::Traditional, &campaign, SystemConfig::default())?;
//! assert!(ours[4].uploaded_bytes < base[4].uploaded_bytes);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
mod deploy;
mod endpoint;
mod error;
mod incremental;
mod pretrain;
mod systems;

pub use cache::{sample_ids, ActivationCache, CacheStats, DEFAULT_CACHE_BUDGET};
pub use deploy::{build_from_scratch, build_inference, DeployConfig};
pub use endpoint::Cloud;
pub use error::CloudError;
pub use incremental::{
    fine_tune, fine_tune_from_activations, split_holdout, IncrementalConfig,
};
pub use pretrain::{continue_pretrain, pretrain, Pretrained, PretrainConfig};
pub use systems::{run_campaign, IotSystem, StageReport, SystemConfig, SystemKind};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CloudError>;
