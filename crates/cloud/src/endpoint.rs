//! The Cloud endpoint an [`InsituNode`](insitu_core::InsituNode)
//! talks to: holds the master copies of both models and serves
//! incremental updates.

use crate::incremental::{fine_tune, IncrementalConfig};
use crate::pretrain::{continue_pretrain, Pretrained};
use insitu_core::{CloudEndpoint, ModelUpdate};
use insitu_data::Dataset;
use insitu_nn::serialize::state_dict;
use insitu_nn::Sequential;
use insitu_tensor::Rng;
use insitu_telemetry as telemetry;

/// The Cloud side of an In-situ AI deployment.
#[derive(Debug)]
pub struct Cloud {
    inference: Sequential,
    pretrained: Pretrained,
    incremental: IncrementalConfig,
    /// Valuable data retained from previous updates; every incremental
    /// update trains over the retained history plus the new upload, so
    /// small hard uploads cannot erase previously learned behavior.
    archive: Option<Dataset>,
    /// Refresh the unsupervised network every `jigsaw_refresh_every`
    /// updates (0 = never).
    jigsaw_refresh_every: u32,
    version: u32,
    total_training_ops: u64,
    rng: Rng,
}

impl Cloud {
    /// Creates the Cloud from the deployed master models.
    pub fn new(
        inference: Sequential,
        pretrained: Pretrained,
        incremental: IncrementalConfig,
        seed: u64,
    ) -> Cloud {
        Cloud {
            inference,
            pretrained,
            incremental,
            archive: None,
            jigsaw_refresh_every: 0,
            version: 0,
            total_training_ops: 0,
            rng: Rng::seed_from(seed),
        }
    }

    /// Enables periodic unsupervised refreshes of the diagnosis model.
    pub fn with_jigsaw_refresh(mut self, every: u32) -> Cloud {
        self.jigsaw_refresh_every = every;
        self
    }

    /// Current model version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Cumulative training ops spent by this Cloud.
    pub fn total_training_ops(&self) -> u64 {
        self.total_training_ops
    }

    /// The master inference model.
    pub fn inference_mut(&mut self) -> &mut Sequential {
        &mut self.inference
    }
}

impl CloudEndpoint for Cloud {
    fn incremental_update(&mut self, uploaded: &Dataset) -> insitu_core::Result<ModelUpdate> {
        let _t = telemetry::span_with("cloud.update_cycle", || {
            format!("v{} +{} uploaded", self.version, uploaded.len())
        });
        // The latency of the cycle itself lands in the span-fed
        // histogram on close; the ingest volume is recorded explicitly
        // (the uplink's receive side of the node's `node.upload_bytes`).
        telemetry::hist_record(
            "cloud.received_bytes",
            "",
            uploaded.len() as u64 * insitu_core::IMAGE_BYTES,
        );
        let mut ops = 0u64;
        let train_set = match self.archive.take() {
            Some(archive) if !uploaded.is_empty() => {
                Some(archive.concat(uploaded).map_err(|e| to_core(e.into()))?)
            }
            Some(archive) => Some(archive),
            None if !uploaded.is_empty() => Some(uploaded.clone()),
            None => None,
        };
        if let Some(train_set) = &train_set {
            if !train_set.is_empty() {
                let report =
                    fine_tune(&mut self.inference, train_set, &self.incremental, &mut self.rng)
                        .map_err(to_core)?;
                ops += report.total_ops;
            }
        }
        self.archive = train_set;
        self.version += 1;
        let jigsaw_params = if self.jigsaw_refresh_every > 0
            && self.version.is_multiple_of(self.jigsaw_refresh_every)
            && !uploaded.is_empty()
        {
            ops += continue_pretrain(
                &mut self.pretrained,
                uploaded,
                self.incremental.epochs,
                self.incremental.batch_size,
                self.incremental.lr,
                &mut self.rng,
            )
            .map_err(to_core)?;
            Some(state_dict(&mut self.pretrained.jigsaw))
        } else {
            None
        };
        self.total_training_ops += ops;
        telemetry::hist_record("cloud.training_ops", "", ops);
        Ok(ModelUpdate {
            version: self.version,
            inference_params: state_dict(&mut self.inference),
            jigsaw_params,
            training_ops: ops,
        })
    }
}

fn to_core(e: crate::CloudError) -> insitu_core::CoreError {
    match e {
        crate::CloudError::Nn(n) => insitu_core::CoreError::Nn(n),
        crate::CloudError::Data(d) => insitu_core::CoreError::Data(d),
        crate::CloudError::Core(c) => c,
        crate::CloudError::BadConfig { reason } => insitu_core::CoreError::BadConfig { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainConfig};
    use insitu_data::Condition;
    use insitu_nn::models::mini_alexnet;

    fn cloud() -> Cloud {
        let mut rng = Rng::seed_from(51);
        let raw = Dataset::generate(30, 4, &Condition::ideal(), &mut rng).unwrap();
        let pre = pretrain(
            &raw,
            &PretrainConfig { permutations: 4, epochs: 1, batch_size: 8, lr: 0.02, threads: None },
            &mut rng,
        )
        .unwrap();
        let inference = mini_alexnet(4, &mut rng).unwrap();
        Cloud::new(
            inference,
            pre,
            IncrementalConfig { epochs: 1, batch_size: 8, lr: 0.01, threads: None },
            5,
        )
    }

    #[test]
    fn update_bumps_version_and_returns_weights() {
        let mut c = cloud();
        let mut rng = Rng::seed_from(52);
        let data = Dataset::generate(12, 4, &Condition::in_situ(), &mut rng).unwrap();
        let u = c.incremental_update(&data).unwrap();
        assert_eq!(u.version, 1);
        assert!(u.training_ops > 0);
        assert!(!u.inference_params.is_empty());
        assert!(u.jigsaw_params.is_none());
        assert_eq!(c.total_training_ops(), u.training_ops);
    }

    #[test]
    fn empty_upload_is_a_cheap_noop_update() {
        let mut c = cloud();
        let empty = Dataset::generate(
            0,
            4,
            &Condition::ideal(),
            &mut Rng::seed_from(1),
        )
        .unwrap();
        let u = c.incremental_update(&empty).unwrap();
        assert_eq!(u.training_ops, 0);
        assert_eq!(u.version, 1);
    }

    #[test]
    fn jigsaw_refresh_fires_on_schedule() {
        let mut c = cloud().with_jigsaw_refresh(2);
        let mut rng = Rng::seed_from(53);
        let data = Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap();
        let u1 = c.incremental_update(&data).unwrap();
        assert!(u1.jigsaw_params.is_none()); // version 1
        let u2 = c.incremental_update(&data).unwrap();
        assert!(u2.jigsaw_params.is_some()); // version 2
    }
}
