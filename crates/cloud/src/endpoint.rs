//! The Cloud endpoint an [`InsituNode`](insitu_core::InsituNode)
//! talks to: holds the master copies of both models and serves
//! incremental updates.

use crate::cache::{sample_ids, ActivationCache, CacheStats, DEFAULT_CACHE_BUDGET};
use crate::incremental::{
    fine_tune, fine_tune_from_activations, split_holdout, IncrementalConfig,
};
use crate::pretrain::{continue_pretrain, Pretrained};
use insitu_core::{CloudEndpoint, ModelUpdate};
use insitu_data::Dataset;
use insitu_nn::serialize::state_dict;
use insitu_nn::{LabeledBatch, Sequential, TrainReport};
use insitu_tensor::Rng;
use insitu_telemetry as telemetry;
use std::collections::HashSet;

/// The Cloud side of an In-situ AI deployment.
#[derive(Debug)]
pub struct Cloud {
    inference: Sequential,
    pretrained: Pretrained,
    incremental: IncrementalConfig,
    /// Valuable data retained from previous updates; every incremental
    /// update trains over the retained history plus the new upload, so
    /// small hard uploads cannot erase previously learned behavior.
    /// Deduplicated by content id — identical re-uploads never grow it.
    archive: Option<Dataset>,
    /// Content ids of the archived samples, in archive order.
    archive_ids: Vec<u64>,
    /// Frozen-prefix activation cache; `None` recomputes every epoch.
    /// Results are bitwise identical either way.
    cache: Option<ActivationCache>,
    /// Refresh the unsupervised network every `jigsaw_refresh_every`
    /// updates (0 = never).
    jigsaw_refresh_every: u32,
    version: u32,
    total_training_ops: u64,
    rng: Rng,
}

impl Cloud {
    /// Creates the Cloud from the deployed master models. The frozen-
    /// prefix activation cache is on by default
    /// ([`DEFAULT_CACHE_BUDGET`]); see
    /// [`without_activation_cache`](Cloud::without_activation_cache).
    pub fn new(
        inference: Sequential,
        pretrained: Pretrained,
        incremental: IncrementalConfig,
        seed: u64,
    ) -> Cloud {
        Cloud {
            inference,
            pretrained,
            incremental,
            archive: None,
            archive_ids: Vec::new(),
            cache: Some(ActivationCache::new(DEFAULT_CACHE_BUDGET)),
            jigsaw_refresh_every: 0,
            version: 0,
            total_training_ops: 0,
            rng: Rng::seed_from(seed),
        }
    }

    /// Enables periodic unsupervised refreshes of the diagnosis model.
    pub fn with_jigsaw_refresh(mut self, every: u32) -> Cloud {
        self.jigsaw_refresh_every = every;
        self
    }

    /// Replaces the activation cache with one bounded to
    /// `budget_bytes` (0 keeps the cached code path but stores
    /// nothing).
    pub fn with_activation_cache(mut self, budget_bytes: usize) -> Cloud {
        self.cache = Some(ActivationCache::new(budget_bytes));
        self
    }

    /// Disables activation caching entirely: every fine-tune recomputes
    /// the frozen prefix per epoch, exactly as before the cache
    /// existed.
    pub fn without_activation_cache(mut self) -> Cloud {
        self.cache = None;
        self
    }

    /// Current model version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Cumulative training ops spent by this Cloud.
    pub fn total_training_ops(&self) -> u64 {
        self.total_training_ops
    }

    /// Lifetime activation-cache statistics (`None` when caching is
    /// disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(ActivationCache::stats)
    }

    /// Retained-archive size in samples.
    pub fn archive_len(&self) -> usize {
        self.archive.as_ref().map_or(0, Dataset::len)
    }

    /// The master inference model.
    pub fn inference_mut(&mut self) -> &mut Sequential {
        &mut self.inference
    }

    /// Runs one fine-tune over `train_set`, through the activation
    /// cache when one is configured. Both paths share the training
    /// loop, RNG trajectory and cost accounting, so the resulting
    /// weights and report are bitwise identical.
    fn run_fine_tune(&mut self, train_set: &Dataset) -> crate::Result<TrainReport> {
        let (train_part, hold_part) = split_holdout(train_set, self.incremental.holdout)?;
        match &mut self.cache {
            Some(cache) if self.inference.first_unfrozen() > 0 => {
                let acts = cache.prefix_activations(
                    &mut self.inference,
                    &train_part,
                    &sample_ids(&train_part),
                )?;
                let eval_acts = match &hold_part {
                    Some(h) => Some(cache.prefix_activations(
                        &mut self.inference,
                        h,
                        &sample_ids(h),
                    )?),
                    None => None,
                };
                let eval = match (&eval_acts, &hold_part) {
                    (Some(a), Some(h)) => Some(LabeledBatch::new(a, h.labels())?),
                    _ => None,
                };
                fine_tune_from_activations(
                    &mut self.inference,
                    LabeledBatch::new(&acts, train_part.labels())?,
                    eval,
                    &self.incremental,
                    &mut self.rng,
                )
            }
            _ => fine_tune(&mut self.inference, train_set, &self.incremental, &mut self.rng),
        }
    }
}

impl CloudEndpoint for Cloud {
    fn incremental_update(&mut self, uploaded: &Dataset) -> insitu_core::Result<ModelUpdate> {
        let _t = telemetry::span_with("cloud.update_cycle", || {
            format!("v{} +{} uploaded", self.version, uploaded.len())
        });
        // The latency of the cycle itself lands in the span-fed
        // histogram on close; the ingest volume is recorded explicitly
        // (the uplink's receive side of the node's `node.upload_bytes`).
        telemetry::hist_record(
            "cloud.received_bytes",
            "",
            uploaded.len() as u64 * insitu_core::IMAGE_BYTES,
        );
        let mut ops = 0u64;
        // Admit only genuinely new samples into the retained archive:
        // dedup by content id against the archive and within the upload
        // itself, so identical re-uploads never grow the archive (and
        // cache keys stay stable across cycles).
        let mut seen: HashSet<u64> = self.archive_ids.iter().copied().collect();
        let mut fresh_indices = Vec::new();
        let uploaded_ids = sample_ids(uploaded);
        for (i, &id) in uploaded_ids.iter().enumerate() {
            if seen.insert(id) {
                fresh_indices.push(i);
                self.archive_ids.push(id);
            }
        }
        let train_set = match (self.archive.take(), fresh_indices.len()) {
            (Some(archive), 0) => Some(archive),
            (Some(archive), _) => {
                let fresh = uploaded.subset(&fresh_indices).map_err(|e| to_core(e.into()))?;
                Some(archive.concat(&fresh).map_err(|e| to_core(e.into()))?)
            }
            (None, 0) => None,
            (None, _) => Some(uploaded.subset(&fresh_indices).map_err(|e| to_core(e.into()))?),
        };
        let mut eval_accuracy = None;
        if let Some(train_set) = &train_set {
            if !train_set.is_empty() {
                let report = self.run_fine_tune(train_set).map_err(to_core)?;
                ops += report.total_ops;
                eval_accuracy = report.final_eval_accuracy();
            }
        }
        self.archive = train_set;
        self.version += 1;
        let jigsaw_params = if self.jigsaw_refresh_every > 0
            && self.version.is_multiple_of(self.jigsaw_refresh_every)
            && !uploaded.is_empty()
        {
            ops += continue_pretrain(
                &mut self.pretrained,
                uploaded,
                self.incremental.epochs,
                self.incremental.batch_size,
                self.incremental.lr,
                &mut self.rng,
            )
            .map_err(to_core)?;
            Some(state_dict(&mut self.pretrained.jigsaw))
        } else {
            None
        };
        self.total_training_ops += ops;
        telemetry::hist_record("cloud.training_ops", "", ops);
        Ok(ModelUpdate {
            version: self.version,
            inference_params: state_dict(&mut self.inference),
            jigsaw_params,
            training_ops: ops,
            eval_accuracy,
        })
    }
}

fn to_core(e: crate::CloudError) -> insitu_core::CoreError {
    match e {
        crate::CloudError::Nn(n) => insitu_core::CoreError::Nn(n),
        crate::CloudError::Data(d) => insitu_core::CoreError::Data(d),
        crate::CloudError::Core(c) => c,
        crate::CloudError::BadConfig { reason } => insitu_core::CoreError::BadConfig { reason },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{pretrain, PretrainConfig};
    use insitu_data::Condition;
    use insitu_nn::models::mini_alexnet;

    fn cloud() -> Cloud {
        let mut rng = Rng::seed_from(51);
        let raw = Dataset::generate(30, 4, &Condition::ideal(), &mut rng).unwrap();
        let pre = pretrain(
            &raw,
            &PretrainConfig { permutations: 4, epochs: 1, batch_size: 8, lr: 0.02, threads: None },
            &mut rng,
        )
        .unwrap();
        let inference = mini_alexnet(4, &mut rng).unwrap();
        Cloud::new(
            inference,
            pre,
            IncrementalConfig { epochs: 1, batch_size: 8, lr: 0.01, threads: None, holdout: None },
            5,
        )
    }

    #[test]
    fn update_bumps_version_and_returns_weights() {
        let mut c = cloud();
        let mut rng = Rng::seed_from(52);
        let data = Dataset::generate(12, 4, &Condition::in_situ(), &mut rng).unwrap();
        let u = c.incremental_update(&data).unwrap();
        assert_eq!(u.version, 1);
        assert!(u.training_ops > 0);
        assert!(!u.inference_params.is_empty());
        assert!(u.jigsaw_params.is_none());
        assert_eq!(c.total_training_ops(), u.training_ops);
    }

    #[test]
    fn empty_upload_is_a_cheap_noop_update() {
        let mut c = cloud();
        let empty = Dataset::generate(
            0,
            4,
            &Condition::ideal(),
            &mut Rng::seed_from(1),
        )
        .unwrap();
        let u = c.incremental_update(&empty).unwrap();
        assert_eq!(u.training_ops, 0);
        assert_eq!(u.version, 1);
    }

    #[test]
    fn holdout_reports_post_update_accuracy() {
        let mut c = cloud();
        c.incremental.holdout = Some(4);
        let mut rng = Rng::seed_from(54);
        let data = Dataset::generate(12, 4, &Condition::in_situ(), &mut rng).unwrap();
        let u = c.incremental_update(&data).unwrap();
        let acc = u.eval_accuracy.expect("holdout should produce accuracy");
        assert!((0.0..=1.0).contains(&acc));
        // Without a holdout no accuracy is reported.
        let mut plain = cloud();
        let u2 = plain.incremental_update(&data).unwrap();
        assert!(u2.eval_accuracy.is_none());
    }

    #[test]
    fn archive_reuse_hits_activation_cache_across_cycles() {
        let mut c = cloud();
        c.inference_mut().freeze_first_convs(3).unwrap();
        let mut rng = Rng::seed_from(55);
        let first = Dataset::generate(6, 4, &Condition::in_situ(), &mut rng).unwrap();
        c.incremental_update(&first).unwrap();
        let s1 = c.cache_stats().unwrap();
        // Cold first cycle: every sample is computed (once, not once
        // per epoch — the activations are shared across epochs).
        assert_eq!((s1.hits, s1.misses), (0, 6));
        let second = Dataset::generate(4, 4, &Condition::in_situ(), &mut rng).unwrap();
        c.incremental_update(&second).unwrap();
        let s2 = c.cache_stats().unwrap();
        // Second cycle recomputes only the new upload; the archived
        // six are served from the cache.
        assert_eq!((s2.hits, s2.misses), (6, 10));
        assert!(s2.resident_bytes > 0);
        assert!(s2.hit_rate() > 0.3);
    }

    #[test]
    fn jigsaw_refresh_fires_on_schedule() {
        let mut c = cloud().with_jigsaw_refresh(2);
        let mut rng = Rng::seed_from(53);
        let data = Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap();
        let u1 = c.incremental_update(&data).unwrap();
        assert!(u1.jigsaw_params.is_none()); // version 1
        let u2 = c.incremental_update(&data).unwrap();
        assert!(u2.jigsaw_params.is_some()); // version 2
    }
}
