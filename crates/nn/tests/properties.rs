//! Property-based tests for the NN framework: randomized gradient
//! checks and structural invariants.

use insitu_nn::layers::{Conv2d, Dropout, Flatten, Linear, MaxPool2d, Relu};
use insitu_nn::{softmax, softmax_cross_entropy, Layer, Mode, Network, Sequential};
use insitu_tensor::{Rng, Tensor};
use proptest::prelude::*;

/// Central-difference gradient check of `layer` at a random input.
fn grad_check(layer: &mut dyn Layer, input: &Tensor, tolerance: f32) -> Result<(), String> {
    let out = layer.forward(input, Mode::Train).map_err(|e| e.to_string())?;
    let dout = Tensor::filled(out.shape().clone(), 1.0);
    let dx = layer.backward(&dout).map_err(|e| e.to_string())?;
    let eps = 5e-3f32;
    // Check a handful of coordinates.
    let stride = (input.len() / 6).max(1);
    for idx in (0..input.len()).step_by(stride) {
        let mut plus = input.clone();
        plus.as_mut_slice()[idx] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[idx] -= eps;
        let f_plus = layer.forward(&plus, Mode::Eval).map_err(|e| e.to_string())?.sum();
        let f_minus = layer.forward(&minus, Mode::Eval).map_err(|e| e.to_string())?.sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        let analytic = dx.as_slice()[idx];
        if (numeric - analytic).abs() > tolerance * (1.0 + numeric.abs()) {
            return Err(format!("coord {idx}: numeric {numeric} vs analytic {analytic}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_gradients_correct(
        in_ch in 1usize..3, out_ch in 1usize..4, size in 3usize..7,
        kernel in 1usize..4, seed in 0u64..1000
    ) {
        prop_assume!(kernel <= size);
        let mut rng = Rng::seed_from(seed);
        let mut layer =
            Conv2d::new("c", in_ch, size, size, out_ch, kernel, 1, kernel / 2, &mut rng)
                .unwrap();
        let x = Tensor::rand_uniform([1, in_ch, size, size], -1.0, 1.0, &mut rng);
        prop_assert!(grad_check(&mut layer, &x, 0.05).is_ok());
    }

    #[test]
    fn linear_gradients_correct(
        inputs in 1usize..10, outputs in 1usize..8, batch in 1usize..4, seed in 0u64..1000
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut layer = Linear::new("fc", inputs, outputs, &mut rng);
        let x = Tensor::rand_uniform([batch, inputs], -1.0, 1.0, &mut rng);
        prop_assert!(grad_check(&mut layer, &x, 0.03).is_ok());
    }

    #[test]
    fn relu_flatten_shape_preserving(
        dims in proptest::collection::vec(1usize..5, 2..4), seed in 0u64..500
    ) {
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::rand_uniform(dims.as_slice(), -1.0, 1.0, &mut rng);
        let mut relu = Relu::new("r");
        let y = relu.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(y.dims(), x.dims());
        prop_assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let mut flat = Flatten::new("f");
        let z = flat.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(z.len(), x.len());
        prop_assert_eq!(z.dims()[0], x.dims()[0]);
    }

    #[test]
    fn softmax_is_a_distribution(rows in 1usize..6, cols in 1usize..9, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let logits = Tensor::rand_uniform([rows, cols], -20.0, 20.0, &mut rng);
        let p = softmax(&logits).unwrap();
        for row in p.as_slice().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_sums_to_zero(
        rows in 1usize..5, cols in 2usize..6, seed in 0u64..500
    ) {
        let mut rng = Rng::seed_from(seed);
        let logits = Tensor::rand_uniform([rows, cols], -5.0, 5.0, &mut rng);
        let labels: Vec<usize> = (0..rows).map(|_| rng.below(cols)).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        // Each row's gradient sums to zero (softmax minus one-hot).
        for row in grad.as_slice().chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_eval_identity_train_unbiased(p in 0.0f32..0.9, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let mut layer = Dropout::new("d", p, &mut rng);
        let x = Tensor::filled([4096], 1.0);
        let eval = layer.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(eval, x.clone());
        let train = layer.forward(&x, Mode::Train).unwrap();
        // Empirical mean stays near 1 (inverted dropout).
        prop_assert!((train.mean() - 1.0).abs() < 0.2);
    }

    #[test]
    fn pooling_never_increases_max(size in 2usize..8, seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let mut layer = MaxPool2d::new("p", 1, size, size, 2.min(size), 2).unwrap();
        let x = Tensor::rand_uniform([1, 1, size, size], -1.0, 1.0, &mut rng);
        let y = layer.forward(&x, Mode::Eval).unwrap();
        prop_assert!(y.max().unwrap() <= x.max().unwrap() + 1e-7);
        prop_assert!(y.len() <= x.len());
    }

    #[test]
    fn freezing_preserves_frozen_weights_under_training(seed in 0u64..200) {
        let mut rng = Rng::seed_from(seed);
        let mut net = Sequential::new("n");
        net.push(Conv2d::new("c1", 1, 6, 6, 2, 3, 1, 1, &mut rng).unwrap());
        net.push(Relu::new("r"));
        net.push(Conv2d::new("c2", 2, 6, 6, 2, 3, 1, 1, &mut rng).unwrap());
        net.push(Flatten::new("f"));
        net.push(Linear::new("fc", 72, 2, &mut rng));
        net.freeze_first_convs(1).unwrap();
        let frozen_before: Vec<Tensor> = {
            let mut v = Vec::new();
            net.visit_all(&mut |p| v.push(p.clone()));
            v
        };
        // A few optimizer steps.
        let mut opt = insitu_nn::Sgd::new(0.1).momentum(0.9);
        let x = Tensor::rand_uniform([2, 1, 6, 6], -1.0, 1.0, &mut rng);
        for _ in 0..3 {
            net.zero_grads();
            let y = net.forward(&x, Mode::Train).unwrap();
            let (_, d) = softmax_cross_entropy(&y, &[0, 1]).unwrap();
            net.backward(&d).unwrap();
            opt.step(&mut net);
        }
        let after: Vec<Tensor> = {
            let mut v = Vec::new();
            net.visit_all(&mut |p| v.push(p.clone()));
            v
        };
        // First two tensors (conv1 weight+bias) unchanged; the last two
        // (fc weight+bias) must have moved.
        prop_assert_eq!(&after[0], &frozen_before[0]);
        prop_assert_eq!(&after[1], &frozen_before[1]);
        let moved = after[4] != frozen_before[4] || after[5] != frozen_before[5];
        prop_assert!(moved);
    }

    #[test]
    fn clone_is_deep(seed in 0u64..200) {
        let mut rng = Rng::seed_from(seed);
        let mut a = Sequential::new("a");
        a.push(Linear::new("fc", 4, 3, &mut rng));
        let mut b = a.clone();
        // Train only the clone; the original must not move.
        let x = Tensor::rand_uniform([2, 4], -1.0, 1.0, &mut rng);
        let mut opt = insitu_nn::Sgd::new(0.5);
        b.zero_grads();
        let y = b.forward(&x, Mode::Train).unwrap();
        let (_, d) = softmax_cross_entropy(&y, &[0, 1]).unwrap();
        b.backward(&d).unwrap();
        opt.step(&mut b);
        let mut pa = Vec::new();
        a.visit_all(&mut |p| pa.push(p.clone()));
        let mut pb = Vec::new();
        b.visit_all(&mut |p| pb.push(p.clone()));
        prop_assert_ne!(pa, pb);
    }
}
