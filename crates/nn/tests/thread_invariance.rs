//! End-to-end determinism of the parallel kernels: a full seeded
//! training run must produce bitwise-identical weights, losses and
//! logits no matter how many kernel threads are configured. This is
//! the contract that lets `INSITU_THREADS=1` exactly reproduce any
//! multi-threaded run.

use insitu_nn::models::mini_alexnet;
use insitu_nn::{evaluate, LabeledBatch, Mode, Network, TrainConfig};
use insitu_tensor::{Rng, Tensor};

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Trains a freshly seeded Mini-AlexNet and returns (per-epoch loss
/// bits, post-training logits bits on a held-out probe, final held-out
/// accuracy bits).
fn train_once(threads: usize) -> (Vec<u32>, Vec<u32>, u32) {
    let mut rng = Rng::seed_from(404);
    let mut net = mini_alexnet(4, &mut rng).unwrap();
    let n = 16;
    let x = Tensor::rand_uniform([n, 3, 36, 36], -1.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 8,
        lr: 0.01,
        threads: Some(threads),
        ..Default::default()
    };
    let report =
        insitu_nn::train(&mut net, LabeledBatch::new(&x, &labels).unwrap(), None, &cfg, &mut rng)
            .unwrap();
    let probe = Tensor::rand_uniform([8, 3, 36, 36], -1.0, 1.0, &mut rng);
    let probe_labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let logits = net.forward(&probe, Mode::Eval).unwrap();
    let accuracy =
        evaluate(&mut net, LabeledBatch::new(&probe, &probe_labels).unwrap(), 4).unwrap();
    let loss_bits = report.history.iter().map(|e| e.loss.to_bits()).collect();
    (loss_bits, bits(&logits), accuracy.to_bits())
}

#[test]
fn training_is_bitwise_invariant_to_thread_count() {
    let (ref_loss, ref_logits, ref_acc) = train_once(1);
    assert!(ref_loss.iter().all(|&b| f32::from_bits(b).is_finite()));
    for threads in [2usize, 4] {
        let (loss, logits, acc) = train_once(threads);
        assert_eq!(loss, ref_loss, "loss diverged at {threads} threads");
        assert_eq!(logits, ref_logits, "logits diverged at {threads} threads");
        assert_eq!(acc, ref_acc, "final accuracy diverged at {threads} threads");
    }
}
