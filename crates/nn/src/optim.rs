//! Stochastic gradient descent with momentum and weight decay.

use crate::net::Network;
use insitu_tensor::Tensor;
use std::collections::HashMap;

/// SGD with classical momentum and decoupled L2 weight decay.
///
/// Velocity buffers are keyed by the stable parameter keys reported by
/// [`Network::visit_trainable`], so an optimizer survives freezing
/// changes: newly-thawed parameters simply start with zero velocity.
///
/// # Examples
///
/// ```
/// use insitu_nn::{Sgd, Sequential, Network, Mode};
/// use insitu_nn::layers::Linear;
/// use insitu_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), insitu_nn::NnError> {
/// let mut rng = Rng::seed_from(0);
/// let mut net = Sequential::new("n");
/// net.push(Linear::new("fc", 2, 1, &mut rng));
/// let mut opt = Sgd::new(0.1).momentum(0.9);
/// let x = Tensor::from_vec([1, 2], vec![1.0, 1.0])?;
/// let y = net.forward(&x, Mode::Train)?;
/// net.backward(&Tensor::filled([1, 1], 1.0))?;
/// opt.step(&mut net);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<u64, Tensor>,
}

impl Sgd {
    /// Creates an optimizer with the given learning rate and no
    /// momentum or weight decay.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: HashMap::new() }
    }

    /// Sets the momentum coefficient (builder style).
    pub fn momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update to every trainable parameter of `net` using
    /// the gradients accumulated since the last
    /// [`zero_grads`](Network::zero_grads).
    pub fn step(&mut self, net: &mut dyn Network) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        net.visit_trainable(&mut |key, param, grad| {
            if wd > 0.0 {
                // L2 decay folded into the gradient.
                let _ = grad.axpy(wd, param);
            }
            if mu > 0.0 {
                let v = velocity
                    .entry(key)
                    .or_insert_with(|| Tensor::zeros(param.shape().clone()));
                v.scale(mu);
                let _ = v.axpy(1.0, grad);
                let _ = param.axpy(-lr, v);
            } else {
                let _ = param.axpy(-lr, grad);
            }
        });
    }

    /// Drops all velocity state (e.g. when restarting a schedule).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::layers::Linear;
    use crate::net::Sequential;
    use insitu_tensor::{Rng, Tensor};

    /// One quadratic step: minimize ||W x - t||² by hand and compare.
    #[test]
    fn plain_sgd_matches_manual_update() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 1, 1, &mut rng));
        // Read the initial weight.
        let mut w0 = 0.0;
        net.visit_all(&mut |p| {
            if p.dims() == [1, 1] {
                w0 = p.as_slice()[0];
            }
        });
        let x = Tensor::from_vec([1, 1], vec![2.0]).unwrap();
        let _ = net.forward(&x, Mode::Train).unwrap();
        // dL/dy = 1 → dW = x = 2.
        net.backward(&Tensor::filled([1, 1], 1.0)).unwrap();
        let mut opt = Sgd::new(0.5);
        opt.step(&mut net);
        let mut w1 = 0.0;
        net.visit_all(&mut |p| {
            if p.dims() == [1, 1] {
                w1 = p.as_slice()[0];
            }
        });
        assert!((w1 - (w0 - 0.5 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        // With constant gradient g, momentum accumulates: v1=g, v2=(1+mu)g.
        let mut rng = Rng::seed_from(2);
        let mut plain = Sequential::new("p");
        plain.push(Linear::new("fc", 1, 1, &mut rng));
        let mut rng2 = Rng::seed_from(2);
        let mut momented = Sequential::new("m");
        momented.push(Linear::new("fc", 1, 1, &mut rng2));

        let x = Tensor::from_vec([1, 1], vec![1.0]).unwrap();
        let run = |net: &mut Sequential, opt: &mut Sgd| {
            for _ in 0..3 {
                net.zero_grads();
                let _ = net.forward(&x, Mode::Train).unwrap();
                net.backward(&Tensor::filled([1, 1], 1.0)).unwrap();
                opt.step(net);
            }
            let mut w = 0.0;
            net.visit_all(&mut |p| {
                if p.dims() == [1, 1] {
                    w = p.as_slice()[0];
                }
            });
            w
        };
        let w_plain = run(&mut plain, &mut Sgd::new(0.1));
        let w_mom = run(&mut momented, &mut Sgd::new(0.1).momentum(0.9));
        // Same start; momentum moved strictly further downhill.
        assert!(w_mom < w_plain);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 4, 4, &mut rng));
        let norm_before: f32 = {
            let mut n = 0.0;
            net.visit_all(&mut |p| n += p.norm_sq());
            n
        };
        // Zero gradient + weight decay → pure shrinkage.
        let x = Tensor::zeros([1, 4]);
        let _ = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::zeros([1, 4])).unwrap();
        let mut opt = Sgd::new(0.1).weight_decay(0.1);
        opt.step(&mut net);
        let norm_after: f32 = {
            let mut n = 0.0;
            net.visit_all(&mut |p| n += p.norm_sq());
            n
        };
        assert!(norm_after < norm_before);
    }

    #[test]
    fn lr_accessors() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
        opt.reset();
    }
}
