//! Analytical layer descriptions consumed by the device models.
//!
//! The paper's time/energy models (Eqs. 1–14) operate on layer *shapes*
//! only — `M, N, K, R, C` for CONV and `(in, out)` for FCN. [`LayerDesc`]
//! captures exactly that, decoupled from the trainable layers so the
//! `insitu-devices` crate can also describe full-size published networks
//! (AlexNet, VGG-16) it never trains.

use serde::{Deserialize, Serialize};

/// Shape description of one compute-relevant layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerDesc {
    /// Convolutional layer in the paper's notation.
    Conv {
        /// Output feature maps (filters), the paper's `M`.
        m: usize,
        /// Input feature maps (channels), the paper's `N`.
        n: usize,
        /// Square kernel edge, the paper's `K`.
        k: usize,
        /// Output feature-map height, the paper's `R`.
        r: usize,
        /// Output feature-map width, the paper's `C`.
        c: usize,
    },
    /// Fully connected layer.
    Fc {
        /// Input features.
        input: usize,
        /// Output features.
        output: usize,
    },
}

impl LayerDesc {
    /// Multiply-accumulate operation count for one sample.
    ///
    /// CONV follows the paper's Eq. (1): `2·M·N·K²·R·C`. FCN is the
    /// degenerate case `K = R = C = 1`: `2·out·in`.
    pub fn ops(&self) -> u64 {
        match *self {
            LayerDesc::Conv { m, n, k, r, c } => {
                2 * m as u64 * n as u64 * (k * k) as u64 * r as u64 * c as u64
            }
            LayerDesc::Fc { input, output } => 2 * input as u64 * output as u64,
        }
    }

    /// Trainable parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        match *self {
            LayerDesc::Conv { m, n, k, .. } => m as u64 * n as u64 * (k * k) as u64 + m as u64,
            LayerDesc::Fc { input, output } => input as u64 * output as u64 + output as u64,
        }
    }

    /// Whether this is a convolutional layer.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerDesc::Conv { .. })
    }

    /// Whether this is a fully connected layer.
    pub fn is_fc(&self) -> bool {
        matches!(self, LayerDesc::Fc { .. })
    }
}

/// Shape description of a whole network: the ordered list of its
/// compute-relevant layers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkDesc {
    /// Network name, e.g. `"alexnet"`.
    pub name: String,
    /// Compute-relevant layers in execution order.
    pub layers: Vec<LayerDesc>,
}

impl NetworkDesc {
    /// Creates a description from a name and layer list.
    pub fn new(name: impl Into<String>, layers: Vec<LayerDesc>) -> Self {
        NetworkDesc { name: name.into(), layers }
    }

    /// Total per-sample operation count.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(LayerDesc::ops).sum()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(LayerDesc::params).sum()
    }

    /// The convolutional layers, in order.
    pub fn conv_layers(&self) -> Vec<LayerDesc> {
        self.layers.iter().copied().filter(LayerDesc::is_conv).collect()
    }

    /// The fully connected layers, in order.
    pub fn fc_layers(&self) -> Vec<LayerDesc> {
        self.layers.iter().copied().filter(LayerDesc::is_fc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_ops_matches_paper_eq1() {
        // AlexNet conv1: M=96, N=3, K=11, R=C=55.
        let l = LayerDesc::Conv { m: 96, n: 3, k: 11, r: 55, c: 55 };
        assert_eq!(l.ops(), 2 * 96 * 3 * 121 * 55 * 55);
    }

    #[test]
    fn fc_ops_and_params() {
        let l = LayerDesc::Fc { input: 4096, output: 1000 };
        assert_eq!(l.ops(), 2 * 4096 * 1000);
        assert_eq!(l.params(), 4096 * 1000 + 1000);
    }

    #[test]
    fn network_aggregates() {
        let net = NetworkDesc::new(
            "toy",
            vec![
                LayerDesc::Conv { m: 4, n: 3, k: 3, r: 8, c: 8 },
                LayerDesc::Fc { input: 256, output: 10 },
            ],
        );
        assert_eq!(net.total_ops(), net.layers[0].ops() + net.layers[1].ops());
        assert_eq!(net.conv_layers().len(), 1);
        assert_eq!(net.fc_layers().len(), 1);
        assert!(net.layers[0].is_conv() && !net.layers[0].is_fc());
    }
}
