//! Mini-batch training loop.

use crate::error::NnError;
use crate::layer::Mode;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::net::{Network, Sequential};
use crate::optim::Sgd;
use crate::Result;
use insitu_tensor::{par_chunks_mut, Rng, Tensor};
use insitu_telemetry as telemetry;

/// Hyperparameters for [`train`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Shuffle the data each epoch.
    pub shuffle: bool,
    /// Kernel threads for this run: `Some(n)` calls
    /// [`insitu_tensor::set_num_threads`] before the loop starts
    /// (`Some(1)` forces pure sequential kernels); `None` leaves the
    /// process-wide setting untouched. Never affects results, only
    /// speed.
    pub threads: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 1.0,
            shuffle: true,
            threads: None,
        }
    }
}

/// One epoch's summary statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub train_accuracy: f32,
    /// Held-out accuracy, if an eval set was supplied.
    pub eval_accuracy: Option<f32>,
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-epoch statistics in order.
    pub history: Vec<EpochStats>,
    /// Total optimizer steps taken.
    pub steps: usize,
    /// Total multiply-accumulate operations spent (training cost model,
    /// honouring frozen prefixes) — the unit the Cloud energy model uses.
    pub total_ops: u64,
    /// Wall-clock seconds spent inside the loop.
    pub wall_seconds: f64,
}

impl TrainReport {
    /// Final training loss (NaN if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.history.last().map_or(f32::NAN, |e| e.loss)
    }

    /// Final held-out accuracy, if an eval set was supplied.
    pub fn final_eval_accuracy(&self) -> Option<f32> {
        self.history.last().and_then(|e| e.eval_accuracy)
    }
}

/// A labelled data batch view: inputs `(N, ...)` plus `N` class labels.
#[derive(Debug, Clone, Copy)]
pub struct LabeledBatch<'a> {
    /// Batched inputs; the first dimension is the sample index.
    pub inputs: &'a Tensor,
    /// One class label per sample.
    pub labels: &'a [usize],
}

impl<'a> LabeledBatch<'a> {
    /// Creates a batch view, validating that counts agree.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadLabels`] if the label count differs from
    /// the input batch dimension.
    pub fn new(inputs: &'a Tensor, labels: &'a [usize]) -> Result<Self> {
        let n = inputs.dims().first().copied().unwrap_or(0);
        if n != labels.len() {
            return Err(NnError::BadLabels {
                reason: format!("{n} inputs but {} labels", labels.len()),
            });
        }
        Ok(LabeledBatch { inputs, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Copies the samples at `indices` out of a batched tensor.
///
/// # Errors
///
/// Returns an error if any index is out of range or the tensor has no
/// batch dimension.
pub fn gather_samples(inputs: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let dims = inputs.dims();
    if dims.is_empty() {
        return Err(NnError::BadLabels { reason: "gather on a scalar tensor".into() });
    }
    let n = dims[0];
    let sample_len: usize = dims[1..].iter().product();
    let mut out_dims = dims.to_vec();
    out_dims[0] = indices.len();
    for &i in indices {
        if i >= n {
            return Err(NnError::BadLabels { reason: format!("index {i} out of {n}") });
        }
    }
    let src = inputs.as_slice();
    let mut data = vec![0.0f32; indices.len() * sample_len];
    if sample_len > 0 {
        // Per-sample copies are independent; batch assembly runs on the
        // shared kernel pool (a no-op sequential loop at 1 thread).
        par_chunks_mut(&mut data, sample_len, |c, chunk| {
            let i = indices[c];
            chunk.copy_from_slice(&src[i * sample_len..(i + 1) * sample_len]);
        });
    }
    Ok(Tensor::from_vec(out_dims.as_slice(), data)?)
}

/// Trains `net` on `data` with softmax cross-entropy.
///
/// If `eval` is supplied, held-out accuracy is recorded after every
/// epoch. Returns per-epoch statistics plus cost accounting.
///
/// # Errors
///
/// Returns an error on shape disagreements between the network and the
/// data.
pub fn train(
    net: &mut dyn Network,
    data: LabeledBatch<'_>,
    eval: Option<LabeledBatch<'_>>,
    cfg: &TrainConfig,
    rng: &mut Rng,
) -> Result<TrainReport> {
    let start = std::time::Instant::now();
    if let Some(t) = cfg.threads {
        insitu_tensor::set_num_threads(t);
    }
    let n = data.len();
    let _t = telemetry::span_with("nn.train", || {
        format!("{n} samples x{} epochs @bs{}", cfg.epochs, cfg.batch_size)
    });
    let mut opt = Sgd::new(cfg.lr).momentum(cfg.momentum).weight_decay(cfg.weight_decay);
    let mut order: Vec<usize> = (0..n).collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;
    let mut total_ops = 0u64;
    let ops_per_sample = net.training_ops_per_sample();

    for epoch in 0..cfg.epochs {
        let _e = telemetry::span_with("nn.epoch", || format!("epoch {epoch}"));
        if cfg.shuffle {
            rng.shuffle(&mut order);
        }
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            telemetry::counter_add("nn.batches", "", 1);
            let xb = gather_samples(data.inputs, chunk)?;
            let yb: Vec<usize> = chunk.iter().map(|&i| data.labels[i]).collect();
            net.zero_grads();
            let logits = net.forward(&xb, Mode::Train)?;
            let (loss, dlogits) = softmax_cross_entropy(&logits, &yb)?;
            acc_sum += accuracy(&logits, &yb)? as f64;
            net.backward(&dlogits)?;
            opt.step(net);
            loss_sum += loss as f64;
            batches += 1;
            steps += 1;
            total_ops += ops_per_sample * chunk.len() as u64;
        }
        let eval_accuracy = match eval {
            Some(e) => Some(evaluate(net, e, cfg.batch_size)?),
            None => None,
        };
        history.push(EpochStats {
            epoch,
            loss: (loss_sum / batches.max(1) as f64) as f32,
            train_accuracy: (acc_sum / batches.max(1) as f64) as f32,
            eval_accuracy,
        });
        opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    Ok(TrainReport { history, steps, total_ops, wall_seconds: start.elapsed().as_secs_f64() })
}

/// A view of a [`Sequential`] that runs only its unfrozen suffix.
///
/// `forward` resumes at the first unfrozen layer, consuming prefix
/// activations instead of raw inputs; every other [`Network`] method
/// delegates unchanged (the frozen prefix takes no gradient, so
/// backward, the optimizer visitors and the cost model are already
/// suffix-shaped). Because [`train`] drives this view through the exact
/// code path it drives the full network through — same RNG draws, same
/// batch assembly, same kernels — suffix training from cached prefix
/// activations is bitwise identical to full training by construction.
struct SuffixNet<'a> {
    net: &'a mut Sequential,
    start: usize,
}

impl Network for SuffixNet<'_> {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.net.forward_from(self.start, input, mode)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        self.net.backward(dout)
    }

    fn zero_grads(&mut self) {
        self.net.zero_grads();
    }

    fn visit_trainable(&mut self, visitor: &mut dyn FnMut(u64, &mut Tensor, &mut Tensor)) {
        self.net.visit_trainable(visitor);
    }

    fn visit_all(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        self.net.visit_all(visitor);
    }

    fn param_count(&self) -> usize {
        self.net.param_count()
    }

    fn training_ops_per_sample(&self) -> u64 {
        // Keep the full cost model (frozen forward + suffix backward):
        // the cache removes recompute, not accounted work, so cached and
        // uncached runs report identical `total_ops`.
        self.net.training_ops_per_sample()
    }

    fn inference_ops_per_sample(&self) -> u64 {
        self.net.inference_ops_per_sample()
    }
}

/// Trains the unfrozen suffix of `net` from precomputed prefix
/// activations.
///
/// `acts` (and `eval_acts`, if supplied) batch the outputs of
/// [`Sequential::forward_prefix`] — one activation per sample, in the
/// same order as the labels. The loop, optimizer, RNG trajectory and
/// cost accounting are shared with [`train`], so given activations that
/// match what the frozen prefix would produce, the resulting weights
/// and [`TrainReport`] are bitwise identical to training on the raw
/// inputs.
///
/// # Errors
///
/// Returns an error on shape disagreements between the suffix and the
/// activations.
pub fn train_from_activations(
    net: &mut Sequential,
    acts: LabeledBatch<'_>,
    eval_acts: Option<LabeledBatch<'_>>,
    cfg: &TrainConfig,
    rng: &mut Rng,
) -> Result<TrainReport> {
    let start = net.first_unfrozen();
    let mut suffix = SuffixNet { net, start };
    train(&mut suffix, acts, eval_acts, cfg, rng)
}

/// Evaluation accuracy of `net` on a labelled set, batched.
///
/// # Errors
///
/// Returns an error on shape disagreements.
pub fn evaluate(net: &mut dyn Network, data: LabeledBatch<'_>, batch_size: usize) -> Result<f32> {
    if data.is_empty() {
        return Ok(0.0);
    }
    let n = data.len();
    let _t = telemetry::span_with("nn.evaluate", || format!("{n} samples @bs{batch_size}"));
    let mut correct = 0.0f64;
    let indices: Vec<usize> = (0..n).collect();
    for chunk in indices.chunks(batch_size.max(1)) {
        let xb = gather_samples(data.inputs, chunk)?;
        let yb: Vec<usize> = chunk.iter().map(|&i| data.labels[i]).collect();
        let logits = net.forward(&xb, Mode::Eval)?;
        correct += accuracy(&logits, &yb)? as f64 * chunk.len() as f64;
    }
    Ok((correct / n as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};
    use crate::net::Sequential;

    /// Separable two-class problem in 2-D: class = x0 > x1.
    fn toy_problem(n: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            let b = rng.uniform(-1.0, 1.0);
            data.push(a);
            data.push(b);
            labels.push(usize::from(a > b));
        }
        (Tensor::from_vec([n, 1, 1, 2], data).unwrap(), labels)
    }

    fn mlp(rng: &mut Rng) -> Sequential {
        let mut net = Sequential::new("mlp");
        net.push(Flatten::new("flat"));
        net.push(Linear::new("fc1", 2, 16, rng));
        net.push(Relu::new("r1"));
        net.push(Linear::new("fc2", 16, 2, rng));
        net
    }

    #[test]
    fn training_converges_on_separable_problem() {
        let mut rng = Rng::seed_from(42);
        let (x, y) = toy_problem(256, &mut rng);
        let (xe, ye) = toy_problem(128, &mut rng);
        let mut net = mlp(&mut rng);
        let cfg = TrainConfig { epochs: 30, batch_size: 32, lr: 0.1, ..Default::default() };
        let report = train(
            &mut net,
            LabeledBatch::new(&x, &y).unwrap(),
            Some(LabeledBatch::new(&xe, &ye).unwrap()),
            &cfg,
            &mut rng,
        )
        .unwrap();
        let acc = report.final_eval_accuracy().unwrap();
        assert!(acc > 0.95, "eval accuracy {acc}");
        // Loss decreased.
        assert!(report.final_loss() < report.history[0].loss);
        assert_eq!(report.history.len(), 30);
        assert!(report.total_ops > 0);
    }

    #[test]
    fn gather_samples_selects_rows() {
        let x = Tensor::from_vec([3, 2], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let g = gather_samples(&x, &[2, 0]).unwrap();
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.as_slice(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(gather_samples(&x, &[3]).is_err());
    }

    #[test]
    fn labeled_batch_validation() {
        let x = Tensor::zeros([3, 2]);
        assert!(LabeledBatch::new(&x, &[0, 1]).is_err());
        let b = LabeledBatch::new(&x, &[0, 1, 0]).unwrap();
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let mut rng = Rng::seed_from(1);
        let mut net = mlp(&mut rng);
        let x = Tensor::zeros([0, 1, 1, 2]);
        let acc = evaluate(&mut net, LabeledBatch::new(&x, &[]).unwrap(), 8).unwrap();
        assert_eq!(acc, 0.0);
    }

    #[test]
    fn train_from_activations_is_bitwise_identical() {
        use crate::layers::{Conv2d, MaxPool2d};

        let build = || {
            let mut rng = Rng::seed_from(17);
            let mut net = Sequential::new("cnn");
            net.push(Conv2d::new("conv1", 1, 8, 8, 4, 3, 1, 1, &mut rng).unwrap());
            net.push(Relu::new("relu1"));
            net.push(MaxPool2d::new("pool1", 4, 8, 8, 2, 2).unwrap());
            net.push(Conv2d::new("conv2", 4, 4, 4, 6, 3, 1, 1, &mut rng).unwrap());
            net.push(Relu::new("relu2"));
            net.push(Flatten::new("flat"));
            net.push(Linear::new("fc", 6 * 4 * 4, 3, &mut rng));
            net.freeze_first_convs(1).unwrap();
            net
        };
        let mut data_rng = Rng::seed_from(99);
        let x = Tensor::randn([24, 1, 8, 8], 0.0, 1.0, &mut data_rng);
        let y: Vec<usize> = (0..24).map(|i| i % 3).collect();
        let (xe, ye) = (Tensor::randn([8, 1, 8, 8], 0.0, 1.0, &mut data_rng),
            (0..8).map(|i| i % 3).collect::<Vec<_>>());
        let cfg = TrainConfig { epochs: 3, batch_size: 5, lr: 0.05, ..Default::default() };

        let mut raw = build();
        let mut rng_a = Rng::seed_from(7);
        let report_a = train(
            &mut raw,
            LabeledBatch::new(&x, &y).unwrap(),
            Some(LabeledBatch::new(&xe, &ye).unwrap()),
            &cfg,
            &mut rng_a,
        )
        .unwrap();

        let mut cached = build();
        let acts = cached.forward_prefix(&x).unwrap();
        let eval_acts = cached.forward_prefix(&xe).unwrap();
        let mut rng_b = Rng::seed_from(7);
        let report_b = train_from_activations(
            &mut cached,
            LabeledBatch::new(&acts, &y).unwrap(),
            Some(LabeledBatch::new(&eval_acts, &ye).unwrap()),
            &cfg,
            &mut rng_b,
        )
        .unwrap();

        assert_eq!(report_a.history, report_b.history);
        assert_eq!(report_a.steps, report_b.steps);
        assert_eq!(report_a.total_ops, report_b.total_ops);
        let mut wa = Vec::new();
        raw.visit_all(&mut |p| wa.push(p.as_slice().to_vec()));
        let mut wb = Vec::new();
        cached.visit_all(&mut |p| wb.push(p.as_slice().to_vec()));
        assert_eq!(wa, wb, "weights diverged between cached and raw training");
        // RNG trajectories also stayed in lockstep.
        assert_eq!(rng_a.uniform(0.0, 1.0), rng_b.uniform(0.0, 1.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = Rng::seed_from(7);
            let (x, y) = toy_problem(64, &mut rng);
            let mut net = mlp(&mut rng);
            let cfg = TrainConfig { epochs: 3, ..Default::default() };
            train(&mut net, LabeledBatch::new(&x, &y).unwrap(), None, &cfg, &mut rng)
                .unwrap()
                .final_loss()
        };
        assert_eq!(run(), run());
    }
}
