//! Adam optimizer.
//!
//! The reproduction's experiments use SGD+momentum (matching the
//! paper's Caffe training), but Adam is provided for downstream users
//! fine-tuning on very small valuable sets, where its per-parameter
//! step sizes are markedly more robust.

use crate::net::Network;
use insitu_tensor::Tensor;
use std::collections::HashMap;

/// The Adam optimizer (Kingma & Ba) with bias correction.
///
/// State is keyed by the stable parameter keys of
/// [`Network::visit_trainable`], so freezing changes are handled the
/// same way as in [`Sgd`](crate::Sgd).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: u64,
    m: HashMap<u64, Tensor>,
    v: HashMap<u64, Tensor>,
}

impl Adam {
    /// Creates an Adam optimizer with standard defaults
    /// (`beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`).
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Sets the exponential-decay coefficients (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either beta is outside `[0, 1)`.
    pub fn betas(mut self, beta1: f32, beta2: f32) -> Adam {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Sets decoupled weight decay (builder style).
    pub fn weight_decay(mut self, weight_decay: f32) -> Adam {
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam update using the accumulated gradients.
    pub fn step(&mut self, net: &mut dyn Network) {
        self.step += 1;
        let t = self.step as f32;
        let (b1, b2, eps, lr, wd) = (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let (m_map, v_map) = (&mut self.m, &mut self.v);
        net.visit_trainable(&mut |key, param, grad| {
            let m = m_map.entry(key).or_insert_with(|| Tensor::zeros(param.shape().clone()));
            let v = v_map.entry(key).or_insert_with(|| Tensor::zeros(param.shape().clone()));
            let ps = param.as_mut_slice();
            let gs = grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for i in 0..ps.len() {
                let g = gs[i] + wd * ps[i];
                ms[i] = b1 * ms[i] + (1.0 - b1) * g;
                vs[i] = b2 * vs[i] + (1.0 - b2) * g * g;
                let m_hat = ms[i] / bias1;
                let v_hat = vs[i] / bias2;
                ps[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }

    /// Drops all moment state.
    pub fn reset(&mut self) {
        self.m.clear();
        self.v.clear();
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::layers::{Flatten, Linear, Relu};
    use crate::loss::softmax_cross_entropy;
    use crate::net::Sequential;
    use insitu_tensor::{Rng, Tensor};

    fn toy(n: usize, rng: &mut Rng) -> (Tensor, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a = rng.uniform(-1.0, 1.0);
            let b = rng.uniform(-1.0, 1.0);
            data.extend([a, b]);
            labels.push(usize::from(a * b > 0.0)); // XOR-like quadrant task
        }
        (Tensor::from_vec([n, 2], data).unwrap(), labels)
    }

    #[test]
    fn adam_learns_nonlinear_task() {
        let mut rng = Rng::seed_from(1);
        let (x, y) = toy(256, &mut rng);
        let mut net = Sequential::new("mlp");
        net.push(Flatten::new("f"));
        net.push(Linear::new("fc1", 2, 32, &mut rng));
        net.push(Relu::new("r"));
        net.push(Linear::new("fc2", 32, 2, &mut rng));
        let mut opt = Adam::new(0.01);
        let mut last_loss = f32::INFINITY;
        for _ in 0..60 {
            net.zero_grads();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let (loss, d) = softmax_cross_entropy(&logits, &y).unwrap();
            net.backward(&d).unwrap();
            opt.step(&mut net);
            last_loss = loss;
        }
        assert!(last_loss < 0.25, "loss {last_loss}");
        let logits = net.forward(&x, Mode::Eval).unwrap();
        let acc = crate::loss::accuracy(&logits, &y).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction the very first Adam step has magnitude
        // ~lr regardless of gradient scale.
        let mut rng = Rng::seed_from(2);
        let mut net = Sequential::new("n");
        net.push(Linear::new("fc", 1, 1, &mut rng));
        let x = Tensor::from_vec([1, 1], vec![1000.0]).unwrap(); // huge gradient
        let _ = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::filled([1, 1], 1.0)).unwrap();
        let mut before = 0.0;
        net.visit_all(&mut |p| {
            if p.dims() == [1, 1] {
                before = p.as_slice()[0];
            }
        });
        let mut opt = Adam::new(0.01);
        opt.step(&mut net);
        let mut after = 0.0;
        net.visit_all(&mut |p| {
            if p.dims() == [1, 1] {
                after = p.as_slice()[0];
            }
        });
        assert!(((before - after).abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn builder_and_reset() {
        let mut opt = Adam::new(0.1).betas(0.8, 0.99).weight_decay(0.01);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.001);
        assert_eq!(opt.lr(), 0.001);
        opt.reset();
    }

    #[test]
    #[should_panic]
    fn invalid_betas_panic() {
        let _ = Adam::new(0.1).betas(1.0, 0.999);
    }
}
