//! Softmax cross-entropy loss and classification metrics.

use crate::error::NnError;
use crate::Result;
use insitu_tensor::Tensor;

/// Numerically stable softmax over the last dimension of a `(B, K)`
/// logit matrix.
///
/// Deliberately *not* dispatched through the tensor SIMD layer: these
/// probabilities feed training gradients (via
/// [`softmax_cross_entropy`]) and the diagnosis scores that decide
/// which samples a node uploads, so they sit inside the seeded
/// end-to-end feedback loop. The vectorized
/// [`simd::softmax_rows`](insitu_tensor::simd::softmax_rows) computes
/// `exp` with a degree-5 polynomial that agrees with libm only to
/// ~1.2e-7 per element — enough, over a few incremental-update rounds,
/// to fork an entire session trajectory away from the seeds the
/// regression suite pins. Keeping the historical libm loop here keeps
/// every recorded trajectory bit-for-bit reproducible; throughput
/// contexts that only need probabilities (no feedback) should call the
/// SIMD op directly.
///
/// # Errors
///
/// Returns an error if `logits` is not 2-D.
pub fn softmax(logits: &Tensor) -> Result<Tensor> {
    let d = logits.dims();
    if d.len() != 2 {
        return Err(NnError::BadLabels { reason: format!("softmax expects (B, K), got {d:?}") });
    }
    let k = d[1];
    let mut out = logits.clone();
    if k > 0 {
        for row in out.as_mut_slice().chunks_mut(k) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy loss and its gradient with respect to the
/// logits.
///
/// Returns `(loss, dlogits)` where `dlogits = (softmax - onehot) / B`.
///
/// # Errors
///
/// Returns an error if shapes disagree or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    let d = logits.dims();
    if d.len() != 2 || d[0] != labels.len() {
        return Err(NnError::BadLabels {
            reason: format!("logits {d:?} incompatible with {} labels", labels.len()),
        });
    }
    let (b, k) = (d[0], d[1]);
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(NnError::BadLabels { reason: format!("label {bad} out of range 0..{k}") });
    }
    let probs = softmax(logits)?;
    let p = probs.as_slice();
    let mut loss = 0.0f32;
    let mut dlogits = probs.clone();
    let g = dlogits.as_mut_slice();
    for (s, &label) in labels.iter().enumerate() {
        let pi = p[s * k + label].max(1e-12);
        loss -= pi.ln();
        g[s * k + label] -= 1.0;
    }
    let scale = 1.0 / b as f32;
    for v in g.iter_mut() {
        *v *= scale;
    }
    Ok((loss * scale, dlogits))
}

/// Fraction of rows whose argmax equals the label.
///
/// # Errors
///
/// Returns an error if shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let d = logits.dims();
    if d.len() != 2 || d[0] != labels.len() {
        return Err(NnError::BadLabels {
            reason: format!("logits {d:?} incompatible with {} labels", labels.len()),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let k = d[1];
    let p = logits.as_slice();
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(s, &label)| {
            let row = &p[s * k..(s + 1) * k];
            let arg = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            arg == label
        })
        .count();
    Ok(correct as f32 / labels.len() as f32)
}

/// Per-row predicted class (argmax of each logit row).
///
/// # Errors
///
/// Returns an error if `logits` is not 2-D.
pub fn predictions(logits: &Tensor) -> Result<Vec<usize>> {
    let d = logits.dims();
    if d.len() != 2 {
        return Err(NnError::BadLabels {
            reason: format!("predictions expects (B, K), got {d:?}"),
        });
    }
    let k = d[1];
    Ok(logits
        .as_slice()
        .chunks(k)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect())
}

/// Shannon entropy (nats) of each softmax row; a confidence signal used
/// by the diagnosis policies.
///
/// # Errors
///
/// Returns an error if `logits` is not 2-D.
pub fn entropy(logits: &Tensor) -> Result<Vec<f32>> {
    let probs = softmax(logits)?;
    let k = probs.dims()[1];
    Ok(probs
        .as_slice()
        .chunks(k)
        .map(|row| -row.iter().map(|&p| if p > 1e-12 { p * p.ln() } else { 0.0 }).sum::<f32>())
        .collect())
}

/// Maximum softmax probability of each row; the standard confidence
/// score.
///
/// # Errors
///
/// Returns an error if `logits` is not 2-D.
pub fn confidence(logits: &Tensor) -> Result<Vec<f32>> {
    let probs = softmax(logits)?;
    let k = probs.dims()[1];
    Ok(probs
        .as_slice()
        .chunks(k)
        .map(|row| row.iter().copied().fold(0.0, f32::max))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_tensor::Rng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::seed_from(1);
        let logits = Tensor::rand_uniform([5, 7], -10.0, 10.0, &mut rng);
        let p = softmax(&logits).unwrap();
        for row in p.as_slice().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec([1, 3], vec![101.0, 102.0, 103.0]).unwrap();
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        assert!(pa.max_abs_diff(&pb).unwrap() < 1e-5);
    }

    #[test]
    fn cross_entropy_perfect_prediction() {
        // Extremely confident correct logits → near-zero loss.
        let logits = Tensor::from_vec([1, 3], vec![100.0, 0.0, 0.0]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_cross_entropy() {
        let mut rng = Rng::seed_from(2);
        let logits = Tensor::rand_uniform([2, 5], -2.0, 2.0, &mut rng);
        let labels = [3usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let num = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[idx]).abs() < 1e-3,
                "grad[{idx}]: num {num} vs ana {}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn label_validation() {
        let logits = Tensor::zeros([2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err()); // count mismatch
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err()); // out of range
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits =
            Tensor::from_vec([3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(predictions(&logits).unwrap(), vec![0, 1, 0]);
    }

    #[test]
    fn entropy_extremes() {
        let confident = Tensor::from_vec([1, 4], vec![100.0, 0.0, 0.0, 0.0]).unwrap();
        let uniform = Tensor::zeros([1, 4]);
        let e_conf = entropy(&confident).unwrap()[0];
        let e_unif = entropy(&uniform).unwrap()[0];
        assert!(e_conf < 0.01);
        assert!((e_unif - (4.0f32).ln()).abs() < 1e-4);
        assert!(confidence(&confident).unwrap()[0] > 0.99);
        assert!((confidence(&uniform).unwrap()[0] - 0.25).abs() < 1e-5);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let logits = Tensor::zeros([0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
    }
}
