//! Classification metrics beyond plain accuracy: top-k, confusion
//! matrices and per-class recall — used by the wildlife-monitoring
//! example to report which "species" the drift hurts most.

use crate::error::NnError;
use crate::Result;
use insitu_tensor::Tensor;
use std::fmt;

/// Fraction of rows whose label is among the `k` highest logits.
///
/// # Errors
///
/// Returns an error if shapes disagree or `k == 0`.
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> Result<f32> {
    let d = logits.dims();
    if d.len() != 2 || d[0] != labels.len() {
        return Err(NnError::BadLabels {
            reason: format!("logits {d:?} incompatible with {} labels", labels.len()),
        });
    }
    if k == 0 {
        return Err(NnError::BadLabels { reason: "top-k needs k >= 1".into() });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let classes = d[1];
    let k = k.min(classes);
    let mut hits = 0usize;
    for (row, &label) in logits.as_slice().chunks(classes).zip(labels) {
        // Count how many entries strictly exceed the label's logit;
        // the label is in the top k iff fewer than k do.
        let own = row[label];
        let better = row.iter().filter(|&&v| v > own).count();
        if better < k {
            hits += 1;
        }
    }
    Ok(hits as f32 / labels.len() as f32)
}

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over `classes` classes.
    pub fn new(classes: usize) -> ConfusionMatrix {
        ConfusionMatrix { classes, counts: vec![0; classes * classes] }
    }

    /// Builds a matrix from logits and labels.
    ///
    /// # Errors
    ///
    /// Returns an error if shapes disagree or a label is out of range.
    pub fn from_logits(logits: &Tensor, labels: &[usize]) -> Result<ConfusionMatrix> {
        let d = logits.dims();
        if d.len() != 2 || d[0] != labels.len() {
            return Err(NnError::BadLabels {
                reason: format!("logits {d:?} incompatible with {} labels", labels.len()),
            });
        }
        let mut m = ConfusionMatrix::new(d[1]);
        let preds = crate::loss::predictions(logits)?;
        for (&p, &a) in preds.iter().zip(labels) {
            m.record(a, p)?;
        }
        Ok(m)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Errors
    ///
    /// Returns an error if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) -> Result<()> {
        if actual >= self.classes || predicted >= self.classes {
            return Err(NnError::BadLabels {
                reason: format!(
                    "({actual}, {predicted}) out of range for {} classes",
                    self.classes
                ),
            });
        }
        self.counts[actual * self.classes + predicted] += 1;
        Ok(())
    }

    /// The count at `(actual, predicted)` (0 when out of range).
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        if actual >= self.classes || predicted >= self.classes {
            0
        } else {
            self.counts[actual * self.classes + predicted]
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass); 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Recall of one class (`None` when the class never occurred).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / row as f64)
        }
    }

    /// Precision of one class (`None` when it was never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if col == 0 {
            None
        } else {
            Some(self.count(class, class) as f64 / col as f64)
        }
    }

    /// Merges another matrix of the same size into this one.
    ///
    /// # Errors
    ///
    /// Returns an error if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) -> Result<()> {
        if self.classes != other.classes {
            return Err(NnError::BadLabels {
                reason: format!("cannot merge {}x vs {}x matrices", self.classes, other.classes),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        Ok(())
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "actual\\pred {}", (0..self.classes).map(|c| format!("{c:>6}")).collect::<String>())?;
        for a in 0..self.classes {
            write!(f, "{a:>11} ")?;
            for p in 0..self.classes {
                write!(f, "{:>6}", self.count(a, p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_extremes() {
        let logits =
            Tensor::from_vec([2, 4], vec![4.0, 3.0, 2.0, 1.0, 1.0, 2.0, 3.0, 4.0]).unwrap();
        // Row 0 label 1 is 2nd-best; row 1 label 0 is worst.
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 1).unwrap(), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 2).unwrap(), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 4).unwrap(), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[1, 0], 99).unwrap(), 1.0); // clamped
        assert!(top_k_accuracy(&logits, &[1, 0], 0).is_err());
        assert!(top_k_accuracy(&logits, &[1], 1).is_err());
    }

    #[test]
    fn top1_matches_accuracy() {
        let logits =
            Tensor::from_vec([3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]).unwrap();
        let labels = [0usize, 1, 1];
        assert_eq!(
            top_k_accuracy(&logits, &labels, 1).unwrap(),
            crate::loss::accuracy(&logits, &labels).unwrap()
        );
    }

    #[test]
    fn confusion_matrix_counts() {
        let mut m = ConfusionMatrix::new(3);
        m.record(0, 0).unwrap();
        m.record(0, 1).unwrap();
        m.record(1, 1).unwrap();
        m.record(2, 2).unwrap();
        assert_eq!(m.total(), 4);
        assert_eq!(m.count(0, 1), 1);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(m.recall(0), Some(0.5));
        assert_eq!(m.recall(1), Some(1.0));
        assert_eq!(m.precision(1), Some(0.5));
        assert_eq!(m.precision(0), Some(1.0));
        assert!(m.record(3, 0).is_err());
    }

    #[test]
    fn from_logits_and_merge() {
        let logits =
            Tensor::from_vec([3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 0.0]).unwrap();
        let m = ConfusionMatrix::from_logits(&logits, &[0, 1, 1]).unwrap();
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.count(1, 0), 1);
        let mut acc = ConfusionMatrix::new(2);
        acc.merge(&m).unwrap();
        acc.merge(&m).unwrap();
        assert_eq!(acc.total(), 6);
        assert!(acc.merge(&ConfusionMatrix::new(3)).is_err());
    }

    #[test]
    fn empty_class_is_none() {
        let m = ConfusionMatrix::new(2);
        assert_eq!(m.recall(0), None);
        assert_eq!(m.precision(0), None);
        assert_eq!(m.accuracy(), 0.0);
        assert!(!m.to_string().is_empty());
    }
}
