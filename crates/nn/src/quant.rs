//! Post-training i8 quantization of an inference network.
//!
//! [`QuantizedNet::calibrate`] walks a trained [`Sequential`] once over
//! a held-out calibration split, recording the absolute-max of every
//! quantizable layer's *input* (the standard static min/max method —
//! symmetric scheme, so only the magnitude matters). Conv2d and Linear
//! layers become fixed-point layers running the i8 GEMM/conv kernels
//! from `insitu-tensor` (per-tensor activation scale, per-row weight
//! scales, i32 accumulation); every other layer (ReLU, pooling,
//! flatten, dropout-in-eval) is cloned as an f32 passthrough — those
//! are cheap, memory-bound ops where quantization buys nothing.
//!
//! A `QuantizedNet` is inference-only: it deliberately does not
//! implement [`Network`](crate::Network), because the fixed-point path
//! has no backward pass (the paper's FPGA PEs are likewise
//! inference/diagnosis engines; incremental training happens in f32 on
//! the cloud). Re-run [`QuantizedNet::calibrate`] after every model
//! update — scales are only valid for the weights they were measured
//! with.

use crate::error::NnError;
use crate::layer::{Layer, Mode};
use crate::layers::{Conv2d, Linear};
use crate::net::Sequential;
use crate::Result;
use insitu_tensor::{
    conv2d_forward_i8_ws, linear_forward_i8_ws, max_abs, quant_scale, ConvGeometry,
    ConvWorkspace, GemmScratch, QuantizedMatrix, Tensor,
};

/// Calibration record for one quantized layer, for reports and tests.
#[derive(Debug, Clone)]
pub struct LayerCalibration {
    /// Layer name (e.g. `"conv2"`).
    pub name: String,
    /// Static per-tensor scale of the layer's input activations.
    pub in_scale: f32,
    /// Largest per-row weight scale of the layer.
    pub max_weight_scale: f32,
}

/// One layer of a [`QuantizedNet`]: fixed-point conv/linear, or an f32
/// passthrough clone of the original layer.
#[derive(Debug)]
enum QLayer {
    Conv {
        geom: ConvGeometry,
        qweight: QuantizedMatrix,
        bias: Tensor,
        in_scale: f32,
        // Boxed: the workspace is a bundle of arena Vecs that would
        // otherwise dominate the enum's footprint.
        ws: Box<ConvWorkspace>,
    },
    Linear {
        qweight: QuantizedMatrix,
        bias: Tensor,
        in_scale: f32,
        scratch: GemmScratch,
    },
    Passthrough(Box<dyn Layer>),
}

/// An inference network quantized to symmetric i8 by post-training
/// calibration. Build with [`QuantizedNet::calibrate`], run with
/// [`QuantizedNet::predict`]. See the module docs for the scheme.
#[derive(Debug)]
pub struct QuantizedNet {
    layers: Vec<QLayer>,
    report: Vec<LayerCalibration>,
}

impl QuantizedNet {
    /// Calibrates `net` over `calib` (a held-out batch of images,
    /// `(B, C, H, W)`) and quantizes every Conv2d/Linear layer.
    ///
    /// The calibration forward runs on a clone of `net` in `Eval` mode,
    /// so the source network's caches and parameters are untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if the calibration batch is empty or does not
    /// flow through the network.
    pub fn calibrate(net: &Sequential, calib: &Tensor) -> Result<QuantizedNet> {
        if calib.is_empty() {
            return Err(NnError::BadInputShape {
                layer: "quantize".to_string(),
                expected: vec![0, 3, 36, 36], // 0 marks a free (but non-empty) batch
                actual: calib.dims().to_vec(),
            });
        }
        let mut reference = net.clone();
        let mut x = calib.clone();
        let mut layers = Vec::with_capacity(reference.len());
        let mut report = Vec::new();
        for i in 0..reference.len() {
            let layer = reference.layer_mut(i)?;
            if let Some(conv) = layer.as_any().downcast_ref::<Conv2d>() {
                let geom = *conv.geometry();
                let in_scale = quant_scale(max_abs(x.as_slice()));
                let qweight = QuantizedMatrix::from_rows(
                    conv.weight().as_slice(),
                    geom.out_channels,
                    geom.col_rows(),
                )?;
                report.push(LayerCalibration {
                    name: layer.name().to_string(),
                    in_scale,
                    max_weight_scale: max_abs(qweight.scales()),
                });
                layers.push(QLayer::Conv {
                    geom,
                    qweight,
                    bias: conv.bias().clone(),
                    in_scale,
                    ws: Box::new(ConvWorkspace::new()),
                });
            } else if let Some(lin) = layer.as_any().downcast_ref::<Linear>() {
                let in_scale = quant_scale(max_abs(x.as_slice()));
                let qweight = QuantizedMatrix::from_rows(
                    lin.weight().as_slice(),
                    lin.out_features(),
                    lin.in_features(),
                )?;
                report.push(LayerCalibration {
                    name: layer.name().to_string(),
                    in_scale,
                    max_weight_scale: max_abs(qweight.scales()),
                });
                layers.push(QLayer::Linear {
                    qweight,
                    bias: lin.bias().clone(),
                    in_scale,
                    scratch: GemmScratch::new(),
                });
            } else {
                layers.push(QLayer::Passthrough(layer.clone_box()));
            }
            x = layer.forward(&x, Mode::Eval)?;
        }
        Ok(QuantizedNet { layers, report })
    }

    /// Fixed-point inference forward: `(B, C, H, W)` → logits.
    ///
    /// Deterministic at any kernel and thread count (integer
    /// accumulation is exact; all f32 work is element-wise). Steady
    /// state allocates only the per-layer output tensors — the i8
    /// panels and accumulators live in grow-only workspaces.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape does not flow through the
    /// network.
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = match layer {
                QLayer::Conv { geom, qweight, bias, in_scale, ws } => {
                    conv2d_forward_i8_ws(&x, qweight, bias, geom, *in_scale, ws)?
                }
                QLayer::Linear { qweight, bias, in_scale, scratch } => {
                    linear_forward_i8_ws(&x, qweight, bias, *in_scale, scratch)?
                }
                // forward_owned: in-place layers (ReLU) rewrite x
                // instead of allocating.
                QLayer::Passthrough(l) => l.forward_owned(x, Mode::Eval)?,
            };
        }
        Ok(x)
    }

    /// Classification accuracy of the quantized network over a labeled
    /// set, evaluated in chunks of `batch`.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreement or an empty set.
    pub fn accuracy_on(&mut self, images: &Tensor, labels: &[usize], batch: usize) -> Result<f32> {
        let n = images.dims()[0];
        if n == 0 || n != labels.len() {
            return Err(NnError::BadLabels {
                reason: format!("{n} images vs {} labels", labels.len()),
            });
        }
        let sample_len = images.len() / n;
        let chunk = batch.max(1);
        let mut dims = images.dims().to_vec();
        let mut correct = 0usize;
        let mut start = 0usize;
        while start < n {
            let end = (start + chunk).min(n);
            dims[0] = end - start;
            let sub = Tensor::from_vec(
                dims.clone(),
                images.as_slice()[start * sample_len..end * sample_len].to_vec(),
            )?;
            let logits = self.predict(&sub)?;
            for (p, &want) in crate::predictions(&logits)?.iter().zip(&labels[start..end]) {
                correct += usize::from(*p == want);
            }
            start = end;
        }
        Ok(correct as f32 / n as f32)
    }

    /// Number of layers running in fixed point (quantized conv+linear).
    pub fn quantized_layers(&self) -> usize {
        self.report.len()
    }

    /// Per-layer calibration records, in network order.
    pub fn calibration(&self) -> &[LayerCalibration] {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mini_alexnet;
    use insitu_tensor::Rng;

    #[test]
    fn calibrate_quantizes_every_conv_and_linear() {
        let mut rng = Rng::seed_from(31);
        let net = mini_alexnet(4, &mut rng).unwrap();
        let calib = Tensor::rand_uniform([4, 3, 36, 36], 0.0, 1.0, &mut rng);
        let q = QuantizedNet::calibrate(&net, &calib).unwrap();
        // Mini-AlexNet: 5 conv + 3 fc, everything else passes through.
        assert_eq!(q.quantized_layers(), 8);
        assert_eq!(q.layers.len(), net.len());
        for rec in q.calibration() {
            assert!(rec.in_scale > 0.0, "{}: degenerate input scale", rec.name);
            assert!(rec.max_weight_scale > 0.0, "{}: degenerate weight scale", rec.name);
        }
    }

    #[test]
    fn quantized_logits_track_f32_logits() {
        let mut rng = Rng::seed_from(37);
        let mut net = mini_alexnet(4, &mut rng).unwrap();
        let calib = Tensor::rand_uniform([6, 3, 36, 36], 0.0, 1.0, &mut rng);
        let mut q = QuantizedNet::calibrate(&net, &calib).unwrap();
        let x = Tensor::rand_uniform([3, 3, 36, 36], 0.0, 1.0, &mut rng);
        let f32_logits = net.predict(&x).unwrap();
        let i8_logits = q.predict(&x).unwrap();
        assert_eq!(i8_logits.dims(), f32_logits.dims());
        let range = insitu_tensor::max_abs(f32_logits.as_slice()).max(1e-3);
        let err = i8_logits.max_abs_diff(&f32_logits).unwrap();
        assert!(err < 0.15 * range, "quantization error {err} vs logit range {range}");
    }

    #[test]
    fn predict_is_deterministic_and_allocation_stable() {
        let mut rng = Rng::seed_from(41);
        let net = mini_alexnet(4, &mut rng).unwrap();
        let calib = Tensor::rand_uniform([2, 3, 36, 36], 0.0, 1.0, &mut rng);
        let mut q = QuantizedNet::calibrate(&net, &calib).unwrap();
        let x = Tensor::rand_uniform([2, 3, 36, 36], 0.0, 1.0, &mut rng);
        let first = q.predict(&x).unwrap();
        for _ in 0..2 {
            let again = q.predict(&x).unwrap();
            assert_eq!(
                first.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                again.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn empty_calibration_batch_is_rejected() {
        let mut rng = Rng::seed_from(43);
        let net = mini_alexnet(4, &mut rng).unwrap();
        assert!(QuantizedNet::calibrate(&net, &Tensor::zeros([0, 3, 36, 36])).is_err());
    }
}
