//! Transfer learning: copying and locking convolutional layers.
//!
//! The paper's Cloud trains the unsupervised jigsaw network first, then
//! builds the supervised inference network by copying its first *n*
//! convolutional layers (its Fig. 4). The copied prefix can additionally
//! be frozen — the paper's `CONV-i` configurations (its Fig. 6) — which
//! both preserves the shared features and shortens every subsequent
//! incremental update (the source of the 1.7× update speedup the paper
//! reports, and the property the WSS hardware exploits).

use crate::error::NnError;
use crate::layers::Conv2d;
use crate::net::Sequential;
use crate::Result;

/// Copies the weights of the first `n_convs` convolutional layers of
/// `src` into the corresponding convolutional layers of `dst`.
///
/// Only convolutional layers are matched (by order, not by name); both
/// networks may freely differ elsewhere. Returns the number of layers
/// copied.
///
/// # Errors
///
/// Returns [`NnError::IncompatibleTransfer`] if either network has
/// fewer than `n_convs` convolutional layers or a matched pair has
/// different weight shapes.
pub fn copy_conv_prefix(src: &Sequential, dst: &mut Sequential, n_convs: usize) -> Result<usize> {
    let src_convs = src.conv_indices();
    let dst_convs = dst.conv_indices();
    if src_convs.len() < n_convs || dst_convs.len() < n_convs {
        return Err(NnError::IncompatibleTransfer {
            reason: format!(
                "requested {n_convs} conv layers but source has {} and destination has {}",
                src_convs.len(),
                dst_convs.len()
            ),
        });
    }
    for i in 0..n_convs {
        let (weight, bias) = {
            let layer = src.layer(src_convs[i])?;
            let conv = layer.as_any().downcast_ref::<Conv2d>().ok_or_else(|| {
                NnError::IncompatibleTransfer {
                    reason: format!("source layer {} is not Conv2d", src_convs[i]),
                }
            })?;
            (conv.weight().clone(), conv.bias().clone())
        };
        let layer = dst.layer_mut(dst_convs[i])?;
        let conv = layer.as_any_mut().downcast_mut::<Conv2d>().ok_or_else(|| {
            NnError::IncompatibleTransfer {
                reason: format!("destination layer {} is not Conv2d", dst_convs[i]),
            }
        })?;
        if conv.weight().shape() != weight.shape() {
            return Err(NnError::IncompatibleTransfer {
                reason: format!(
                    "conv #{i}: source weights {} vs destination {}",
                    weight.shape(),
                    conv.weight().shape()
                ),
            });
        }
        conv.load(&weight, &bias)?;
    }
    Ok(n_convs)
}

/// Builds an inference network from an unsupervised trunk, in one call:
/// copies the first `n_convs` conv layers and freezes the first
/// `n_frozen` of them (`n_frozen <= n_convs`).
///
/// This is the paper's deployment recipe: `CONV-3` corresponds to
/// `n_convs = 3, n_frozen = 3` on a 5-conv inference net.
///
/// # Errors
///
/// Returns an error if the copy fails (see [`copy_conv_prefix`]) or if
/// `n_frozen > n_convs`.
pub fn transfer_and_freeze(
    src: &Sequential,
    dst: &mut Sequential,
    n_convs: usize,
    n_frozen: usize,
) -> Result<()> {
    if n_frozen > n_convs {
        return Err(NnError::IncompatibleTransfer {
            reason: format!("cannot freeze {n_frozen} of {n_convs} transferred layers"),
        });
    }
    copy_conv_prefix(src, dst, n_convs)?;
    dst.freeze_first_convs(n_frozen)?;
    Ok(())
}

/// Returns true when the first `n_convs` convolution layers of the two
/// networks hold bitwise-identical weights — the invariant the shared
/// weight buffers of the WSS architecture rely on.
///
/// # Errors
///
/// Returns an error if either network has fewer than `n_convs`
/// convolutional layers.
pub fn conv_prefix_identical(a: &Sequential, b: &Sequential, n_convs: usize) -> Result<bool> {
    let a_convs = a.conv_indices();
    let b_convs = b.conv_indices();
    if a_convs.len() < n_convs || b_convs.len() < n_convs {
        return Err(NnError::IncompatibleTransfer {
            reason: format!(
                "prefix of {n_convs} conv layers requested, nets have {} and {}",
                a_convs.len(),
                b_convs.len()
            ),
        });
    }
    for i in 0..n_convs {
        let la = a.layer(a_convs[i])?;
        let lb = b.layer(b_convs[i])?;
        let ca = la.as_any().downcast_ref::<Conv2d>();
        let cb = lb.as_any().downcast_ref::<Conv2d>();
        match (ca, cb) {
            (Some(ca), Some(cb)) => {
                if ca.weight() != cb.weight() || ca.bias() != cb.bias() {
                    return Ok(false);
                }
            }
            _ => return Ok(false),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};
    use insitu_tensor::Rng;

    fn net_with_convs(rng: &mut Rng, widths: &[usize]) -> Sequential {
        let mut net = Sequential::new("n");
        let mut in_ch = 1;
        for (i, &w) in widths.iter().enumerate() {
            net.push(Conv2d::new(format!("conv{}", i + 1), in_ch, 8, 8, w, 3, 1, 1, rng).unwrap());
            net.push(Relu::new(format!("relu{}", i + 1)));
            in_ch = w;
        }
        net.push(Flatten::new("flat"));
        net.push(Linear::new("fc", in_ch * 64, 4, rng));
        net
    }

    #[test]
    fn copy_transfers_exact_weights() {
        let mut rng = Rng::seed_from(1);
        let src = net_with_convs(&mut rng, &[4, 6, 8]);
        let mut dst = net_with_convs(&mut rng, &[4, 6, 8]);
        assert!(!conv_prefix_identical(&src, &dst, 3).unwrap());
        let copied = copy_conv_prefix(&src, &mut dst, 2).unwrap();
        assert_eq!(copied, 2);
        assert!(conv_prefix_identical(&src, &dst, 2).unwrap());
        assert!(!conv_prefix_identical(&src, &dst, 3).unwrap()); // 3rd untouched
    }

    #[test]
    fn copy_rejects_shape_mismatch() {
        let mut rng = Rng::seed_from(2);
        let src = net_with_convs(&mut rng, &[4, 6]);
        let mut dst = net_with_convs(&mut rng, &[4, 7]);
        assert!(copy_conv_prefix(&src, &mut dst, 2).is_err());
        assert!(copy_conv_prefix(&src, &mut dst, 1).is_ok()); // first layer matches
    }

    #[test]
    fn copy_rejects_too_many_layers() {
        let mut rng = Rng::seed_from(3);
        let src = net_with_convs(&mut rng, &[4]);
        let mut dst = net_with_convs(&mut rng, &[4, 6]);
        assert!(copy_conv_prefix(&src, &mut dst, 2).is_err());
    }

    #[test]
    fn transfer_and_freeze_full_recipe() {
        let mut rng = Rng::seed_from(4);
        let src = net_with_convs(&mut rng, &[4, 6, 8]);
        let mut dst = net_with_convs(&mut rng, &[4, 6, 8]);
        transfer_and_freeze(&src, &mut dst, 3, 2).unwrap();
        assert!(conv_prefix_identical(&src, &dst, 3).unwrap());
        // First 2 convs (indices 0 and 2) frozen, third conv active.
        assert!(dst.is_frozen(0));
        assert!(dst.is_frozen(2));
        assert!(!dst.is_frozen(4));
        assert!(transfer_and_freeze(&src, &mut dst, 1, 2).is_err());
    }

    #[test]
    fn different_spatial_dims_still_transfer() {
        // Conv weights are (M, N, K, K): spatial input size is irrelevant,
        // which is exactly why the 12x12-patch trunk transfers to the
        // 36x36 inference network.
        let mut rng = Rng::seed_from(5);
        let mut small = Sequential::new("s");
        small.push(Conv2d::new("c1", 1, 4, 4, 4, 3, 1, 1, &mut rng).unwrap());
        let mut big = Sequential::new("b");
        big.push(Conv2d::new("c1", 1, 16, 16, 4, 3, 1, 1, &mut rng).unwrap());
        assert_eq!(copy_conv_prefix(&small, &mut big, 1).unwrap(), 1);
        assert!(conv_prefix_identical(&small, &big, 1).unwrap());
    }
}
