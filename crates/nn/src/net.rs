//! Networks: the [`Network`] trait and the [`Sequential`] container.

use crate::describe::{LayerDesc, NetworkDesc};
use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::Tensor;

/// A trainable network: the interface the optimizer, trainer and
/// serializer work against. Implemented by [`Sequential`] and by
/// [`JigsawNet`](crate::jigsaw::JigsawNet).
pub trait Network: Send {
    /// Runs the network forward.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Propagates the loss gradient, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns an error if no training-mode forward preceded this call.
    fn backward(&mut self, dout: &Tensor) -> Result<Tensor>;

    /// Clears all accumulated gradients.
    fn zero_grads(&mut self);

    /// Visits `(stable-key, parameter, gradient)` for every *trainable*
    /// (non-frozen) parameter. The key is stable across calls while the
    /// freezing pattern is unchanged; optimizers key their state on it.
    fn visit_trainable(&mut self, visitor: &mut dyn FnMut(u64, &mut Tensor, &mut Tensor));

    /// Visits every parameter (frozen or not), for serialization.
    fn visit_all(&mut self, visitor: &mut dyn FnMut(&mut Tensor));

    /// Total scalar parameter count.
    fn param_count(&self) -> usize;

    /// Per-sample multiply-accumulate cost of one training step
    /// (forward + backward), honouring frozen prefixes: frozen layers
    /// are forwarded but never backpropagated.
    fn training_ops_per_sample(&self) -> u64;

    /// Per-sample multiply-accumulate cost of inference.
    fn inference_ops_per_sample(&self) -> u64;
}

/// A feed-forward chain of layers with per-layer freezing.
///
/// Freezing implements the paper's "lock the first *i* CONV layers"
/// experiments (its Fig. 6) and the weight-shared incremental updates:
/// a frozen prefix is executed in evaluation mode during training (no
/// caches, no backward), so fine-tuning a suffix is genuinely cheaper.
///
/// # Examples
///
/// ```
/// use insitu_nn::{Mode, Network, Sequential};
/// use insitu_nn::layers::{Flatten, Linear, Relu};
/// use insitu_tensor::{Rng, Tensor};
///
/// # fn main() -> Result<(), insitu_nn::NnError> {
/// let mut rng = Rng::seed_from(0);
/// let mut net = Sequential::new("mlp");
/// net.push(Flatten::new("flat"));
/// net.push(Linear::new("fc1", 16, 8, &mut rng));
/// net.push(Relu::new("relu1"));
/// net.push(Linear::new("fc2", 8, 4, &mut rng));
/// let x = Tensor::randn([2, 1, 4, 4], 0.0, 1.0, &mut rng);
/// let y = net.forward(&x, Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
    frozen: Vec<bool>,
    /// Index of the first layer that participated in the latest
    /// training-mode forward (backward starts here and stops there).
    first_active: usize,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Sequential {
            name: self.name.clone(),
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            frozen: self.frozen.clone(),
            first_active: self.first_active,
        }
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential { name: name.into(), layers: Vec::new(), frozen: Vec::new(), first_active: 0 }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self.frozen.push(false);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Borrow of layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if `i` is out of range.
    pub fn layer(&self, i: usize) -> Result<&dyn Layer> {
        self.layers
            .get(i)
            .map(|b| b.as_ref() as &dyn Layer)
            .ok_or_else(|| NnError::NoSuchLayer { layer: format!("index {i}") })
    }

    /// Mutable borrow of layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if `i` is out of range.
    pub fn layer_mut(&mut self, i: usize) -> Result<&mut (dyn Layer + 'static)> {
        self.layers
            .get_mut(i)
            .map(|b| b.as_mut())
            .ok_or_else(|| NnError::NoSuchLayer { layer: format!("index {i}") })
    }

    /// Layer names in order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Indices of the convolutional layers, in order.
    pub fn conv_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.kind() == LayerKind::Conv)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of convolutional layers.
    pub fn conv_count(&self) -> usize {
        self.conv_indices().len()
    }

    /// Freezes or thaws layer `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if `i` is out of range.
    pub fn set_frozen(&mut self, i: usize, frozen: bool) -> Result<()> {
        if i >= self.frozen.len() {
            return Err(NnError::NoSuchLayer { layer: format!("index {i}") });
        }
        self.frozen[i] = frozen;
        Ok(())
    }

    /// Whether layer `i` is frozen (out-of-range indices read as false).
    pub fn is_frozen(&self, i: usize) -> bool {
        self.frozen.get(i).copied().unwrap_or(false)
    }

    /// Implements the paper's `CONV-i` locking: freezes every layer up
    /// to and including the `n`-th convolutional layer (1-based count;
    /// `n = 0` thaws everything). Intervening activation/pool layers in
    /// the frozen prefix are frozen too (they have no parameters, but
    /// this lets the trainer skip their caches).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if the network has fewer than
    /// `n` convolutional layers.
    pub fn freeze_first_convs(&mut self, n: usize) -> Result<()> {
        let convs = self.conv_indices();
        if n > convs.len() {
            return Err(NnError::NoSuchLayer {
                layer: format!("conv #{n} (network has {})", convs.len()),
            });
        }
        let cutoff = if n == 0 { 0 } else { convs[n - 1] + 1 };
        for i in 0..self.layers.len() {
            self.frozen[i] = i < cutoff;
        }
        Ok(())
    }

    /// Number of frozen layers.
    pub fn frozen_count(&self) -> usize {
        self.frozen.iter().filter(|&&f| f).count()
    }

    /// Analytical description of the compute-relevant layers.
    pub fn describe(&self) -> NetworkDesc {
        NetworkDesc::new(
            self.name.clone(),
            self.layers.iter().filter_map(|l| l.describe()).collect(),
        )
    }

    /// Convenience: evaluation-mode forward.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward(input, Mode::Eval)
    }

    /// Index of the first non-frozen layer (== `len()` if all frozen).
    pub fn first_unfrozen(&self) -> usize {
        self.frozen.iter().position(|&f| !f).unwrap_or(self.layers.len())
    }

    /// Runs only the frozen prefix — the layers before
    /// [`first_unfrozen`](Sequential::first_unfrozen) — in `Eval` mode,
    /// exactly as [`forward`](Network::forward) runs them during
    /// training. The output is deterministic and immutable while the
    /// freezing pattern and the frozen weights are unchanged, which is
    /// what makes it cacheable: feeding it to
    /// [`forward_from`](Sequential::forward_from) at the first unfrozen
    /// layer reproduces the full forward bit for bit.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    pub fn forward_prefix(&mut self, input: &Tensor) -> Result<Tensor> {
        let cut = self.first_unfrozen();
        let mut x = input.clone();
        for layer in self.layers[..cut].iter_mut() {
            x = layer.forward_owned(x, Mode::Eval)?;
        }
        Ok(x)
    }

    /// Resumes a forward pass at layer `start`, consuming a precomputed
    /// activation (normally the output of
    /// [`forward_prefix`](Sequential::forward_prefix) with
    /// `start == first_unfrozen()`). The per-layer mode rule is the one
    /// [`forward`](Network::forward) applies — frozen layers run `Eval`
    /// even while training — and a `Train`-mode call records the
    /// backward stop exactly as the full forward would, so
    /// [`backward`](Network::backward) needs no changes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoSuchLayer`] if `start > len()`, or
    /// [`NnError::NoForwardCache`] for a `Train`-mode call with
    /// `start > first_unfrozen()` (layers in between would be skipped
    /// by backward yet still visited by the optimizer).
    pub fn forward_from(&mut self, start: usize, input: &Tensor, mode: Mode) -> Result<Tensor> {
        if start > self.layers.len() {
            return Err(NnError::NoSuchLayer { layer: format!("index {start}") });
        }
        let first_unfrozen = self.first_unfrozen();
        if mode == Mode::Train && start > first_unfrozen {
            return Err(NnError::NoForwardCache {
                layer: format!(
                    "forward_from({start}) past first unfrozen layer {first_unfrozen}"
                ),
            });
        }
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().skip(start) {
            let layer_mode = if mode == Mode::Train && i < first_unfrozen {
                Mode::Eval
            } else {
                mode
            };
            x = layer.forward_owned(x, layer_mode)?;
        }
        if mode == Mode::Train {
            self.first_active = first_unfrozen;
        }
        Ok(x)
    }

    /// Output shape of the frozen prefix for a batched input shape
    /// (batch dimension included), without running any compute.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with a
    /// prefix layer.
    pub fn prefix_output_dims(&self, input: &[usize]) -> Result<Vec<usize>> {
        let mut dims = input.to_vec();
        for layer in &self.layers[..self.first_unfrozen()] {
            dims = layer.output_shape(&dims)?;
        }
        Ok(dims)
    }

    /// A 64-bit FNV-1a fingerprint of the frozen prefix: the freezing
    /// cut, every prefix layer's name, kind and parameter shapes, and
    /// the exact bits of every prefix weight. Any transfer, re-deploy
    /// or change of the `frozen_convs` pattern yields a different
    /// value, so cached prefix activations keyed on it can never be
    /// served stale.
    pub fn prefix_fingerprint(&mut self) -> u64 {
        let mut h = Fnv::new();
        let cut = self.first_unfrozen();
        h.u64(cut as u64);
        for i in 0..cut {
            let layer = &mut self.layers[i];
            h.u64(i as u64);
            h.bytes(layer.name().as_bytes());
            h.u64(kind_tag(layer.kind()));
            layer.visit_params(&mut |p, _| {
                h.u64(p.dims().len() as u64);
                for &d in p.dims() {
                    h.u64(d as u64);
                }
                for &x in p.as_slice() {
                    h.u64(u64::from(x.to_bits()));
                }
            });
        }
        h.finish()
    }
}

/// Streaming FNV-1a over 64-bit words and byte strings.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable discriminant for hashing a [`LayerKind`].
fn kind_tag(kind: LayerKind) -> u64 {
    match kind {
        LayerKind::Conv => 1,
        LayerKind::Fc => 2,
        LayerKind::Activation => 3,
        LayerKind::Pool => 4,
        LayerKind::Reshape => 5,
        LayerKind::Regularizer => 6,
    }
}

impl Network for Sequential {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let first_unfrozen = self.first_unfrozen();
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            // A frozen prefix never needs backward: run it in Eval mode
            // even while training so no caches are kept.
            let layer_mode = if mode == Mode::Train && i < first_unfrozen {
                Mode::Eval
            } else {
                mode
            };
            // forward_owned lets in-place layers (ReLU) rewrite the
            // intermediate activation instead of allocating a copy.
            x = layer.forward_owned(x, layer_mode)?;
        }
        if mode == Mode::Train {
            self.first_active = first_unfrozen;
        }
        Ok(x)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let stop = self.first_active;
        let mut g = dout.clone();
        for layer in self.layers[stop..].iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    fn visit_trainable(&mut self, visitor: &mut dyn FnMut(u64, &mut Tensor, &mut Tensor)) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if self.frozen[i] {
                continue;
            }
            let mut param_idx = 0u64;
            layer.visit_params(&mut |p, g| {
                visitor(((i as u64) << 8) | param_idx, p, g);
                param_idx += 1;
            });
        }
    }

    fn visit_all(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        for layer in self.layers.iter_mut() {
            layer.visit_params(&mut |p, _| visitor(p));
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn training_ops_per_sample(&self) -> u64 {
        let first_unfrozen = self.first_unfrozen();
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.describe().map(|d| (i, d)))
            .map(|(i, d)| {
                // Forward always; backward (≈2x forward: dX and dW GEMMs)
                // only for the active suffix.
                if i >= first_unfrozen {
                    3 * d.ops()
                } else {
                    d.ops()
                }
            })
            .sum()
    }

    fn inference_ops_per_sample(&self) -> u64 {
        self.layers.iter().filter_map(|l| l.describe()).map(|d| d.ops()).sum()
    }
}

/// Splits a `NetworkDesc` by layer type; helper shared by experiments.
pub fn split_desc(desc: &NetworkDesc) -> (Vec<LayerDesc>, Vec<LayerDesc>) {
    (desc.conv_layers(), desc.fc_layers())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use insitu_tensor::Rng;

    fn tiny_cnn(rng: &mut Rng) -> Sequential {
        let mut net = Sequential::new("tiny");
        net.push(Conv2d::new("conv1", 1, 8, 8, 4, 3, 1, 1, rng).unwrap());
        net.push(Relu::new("relu1"));
        net.push(MaxPool2d::new("pool1", 4, 8, 8, 2, 2).unwrap());
        net.push(Conv2d::new("conv2", 4, 4, 4, 6, 3, 1, 1, rng).unwrap());
        net.push(Relu::new("relu2"));
        net.push(Flatten::new("flat"));
        net.push(Linear::new("fc", 6 * 4 * 4, 3, rng));
        net
    }

    #[test]
    fn forward_shapes_chain() {
        let mut rng = Rng::seed_from(1);
        let mut net = tiny_cnn(&mut rng);
        let x = Tensor::randn([2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn backward_through_whole_net() {
        let mut rng = Rng::seed_from(2);
        let mut net = tiny_cnn(&mut rng);
        let x = Tensor::randn([2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::filled(y.shape().clone(), 1.0)).unwrap();
        assert_eq!(dx.dims(), x.dims());
    }

    #[test]
    fn conv_indices_and_freeze() {
        let mut rng = Rng::seed_from(3);
        let mut net = tiny_cnn(&mut rng);
        assert_eq!(net.conv_indices(), vec![0, 3]);
        assert_eq!(net.conv_count(), 2);
        net.freeze_first_convs(1).unwrap();
        assert!(net.is_frozen(0));
        assert!(!net.is_frozen(1)); // relu after conv1 stays active
        net.freeze_first_convs(2).unwrap();
        assert!((0..=3).all(|i| net.is_frozen(i)));
        assert!(!net.is_frozen(4));
        assert!(net.freeze_first_convs(3).is_err());
        net.freeze_first_convs(0).unwrap();
        assert_eq!(net.frozen_count(), 0);
    }

    #[test]
    fn frozen_layers_do_not_train() {
        let mut rng = Rng::seed_from(4);
        let mut net = tiny_cnn(&mut rng);
        net.freeze_first_convs(1).unwrap();
        let mut keys = Vec::new();
        net.visit_trainable(&mut |k, _, _| keys.push(k));
        // conv1 (layer 0) excluded: only conv2 (layer 3) and fc (layer 6).
        assert_eq!(keys.len(), 4); // 2 layers x (weight, bias)
        assert!(keys.iter().all(|&k| (k >> 8) != 0));
    }

    #[test]
    fn frozen_prefix_backward_still_works() {
        let mut rng = Rng::seed_from(5);
        let mut net = tiny_cnn(&mut rng);
        net.freeze_first_convs(1).unwrap();
        let x = Tensor::randn([1, 1, 8, 8], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        // Backward must succeed and stop before the frozen prefix.
        let g = net.backward(&Tensor::filled(y.shape().clone(), 1.0)).unwrap();
        // Gradient returned is w.r.t. the first active layer's input:
        // relu1's input, i.e. conv1's output (4 x 8 x 8).
        assert_eq!(g.dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn training_ops_drop_with_freezing() {
        let mut rng = Rng::seed_from(6);
        let mut net = tiny_cnn(&mut rng);
        let full = net.training_ops_per_sample();
        net.freeze_first_convs(1).unwrap();
        let partial = net.training_ops_per_sample();
        assert!(partial < full);
        assert!(partial >= net.inference_ops_per_sample());
    }

    #[test]
    fn describe_lists_compute_layers() {
        let mut rng = Rng::seed_from(7);
        let net = tiny_cnn(&mut rng);
        let d = net.describe();
        assert_eq!(d.layers.len(), 3); // 2 convs + 1 fc
        assert_eq!(d.conv_layers().len(), 2);
        assert_eq!(d.fc_layers().len(), 1);
    }

    #[test]
    fn empty_network_identity() {
        let mut net = Sequential::new("empty");
        assert!(net.is_empty());
        let x = Tensor::filled([1, 2], 3.0);
        assert_eq!(net.forward(&x, Mode::Eval).unwrap(), x);
        assert_eq!(net.param_count(), 0);
    }

    #[test]
    fn layer_accessors() {
        let mut rng = Rng::seed_from(8);
        let net = tiny_cnn(&mut rng);
        assert_eq!(net.layer(0).unwrap().name(), "conv1");
        assert!(net.layer(99).is_err());
        assert_eq!(net.layer_names()[6], "fc");
    }

    #[test]
    fn prefix_then_suffix_matches_full_forward_bitwise() {
        let mut rng = Rng::seed_from(9);
        let mut net = tiny_cnn(&mut rng);
        net.freeze_first_convs(1).unwrap();
        let cut = net.first_unfrozen();
        assert_eq!(cut, 1); // everything up to and including conv1
        let x = Tensor::randn([3, 1, 8, 8], 0.0, 1.0, &mut rng);
        for mode in [Mode::Eval, Mode::Train] {
            let full = net.forward(&x, mode).unwrap();
            let act = net.forward_prefix(&x).unwrap();
            assert_eq!(act.dims(), net.prefix_output_dims(&[3, 1, 8, 8]).unwrap().as_slice());
            let split = net.forward_from(cut, &act, mode).unwrap();
            assert_eq!(full.as_slice(), split.as_slice(), "{mode:?} split forward diverged");
        }
    }

    #[test]
    fn forward_from_supports_backward() {
        let mut rng = Rng::seed_from(10);
        let mut net = tiny_cnn(&mut rng);
        net.freeze_first_convs(1).unwrap();
        let cut = net.first_unfrozen();
        let x = Tensor::randn([2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let act = net.forward_prefix(&x).unwrap();
        let y = net.forward_from(cut, &act, Mode::Train).unwrap();
        net.backward(&Tensor::filled(y.shape().clone(), 1.0)).unwrap();
        // Train-mode resume past the first unfrozen layer is rejected:
        // the skipped trainable layers would silently take no gradient.
        assert!(net.forward_from(cut + 1, &act, Mode::Train).is_err());
        assert!(net.forward_from(net.len() + 1, &act, Mode::Eval).is_err());
    }

    #[test]
    fn unfrozen_prefix_is_empty() {
        let mut rng = Rng::seed_from(11);
        let mut net = tiny_cnn(&mut rng);
        assert_eq!(net.first_unfrozen(), 0);
        let x = Tensor::randn([2, 1, 8, 8], 0.0, 1.0, &mut rng);
        // With nothing frozen the prefix is the identity.
        assert_eq!(net.forward_prefix(&x).unwrap(), x);
        assert_eq!(net.prefix_output_dims(&[2, 1, 8, 8]).unwrap(), vec![2, 1, 8, 8]);
    }

    #[test]
    fn prefix_fingerprint_tracks_weights_and_freezing() {
        let mut rng = Rng::seed_from(12);
        let mut net = tiny_cnn(&mut rng);
        net.freeze_first_convs(1).unwrap();
        let base = net.prefix_fingerprint();
        assert_eq!(net.prefix_fingerprint(), base, "fingerprint not stable");

        // A different freezing cut changes the fingerprint.
        let mut two = tiny_cnn(&mut Rng::seed_from(12));
        two.freeze_first_convs(2).unwrap();
        assert_ne!(two.prefix_fingerprint(), base);

        // Re-initialized weights (a transfer/re-deploy) change it.
        let mut other = tiny_cnn(&mut Rng::seed_from(13));
        other.freeze_first_convs(1).unwrap();
        assert_ne!(other.prefix_fingerprint(), base);

        // Perturbing a single frozen weight bit changes it.
        let mut nudged = tiny_cnn(&mut Rng::seed_from(12));
        nudged.freeze_first_convs(1).unwrap();
        assert_eq!(nudged.prefix_fingerprint(), base);
        nudged.layer_mut(0).unwrap().visit_params(&mut |p, _| {
            let v = p.as_mut_slice();
            v[0] += 1.0;
        });
        assert_ne!(nudged.prefix_fingerprint(), base);

        // Suffix weights are not part of the key: nudging the fc layer
        // leaves the fingerprint unchanged.
        let mut suffix = tiny_cnn(&mut Rng::seed_from(12));
        suffix.freeze_first_convs(1).unwrap();
        suffix.layer_mut(6).unwrap().visit_params(&mut |p, _| {
            let v = p.as_mut_slice();
            v[0] += 1.0;
        });
        assert_eq!(suffix.prefix_fingerprint(), base);
    }
}
