//! Weight snapshots: in-memory state dicts and a tiny self-contained
//! binary file format (no external codec dependency).

use crate::error::NnError;
use crate::net::Network;
use crate::Result;
use insitu_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes identifying a snapshot file.
const MAGIC: &[u8; 8] = b"INSITU01";

/// Clones every parameter tensor of a network, frozen or not.
pub fn state_dict(net: &mut dyn Network) -> Vec<Tensor> {
    let mut params = Vec::new();
    net.visit_all(&mut |p| params.push(p.clone()));
    params
}

/// Writes a state dict back into a network.
///
/// # Errors
///
/// Returns [`NnError::SnapshotMismatch`] if the parameter count or any
/// shape differs.
pub fn load_state_dict(net: &mut dyn Network, params: &[Tensor]) -> Result<()> {
    let mut idx = 0usize;
    let mut failure: Option<NnError> = None;
    net.visit_all(&mut |p| {
        if failure.is_some() {
            return;
        }
        match params.get(idx) {
            None => {
                failure = Some(NnError::SnapshotMismatch {
                    reason: format!("snapshot has only {} tensors", params.len()),
                });
            }
            Some(src) => {
                if p.copy_from(src).is_err() {
                    failure = Some(NnError::SnapshotMismatch {
                        reason: format!(
                            "tensor {idx}: network {} vs snapshot {}",
                            p.shape(),
                            src.shape()
                        ),
                    });
                }
            }
        }
        idx += 1;
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if idx != params.len() {
        return Err(NnError::SnapshotMismatch {
            reason: format!("network has {idx} tensors, snapshot has {}", params.len()),
        });
    }
    Ok(())
}

/// Serializes a state dict to a writer in the `INSITU01` binary format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_snapshot<W: Write>(mut w: W, params: &[Tensor]) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u64).to_le_bytes())?;
    for t in params {
        let dims = t.dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in t.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes a state dict from a reader.
///
/// # Errors
///
/// Returns an I/O error with kind `InvalidData` on a malformed stream.
pub fn read_snapshot<R: Read>(mut r: R) -> std::io::Result<Vec<Tensor>> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an INSITU01 snapshot"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8) as usize;
    if count > 1 << 20 {
        return Err(bad("unreasonable tensor count"));
    }
    let mut params = Vec::with_capacity(count);
    for _ in 0..count {
        let mut buf4 = [0u8; 4];
        r.read_exact(&mut buf4)?;
        let ndim = u32::from_le_bytes(buf4) as usize;
        if ndim > 16 {
            return Err(bad("unreasonable rank"));
        }
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            r.read_exact(&mut buf8)?;
            dims.push(u64::from_le_bytes(buf8) as usize);
        }
        let len: usize = dims.iter().product();
        if len > 1 << 28 {
            return Err(bad("unreasonable tensor size"));
        }
        let mut data = vec![0f32; len];
        for x in &mut data {
            r.read_exact(&mut buf4)?;
            *x = f32::from_le_bytes(buf4);
        }
        params.push(
            Tensor::from_vec(dims.as_slice(), data).map_err(|e| bad(&e.to_string()))?,
        );
    }
    Ok(params)
}

/// Saves a network's parameters to a file.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn save_to_file(net: &mut dyn Network, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_snapshot(std::io::BufWriter::new(file), &state_dict(net))
}

/// Loads a network's parameters from a file written by [`save_to_file`].
///
/// # Errors
///
/// Returns an error on I/O failure or if the snapshot does not match
/// the network.
pub fn load_from_file(net: &mut dyn Network, path: impl AsRef<Path>) -> Result<()> {
    let file = std::fs::File::open(path).map_err(|e| NnError::SnapshotMismatch {
        reason: format!("cannot open snapshot: {e}"),
    })?;
    let params = read_snapshot(std::io::BufReader::new(file)).map_err(|e| {
        NnError::SnapshotMismatch { reason: format!("cannot read snapshot: {e}") }
    })?;
    load_state_dict(net, &params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Linear};
    use crate::net::Sequential;
    use insitu_tensor::Rng;

    fn net(rng: &mut Rng) -> Sequential {
        let mut n = Sequential::new("n");
        n.push(Conv2d::new("c", 1, 4, 4, 2, 3, 1, 1, rng).unwrap());
        n.push(Linear::new("fc", 32, 3, rng));
        n
    }

    #[test]
    fn state_dict_roundtrip_in_memory() {
        let mut rng = Rng::seed_from(1);
        let mut a = net(&mut rng);
        let mut b = net(&mut rng);
        let dict = state_dict(&mut a);
        assert_eq!(dict.len(), 4); // 2 layers x (weight, bias)
        load_state_dict(&mut b, &dict).unwrap();
        assert_eq!(state_dict(&mut b), dict);
    }

    #[test]
    fn mismatched_dict_rejected() {
        let mut rng = Rng::seed_from(2);
        let mut a = net(&mut rng);
        let dict = state_dict(&mut a);
        assert!(load_state_dict(&mut a, &dict[..3]).is_err());
        let mut long = dict.clone();
        long.push(Tensor::zeros([1]));
        assert!(load_state_dict(&mut a, &long).is_err());
        let mut wrong_shape = dict;
        wrong_shape[0] = Tensor::zeros([9, 9]);
        assert!(load_state_dict(&mut a, &wrong_shape).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let mut rng = Rng::seed_from(3);
        let mut a = net(&mut rng);
        let dict = state_dict(&mut a);
        let mut buf = Vec::new();
        write_snapshot(&mut buf, &dict).unwrap();
        let restored = read_snapshot(buf.as_slice()).unwrap();
        assert_eq!(restored, dict);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_snapshot(&b"garbage!"[..]).is_err());
        assert!(read_snapshot(&b"INSITU01"[..]).is_err()); // truncated
    }

    #[test]
    fn file_roundtrip() {
        let mut rng = Rng::seed_from(4);
        let mut a = net(&mut rng);
        let mut b = net(&mut rng);
        let path = std::env::temp_dir().join("insitu_nn_snapshot_test.bin");
        save_to_file(&mut a, &path).unwrap();
        load_from_file(&mut b, &path).unwrap();
        assert_eq!(state_dict(&mut a), state_dict(&mut b));
        let _ = std::fs::remove_file(&path);
    }
}
