//! Trainable 2-D convolution layer.

use crate::describe::LayerDesc;
use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::{conv2d_backward_ws, conv2d_forward_ws, ConvGeometry, ConvWorkspace, Rng, Tensor};

/// A 2-D convolution with bias, square kernel, uniform stride and zero
/// padding.
///
/// Weight layout is `(M, N, K, K)`; initialization is He-normal
/// (`std = sqrt(2 / fan_in)`), appropriate for the ReLU networks used
/// throughout the reproduction.
///
/// The layer owns a [`ConvWorkspace`], so its im2col, GEMM-packing and
/// gradient scratch buffers are allocated once and reused across steps
/// (zero kernel-path heap allocations in steady state); the forward
/// pass stores the im2col matrices there for the backward pass.
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    geom: ConvGeometry,
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    ws: ConvWorkspace,
    /// True after a Train-mode forward, until consumed by `backward`.
    has_cache: bool,
}

impl Conv2d {
    /// Creates a convolution layer with He-initialized weights.
    ///
    /// # Errors
    ///
    /// Returns an error if the geometry is invalid (see
    /// [`ConvGeometry::new`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        let geom =
            ConvGeometry::new(in_channels, in_h, in_w, out_channels, kernel, stride, pad)?;
        let fan_in = (in_channels * kernel * kernel) as f32;
        let std = (2.0 / fan_in).sqrt();
        Ok(Conv2d {
            name: name.into(),
            geom,
            weight: Tensor::randn([out_channels, in_channels, kernel, kernel], 0.0, std, rng),
            bias: Tensor::zeros([out_channels]),
            dweight: Tensor::zeros([out_channels, in_channels, kernel, kernel]),
            dbias: Tensor::zeros([out_channels]),
            ws: ConvWorkspace::new(),
            has_cache: false,
        })
    }

    /// The layer's convolution geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geom
    }

    /// Read-only view of the weights, `(M, N, K, K)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Read-only view of the bias, `(M,)`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Overwrites weights and bias (used by transfer learning).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes disagree with this layer.
    pub fn load(&mut self, weight: &Tensor, bias: &Tensor) -> Result<()> {
        self.weight.copy_from(weight).map_err(NnError::from)?;
        self.bias.copy_from(bias).map_err(NnError::from)?;
        Ok(())
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Conv
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = conv2d_forward_ws(input, &self.weight, &self.bias, &self.geom, &mut self.ws)?;
        self.has_cache = mode == Mode::Train;
        Ok(out)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        if !self.has_cache {
            return Err(NnError::NoForwardCache { layer: self.name.clone() });
        }
        self.has_cache = false;
        let (dx, dw, db) = conv2d_backward_ws(dout, &self.weight, &self.geom, &mut self.ws)?;
        self.dweight.axpy(1.0, &dw)?;
        self.dbias.axpy(1.0, &db)?;
        Ok(dx)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight, &mut self.dweight);
        visitor(&mut self.bias, &mut self.dbias);
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grads(&mut self) {
        self.dweight.fill_zero();
        self.dbias.fill_zero();
    }

    fn describe(&self) -> Option<LayerDesc> {
        Some(LayerDesc::Conv {
            m: self.geom.out_channels,
            n: self.geom.in_channels,
            k: self.geom.kernel,
            r: self.geom.out_h,
            c: self.geom.out_w,
        })
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.len() != 4
            || input[1] != self.geom.in_channels
            || input[2] != self.geom.in_h
            || input[3] != self.geom.in_w
        {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![0, self.geom.in_channels, self.geom.in_h, self.geom.in_w],
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], self.geom.out_channels, self.geom.out_h, self.geom.out_w])
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(rng: &mut Rng) -> Conv2d {
        Conv2d::new("c", 2, 6, 6, 3, 3, 1, 1, rng).unwrap()
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from(1);
        let mut l = layer(&mut rng);
        let x = Tensor::randn([4, 2, 6, 6], 0.0, 1.0, &mut rng);
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 3, 6, 6]);
        assert_eq!(l.output_shape(&[4, 2, 6, 6]).unwrap(), vec![4, 3, 6, 6]);
        assert!(l.output_shape(&[4, 3, 6, 6]).is_err());
    }

    #[test]
    fn backward_requires_train_forward() {
        let mut rng = Rng::seed_from(2);
        let mut l = layer(&mut rng);
        let x = Tensor::randn([1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let _ = l.forward(&x, Mode::Eval).unwrap();
        assert!(l.backward(&Tensor::zeros([1, 3, 6, 6])).is_err());
        let _ = l.forward(&x, Mode::Train).unwrap();
        assert!(l.backward(&Tensor::zeros([1, 3, 6, 6])).is_ok());
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut rng = Rng::seed_from(3);
        let mut l = layer(&mut rng);
        let x = Tensor::randn([1, 2, 6, 6], 0.0, 1.0, &mut rng);
        let dout = Tensor::filled([1, 3, 6, 6], 1.0);
        let _ = l.forward(&x, Mode::Train).unwrap();
        let _ = l.backward(&dout).unwrap();
        let g1 = l.dweight.clone();
        let _ = l.forward(&x, Mode::Train).unwrap();
        let _ = l.backward(&dout).unwrap();
        // Second backward accumulates: grads doubled.
        let mut doubled = g1.clone();
        doubled.scale(2.0);
        assert!(l.dweight.max_abs_diff(&doubled).unwrap() < 1e-4);
        l.zero_grads();
        assert_eq!(l.dweight.sum(), 0.0);
        assert_eq!(l.dbias.sum(), 0.0);
    }

    #[test]
    fn param_count_and_describe() {
        let mut rng = Rng::seed_from(4);
        let l = layer(&mut rng);
        assert_eq!(l.param_count(), 3 * 2 * 9 + 3);
        match l.describe().unwrap() {
            LayerDesc::Conv { m, n, k, r, c } => {
                assert_eq!((m, n, k, r, c), (3, 2, 3, 6, 6));
            }
            _ => panic!("expected conv desc"),
        }
    }

    #[test]
    fn he_init_scale() {
        let mut rng = Rng::seed_from(5);
        let l = Conv2d::new("c", 16, 8, 8, 64, 3, 1, 1, &mut rng).unwrap();
        let std_expected = (2.0f32 / (16.0 * 9.0)).sqrt();
        let w = l.weight();
        let mean = w.mean();
        let var = w.as_slice().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>()
            / w.len() as f32;
        assert!(mean.abs() < 0.01);
        assert!((var.sqrt() - std_expected).abs() / std_expected < 0.15);
    }

    #[test]
    fn load_transfers_weights() {
        let mut rng = Rng::seed_from(6);
        let mut a = layer(&mut rng);
        let b = layer(&mut rng);
        assert!(a.weight().max_abs_diff(b.weight()).unwrap() > 0.0);
        a.load(b.weight(), b.bias()).unwrap();
        assert_eq!(a.weight(), b.weight());
        assert!(a.load(&Tensor::zeros([1, 1, 1, 1]), b.bias()).is_err());
    }
}
