//! ReLU activation.

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::{simd, Tensor};

/// Rectified linear unit: `y = max(0, x)`, applied elementwise.
///
/// Computes in place through [`Layer::forward_owned`] — the hot path
/// in [`Sequential`](crate::Sequential) — so steady-state forwards
/// allocate nothing: the activation buffer is rewritten where it
/// stands and the training keep-mask is a persistent bit-packed
/// buffer (one *bit* per element, 1/32 the traffic of the `Vec<bool>`
/// it replaced) that is reused across steps.
#[derive(Debug, Clone)]
pub struct Relu {
    name: String,
    /// Bit-packed keep mask from the last training forward; kept
    /// allocated across steps.
    mask: Vec<u8>,
    /// `Some(n)`: `mask` is valid for an `n`-element activation and
    /// backward has not consumed it yet.
    mask_elems: Option<usize>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new(name: impl Into<String>) -> Self {
        Relu { name: name.into(), mask: Vec::new(), mask_elems: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        self.forward_owned(input.clone(), mode)
    }

    fn forward_owned(&mut self, mut input: Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => {
                simd::relu(input.as_mut_slice());
                self.mask_elems = None;
            }
            Mode::Train => {
                let n = input.len();
                self.mask.resize(n.div_ceil(8), 0);
                simd::relu_train(input.as_mut_slice(), &mut self.mask);
                self.mask_elems = Some(n);
            }
        }
        Ok(input)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let n = self.mask_elems.take().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        if n != dout.len() {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![n],
                actual: vec![dout.len()],
            });
        }
        let mut dx = dout.clone();
        simd::relu_backward(dx.as_mut_slice(), &self.mask);
        Ok(dx)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negative() {
        let mut l = Relu::new("r");
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn forward_owned_computes_in_place() {
        let mut l = Relu::new("r");
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        let ptr = x.as_slice().as_ptr();
        let y = l.forward_owned(x, Mode::Train).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.5, 2.0, 0.0]);
        assert_eq!(y.as_slice().as_ptr(), ptr, "owned forward must reuse the input buffer");
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = Relu::new("r");
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        let _ = l.forward(&x, Mode::Train).unwrap();
        let dout = Tensor::filled([4], 1.0);
        let dx = l.backward(&dout).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn mask_allocation_is_reused_across_steps() {
        let mut l = Relu::new("r");
        for _ in 0..3 {
            let x = Tensor::from_vec([9], (0..9).map(|i| i as f32 - 4.0).collect()).unwrap();
            let _ = l.forward(&x, Mode::Train).unwrap();
            let dx = l.backward(&Tensor::filled([9], 1.0)).unwrap();
            assert_eq!(dx.as_slice(), &[0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
        }
        assert_eq!(l.mask.len(), 2);
    }

    #[test]
    fn zero_input_has_zero_grad() {
        // Subgradient convention: d/dx relu(0) = 0.
        let mut l = Relu::new("r");
        let x = Tensor::zeros([2]);
        let _ = l.forward(&x, Mode::Train).unwrap();
        let dx = l.backward(&Tensor::filled([2], 5.0)).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = Relu::new("r");
        assert!(l.backward(&Tensor::zeros([1])).is_err());
    }

    #[test]
    fn shape_passthrough() {
        let l = Relu::new("r");
        assert_eq!(l.output_shape(&[2, 3, 4, 5]).unwrap(), vec![2, 3, 4, 5]);
        assert_eq!(l.param_count(), 0);
    }
}
