//! ReLU activation.

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`, applied elementwise.
#[derive(Debug, Clone)]
pub struct Relu {
    name: String,
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation layer.
    pub fn new(name: impl Into<String>) -> Self {
        Relu { name: name.into(), mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Activation
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let out = input.map(|x| x.max(0.0));
        if mode == Mode::Train {
            self.mask = Some(input.as_slice().iter().map(|&x| x > 0.0).collect());
        } else {
            self.mask = None;
        }
        Ok(out)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let mask = self.mask.take().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        if mask.len() != dout.len() {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![mask.len()],
                actual: vec![dout.len()],
            });
        }
        let mut dx = dout.clone();
        for (g, &m) in dx.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(dx)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negative() {
        let mut l = Relu::new("r");
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut l = Relu::new("r");
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, 2.0, -3.0]).unwrap();
        let _ = l.forward(&x, Mode::Train).unwrap();
        let dout = Tensor::filled([4], 1.0);
        let dx = l.backward(&dout).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_input_has_zero_grad() {
        // Subgradient convention: d/dx relu(0) = 0.
        let mut l = Relu::new("r");
        let x = Tensor::zeros([2]);
        let _ = l.forward(&x, Mode::Train).unwrap();
        let dx = l.backward(&Tensor::filled([2], 5.0)).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = Relu::new("r");
        assert!(l.backward(&Tensor::zeros([1])).is_err());
    }

    #[test]
    fn shape_passthrough() {
        let l = Relu::new("r");
        assert_eq!(l.output_shape(&[2, 3, 4, 5]).unwrap(), vec![2, 3, 4, 5]);
        assert_eq!(l.param_count(), 0);
    }
}
