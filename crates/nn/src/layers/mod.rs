//! The built-in trainable and structural layers.

mod conv2d;
mod dropout;
mod flatten;
mod linear;
mod maxpool;
mod relu;

pub use conv2d::Conv2d;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use linear::Linear;
pub use maxpool::MaxPool2d;
pub use relu::Relu;
