//! Inverted dropout.

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::{Rng, Tensor};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation
/// is a no-op.
#[derive(Debug, Clone)]
pub struct Dropout {
    name: String,
    p: f32,
    rng: Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(name: impl Into<String>, p: f32, rng: &mut Rng) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Dropout { name: name.into(), p, rng: rng.fork(), mask: None }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Regularizer
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match mode {
            Mode::Eval => {
                self.mask = None;
                Ok(input.clone())
            }
            Mode::Train => {
                let keep = 1.0 - self.p;
                let mask: Vec<f32> = (0..input.len())
                    .map(|_| if self.rng.chance(keep) { 1.0 / keep } else { 0.0 })
                    .collect();
                let mut out = input.clone();
                for (o, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
                    *o *= m;
                }
                self.mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let mask = self.mask.take().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        if mask.len() != dout.len() {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![mask.len()],
                actual: vec![dout.len()],
            });
        }
        let mut dx = dout.clone();
        for (g, &m) in dx.as_mut_slice().iter_mut().zip(&mask) {
            *g *= m;
        }
        Ok(dx)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        Ok(input.to_vec())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut rng = Rng::seed_from(1);
        let mut l = Dropout::new("d", 0.5, &mut rng);
        let x = Tensor::filled([100], 1.0);
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn train_preserves_expectation() {
        let mut rng = Rng::seed_from(2);
        let mut l = Dropout::new("d", 0.3, &mut rng);
        let x = Tensor::filled([20_000], 1.0);
        let y = l.forward(&x, Mode::Train).unwrap();
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Survivors are scaled by 1/(1-p).
        let survivors: Vec<f32> =
            y.as_slice().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(survivors.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-5));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = Rng::seed_from(3);
        let mut l = Dropout::new("d", 0.5, &mut rng);
        let x = Tensor::filled([64], 1.0);
        let y = l.forward(&x, Mode::Train).unwrap();
        let dx = l.backward(&Tensor::filled([64], 1.0)).unwrap();
        // Gradient flows exactly where activations flowed.
        for (yi, di) in y.as_slice().iter().zip(dx.as_slice()) {
            assert_eq!(yi == &0.0, di == &0.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let mut rng = Rng::seed_from(4);
        let _ = Dropout::new("d", 1.0, &mut rng);
    }
}
