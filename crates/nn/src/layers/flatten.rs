//! Flatten layer: `(B, C, H, W)` → `(B, C·H·W)`.

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::Tensor;

/// Reshapes a batched feature map into a batched feature vector; the
/// adapter between convolutional and fully connected stages.
#[derive(Debug, Clone)]
pub struct Flatten {
    name: String,
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new(name: impl Into<String>) -> Self {
        Flatten { name: name.into(), input_dims: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Reshape
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.is_empty() {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![0, 0],
                actual: d.to_vec(),
            });
        }
        let batch = d[0];
        let rest: usize = d[1..].iter().product();
        if mode == Mode::Train {
            self.input_dims = Some(d.to_vec());
        } else {
            self.input_dims = None;
        }
        Ok(input.reshape([batch, rest])?)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let dims = self.input_dims.take().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        Ok(dout.reshape(dims.as_slice())?)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.is_empty() {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![0, 0],
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], input[1..].iter().product()])
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut l = Flatten::new("f");
        let x = Tensor::from_vec([2, 3, 2, 2], (0..24).map(|i| i as f32).collect()).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let dx = l.backward(&y).unwrap();
        assert_eq!(dx.dims(), &[2, 3, 2, 2]);
        assert_eq!(dx.as_slice(), x.as_slice());
    }

    #[test]
    fn output_shape_math() {
        let l = Flatten::new("f");
        assert_eq!(l.output_shape(&[4, 8, 3, 3]).unwrap(), vec![4, 72]);
        assert_eq!(l.output_shape(&[4, 10]).unwrap(), vec![4, 10]);
    }
}
