//! Max-pooling layer.

use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::{maxpool2d_backward, maxpool2d_forward, PoolGeometry, Tensor};

/// 2-D max pooling with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    name: String,
    geom: PoolGeometry,
    cache: Option<(Vec<usize>, usize)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns an error if the pooling geometry is invalid.
    pub fn new(
        name: impl Into<String>,
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        Ok(MaxPool2d {
            name: name.into(),
            geom: PoolGeometry::new(channels, in_h, in_w, window, stride)?,
            cache: None,
        })
    }

    /// The pooling geometry.
    pub fn geometry(&self) -> &PoolGeometry {
        &self.geom
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Pool
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, argmax) = maxpool2d_forward(input, &self.geom)?;
        if mode == Mode::Train {
            self.cache = Some((argmax, input.dims()[0]));
        } else {
            self.cache = None;
        }
        Ok(out)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let (argmax, batch) = self.cache.take().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        Ok(maxpool2d_backward(dout, &argmax, &self.geom, batch)?)
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.len() != 4
            || input[1] != self.geom.channels
            || input[2] != self.geom.in_h
            || input[3] != self.geom.in_w
        {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![0, self.geom.channels, self.geom.in_h, self.geom.in_w],
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], self.geom.channels, self.geom.out_h, self.geom.out_w])
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_tensor::Rng;

    #[test]
    fn forward_backward_roundtrip() {
        let mut l = MaxPool2d::new("p", 1, 4, 4, 2, 2).unwrap();
        let x = Tensor::from_vec([1, 1, 4, 4], (0..16).map(|i| i as f32).collect()).unwrap();
        let y = l.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let dx = l.backward(&Tensor::filled([1, 1, 2, 2], 1.0)).unwrap();
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn eval_mode_keeps_no_cache() {
        let mut l = MaxPool2d::new("p", 1, 4, 4, 2, 2).unwrap();
        let x = Tensor::zeros([1, 1, 4, 4]);
        let _ = l.forward(&x, Mode::Eval).unwrap();
        assert!(l.backward(&Tensor::zeros([1, 1, 2, 2])).is_err());
    }

    #[test]
    fn output_shape_checks_input() {
        let l = MaxPool2d::new("p", 3, 8, 8, 2, 2).unwrap();
        assert_eq!(l.output_shape(&[5, 3, 8, 8]).unwrap(), vec![5, 3, 4, 4]);
        assert!(l.output_shape(&[5, 2, 8, 8]).is_err());
    }

    #[test]
    fn pooling_reduces_resolution_only() {
        let mut rng = Rng::seed_from(1);
        let mut l = MaxPool2d::new("p", 2, 6, 6, 2, 2).unwrap();
        let x = Tensor::randn([3, 2, 6, 6], 0.0, 1.0, &mut rng);
        let y = l.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 2, 3, 3]);
        // Every pooled value must exist in the input.
        for &v in y.as_slice() {
            assert!(x.as_slice().contains(&v));
        }
    }
}
