//! Trainable fully connected layer.

use crate::describe::LayerDesc;
use crate::error::NnError;
use crate::layer::{Layer, LayerKind, Mode};
use crate::Result;
use insitu_tensor::{matmul_nt_ws, matmul_tn_ws, matmul_ws, GemmScratch, Rng, Tensor};

/// A fully connected (dense) layer: `y = x·Wᵀ + b`.
///
/// Weight layout is `(out, in)`; initialization is He-normal. The layer
/// owns a [`GemmScratch`] packing arena, so once warmed up its
/// forward/backward GEMMs perform zero kernel-path heap allocations
/// (cloning resets the arena — scratch capacity is not model state).
#[derive(Debug, Clone)]
pub struct Linear {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Tensor,
    bias: Tensor,
    dweight: Tensor,
    dbias: Tensor,
    input_cache: Option<Tensor>,
    scratch: GemmScratch,
}

impl Linear {
    /// Creates a dense layer with He-initialized weights.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        rng: &mut Rng,
    ) -> Self {
        let std = (2.0 / in_features as f32).sqrt();
        Linear {
            name: name.into(),
            in_features,
            out_features,
            weight: Tensor::randn([out_features, in_features], 0.0, std, rng),
            bias: Tensor::zeros([out_features]),
            dweight: Tensor::zeros([out_features, in_features]),
            dbias: Tensor::zeros([out_features]),
            input_cache: None,
            scratch: GemmScratch::new(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read-only view of the weights, `(out, in)`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Read-only view of the bias, `(out,)`.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Overwrites weights and bias (used by transfer learning).
    ///
    /// # Errors
    ///
    /// Returns an error if the shapes disagree with this layer.
    pub fn load(&mut self, weight: &Tensor, bias: &Tensor) -> Result<()> {
        self.weight.copy_from(weight).map_err(NnError::from)?;
        self.bias.copy_from(bias).map_err(NnError::from)?;
        Ok(())
    }
}

impl Layer for Linear {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Fc
    }

    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let d = input.dims();
        if d.len() != 2 || d[1] != self.in_features {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![0, self.in_features],
                actual: d.to_vec(),
            });
        }
        // y = x · Wᵀ : (B, in) x (out, in)ᵀ = (B, out)
        let mut y = matmul_nt_ws(input, &self.weight, &mut self.scratch)?;
        let b = d[0];
        let ys = y.as_mut_slice();
        let bs = self.bias.as_slice();
        for s in 0..b {
            for o in 0..self.out_features {
                ys[s * self.out_features + o] += bs[o];
            }
        }
        if mode == Mode::Train {
            self.input_cache = Some(input.clone());
        } else {
            self.input_cache = None;
        }
        Ok(y)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let x = self.input_cache.take().ok_or_else(|| NnError::NoForwardCache {
            layer: self.name.clone(),
        })?;
        let d = dout.dims();
        if d.len() != 2 || d[1] != self.out_features || d[0] != x.dims()[0] {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![x.dims()[0], self.out_features],
                actual: d.to_vec(),
            });
        }
        // dW = doutᵀ · x : (B, out)ᵀ x (B, in) = (out, in)
        self.dweight.axpy(1.0, &matmul_tn_ws(dout, &x, &mut self.scratch)?)?;
        // db = column sums of dout
        let (b, o) = (d[0], self.out_features);
        let ds = dout.as_slice();
        let dbs = self.dbias.as_mut_slice();
        for s in 0..b {
            for j in 0..o {
                dbs[j] += ds[s * o + j];
            }
        }
        // dx = dout · W : (B, out) x (out, in) = (B, in)
        Ok(matmul_ws(dout, &self.weight, &mut self.scratch)?)
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        visitor(&mut self.weight, &mut self.dweight);
        visitor(&mut self.bias, &mut self.dbias);
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn zero_grads(&mut self) {
        self.dweight.fill_zero();
        self.dbias.fill_zero();
    }

    fn describe(&self) -> Option<LayerDesc> {
        Some(LayerDesc::Fc { input: self.in_features, output: self.out_features })
    }

    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>> {
        if input.len() != 2 || input[1] != self.in_features {
            return Err(NnError::BadInputShape {
                layer: self.name.clone(),
                expected: vec![0, self.in_features],
                actual: input.to_vec(),
            });
        }
        Ok(vec![input[0], self.out_features])
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = Rng::seed_from(1);
        let mut l = Linear::new("fc", 3, 2, &mut rng);
        l.load(
            &Tensor::from_vec([2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap(),
            &Tensor::from_vec([2], vec![1.0, -1.0]).unwrap(),
        )
        .unwrap();
        let x = Tensor::from_vec([1, 3], vec![2.0, 4.0, 6.0]).unwrap();
        let y = l.forward(&x, Mode::Eval).unwrap();
        // y0 = 2 - 6 + 1 = -3 ; y1 = 1 + 2 + 3 - 1 = 5
        assert_eq!(y.as_slice(), &[-3.0, 5.0]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng::seed_from(2);
        let mut l = Linear::new("fc", 4, 3, &mut rng);
        let x = Tensor::randn([2, 4], 0.0, 1.0, &mut rng);
        let y = l.forward(&x, Mode::Train).unwrap();
        let dout = Tensor::filled(y.shape().clone(), 1.0);
        let dx = l.backward(&dout).unwrap();
        let eps = 1e-2f32;

        // Input gradient.
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (l.forward(&xp, Mode::Eval).unwrap().sum()
                - l.forward(&xm, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            assert!((num - dx.as_slice()[idx]).abs() < 1e-2);
        }
        // Weight gradient: loss = sum(y), so dW[o][i] = sum_b x[b][i].
        for o in 0..3 {
            for i in 0..4 {
                let expected: f32 = (0..2).map(|b| x.at(&[b, i]).unwrap()).sum();
                let got = l.dweight.at(&[o, i]).unwrap();
                assert!((expected - got).abs() < 1e-4);
            }
        }
        // Bias gradient: batch size.
        assert!(l.dbias.as_slice().iter().all(|&g| (g - 2.0).abs() < 1e-5));
    }

    #[test]
    fn rejects_wrong_width() {
        let mut rng = Rng::seed_from(3);
        let mut l = Linear::new("fc", 4, 3, &mut rng);
        assert!(l.forward(&Tensor::zeros([2, 5]), Mode::Eval).is_err());
        assert!(l.output_shape(&[2, 5]).is_err());
        assert_eq!(l.output_shape(&[7, 4]).unwrap(), vec![7, 3]);
    }

    #[test]
    fn describe_and_params() {
        let mut rng = Rng::seed_from(4);
        let l = Linear::new("fc", 10, 5, &mut rng);
        assert_eq!(l.param_count(), 55);
        assert_eq!(l.describe(), Some(LayerDesc::Fc { input: 10, output: 5 }));
    }
}
