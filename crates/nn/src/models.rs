//! The model zoo: scaled-down counterparts of the CNNs the paper
//! evaluates (AlexNet, GoogLeNet, VGGNet) plus the unsupervised jigsaw
//! network, all sized for the 36×36 synthetic IoT imagery.
//!
//! The Mini-AlexNet keeps the paper-relevant skeleton — **five
//! convolutional layers followed by three fully connected layers** — so
//! every layer-indexed experiment (CONV-0 … CONV-5 locking, weight
//! sharing of conv1–conv3) maps one-to-one onto the original. The trunk
//! used by the jigsaw network has *identical filter shapes*, which is
//! what makes transfer (and the WSS shared-weight buffers) possible.

use crate::jigsaw::JigsawNet;
use crate::layers::{Conv2d, Dropout, Flatten, Linear, MaxPool2d, Relu};
use crate::net::Sequential;
use crate::Result;
use insitu_tensor::Rng;

/// Edge length of the synthetic IoT images.
pub const IMAGE_SIZE: usize = 36;
/// Color channels of the synthetic IoT images.
pub const CHANNELS: usize = 3;
/// Edge length of one jigsaw patch (a 3×3 grid over the image).
pub const PATCH_SIZE: usize = IMAGE_SIZE / 3;
/// Number of jigsaw patches per image.
pub const PATCHES: usize = 9;
/// Convolution widths shared by Mini-AlexNet and the jigsaw trunk.
pub const ALEXNET_WIDTHS: [usize; 5] = [16, 24, 32, 32, 24];
/// Feature length the jigsaw trunk produces per 12×12 patch.
pub const TRUNK_FEATURES: usize = ALEXNET_WIDTHS[4];

/// Builds the five shared convolutional stages (+ activations/pools)
/// for an input of edge `size`, returning the network and the flattened
/// feature length.
fn alexnet_conv_stack(
    net: &mut Sequential,
    size: usize,
    rng: &mut Rng,
) -> Result<usize> {
    let w = ALEXNET_WIDTHS;
    let mut s = size;
    net.push(Conv2d::new("conv1", CHANNELS, s, s, w[0], 3, 1, 1, rng)?);
    net.push(Relu::new("relu1"));
    net.push(MaxPool2d::new("pool1", w[0], s, s, 2, 2)?);
    s /= 2;
    net.push(Conv2d::new("conv2", w[0], s, s, w[1], 3, 1, 1, rng)?);
    net.push(Relu::new("relu2"));
    net.push(MaxPool2d::new("pool2", w[1], s, s, 2, 2)?);
    s /= 2;
    net.push(Conv2d::new("conv3", w[1], s, s, w[2], 3, 1, 1, rng)?);
    net.push(Relu::new("relu3"));
    net.push(Conv2d::new("conv4", w[2], s, s, w[3], 3, 1, 1, rng)?);
    net.push(Relu::new("relu4"));
    net.push(Conv2d::new("conv5", w[3], s, s, w[4], 3, 1, 1, rng)?);
    net.push(Relu::new("relu5"));
    net.push(MaxPool2d::new("pool5", w[4], s, s, 2, 2)?);
    s = (s - 2) / 2 + 1;
    net.push(Flatten::new("flat"));
    Ok(w[4] * s * s)
}

/// Mini-AlexNet: 5 conv + 3 FC layers over 36×36×3 inputs.
///
/// # Errors
///
/// Returns an error only if an internal geometry is invalid (which
/// would be a bug, not a user error).
///
/// # Examples
///
/// ```
/// use insitu_nn::models::mini_alexnet;
/// use insitu_tensor::Rng;
/// # fn main() -> Result<(), insitu_nn::NnError> {
/// let mut rng = Rng::seed_from(0);
/// let net = mini_alexnet(10, &mut rng)?;
/// assert_eq!(net.conv_count(), 5);
/// # Ok(())
/// # }
/// ```
pub fn mini_alexnet(classes: usize, rng: &mut Rng) -> Result<Sequential> {
    let mut net = Sequential::new("mini-alexnet");
    let feat = alexnet_conv_stack(&mut net, IMAGE_SIZE, rng)?;
    net.push(Linear::new("fc6", feat, 128, rng));
    net.push(Relu::new("relu6"));
    net.push(Dropout::new("drop6", 0.3, rng));
    net.push(Linear::new("fc7", 128, 64, rng));
    net.push(Relu::new("relu7"));
    net.push(Linear::new("fc8", 64, classes, rng));
    Ok(net)
}

/// The unsupervised trunk: the same five convolutional stages as
/// [`mini_alexnet`] (identical filter shapes) applied to one 12×12
/// patch, ending in a [`TRUNK_FEATURES`]-dimensional feature vector.
///
/// # Errors
///
/// Returns an error only if an internal geometry is invalid.
pub fn alexnet_trunk(rng: &mut Rng) -> Result<Sequential> {
    let mut net = Sequential::new("jigsaw-trunk");
    let feat = alexnet_conv_stack(&mut net, PATCH_SIZE, rng)?;
    debug_assert_eq!(feat, TRUNK_FEATURES);
    Ok(net)
}

/// The full jigsaw context-prediction network: shared trunk over the 9
/// patches plus a 2-layer head classifying among `permutations` classes.
///
/// # Errors
///
/// Returns an error only if an internal geometry is invalid.
pub fn jigsaw_network(permutations: usize, rng: &mut Rng) -> Result<JigsawNet> {
    let trunk = alexnet_trunk(rng)?;
    let mut head = Sequential::new("jigsaw-head");
    head.push(Linear::new("jfc1", PATCHES * TRUNK_FEATURES, 96, rng));
    head.push(Relu::new("jrelu1"));
    head.push(Linear::new("jfc2", 96, permutations, rng));
    JigsawNet::new(trunk, head, PATCHES, TRUNK_FEATURES)
}

/// Mini-VGG: 8 conv + 3 FC layers, all 3×3 kernels — deeper and wider
/// than Mini-AlexNet, mirroring VGGNet's position in the paper's
/// Table I.
///
/// # Errors
///
/// Returns an error only if an internal geometry is invalid.
pub fn mini_vgg(classes: usize, rng: &mut Rng) -> Result<Sequential> {
    let mut net = Sequential::new("mini-vgg");
    let s0 = IMAGE_SIZE; // 36
    net.push(Conv2d::new("conv1_1", CHANNELS, s0, s0, 16, 3, 1, 1, rng)?);
    net.push(Relu::new("relu1_1"));
    net.push(Conv2d::new("conv1_2", 16, s0, s0, 16, 3, 1, 1, rng)?);
    net.push(Relu::new("relu1_2"));
    net.push(MaxPool2d::new("pool1", 16, s0, s0, 2, 2)?);
    let s1 = s0 / 2; // 18
    net.push(Conv2d::new("conv2_1", 16, s1, s1, 24, 3, 1, 1, rng)?);
    net.push(Relu::new("relu2_1"));
    net.push(Conv2d::new("conv2_2", 24, s1, s1, 24, 3, 1, 1, rng)?);
    net.push(Relu::new("relu2_2"));
    net.push(MaxPool2d::new("pool2", 24, s1, s1, 2, 2)?);
    let s2 = s1 / 2; // 9
    net.push(Conv2d::new("conv3_1", 24, s2, s2, 32, 3, 1, 1, rng)?);
    net.push(Relu::new("relu3_1"));
    net.push(Conv2d::new("conv3_2", 32, s2, s2, 32, 3, 1, 1, rng)?);
    net.push(Relu::new("relu3_2"));
    net.push(MaxPool2d::new("pool3", 32, s2, s2, 2, 2)?);
    let s3 = (s2 - 2) / 2 + 1; // 4
    net.push(Conv2d::new("conv4_1", 32, s3, s3, 40, 3, 1, 1, rng)?);
    net.push(Relu::new("relu4_1"));
    net.push(Conv2d::new("conv4_2", 40, s3, s3, 40, 3, 1, 1, rng)?);
    net.push(Relu::new("relu4_2"));
    net.push(MaxPool2d::new("pool4", 40, s3, s3, 2, 2)?);
    let s4 = s3 / 2; // 2
    net.push(Flatten::new("flat"));
    let feat = 40 * s4 * s4;
    net.push(Linear::new("fc6", feat, 160, rng));
    net.push(Relu::new("relu6"));
    net.push(Dropout::new("drop6", 0.3, rng));
    net.push(Linear::new("fc7", 160, 96, rng));
    net.push(Relu::new("relu7"));
    net.push(Linear::new("fc8", 96, classes, rng));
    Ok(net)
}

/// Mini-GoogLeNet: 7 conv layers mixing 1×1 and 3×3 kernels with a
/// single FC classifier, mirroring GoogLeNet's "deep but FC-light"
/// character.
///
/// # Errors
///
/// Returns an error only if an internal geometry is invalid.
pub fn mini_googlenet(classes: usize, rng: &mut Rng) -> Result<Sequential> {
    let mut net = Sequential::new("mini-googlenet");
    let s0 = IMAGE_SIZE; // 36
    net.push(Conv2d::new("conv1", CHANNELS, s0, s0, 16, 3, 1, 1, rng)?);
    net.push(Relu::new("relu1"));
    net.push(MaxPool2d::new("pool1", 16, s0, s0, 2, 2)?);
    let s1 = s0 / 2; // 18
    net.push(Conv2d::new("conv2_reduce", 16, s1, s1, 16, 1, 1, 0, rng)?);
    net.push(Relu::new("relu2r"));
    net.push(Conv2d::new("conv2", 16, s1, s1, 24, 3, 1, 1, rng)?);
    net.push(Relu::new("relu2"));
    net.push(MaxPool2d::new("pool2", 24, s1, s1, 2, 2)?);
    let s2 = s1 / 2; // 9
    net.push(Conv2d::new("conv3_reduce", 24, s2, s2, 24, 1, 1, 0, rng)?);
    net.push(Relu::new("relu3r"));
    net.push(Conv2d::new("conv3", 24, s2, s2, 32, 3, 1, 1, rng)?);
    net.push(Relu::new("relu3"));
    net.push(Conv2d::new("conv4", 32, s2, s2, 40, 3, 1, 1, rng)?);
    net.push(Relu::new("relu4"));
    net.push(Conv2d::new("conv5", 40, s2, s2, 40, 3, 1, 1, rng)?);
    net.push(Relu::new("relu5"));
    net.push(MaxPool2d::new("pool5", 40, s2, s2, 2, 2)?);
    let s3 = (s2 - 2) / 2 + 1; // 4
    net.push(Flatten::new("flat"));
    net.push(Linear::new("fc", 40 * s3 * s3, classes, rng));
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use crate::net::Network;
    use insitu_tensor::Tensor;

    #[test]
    fn alexnet_structure() {
        let mut rng = Rng::seed_from(1);
        let mut net = mini_alexnet(10, &mut rng).unwrap();
        assert_eq!(net.conv_count(), 5);
        assert_eq!(net.describe().fc_layers().len(), 3);
        let x = Tensor::zeros([2, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 10]);
    }

    #[test]
    fn vgg_structure() {
        let mut rng = Rng::seed_from(2);
        let mut net = mini_vgg(10, &mut rng).unwrap();
        assert_eq!(net.conv_count(), 8);
        assert_eq!(net.describe().fc_layers().len(), 3);
        let x = Tensor::zeros([1, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        assert_eq!(net.forward(&x, Mode::Eval).unwrap().dims(), &[1, 10]);
    }

    #[test]
    fn googlenet_structure() {
        let mut rng = Rng::seed_from(3);
        let mut net = mini_googlenet(10, &mut rng).unwrap();
        assert_eq!(net.conv_count(), 7);
        assert_eq!(net.describe().fc_layers().len(), 1);
        let x = Tensor::zeros([1, CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        assert_eq!(net.forward(&x, Mode::Eval).unwrap().dims(), &[1, 10]);
    }

    #[test]
    fn trunk_feature_len_is_constant() {
        let mut rng = Rng::seed_from(4);
        let mut trunk = alexnet_trunk(&mut rng).unwrap();
        let x = Tensor::zeros([3, CHANNELS, PATCH_SIZE, PATCH_SIZE]);
        let f = trunk.forward(&x, Mode::Eval).unwrap();
        assert_eq!(f.dims(), &[3, TRUNK_FEATURES]);
    }

    #[test]
    fn trunk_matches_alexnet_conv_shapes() {
        let mut rng = Rng::seed_from(5);
        let alex = mini_alexnet(10, &mut rng).unwrap();
        let mut alex2 = mini_alexnet(10, &mut rng).unwrap();
        let trunk = alexnet_trunk(&mut rng).unwrap();
        // All 5 conv layers transferable in both directions.
        assert_eq!(crate::transfer::copy_conv_prefix(&trunk, &mut alex2, 5).unwrap(), 5);
        assert_eq!(alex.conv_count(), trunk.conv_count());
    }

    #[test]
    fn jigsaw_network_runs() {
        let mut rng = Rng::seed_from(6);
        let mut net = jigsaw_network(24, &mut rng).unwrap();
        let x = Tensor::zeros([2, PATCHES, CHANNELS, PATCH_SIZE, PATCH_SIZE]);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 24]);
    }

    #[test]
    fn capacity_ordering_matches_table1_expectation() {
        // VGG > GoogLeNet > AlexNet in parameters-in-conv or total ops,
        // mirroring the accuracy ordering of the paper's Table I.
        let mut rng = Rng::seed_from(7);
        let a = mini_alexnet(10, &mut rng).unwrap().describe().total_ops();
        let g = mini_googlenet(10, &mut rng).unwrap().describe().total_ops();
        let v = mini_vgg(10, &mut rng).unwrap().describe().total_ops();
        assert!(v > g, "vgg {v} vs googlenet {g}");
        assert!(g > a, "googlenet {g} vs alexnet {a}");
    }
}
