//! Learning-rate schedules.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps an epoch index to a multiplier on
/// the base learning rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    #[default]
    Constant,
    /// Multiply by `gamma` every `every` epochs (Caffe-style step
    /// decay, what the paper's training would have used).
    Step {
        /// Epoch period.
        every: usize,
        /// Decay factor per period.
        gamma: f32,
    },
    /// Multiply by `gamma` after every epoch.
    Exponential {
        /// Decay factor per epoch.
        gamma: f32,
    },
    /// Linear warmup over `warmup` epochs, then constant.
    Warmup {
        /// Warmup length in epochs.
        warmup: usize,
    },
}

impl LrSchedule {
    /// The multiplier on the base learning rate at `epoch` (0-based).
    pub fn factor(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Step { every, gamma } => {
                gamma.powi((epoch / every.max(1)) as i32)
            }
            LrSchedule::Exponential { gamma } => gamma.powi(epoch as i32),
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || epoch >= warmup {
                    1.0
                } else {
                    (epoch + 1) as f32 / warmup as f32
                }
            }
        }
    }

    /// The absolute learning rate at `epoch` for a base rate.
    pub fn lr_at(&self, base: f32, epoch: usize) -> f32 {
        base * self.factor(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for e in 0..10 {
            assert_eq!(LrSchedule::Constant.factor(e), 1.0);
        }
    }

    #[test]
    fn step_decays_in_plateaus() {
        let s = LrSchedule::Step { every: 3, gamma: 0.1 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(2), 1.0);
        assert!((s.factor(3) - 0.1).abs() < 1e-7);
        assert!((s.factor(6) - 0.01).abs() < 1e-8);
        assert!((s.lr_at(0.5, 3) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn exponential_decays_every_epoch() {
        let s = LrSchedule::Exponential { gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 0.125);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(s.factor(0), 0.25);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 1.0);
        assert_eq!(s.factor(10), 1.0);
        // Degenerate warmup never divides by zero.
        assert_eq!(LrSchedule::Warmup { warmup: 0 }.factor(0), 1.0);
        assert_eq!(LrSchedule::Step { every: 0, gamma: 0.5 }.factor(2), 0.25);
    }
}
