//! The [`Layer`] trait: the unit of composition for networks.

use crate::describe::LayerDesc;
use crate::Result;
use insitu_tensor::Tensor;

/// Whether a forward pass is part of training or evaluation.
///
/// Stochastic layers (dropout) behave differently in the two modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: stochastic regularizers active, caches retained for
    /// backward.
    Train,
    /// Evaluation: deterministic inference.
    Eval,
}

/// Coarse classification of a layer, used for freezing policies
/// ("lock the first *n* CONV layers") and for the analytical device
/// models (CONV vs FCN treatment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolutional layer (the paper's CONV).
    Conv,
    /// Fully connected layer (the paper's FCN).
    Fc,
    /// Parameter-free activation.
    Activation,
    /// Parameter-free pooling.
    Pool,
    /// Shape adapter (flatten).
    Reshape,
    /// Stochastic regularizer.
    Regularizer,
}

/// A differentiable network layer.
///
/// Layers cache whatever they need during [`forward`](Layer::forward) in
/// `Train` mode so that [`backward`](Layer::backward) can run without
/// re-receiving the input. `backward` must be called at most once per
/// training forward and accumulates parameter gradients into the layer's
/// gradient buffers (callers zero them via
/// [`zero_grads`](Layer::zero_grads) between optimization steps).
pub trait Layer: std::fmt::Debug + Send {
    /// Short human-readable name, e.g. `"conv1"`.
    fn name(&self) -> &str;

    /// The layer's kind.
    fn kind(&self) -> LayerKind;

    /// Computes the layer output for a batched input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape disagrees with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Like [`forward`](Layer::forward), but consumes the input, so
    /// layers that can compute in place (ReLU) may reuse its buffer
    /// instead of allocating a fresh output tensor.
    /// [`Sequential`](crate::Sequential) chains activations through
    /// this entry point; the default simply borrows and delegates.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape disagrees with the layer.
    fn forward_owned(&mut self, input: Tensor, mode: Mode) -> Result<Tensor> {
        self.forward(&input, mode)
    }

    /// Propagates the upstream gradient, accumulating parameter
    /// gradients and returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns an error if no training-mode forward preceded this call or
    /// the gradient shape disagrees with the cached activation.
    fn backward(&mut self, dout: &Tensor) -> Result<Tensor>;

    /// Visits `(parameter, gradient)` pairs mutably, in a stable order.
    ///
    /// The optimizer uses this to update parameters; serialization uses
    /// it to snapshot them. Parameter-free layers do nothing.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        let _ = visitor;
    }

    /// Number of trainable scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Clears accumulated gradients.
    fn zero_grads(&mut self) {}

    /// Analytical description for the device models, if the layer is
    /// compute-relevant (CONV/FCN).
    fn describe(&self) -> Option<LayerDesc> {
        None
    }

    /// Output shape (including batch dimension) for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    fn output_shape(&self, input: &[usize]) -> Result<Vec<usize>>;

    /// Upcast for downcasting to a concrete layer type (used by
    /// transfer learning to copy convolution weights).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for downcasting to a concrete layer type.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Deep copy behind the trait object; lets networks be `Clone` so
    /// the same trained model can be deployed to a node while the
    /// Cloud keeps the master.
    fn clone_box(&self) -> Box<dyn Layer>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_is_copy_eq() {
        let m = Mode::Train;
        let n = m;
        assert_eq!(m, n);
        assert_ne!(Mode::Train, Mode::Eval);
    }

    #[test]
    fn layer_kind_hashable() {
        use std::collections::HashSet;
        let kinds: HashSet<LayerKind> =
            [LayerKind::Conv, LayerKind::Fc, LayerKind::Conv].into_iter().collect();
        assert_eq!(kinds.len(), 2);
    }
}
