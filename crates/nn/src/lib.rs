//! # insitu-nn
//!
//! A minimal, from-scratch neural-network framework powering the
//! In-situ AI reproduction: layers with exact gradients, SGD training,
//! layer freezing (the paper's `CONV-i` locking), a weight-shared
//! jigsaw siamese network for the unsupervised diagnosis task, and
//! transfer-learning utilities that copy conv prefixes between the
//! unsupervised and inference networks.
//!
//! ## Example: build, transfer, freeze
//!
//! ```
//! use insitu_nn::models::{jigsaw_network, mini_alexnet};
//! use insitu_nn::transfer::transfer_and_freeze;
//! use insitu_tensor::Rng;
//!
//! # fn main() -> Result<(), insitu_nn::NnError> {
//! let mut rng = Rng::seed_from(7);
//! let jigsaw = jigsaw_network(24, &mut rng)?;
//! let mut inference = mini_alexnet(8, &mut rng)?;
//! // Deploy recipe: share conv1..conv3, freeze them.
//! transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3)?;
//! assert!(inference.frozen_count() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod describe;
mod error;
pub mod jigsaw;
mod layer;
pub mod layers;
mod loss;
pub mod models;
mod metrics;
mod net;
mod optim;
mod optim_adam;
pub mod quant;
mod schedule;
pub mod serialize;
mod train;
pub mod transfer;

pub use describe::{LayerDesc, NetworkDesc};
pub use error::NnError;
pub use jigsaw::JigsawNet;
pub use layer::{Layer, LayerKind, Mode};
pub use loss::{accuracy, confidence, entropy, predictions, softmax, softmax_cross_entropy};
pub use metrics::{top_k_accuracy, ConfusionMatrix};
pub use net::{split_desc, Network, Sequential};
pub use optim::Sgd;
pub use optim_adam::Adam;
pub use quant::{LayerCalibration, QuantizedNet};
pub use schedule::LrSchedule;
pub use train::{
    evaluate, gather_samples, train, train_from_activations, EpochStats, LabeledBatch,
    TrainConfig, TrainReport,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
