//! The unsupervised context-prediction ("jigsaw") network.
//!
//! The paper's diagnosis task (its Fig. 3) splits an image into a 3×3
//! grid, shuffles the nine tiles with a permutation drawn from a fixed
//! set, and asks a network to predict *which* permutation was applied.
//! The nine patches run through **one shared convolutional trunk** — the
//! first level of weight sharing the WSS architecture exploits — and the
//! concatenated features feed a small fully connected head that
//! classifies the permutation index.
//!
//! Implementation note: the patch dimension is folded into the batch
//! dimension (`(B, P, C, h, w)` → `(B·P, C, h, w)`), which makes the
//! trunk weight sharing exact by construction and reuses the ordinary
//! [`Sequential`] machinery for both passes.

use crate::error::NnError;
use crate::layer::Mode;
use crate::net::{Network, Sequential};
use crate::Result;
use insitu_telemetry as telemetry;
use insitu_tensor::Tensor;

/// A siamese network: one shared trunk applied to `patches` inputs,
/// plus a classification head over the concatenated features.
#[derive(Debug, Clone)]
pub struct JigsawNet {
    trunk: Sequential,
    head: Sequential,
    patches: usize,
    /// Feature length produced by the trunk for one patch.
    feature_len: usize,
    /// Batch size of the latest training-mode forward.
    last_batch: usize,
    /// Reusable `(1, patches · feature_len)` head-input buffer for the
    /// tile-embedding fast path; sized once at construction.
    gather: Tensor,
    /// Reusable `(k, patches · feature_len)` head-input buffer for the
    /// batched probe fast path; re-sized only when the probe count `k`
    /// changes (a policy constant in steady state, so effectively one
    /// allocation per deployment).
    gather_batch: Tensor,
}

impl JigsawNet {
    /// Assembles a jigsaw network.
    ///
    /// `feature_len` must equal the trunk's output width for a single
    /// patch; the head must accept `patches * feature_len` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleTransfer`] if the head's first
    /// fully connected layer width disagrees with
    /// `patches * feature_len`.
    pub fn new(
        trunk: Sequential,
        head: Sequential,
        patches: usize,
        feature_len: usize,
    ) -> Result<Self> {
        // Validate the head against the concatenated feature width.
        let head_in = head.describe().fc_layers().first().map(|l| match *l {
            crate::describe::LayerDesc::Fc { input, .. } => input,
            _ => 0,
        });
        if let Some(input) = head_in {
            if input != patches * feature_len {
                return Err(NnError::IncompatibleTransfer {
                    reason: format!(
                        "head expects {input} features but trunk produces {} x {} = {}",
                        patches,
                        feature_len,
                        patches * feature_len
                    ),
                });
            }
        }
        Ok(JigsawNet {
            trunk,
            head,
            patches,
            feature_len,
            last_batch: 0,
            gather: Tensor::zeros([1, patches * feature_len]),
            gather_batch: Tensor::zeros([1, patches * feature_len]),
        })
    }

    /// The shared convolutional trunk.
    pub fn trunk(&self) -> &Sequential {
        &self.trunk
    }

    /// Mutable access to the shared trunk (for transfer learning).
    pub fn trunk_mut(&mut self) -> &mut Sequential {
        &mut self.trunk
    }

    /// The classification head.
    pub fn head(&self) -> &Sequential {
        &self.head
    }

    /// Mutable access to the head.
    pub fn head_mut(&mut self) -> &mut Sequential {
        &mut self.head
    }

    /// Number of patches per sample (9 for a 3×3 grid).
    pub fn patches(&self) -> usize {
        self.patches
    }

    /// Convenience: evaluation-mode forward.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward(input, Mode::Eval)
    }

    /// Trunk features for one sample's tiles: input `(P, C, h, w)` —
    /// the `patches` tiles in any fixed order — output `(P, F)`.
    ///
    /// The trunk processes every tile independently (per-sample
    /// im2col + GEMM), so row `p` of the result is bitwise the feature
    /// vector the folded [`forward`](Network::forward) pass would
    /// produce for that tile at *any* batch position: permuting tiles
    /// only permutes rows. That equivariance is what lets
    /// [`predict_from_features`](JigsawNet::predict_from_features)
    /// evaluate any number of permutations from one trunk pass.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is not `(patches, C, h, w)` or
    /// the trunk output width disagrees with the configured feature
    /// length.
    pub fn tile_features(&mut self, tiles: &Tensor) -> Result<Tensor> {
        let d = tiles.dims();
        if d.len() != 4 || d[0] != self.patches {
            return Err(NnError::BadInputShape {
                layer: "jigsaw tile_features".into(),
                expected: vec![self.patches, 0, 0, 0],
                actual: d.to_vec(),
            });
        }
        let feats = self.trunk.forward(tiles, Mode::Eval)?;
        let fd = feats.dims();
        if fd.len() != 2 || fd[1] != self.feature_len {
            return Err(NnError::BadInputShape {
                layer: "jigsaw trunk output".into(),
                expected: vec![self.patches, self.feature_len],
                actual: fd.to_vec(),
            });
        }
        telemetry::counter_add("jigsaw.trunk_passes", "", 1);
        Ok(feats)
    }

    /// Head logits for cached tile features under a permutation:
    /// `out[dest] = feats[perm[dest]]` rows are gathered into the
    /// reusable head-input buffer and only the head runs.
    ///
    /// Bitwise identical to [`predict`](JigsawNet::predict) on the
    /// permuted tiles (`(1, P, C, h, w)` input), at the cost of one
    /// row gather plus a head pass instead of a full trunk pass.
    ///
    /// # Errors
    ///
    /// Returns an error if `feats` is not the `(patches, feature_len)`
    /// output of [`tile_features`](JigsawNet::tile_features), or if
    /// `perm` is not a length-`patches` list of in-range tile indices.
    pub fn predict_from_features(&mut self, feats: &Tensor, perm: &[u8]) -> Result<Tensor> {
        let fd = feats.dims();
        if fd.len() != 2 || fd[0] != self.patches || fd[1] != self.feature_len {
            return Err(NnError::BadInputShape {
                layer: "jigsaw predict_from_features".into(),
                expected: vec![self.patches, self.feature_len],
                actual: fd.to_vec(),
            });
        }
        if perm.len() != self.patches
            || perm.iter().any(|&s| usize::from(s) >= self.patches)
        {
            return Err(NnError::BadInputShape {
                layer: "jigsaw permutation".into(),
                expected: vec![self.patches],
                actual: vec![perm.len()],
            });
        }
        let f = self.feature_len;
        let src = feats.as_slice();
        let dst = self.gather.as_mut_slice();
        for (dest, &source) in perm.iter().enumerate() {
            let s = usize::from(source);
            dst[dest * f..(dest + 1) * f].copy_from_slice(&src[s * f..(s + 1) * f]);
        }
        self.head.forward(&self.gather, Mode::Eval)
    }

    /// Head logits for cached tile features under **many** permutations
    /// at once: row `j` of the returned `(k, classes)` tensor is the
    /// logits for `perms[j]`, bitwise identical to calling
    /// [`predict_from_features`](JigsawNet::predict_from_features) with
    /// that permutation alone.
    ///
    /// All `k` gathered rows feed the head in **one** GEMM per layer
    /// instead of `k` — the same amortization `tile_features` applies
    /// to the trunk. Exact because the head (Linear/ReLU) is per-sample
    /// row-equivariant under the packed GEMM: each output element is
    /// one ascending-k accumulation chain independent of its batch
    /// position.
    ///
    /// # Errors
    ///
    /// Returns an error if `feats` is not the `(patches, feature_len)`
    /// output of [`tile_features`](JigsawNet::tile_features), if
    /// `perms` is empty, or if any permutation is not a
    /// length-`patches` list of in-range tile indices.
    pub fn predict_from_features_batch(
        &mut self,
        feats: &Tensor,
        perms: &[&[u8]],
    ) -> Result<Tensor> {
        let fd = feats.dims();
        if fd.len() != 2 || fd[0] != self.patches || fd[1] != self.feature_len {
            return Err(NnError::BadInputShape {
                layer: "jigsaw predict_from_features_batch".into(),
                expected: vec![self.patches, self.feature_len],
                actual: fd.to_vec(),
            });
        }
        if perms.is_empty() {
            return Err(NnError::BadInputShape {
                layer: "jigsaw permutation batch".into(),
                expected: vec![1],
                actual: vec![0],
            });
        }
        for perm in perms {
            if perm.len() != self.patches
                || perm.iter().any(|&s| usize::from(s) >= self.patches)
            {
                return Err(NnError::BadInputShape {
                    layer: "jigsaw permutation".into(),
                    expected: vec![self.patches],
                    actual: vec![perm.len()],
                });
            }
        }
        let k = perms.len();
        let f = self.feature_len;
        let width = self.patches * f;
        if self.gather_batch.dims() != [k, width] {
            self.gather_batch = Tensor::zeros([k, width]);
        }
        let src = feats.as_slice();
        let dst = self.gather_batch.as_mut_slice();
        for (row, perm) in perms.iter().enumerate() {
            let out_row = &mut dst[row * width..(row + 1) * width];
            for (dest, &source) in perm.iter().enumerate() {
                let s = usize::from(source);
                out_row[dest * f..(dest + 1) * f].copy_from_slice(&src[s * f..(s + 1) * f]);
            }
        }
        self.head.forward(&self.gather_batch, Mode::Eval)
    }

    fn fold_patches(&self, input: &Tensor) -> Result<(Tensor, usize)> {
        let d = input.dims();
        if d.len() != 5 || d[1] != self.patches {
            return Err(NnError::BadInputShape {
                layer: "jigsaw".into(),
                expected: vec![0, self.patches, 0, 0, 0],
                actual: d.to_vec(),
            });
        }
        let b = d[0];
        let folded = input.reshape([b * self.patches, d[2], d[3], d[4]])?;
        Ok((folded, b))
    }
}

impl Network for JigsawNet {
    /// Input shape: `(B, P, C, h, w)`; output: `(B, classes)`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (folded, b) = self.fold_patches(input)?;
        // One "trunk pass" per image: the unit the diagnosis fast path
        // saves (`tile_features` counts 1 where this counts `b`).
        telemetry::counter_add("jigsaw.trunk_passes", "", b as u64);
        let feats = self.trunk.forward(&folded, mode)?; // (B*P, F)
        let fd = feats.dims();
        if fd.len() != 2 || fd[1] != self.feature_len {
            return Err(NnError::BadInputShape {
                layer: "jigsaw trunk output".into(),
                expected: vec![b * self.patches, self.feature_len],
                actual: fd.to_vec(),
            });
        }
        let concat = feats.reshape([b, self.patches * self.feature_len])?;
        if mode == Mode::Train {
            self.last_batch = b;
        }
        self.head.forward(&concat, mode)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let b = self.last_batch;
        let dconcat = self.head.backward(dout)?; // (B, P*F)
        let dfeats = dconcat.reshape([b * self.patches, self.feature_len])?;
        // Trunk backward accumulates gradients across all patches: the
        // second level of weight sharing happens here for free.
        let dfolded = self.trunk.backward(&dfeats)?;
        let fd = dfolded.dims().to_vec();
        Ok(dfolded.reshape([b, self.patches, fd[1], fd[2], fd[3]])?)
    }

    fn zero_grads(&mut self) {
        self.trunk.zero_grads();
        self.head.zero_grads();
    }

    fn visit_trainable(&mut self, visitor: &mut dyn FnMut(u64, &mut Tensor, &mut Tensor)) {
        // Namespace trunk and head keys so they never collide.
        self.trunk.visit_trainable(&mut |k, p, g| visitor(k, p, g));
        self.head.visit_trainable(&mut |k, p, g| visitor(k | (1 << 63), p, g));
    }

    fn visit_all(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        self.trunk.visit_all(visitor);
        self.head.visit_all(visitor);
    }

    fn param_count(&self) -> usize {
        self.trunk.param_count() + self.head.param_count()
    }

    fn training_ops_per_sample(&self) -> u64 {
        self.patches as u64 * self.trunk.training_ops_per_sample()
            + self.head.training_ops_per_sample()
    }

    fn inference_ops_per_sample(&self) -> u64 {
        self.patches as u64 * self.trunk.inference_ops_per_sample()
            + self.head.inference_ops_per_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use insitu_tensor::Rng;

    fn tiny_jigsaw(rng: &mut Rng) -> JigsawNet {
        let mut trunk = Sequential::new("trunk");
        trunk.push(Conv2d::new("conv1", 1, 6, 6, 4, 3, 1, 1, rng).unwrap());
        trunk.push(Relu::new("r1"));
        trunk.push(MaxPool2d::new("p1", 4, 6, 6, 2, 2).unwrap());
        trunk.push(Flatten::new("flat"));
        // Feature length: 4 * 3 * 3 = 36.
        let mut head = Sequential::new("head");
        head.push(Linear::new("fc1", 4 * 36, 16, rng));
        head.push(Relu::new("hr"));
        head.push(Linear::new("fc2", 16, 5, rng));
        JigsawNet::new(trunk, head, 4, 36).unwrap()
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from(1);
        let mut net = tiny_jigsaw(&mut rng);
        let x = Tensor::randn([2, 4, 1, 6, 6], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    fn rejects_wrong_patch_count() {
        let mut rng = Rng::seed_from(2);
        let mut net = tiny_jigsaw(&mut rng);
        let x = Tensor::zeros([2, 3, 1, 6, 6]);
        assert!(net.forward(&x, Mode::Eval).is_err());
        let x4d = Tensor::zeros([2, 1, 6, 6]);
        assert!(net.forward(&x4d, Mode::Eval).is_err());
    }

    #[test]
    fn head_width_validation() {
        let mut rng = Rng::seed_from(3);
        let trunk = Sequential::new("t");
        let mut head = Sequential::new("h");
        head.push(Linear::new("fc", 10, 2, &mut rng));
        assert!(matches!(
            JigsawNet::new(trunk, head, 4, 36),
            Err(NnError::IncompatibleTransfer { .. })
        ));
    }

    #[test]
    fn backward_roundtrip_and_shared_grads() {
        let mut rng = Rng::seed_from(4);
        let mut net = tiny_jigsaw(&mut rng);
        let x = Tensor::randn([3, 4, 1, 6, 6], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::filled(y.shape().clone(), 0.1)).unwrap();
        assert_eq!(dx.dims(), x.dims());
        // Trunk conv received gradient contributions (shared across patches).
        let mut saw_nonzero = false;
        net.visit_trainable(&mut |_, _, g| {
            if g.norm_sq() > 0.0 {
                saw_nonzero = true;
            }
        });
        assert!(saw_nonzero);
    }

    #[test]
    fn trunk_sharing_is_exact() {
        // Permuting the patch order of a sample only permutes which head
        // inputs see which features: trunk outputs per patch are identical.
        let mut rng = Rng::seed_from(5);
        let mut net = tiny_jigsaw(&mut rng);
        let patch = Tensor::randn([1, 1, 1, 6, 6], 0.0, 1.0, &mut rng);
        // Duplicate the same patch 4 times: all features equal.
        let mut data = Vec::new();
        for _ in 0..4 {
            data.extend_from_slice(patch.as_slice());
        }
        let x = Tensor::from_vec([1, 4, 1, 6, 6], data).unwrap();
        let folded = x.reshape([4, 1, 6, 6]).unwrap();
        let feats = net.trunk_mut().forward(&folded, Mode::Eval).unwrap();
        let f0 = feats.row(0).unwrap();
        for p in 1..4 {
            assert_eq!(feats.row(p).unwrap(), f0);
        }
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn predict_from_features_matches_full_forward_bitwise() {
        // For every permutation of the 4 tiles, gathering cached trunk
        // features into the head must reproduce the folded forward on
        // the permuted tiles exactly (the co-running fast path's
        // correctness contract).
        let mut rng = Rng::seed_from(8);
        let mut net = tiny_jigsaw(&mut rng);
        let tiles = Tensor::randn([4, 1, 6, 6], 0.0, 1.0, &mut rng);
        let feats = net.tile_features(&tiles).unwrap();
        assert_eq!(feats.dims(), &[4, 36]);
        let perms: [[u8; 4]; 4] = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 0, 3, 2], [2, 0, 3, 1]];
        let tile_len = 6 * 6; // one 1-channel 6x6 tile
        let tv = tiles.as_slice();
        for perm in &perms {
            // Reference: permute the raw tiles, run the full network.
            let mut permuted = Vec::with_capacity(tv.len());
            for &src in perm {
                let s = src as usize * tile_len;
                permuted.extend_from_slice(&tv[s..s + tile_len]);
            }
            let x = Tensor::from_vec([1, 4, 1, 6, 6], permuted).unwrap();
            let full = net.predict(&x).unwrap();
            let fast = net.predict_from_features(&feats, perm).unwrap();
            assert_eq!(bits(&fast), bits(&full), "perm {perm:?} diverged");
        }
    }

    #[test]
    fn batched_probe_head_matches_per_probe_bitwise() {
        // One batched head pass over k permutations must reproduce each
        // per-probe pass bit for bit (row-equivariance of the head),
        // including duplicate permutations and k != the warmed size.
        let mut rng = Rng::seed_from(10);
        let mut net = tiny_jigsaw(&mut rng);
        let tiles = Tensor::randn([4, 1, 6, 6], 0.0, 1.0, &mut rng);
        let feats = net.tile_features(&tiles).unwrap();
        let perms: [[u8; 4]; 4] = [[0, 1, 2, 3], [3, 2, 1, 0], [1, 0, 3, 2], [3, 2, 1, 0]];
        for k in [1usize, 3, 4] {
            let refs: Vec<&[u8]> = perms.iter().take(k).map(|p| p.as_slice()).collect();
            let batched = net.predict_from_features_batch(&feats, &refs).unwrap();
            assert_eq!(batched.dims(), &[k, 5]);
            for (j, perm) in refs.iter().enumerate() {
                let single = net.predict_from_features(&feats, perm).unwrap();
                assert_eq!(
                    bits(&single),
                    bits(&batched.row(j).unwrap()),
                    "probe {j} of batch {k} diverged"
                );
            }
        }
    }

    #[test]
    fn batched_probe_head_rejects_bad_inputs() {
        let mut rng = Rng::seed_from(11);
        let mut net = tiny_jigsaw(&mut rng);
        let feats = net.tile_features(&Tensor::zeros([4, 1, 6, 6])).unwrap();
        assert!(net.predict_from_features_batch(&feats, &[]).is_err());
        let short: &[u8] = &[0, 1, 2];
        assert!(net.predict_from_features_batch(&feats, &[short]).is_err());
        let oob: &[u8] = &[0, 1, 2, 4];
        let ok: &[u8] = &[0, 1, 2, 3];
        assert!(net.predict_from_features_batch(&feats, &[ok, oob]).is_err());
        let bad_feats = Tensor::zeros([4, 35]);
        assert!(net.predict_from_features_batch(&bad_feats, &[ok]).is_err());
    }

    #[test]
    fn fast_path_rejects_bad_shapes() {
        let mut rng = Rng::seed_from(9);
        let mut net = tiny_jigsaw(&mut rng);
        // Wrong tile count.
        assert!(net.tile_features(&Tensor::zeros([3, 1, 6, 6])).is_err());
        // Wrong feature shape.
        let bad = Tensor::zeros([4, 35]);
        assert!(net.predict_from_features(&bad, &[0, 1, 2, 3]).is_err());
        let feats = net.tile_features(&Tensor::zeros([4, 1, 6, 6])).unwrap();
        // Wrong permutation length and out-of-range tile index.
        assert!(net.predict_from_features(&feats, &[0, 1, 2]).is_err());
        assert!(net.predict_from_features(&feats, &[0, 1, 2, 4]).is_err());
    }

    #[test]
    fn jigsaw_learns_to_identify_permutations() {
        // Synthetic task: patches carry a constant intensity that encodes
        // a permutation of [0..4); the net must classify which of 5
        // fixed permutations was applied.
        let mut rng = Rng::seed_from(6);
        let mut net = tiny_jigsaw(&mut rng);
        let perms: [[usize; 4]; 5] =
            [[0, 1, 2, 3], [1, 0, 3, 2], [2, 3, 0, 1], [3, 2, 1, 0], [0, 2, 1, 3]];
        let n = 200;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let cls = rng.below(5);
            labels.push(cls);
            for &pos in &perms[cls] {
                let base = pos as f32 / 4.0;
                for _ in 0..36 {
                    data.push(base + rng.uniform(-0.05, 0.05));
                }
            }
        }
        let x = Tensor::from_vec([n, 4, 1, 6, 6], data).unwrap();
        let cfg = crate::train::TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let report = crate::train::train(
            &mut net,
            crate::train::LabeledBatch::new(&x, &labels).unwrap(),
            None,
            &cfg,
            &mut rng,
        )
        .unwrap();
        let final_acc = report.history.last().unwrap().train_accuracy;
        assert!(final_acc > 0.9, "jigsaw accuracy {final_acc}");
    }

    #[test]
    fn ops_account_for_patch_count() {
        let mut rng = Rng::seed_from(7);
        let net = tiny_jigsaw(&mut rng);
        let trunk_ops = net.trunk().inference_ops_per_sample();
        let head_ops = net.head().inference_ops_per_sample();
        assert_eq!(net.inference_ops_per_sample(), 4 * trunk_ops + head_ops);
    }
}
