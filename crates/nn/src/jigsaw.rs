//! The unsupervised context-prediction ("jigsaw") network.
//!
//! The paper's diagnosis task (its Fig. 3) splits an image into a 3×3
//! grid, shuffles the nine tiles with a permutation drawn from a fixed
//! set, and asks a network to predict *which* permutation was applied.
//! The nine patches run through **one shared convolutional trunk** — the
//! first level of weight sharing the WSS architecture exploits — and the
//! concatenated features feed a small fully connected head that
//! classifies the permutation index.
//!
//! Implementation note: the patch dimension is folded into the batch
//! dimension (`(B, P, C, h, w)` → `(B·P, C, h, w)`), which makes the
//! trunk weight sharing exact by construction and reuses the ordinary
//! [`Sequential`] machinery for both passes.

use crate::error::NnError;
use crate::layer::Mode;
use crate::net::{Network, Sequential};
use crate::Result;
use insitu_tensor::Tensor;

/// A siamese network: one shared trunk applied to `patches` inputs,
/// plus a classification head over the concatenated features.
#[derive(Debug, Clone)]
pub struct JigsawNet {
    trunk: Sequential,
    head: Sequential,
    patches: usize,
    /// Feature length produced by the trunk for one patch.
    feature_len: usize,
    /// Batch size of the latest training-mode forward.
    last_batch: usize,
}

impl JigsawNet {
    /// Assembles a jigsaw network.
    ///
    /// `feature_len` must equal the trunk's output width for a single
    /// patch; the head must accept `patches * feature_len` inputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IncompatibleTransfer`] if the head's first
    /// fully connected layer width disagrees with
    /// `patches * feature_len`.
    pub fn new(
        trunk: Sequential,
        head: Sequential,
        patches: usize,
        feature_len: usize,
    ) -> Result<Self> {
        // Validate the head against the concatenated feature width.
        let head_in = head.describe().fc_layers().first().map(|l| match *l {
            crate::describe::LayerDesc::Fc { input, .. } => input,
            _ => 0,
        });
        if let Some(input) = head_in {
            if input != patches * feature_len {
                return Err(NnError::IncompatibleTransfer {
                    reason: format!(
                        "head expects {input} features but trunk produces {} x {} = {}",
                        patches,
                        feature_len,
                        patches * feature_len
                    ),
                });
            }
        }
        Ok(JigsawNet { trunk, head, patches, feature_len, last_batch: 0 })
    }

    /// The shared convolutional trunk.
    pub fn trunk(&self) -> &Sequential {
        &self.trunk
    }

    /// Mutable access to the shared trunk (for transfer learning).
    pub fn trunk_mut(&mut self) -> &mut Sequential {
        &mut self.trunk
    }

    /// The classification head.
    pub fn head(&self) -> &Sequential {
        &self.head
    }

    /// Mutable access to the head.
    pub fn head_mut(&mut self) -> &mut Sequential {
        &mut self.head
    }

    /// Number of patches per sample (9 for a 3×3 grid).
    pub fn patches(&self) -> usize {
        self.patches
    }

    /// Convenience: evaluation-mode forward.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible.
    pub fn predict(&mut self, input: &Tensor) -> Result<Tensor> {
        self.forward(input, Mode::Eval)
    }

    fn fold_patches(&self, input: &Tensor) -> Result<(Tensor, usize)> {
        let d = input.dims();
        if d.len() != 5 || d[1] != self.patches {
            return Err(NnError::BadInputShape {
                layer: "jigsaw".into(),
                expected: vec![0, self.patches, 0, 0, 0],
                actual: d.to_vec(),
            });
        }
        let b = d[0];
        let folded = input.reshape([b * self.patches, d[2], d[3], d[4]])?;
        Ok((folded, b))
    }
}

impl Network for JigsawNet {
    /// Input shape: `(B, P, C, h, w)`; output: `(B, classes)`.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let (folded, b) = self.fold_patches(input)?;
        let feats = self.trunk.forward(&folded, mode)?; // (B*P, F)
        let fd = feats.dims();
        if fd.len() != 2 || fd[1] != self.feature_len {
            return Err(NnError::BadInputShape {
                layer: "jigsaw trunk output".into(),
                expected: vec![b * self.patches, self.feature_len],
                actual: fd.to_vec(),
            });
        }
        let concat = feats.reshape([b, self.patches * self.feature_len])?;
        if mode == Mode::Train {
            self.last_batch = b;
        }
        self.head.forward(&concat, mode)
    }

    fn backward(&mut self, dout: &Tensor) -> Result<Tensor> {
        let b = self.last_batch;
        let dconcat = self.head.backward(dout)?; // (B, P*F)
        let dfeats = dconcat.reshape([b * self.patches, self.feature_len])?;
        // Trunk backward accumulates gradients across all patches: the
        // second level of weight sharing happens here for free.
        let dfolded = self.trunk.backward(&dfeats)?;
        let fd = dfolded.dims().to_vec();
        Ok(dfolded.reshape([b, self.patches, fd[1], fd[2], fd[3]])?)
    }

    fn zero_grads(&mut self) {
        self.trunk.zero_grads();
        self.head.zero_grads();
    }

    fn visit_trainable(&mut self, visitor: &mut dyn FnMut(u64, &mut Tensor, &mut Tensor)) {
        // Namespace trunk and head keys so they never collide.
        self.trunk.visit_trainable(&mut |k, p, g| visitor(k, p, g));
        self.head.visit_trainable(&mut |k, p, g| visitor(k | (1 << 63), p, g));
    }

    fn visit_all(&mut self, visitor: &mut dyn FnMut(&mut Tensor)) {
        self.trunk.visit_all(visitor);
        self.head.visit_all(visitor);
    }

    fn param_count(&self) -> usize {
        self.trunk.param_count() + self.head.param_count()
    }

    fn training_ops_per_sample(&self) -> u64 {
        self.patches as u64 * self.trunk.training_ops_per_sample()
            + self.head.training_ops_per_sample()
    }

    fn inference_ops_per_sample(&self) -> u64 {
        self.patches as u64 * self.trunk.inference_ops_per_sample()
            + self.head.inference_ops_per_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
    use insitu_tensor::Rng;

    fn tiny_jigsaw(rng: &mut Rng) -> JigsawNet {
        let mut trunk = Sequential::new("trunk");
        trunk.push(Conv2d::new("conv1", 1, 6, 6, 4, 3, 1, 1, rng).unwrap());
        trunk.push(Relu::new("r1"));
        trunk.push(MaxPool2d::new("p1", 4, 6, 6, 2, 2).unwrap());
        trunk.push(Flatten::new("flat"));
        // Feature length: 4 * 3 * 3 = 36.
        let mut head = Sequential::new("head");
        head.push(Linear::new("fc1", 4 * 36, 16, rng));
        head.push(Relu::new("hr"));
        head.push(Linear::new("fc2", 16, 5, rng));
        JigsawNet::new(trunk, head, 4, 36).unwrap()
    }

    #[test]
    fn forward_shape() {
        let mut rng = Rng::seed_from(1);
        let mut net = tiny_jigsaw(&mut rng);
        let x = Tensor::randn([2, 4, 1, 6, 6], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 5]);
    }

    #[test]
    fn rejects_wrong_patch_count() {
        let mut rng = Rng::seed_from(2);
        let mut net = tiny_jigsaw(&mut rng);
        let x = Tensor::zeros([2, 3, 1, 6, 6]);
        assert!(net.forward(&x, Mode::Eval).is_err());
        let x4d = Tensor::zeros([2, 1, 6, 6]);
        assert!(net.forward(&x4d, Mode::Eval).is_err());
    }

    #[test]
    fn head_width_validation() {
        let mut rng = Rng::seed_from(3);
        let trunk = Sequential::new("t");
        let mut head = Sequential::new("h");
        head.push(Linear::new("fc", 10, 2, &mut rng));
        assert!(matches!(
            JigsawNet::new(trunk, head, 4, 36),
            Err(NnError::IncompatibleTransfer { .. })
        ));
    }

    #[test]
    fn backward_roundtrip_and_shared_grads() {
        let mut rng = Rng::seed_from(4);
        let mut net = tiny_jigsaw(&mut rng);
        let x = Tensor::randn([3, 4, 1, 6, 6], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::filled(y.shape().clone(), 0.1)).unwrap();
        assert_eq!(dx.dims(), x.dims());
        // Trunk conv received gradient contributions (shared across patches).
        let mut saw_nonzero = false;
        net.visit_trainable(&mut |_, _, g| {
            if g.norm_sq() > 0.0 {
                saw_nonzero = true;
            }
        });
        assert!(saw_nonzero);
    }

    #[test]
    fn trunk_sharing_is_exact() {
        // Permuting the patch order of a sample only permutes which head
        // inputs see which features: trunk outputs per patch are identical.
        let mut rng = Rng::seed_from(5);
        let mut net = tiny_jigsaw(&mut rng);
        let patch = Tensor::randn([1, 1, 1, 6, 6], 0.0, 1.0, &mut rng);
        // Duplicate the same patch 4 times: all features equal.
        let mut data = Vec::new();
        for _ in 0..4 {
            data.extend_from_slice(patch.as_slice());
        }
        let x = Tensor::from_vec([1, 4, 1, 6, 6], data).unwrap();
        let folded = x.reshape([4, 1, 6, 6]).unwrap();
        let feats = net.trunk_mut().forward(&folded, Mode::Eval).unwrap();
        let f0 = feats.row(0).unwrap();
        for p in 1..4 {
            assert_eq!(feats.row(p).unwrap(), f0);
        }
    }

    #[test]
    fn jigsaw_learns_to_identify_permutations() {
        // Synthetic task: patches carry a constant intensity that encodes
        // a permutation of [0..4); the net must classify which of 5
        // fixed permutations was applied.
        let mut rng = Rng::seed_from(6);
        let mut net = tiny_jigsaw(&mut rng);
        let perms: [[usize; 4]; 5] =
            [[0, 1, 2, 3], [1, 0, 3, 2], [2, 3, 0, 1], [3, 2, 1, 0], [0, 2, 1, 3]];
        let n = 200;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let cls = rng.below(5);
            labels.push(cls);
            for &pos in &perms[cls] {
                let base = pos as f32 / 4.0;
                for _ in 0..36 {
                    data.push(base + rng.uniform(-0.05, 0.05));
                }
            }
        }
        let x = Tensor::from_vec([n, 4, 1, 6, 6], data).unwrap();
        let cfg = crate::train::TrainConfig {
            epochs: 25,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        };
        let report = crate::train::train(
            &mut net,
            crate::train::LabeledBatch::new(&x, &labels).unwrap(),
            None,
            &cfg,
            &mut rng,
        )
        .unwrap();
        let final_acc = report.history.last().unwrap().train_accuracy;
        assert!(final_acc > 0.9, "jigsaw accuracy {final_acc}");
    }

    #[test]
    fn ops_account_for_patch_count() {
        let mut rng = Rng::seed_from(7);
        let net = tiny_jigsaw(&mut rng);
        let trunk_ops = net.trunk().inference_ops_per_sample();
        let head_ops = net.head().inference_ops_per_sample();
        assert_eq!(net.inference_ops_per_sample(), 4 * trunk_ops + head_ops);
    }
}
