//! Error type for the neural-network framework.

use insitu_tensor::TensorError;
use std::fmt;

/// Error produced by network construction, training or inference.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input of the wrong shape.
    BadInputShape {
        /// Layer name.
        layer: String,
        /// Expected shape (0 marks a free batch dimension).
        expected: Vec<usize>,
        /// Actual shape.
        actual: Vec<usize>,
    },
    /// `backward` was called without a preceding training-mode `forward`.
    NoForwardCache {
        /// Layer name.
        layer: String,
    },
    /// A named layer does not exist in the network.
    NoSuchLayer {
        /// Requested layer name or index description.
        layer: String,
    },
    /// Transfer learning was attempted between incompatible networks.
    IncompatibleTransfer {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// Labels and inputs disagree, or a label is out of range.
    BadLabels {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A serialized snapshot does not match the network.
    SnapshotMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInputShape { layer, expected, actual } => write!(
                f,
                "layer `{layer}`: bad input shape, expected {expected:?} (0 = any batch), got {actual:?}"
            ),
            NnError::NoForwardCache { layer } => write!(
                f,
                "layer `{layer}`: backward called without a training-mode forward"
            ),
            NnError::NoSuchLayer { layer } => write!(f, "no such layer: {layer}"),
            NnError::IncompatibleTransfer { reason } => {
                write!(f, "incompatible transfer: {reason}")
            }
            NnError::BadLabels { reason } => write!(f, "bad labels: {reason}"),
            NnError::SnapshotMismatch { reason } => write!(f, "snapshot mismatch: {reason}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error() {
        let te = TensorError::InvalidGeometry { reason: "x".into() };
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
        assert!(std::error::Error::source(&ne).is_some());
    }

    #[test]
    fn display_mentions_layer() {
        let e = NnError::NoForwardCache { layer: "conv3".into() };
        assert!(e.to_string().contains("conv3"));
    }
}
