//! Jigsaw preparation: 3×3 patch grids and the permutation set.
//!
//! The paper (its Fig. 3) shuffles the nine tiles of an image with a
//! permutation drawn from a *predefined set* (their set has 100
//! entries) and trains the unsupervised network to predict the chosen
//! index. Following Noroozi & Favaro, the set is chosen greedily to
//! maximize pairwise Hamming distance so that no two permutations are
//! confusably similar.

use crate::concepts::{CHANNELS, IMAGE_SIZE};
use crate::dataset::Dataset;
use crate::error::DataError;
use crate::Result;
use insitu_tensor::{Rng, Tensor};

/// Tiles per image (3×3 grid).
pub const GRID: usize = 3;
/// Number of patches.
pub const PATCHES: usize = GRID * GRID;
/// Patch edge length.
pub const PATCH_SIZE: usize = IMAGE_SIZE / GRID;

/// A fixed, maximally-spread set of patch permutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationSet {
    perms: Vec<[u8; PATCHES]>,
}

impl PermutationSet {
    /// Greedily selects `count` permutations of `0..9` that maximize
    /// the minimum pairwise Hamming distance, starting from the
    /// identity's reversal (a far point) and sampling candidates from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `count` is zero or larger
    /// than 9! (more than the number of distinct permutations).
    pub fn generate(count: usize, rng: &mut Rng) -> Result<PermutationSet> {
        const FACT9: usize = 362_880;
        if count == 0 || count > FACT9 {
            return Err(DataError::BadConfig {
                reason: format!("permutation count {count} outside 1..={FACT9}"),
            });
        }
        let mut perms: Vec<[u8; PATCHES]> = Vec::with_capacity(count);
        perms.push([8, 7, 6, 5, 4, 3, 2, 1, 0]);
        const CANDIDATES: usize = 64;
        while perms.len() < count {
            // Sample candidates, keep the one farthest from the set.
            let mut best: Option<([u8; PATCHES], usize)> = None;
            for _ in 0..CANDIDATES {
                let mut p: [u8; PATCHES] = [0, 1, 2, 3, 4, 5, 6, 7, 8];
                rng.shuffle(&mut p);
                if perms.contains(&p) {
                    continue;
                }
                let dist = perms.iter().map(|q| hamming(q, &p)).min().unwrap_or(PATCHES);
                if best.is_none_or(|(_, d)| dist > d) {
                    best = Some((p, dist));
                }
            }
            if let Some((p, _)) = best {
                perms.push(p);
            }
        }
        Ok(PermutationSet { perms })
    }

    /// Number of permutations (the number of diagnosis classes).
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// Whether the set is empty (never true for a generated set).
    pub fn is_empty(&self) -> bool {
        self.perms.is_empty()
    }

    /// Permutation at index `i`: `perm[destination] = source tile`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn permutation(&self, i: usize) -> &[u8; PATCHES] {
        &self.perms[i]
    }

    /// Minimum pairwise Hamming distance of the set (quality measure).
    pub fn min_pairwise_hamming(&self) -> usize {
        let mut min = PATCHES;
        for i in 0..self.perms.len() {
            for j in i + 1..self.perms.len() {
                min = min.min(hamming(&self.perms[i], &self.perms[j]));
            }
        }
        min
    }
}

fn hamming(a: &[u8; PATCHES], b: &[u8; PATCHES]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// Cuts an image `(3, 36, 36)` into its 9 tiles, returning
/// `(9, 3, 12, 12)` in row-major tile order.
///
/// # Errors
///
/// Returns [`DataError::BadImage`] if the image is not `(3, 36, 36)`.
pub fn patchify(image: &Tensor) -> Result<Tensor> {
    let expected = [CHANNELS, IMAGE_SIZE, IMAGE_SIZE];
    if image.dims() != expected {
        return Err(DataError::BadImage {
            expected: expected.to_vec(),
            actual: image.dims().to_vec(),
        });
    }
    let p = PATCH_SIZE;
    let src = image.as_slice();
    let mut out = vec![0f32; PATCHES * CHANNELS * p * p];
    for tile in 0..PATCHES {
        let (ty, tx) = (tile / GRID, tile % GRID);
        for c in 0..CHANNELS {
            for y in 0..p {
                for x in 0..p {
                    out[((tile * CHANNELS + c) * p + y) * p + x] =
                        src[(c * IMAGE_SIZE + ty * p + y) * IMAGE_SIZE + tx * p + x];
                }
            }
        }
    }
    Ok(Tensor::from_vec([PATCHES, CHANNELS, p, p], out)?)
}

/// Normalizes each tile to zero mean and unit variance (per tile,
/// across channels and pixels).
///
/// This is the standard anti-shortcut step of the jigsaw literature:
/// without it the network can identify a tile's grid position from its
/// absolute brightness (scene illumination gradients survive every
/// drift corruption), learning position features with no object
/// content — which transfer poorly. Normalized tiles force the context
/// predictor to use structure instead.
///
/// # Errors
///
/// Returns [`DataError::BadImage`] if the tiles are not
/// `(9, 3, 12, 12)`.
pub fn normalize_tiles(tiles: &Tensor) -> Result<Tensor> {
    let p = PATCH_SIZE;
    let expected = [PATCHES, CHANNELS, p, p];
    if tiles.dims() != expected {
        return Err(DataError::BadImage {
            expected: expected.to_vec(),
            actual: tiles.dims().to_vec(),
        });
    }
    let tile_len = CHANNELS * p * p;
    let mut out = tiles.as_slice().to_vec();
    for tile in out.chunks_mut(tile_len) {
        let mean: f32 = tile.iter().sum::<f32>() / tile_len as f32;
        let var: f32 =
            tile.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / tile_len as f32;
        let std = var.sqrt().max(1e-4);
        for v in tile.iter_mut() {
            *v = (*v - mean) / std;
        }
    }
    Ok(Tensor::from_vec([PATCHES, CHANNELS, p, p], out)?)
}

/// Reassembles tiles `(9, 3, 12, 12)` into an image `(3, 36, 36)`;
/// the inverse of [`patchify`].
///
/// # Errors
///
/// Returns [`DataError::BadImage`] if the tiles are not
/// `(9, 3, 12, 12)`.
pub fn assemble(tiles: &Tensor) -> Result<Tensor> {
    let p = PATCH_SIZE;
    let expected = [PATCHES, CHANNELS, p, p];
    if tiles.dims() != expected {
        return Err(DataError::BadImage {
            expected: expected.to_vec(),
            actual: tiles.dims().to_vec(),
        });
    }
    let src = tiles.as_slice();
    let mut out = vec![0f32; CHANNELS * IMAGE_SIZE * IMAGE_SIZE];
    for tile in 0..PATCHES {
        let (ty, tx) = (tile / GRID, tile % GRID);
        for c in 0..CHANNELS {
            for y in 0..p {
                for x in 0..p {
                    out[(c * IMAGE_SIZE + ty * p + y) * IMAGE_SIZE + tx * p + x] =
                        src[((tile * CHANNELS + c) * p + y) * p + x];
                }
            }
        }
    }
    Ok(Tensor::from_vec([CHANNELS, IMAGE_SIZE, IMAGE_SIZE], out)?)
}

/// Applies permutation `perm` to tiles `(9, 3, 12, 12)`:
/// `out[dest] = tiles[perm[dest]]`.
///
/// # Errors
///
/// Returns [`DataError::BadImage`] on a shape mismatch.
pub fn permute_tiles(tiles: &Tensor, perm: &[u8; PATCHES]) -> Result<Tensor> {
    let p = PATCH_SIZE;
    let expected = [PATCHES, CHANNELS, p, p];
    if tiles.dims() != expected {
        return Err(DataError::BadImage {
            expected: expected.to_vec(),
            actual: tiles.dims().to_vec(),
        });
    }
    let tile_len = CHANNELS * p * p;
    let src = tiles.as_slice();
    let mut out = vec![0f32; src.len()];
    for (dest, &source) in perm.iter().enumerate() {
        let s = source as usize * tile_len;
        out[dest * tile_len..(dest + 1) * tile_len].copy_from_slice(&src[s..s + tile_len]);
    }
    Ok(Tensor::from_vec([PATCHES, CHANNELS, p, p], out)?)
}

/// Builds a jigsaw training batch from a dataset: for every image a
/// random permutation from `set` is applied and its index becomes the
/// label. Returns `((N, 9, 3, 12, 12), labels)`.
///
/// # Errors
///
/// Returns an error if any image has an unexpected shape.
pub fn jigsaw_batch(
    data: &Dataset,
    set: &PermutationSet,
    rng: &mut Rng,
) -> Result<(Tensor, Vec<usize>)> {
    let n = data.len();
    let p = PATCH_SIZE;
    let sample_len = PATCHES * CHANNELS * p * p;
    let mut out = Vec::with_capacity(n * sample_len);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let tiles = normalize_tiles(&patchify(&data.image(i)?)?)?;
        let cls = rng.below(set.len());
        let shuffled = permute_tiles(&tiles, set.permutation(cls))?;
        out.extend_from_slice(shuffled.as_slice());
        labels.push(cls);
    }
    Ok((Tensor::from_vec([n, PATCHES, CHANNELS, p, p], out)?, labels))
}

/// Patchifies every image of a dataset without shuffling (all tiles in
/// canonical order): the evaluation input for the diagnosis task.
/// Returns `(N, 9, 3, 12, 12)`.
///
/// # Errors
///
/// Returns an error if any image has an unexpected shape.
pub fn patchify_all(data: &Dataset) -> Result<Tensor> {
    let n = data.len();
    let p = PATCH_SIZE;
    let sample_len = PATCHES * CHANNELS * p * p;
    let mut out = Vec::with_capacity(n * sample_len);
    for i in 0..n {
        let tiles = normalize_tiles(&patchify(&data.image(i)?)?)?;
        out.extend_from_slice(tiles.as_slice());
    }
    Ok(Tensor::from_vec([n, PATCHES, CHANNELS, p, p], out)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::Condition;

    #[test]
    fn permutation_set_valid() {
        let mut rng = Rng::seed_from(1);
        let set = PermutationSet::generate(24, &mut rng).unwrap();
        assert_eq!(set.len(), 24);
        for i in 0..24 {
            let mut sorted = *set.permutation(i);
            sorted.sort_unstable();
            assert_eq!(sorted, [0, 1, 2, 3, 4, 5, 6, 7, 8]);
        }
        // All distinct.
        for i in 0..24 {
            for j in i + 1..24 {
                assert_ne!(set.permutation(i), set.permutation(j));
            }
        }
        // Greedy max-Hamming keeps the set well separated.
        assert!(set.min_pairwise_hamming() >= 5, "min {}", set.min_pairwise_hamming());
    }

    #[test]
    fn permutation_set_bounds() {
        let mut rng = Rng::seed_from(2);
        assert!(PermutationSet::generate(0, &mut rng).is_err());
        assert!(PermutationSet::generate(1, &mut rng).is_ok());
    }

    #[test]
    fn patchify_assemble_roundtrip() {
        let mut rng = Rng::seed_from(3);
        let img = Tensor::rand_uniform([3, 36, 36], 0.0, 1.0, &mut rng);
        let tiles = patchify(&img).unwrap();
        assert_eq!(tiles.dims(), &[9, 3, 12, 12]);
        assert_eq!(assemble(&tiles).unwrap(), img);
        assert!(patchify(&Tensor::zeros([3, 12, 12])).is_err());
    }

    #[test]
    fn identity_permutation_is_noop() {
        let mut rng = Rng::seed_from(4);
        let img = Tensor::rand_uniform([3, 36, 36], 0.0, 1.0, &mut rng);
        let tiles = patchify(&img).unwrap();
        let id: [u8; 9] = [0, 1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(permute_tiles(&tiles, &id).unwrap(), tiles);
    }

    #[test]
    fn permutation_moves_tiles() {
        let mut rng = Rng::seed_from(5);
        let img = Tensor::rand_uniform([3, 36, 36], 0.0, 1.0, &mut rng);
        let tiles = patchify(&img).unwrap();
        let rev: [u8; 9] = [8, 7, 6, 5, 4, 3, 2, 1, 0];
        let shuffled = permute_tiles(&tiles, &rev).unwrap();
        // Tile 0 of the shuffled grid is tile 8 of the original.
        let tile_len = 3 * 12 * 12;
        assert_eq!(
            &shuffled.as_slice()[..tile_len],
            &tiles.as_slice()[8 * tile_len..9 * tile_len]
        );
        // Applying the reversal twice restores the original.
        assert_eq!(permute_tiles(&shuffled, &rev).unwrap(), tiles);
    }

    #[test]
    fn jigsaw_batch_shapes() {
        let mut rng = Rng::seed_from(6);
        let data = Dataset::generate(6, 3, &Condition::ideal(), &mut rng).unwrap();
        let set = PermutationSet::generate(10, &mut rng).unwrap();
        let (x, labels) = jigsaw_batch(&data, &set, &mut rng).unwrap();
        assert_eq!(x.dims(), &[6, 9, 3, 12, 12]);
        assert_eq!(labels.len(), 6);
        assert!(labels.iter().all(|&l| l < 10));
        let canonical = patchify_all(&data).unwrap();
        assert_eq!(canonical.dims(), &[6, 9, 3, 12, 12]);
    }
}
