//! # insitu-data
//!
//! Synthetic IoT imagery for the In-situ AI reproduction: procedural
//! "species" classes, an environment-drift model reproducing the
//! paper's camera-trap failure modes (partial bodies, poses, poor
//! illumination, weather), jigsaw patch/permutation preparation for the
//! unsupervised diagnosis task, and the staged acquisition campaign
//! behind the end-to-end experiments.
//!
//! ## Example
//!
//! ```
//! use insitu_data::{Condition, Dataset};
//! use insitu_tensor::Rng;
//!
//! # fn main() -> Result<(), insitu_data::DataError> {
//! let mut rng = Rng::seed_from(1);
//! let curated = Dataset::generate(16, 4, &Condition::ideal(), &mut rng)?;
//! let in_situ = Dataset::generate(16, 4, &Condition::in_situ(), &mut rng)?;
//! assert_eq!(curated.len(), in_situ.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod concepts;
mod dataset;
mod drift;
mod error;
pub mod export;
pub mod ingest;
pub mod jigsaw;
mod stream;

pub use concepts::{Concept, PatternKind, CHANNELS, IMAGE_SIZE};
pub use dataset::{Dataset, DatasetView, SAMPLE_LEN};
pub use drift::Condition;
pub use ingest::{
    DriftSchedule, Frame, FrameArena, FrameBuf, IngestConfig, IngestPipeline, IngestQueue,
    ProducerReport, QueueFullPolicy, ReplaySource, StreamSource, SyntheticDriftSource,
};
pub use export::{contact_sheet, save_ppm, to_ppm};
pub use error::DataError;
pub use jigsaw::{
    assemble, jigsaw_batch, normalize_tiles, patchify, patchify_all, permute_tiles, PermutationSet, GRID,
    PATCHES, PATCH_SIZE,
};
pub use stream::{Campaign, Stage};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
