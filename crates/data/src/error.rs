//! Error type for data synthesis.

use insitu_tensor::TensorError;
use std::fmt;

/// Error produced by dataset construction or jigsaw preparation.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A configuration value is out of range.
    BadConfig {
        /// Human-readable description.
        reason: String,
    },
    /// An image does not have the expected `(C, H, W)` shape.
    BadImage {
        /// Expected shape.
        expected: Vec<usize>,
        /// Actual shape.
        actual: Vec<usize>,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Tensor(e) => write!(f, "tensor error: {e}"),
            DataError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            DataError::BadImage { expected, actual } => {
                write!(f, "bad image shape: expected {expected:?}, got {actual:?}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DataError {
    fn from(e: TensorError) -> Self {
        DataError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::BadConfig { reason: "zero classes".into() };
        assert!(e.to_string().contains("zero classes"));
        let t: DataError = TensorError::InvalidGeometry { reason: "x".into() }.into();
        assert!(std::error::Error::source(&t).is_some());
    }
}
