//! PPM export: write synthetic images to disk for visual inspection.
//!
//! The binary `P6` PPM format needs no dependencies and opens in any
//! image viewer — handy for eyeballing what the drift model does to a
//! "species" (the `visualize_drift` example writes a gallery).

use crate::concepts::{CHANNELS, IMAGE_SIZE};
use crate::error::DataError;
use crate::Result;
use insitu_tensor::Tensor;
use std::io::Write;
use std::path::Path;

/// Encodes a `(3, H, W)` image with values in `[0, 1]` as a binary PPM.
///
/// # Errors
///
/// Returns [`DataError::BadImage`] if the tensor is not 3-channel 3-D.
pub fn to_ppm(image: &Tensor) -> Result<Vec<u8>> {
    let d = image.dims();
    if d.len() != 3 || d[0] != CHANNELS {
        return Err(DataError::BadImage {
            expected: vec![CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
            actual: d.to_vec(),
        });
    }
    let (h, w) = (d[1], d[2]);
    let mut out = Vec::with_capacity(32 + 3 * h * w);
    out.extend_from_slice(format!("P6\n{w} {h}\n255\n").as_bytes());
    let px = image.as_slice();
    for y in 0..h {
        for x in 0..w {
            for c in 0..3 {
                let v = (px[(c * h + y) * w + x].clamp(0.0, 1.0) * 255.0).round() as u8;
                out.push(v);
            }
        }
    }
    Ok(out)
}

/// Writes an image to a `.ppm` file.
///
/// # Errors
///
/// Returns an error on shape or I/O failure.
pub fn save_ppm(image: &Tensor, path: impl AsRef<Path>) -> Result<()> {
    let bytes = to_ppm(image)?;
    let mut file = std::fs::File::create(path).map_err(|e| DataError::BadConfig {
        reason: format!("cannot create PPM file: {e}"),
    })?;
    file.write_all(&bytes).map_err(|e| DataError::BadConfig {
        reason: format!("cannot write PPM file: {e}"),
    })?;
    Ok(())
}

/// Tiles a list of same-sized images into one contiguous sheet image
/// (`cols` across), with a 1-pixel black gutter.
///
/// # Errors
///
/// Returns an error if the list is empty or shapes disagree.
pub fn contact_sheet(images: &[Tensor], cols: usize) -> Result<Tensor> {
    let first = images.first().ok_or_else(|| DataError::BadConfig {
        reason: "contact sheet needs at least one image".into(),
    })?;
    let d = first.dims().to_vec();
    if d.len() != 3 {
        return Err(DataError::BadImage { expected: vec![3, 0, 0], actual: d });
    }
    let (c, h, w) = (d[0], d[1], d[2]);
    for img in images {
        if img.dims() != [c, h, w] {
            return Err(DataError::BadImage {
                expected: vec![c, h, w],
                actual: img.dims().to_vec(),
            });
        }
    }
    let cols = cols.max(1).min(images.len());
    let rows = images.len().div_ceil(cols);
    let (sheet_h, sheet_w) = (rows * (h + 1) - 1, cols * (w + 1) - 1);
    let mut sheet = Tensor::zeros([c, sheet_h, sheet_w]);
    let s = sheet.as_mut_slice();
    for (i, img) in images.iter().enumerate() {
        let (ty, tx) = (i / cols * (h + 1), i % cols * (w + 1));
        let p = img.as_slice();
        for ch in 0..c {
            for y in 0..h {
                for x in 0..w {
                    s[(ch * sheet_h + ty + y) * sheet_w + tx + x] = p[(ch * h + y) * w + x];
                }
            }
        }
    }
    Ok(sheet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::Concept;
    use insitu_tensor::Rng;

    #[test]
    fn ppm_header_and_size() {
        let mut rng = Rng::seed_from(1);
        let img = Concept::for_class(0, 4).unwrap().render(&mut rng);
        let ppm = to_ppm(&img).unwrap();
        assert!(ppm.starts_with(b"P6\n36 36\n255\n"));
        assert_eq!(ppm.len(), 13 + 3 * 36 * 36);
        assert!(to_ppm(&Tensor::zeros([1, 4, 4])).is_err());
    }

    #[test]
    fn ppm_pixel_values_clamped() {
        let img = Tensor::filled([3, 2, 2], 2.0); // out of range
        let ppm = to_ppm(&img).unwrap();
        assert!(ppm[ppm.len() - 12..].iter().all(|&b| b == 255));
    }

    #[test]
    fn contact_sheet_tiles() {
        let a = Tensor::filled([3, 4, 4], 1.0);
        let b = Tensor::filled([3, 4, 4], 0.5);
        let sheet = contact_sheet(&[a, b], 2).unwrap();
        assert_eq!(sheet.dims(), &[3, 4, 9]); // 2 tiles + 1px gutter
        // Gutter column stays black.
        assert_eq!(sheet.at(&[0, 0, 4]).unwrap(), 0.0);
        assert_eq!(sheet.at(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(sheet.at(&[0, 0, 5]).unwrap(), 0.5);
        assert!(contact_sheet(&[], 2).is_err());
        assert!(
            contact_sheet(&[Tensor::zeros([3, 4, 4]), Tensor::zeros([3, 2, 2])], 2).is_err()
        );
    }

    #[test]
    fn save_roundtrip() {
        let mut rng = Rng::seed_from(2);
        let img = Concept::for_class(1, 4).unwrap().render(&mut rng);
        let path = std::env::temp_dir().join("insitu_test_image.ppm");
        save_ppm(&img, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes, to_ppm(&img).unwrap());
        let _ = std::fs::remove_file(&path);
    }
}
