//! Labelled image datasets.

use crate::concepts::{Concept, CHANNELS, IMAGE_SIZE};
use crate::drift::Condition;
use crate::error::DataError;
use crate::Result;
use insitu_tensor::{Rng, Tensor};

/// Length of one flattened `(3, 36, 36)` sample, in floats.
pub const SAMPLE_LEN: usize = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;

/// A labelled set of synthetic IoT images, stored as one batched tensor
/// `(N, 3, 36, 36)` plus per-sample class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

/// A borrowed, zero-copy window over a contiguous sample range of a
/// [`Dataset`].
///
/// Batch loops and the streaming replay producer walk a dataset front
/// to back; a view lets them do so without cloning image storage on
/// the hot path — the samples are appended straight into recycled
/// arena buffers via [`append_to`](DatasetView::append_to), or
/// materialized once with [`to_dataset`](DatasetView::to_dataset) when
/// an owned copy is genuinely needed.
#[derive(Debug, Clone, Copy)]
pub struct DatasetView<'a> {
    images: &'a [f32],
    labels: &'a [usize],
    num_classes: usize,
}

impl<'a> DatasetView<'a> {
    /// Number of samples in the view.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes of the underlying dataset.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The flattened image storage, `len() * SAMPLE_LEN` floats.
    pub fn images(&self) -> &'a [f32] {
        self.images
    }

    /// The labels of the viewed samples.
    pub fn labels(&self) -> &'a [usize] {
        self.labels
    }

    /// Appends the viewed samples to raw buffers (the arena path: the
    /// target vectors keep their capacity across frames, so a warm
    /// buffer absorbs the copy without allocating).
    pub fn append_to(&self, images: &mut Vec<f32>, labels: &mut Vec<usize>) {
        images.extend_from_slice(self.images);
        labels.extend_from_slice(self.labels);
    }

    /// Materializes the view as an owned dataset (one copy).
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying storage is inconsistent.
    pub fn to_dataset(&self) -> Result<Dataset> {
        Dataset::from_parts(
            Tensor::from_vec(
                [self.len(), CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
                self.images.to_vec(),
            )?,
            self.labels.to_vec(),
            self.num_classes,
        )
    }
}

impl Dataset {
    /// Generates `n` images with uniformly random classes under the
    /// given environment condition.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `num_classes == 0`.
    pub fn generate(
        n: usize,
        num_classes: usize,
        condition: &Condition,
        rng: &mut Rng,
    ) -> Result<Dataset> {
        if num_classes == 0 {
            return Err(DataError::BadConfig { reason: "num_classes must be > 0".into() });
        }
        let concepts: Vec<Concept> = (0..num_classes)
            .map(|c| Concept::for_class(c, num_classes))
            .collect::<Result<_>>()?;
        let mut data = Vec::with_capacity(n * SAMPLE_LEN);
        let mut labels = Vec::with_capacity(n);
        Dataset::generate_into(&concepts, condition, rng, n, &mut data, &mut labels)?;
        Ok(Dataset {
            images: Tensor::from_vec([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data)?,
            labels,
            num_classes,
        })
    }

    /// Synthesizes `n` samples into caller-provided buffers: classes
    /// drawn uniformly from `concepts`, rendered and corrupted fully
    /// in place.
    ///
    /// This is the allocation-free spelling of
    /// [`generate`](Dataset::generate) the streaming producer drives
    /// with recycled arena buffers — the vectors are cleared and
    /// refilled, so a warm buffer absorbs a frame without touching the
    /// heap. Given concepts built by `Concept::for_class(c, k)` for
    /// `c in 0..k`, the RNG stream and the produced bytes are identical
    /// to `generate(n, k, ..)`'s.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `concepts` is empty.
    pub fn generate_into(
        concepts: &[Concept],
        condition: &Condition,
        rng: &mut Rng,
        n: usize,
        images: &mut Vec<f32>,
        labels: &mut Vec<usize>,
    ) -> Result<()> {
        if concepts.is_empty() {
            return Err(DataError::BadConfig { reason: "concepts must not be empty".into() });
        }
        images.clear();
        labels.clear();
        images.reserve(n * SAMPLE_LEN);
        labels.reserve(n);
        let mut scratch = [0f32; SAMPLE_LEN];
        for _ in 0..n {
            let cls = rng.below(concepts.len());
            let start = images.len();
            images.resize(start + SAMPLE_LEN, 0.0);
            let slot = &mut images[start..start + SAMPLE_LEN];
            concepts[cls].render_into(rng, slot);
            condition.apply_in_place(slot, &mut scratch, rng)?;
            labels.push(concepts[cls].class);
        }
        Ok(())
    }

    /// Builds a dataset from existing parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the image count and label count disagree, or
    /// a label is out of range.
    pub fn from_parts(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Dataset> {
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() {
            return Err(DataError::BadConfig {
                reason: format!("{n} images but {} labels", labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::BadConfig {
                reason: format!("label {bad} out of range 0..{num_classes}"),
            });
        }
        Ok(Dataset { images, labels, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The batched image tensor `(N, 3, 36, 36)`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Per-sample labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The image at index `i` as a `(3, 36, 36)` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if `i` is out of range.
    pub fn image(&self, i: usize) -> Result<Tensor> {
        if i >= self.len() {
            return Err(DataError::BadConfig {
                reason: format!("index {i} out of {}", self.len()),
            });
        }
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        Ok(Tensor::from_vec(
            [CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
            self.images.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
        )?)
    }

    /// Copies the samples at `indices` into a new dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::BadConfig {
                    reason: format!("index {i} out of {}", self.len()),
                });
            }
            data.extend_from_slice(&self.images.as_slice()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        Ok(Dataset {
            images: Tensor::from_vec(
                [indices.len(), CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
                data,
            )?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Copies the contiguous sample range `range` into a new dataset.
    ///
    /// The allocation-light sibling of [`subset`](Dataset::subset) for
    /// batch loops that walk a dataset front to back: one bulk copy,
    /// no index vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the range reaches past the end.
    pub fn subset_range(&self, range: std::ops::Range<usize>) -> Result<Dataset> {
        if range.start > range.end || range.end > self.len() {
            return Err(DataError::BadConfig {
                reason: format!("range {range:?} out of {}", self.len()),
            });
        }
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        let data =
            self.images.as_slice()[range.start * sample_len..range.end * sample_len].to_vec();
        Ok(Dataset {
            images: Tensor::from_vec(
                [range.len(), CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
                data,
            )?,
            labels: self.labels[range].to_vec(),
            num_classes: self.num_classes,
        })
    }

    /// Borrows the contiguous sample range `range` as a zero-copy
    /// [`DatasetView`] — the hot-path sibling of
    /// [`subset_range`](Dataset::subset_range), which copies.
    ///
    /// # Errors
    ///
    /// Returns an error if the range reaches past the end.
    pub fn view(&self, range: std::ops::Range<usize>) -> Result<DatasetView<'_>> {
        if range.start > range.end || range.end > self.len() {
            return Err(DataError::BadConfig {
                reason: format!("range {range:?} out of {}", self.len()),
            });
        }
        Ok(DatasetView {
            images: &self.images.as_slice()[range.start * SAMPLE_LEN..range.end * SAMPLE_LEN],
            labels: &self.labels[range],
            num_classes: self.num_classes,
        })
    }

    /// Iterates borrowed views over consecutive chunks of at most
    /// `chunk` samples (the last chunk may be shorter; `chunk` is
    /// clamped to at least 1). No image storage is cloned — this is
    /// what the replay producer walks when copying a dataset into
    /// recycled arena buffers.
    pub fn chunk_views(&self, chunk: usize) -> impl Iterator<Item = DatasetView<'_>> {
        let chunk = chunk.max(1);
        let n = self.len();
        (0..n).step_by(chunk).map(move |start| {
            let end = (start + chunk).min(n);
            DatasetView {
                images: &self.images.as_slice()[start * SAMPLE_LEN..end * SAMPLE_LEN],
                labels: &self.labels[start..end],
                num_classes: self.num_classes,
            }
        })
    }

    /// Decomposes the dataset into its owned image tensor and label
    /// vector — the inverse of [`from_parts`](Dataset::from_parts).
    /// The streaming arena uses this to reclaim a consumed frame's
    /// storage without copying.
    pub fn into_parts(self) -> (Tensor, Vec<usize>) {
        (self.images, self.labels)
    }

    /// Concatenates two datasets with the same class space.
    ///
    /// # Errors
    ///
    /// Returns an error if the class counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.num_classes != other.num_classes {
            return Err(DataError::BadConfig {
                reason: format!(
                    "class spaces differ: {} vs {}",
                    self.num_classes, other.num_classes
                ),
            });
        }
        let mut data = self.images.as_slice().to_vec();
        data.extend_from_slice(other.images.as_slice());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let n = self.len() + other.len();
        Ok(Dataset {
            images: Tensor::from_vec([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data)?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Splits into `(first k, rest)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k > len`.
    pub fn split_at(&self, k: usize) -> Result<(Dataset, Dataset)> {
        if k > self.len() {
            return Err(DataError::BadConfig {
                reason: format!("split {k} out of {}", self.len()),
            });
        }
        let head: Vec<usize> = (0..k).collect();
        let tail: Vec<usize> = (k..self.len()).collect();
        Ok((self.subset(&head)?, self.subset(&tail)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(rng: &mut Rng) -> Dataset {
        Dataset::generate(20, 4, &Condition::ideal(), rng).unwrap()
    }

    #[test]
    fn generate_shapes() {
        let mut rng = Rng::seed_from(1);
        let d = small(&mut rng);
        assert_eq!(d.len(), 20);
        assert_eq!(d.images().dims(), &[20, 3, 36, 36]);
        assert_eq!(d.num_classes(), 4);
        assert!(d.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Dataset::generate(8, 3, &Condition::ideal(), &mut Rng::seed_from(5)).unwrap();
        let b = Dataset::generate(8, 3, &Condition::ideal(), &mut Rng::seed_from(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn subset_range_matches_subset() {
        let mut rng = Rng::seed_from(7);
        let d = small(&mut rng);
        let indices: Vec<usize> = (4..13).collect();
        assert_eq!(d.subset_range(4..13).unwrap(), d.subset(&indices).unwrap());
        assert_eq!(d.subset_range(5..5).unwrap().len(), 0);
        assert!(d.subset_range(4..21).is_err());
    }

    #[test]
    fn subset_and_image_access() {
        let mut rng = Rng::seed_from(2);
        let d = small(&mut rng);
        let s = d.subset(&[3, 7, 1]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels()[0], d.labels()[3]);
        assert_eq!(s.image(0).unwrap(), d.image(3).unwrap());
        assert!(d.subset(&[99]).is_err());
        assert!(d.image(99).is_err());
    }

    #[test]
    fn concat_and_split() {
        let mut rng = Rng::seed_from(3);
        let a = small(&mut rng);
        let b = small(&mut rng);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 40);
        let (head, tail) = c.split_at(20).unwrap();
        assert_eq!(head, a);
        assert_eq!(tail.len(), 20);
        assert!(c.split_at(41).is_err());
        let other = Dataset::generate(4, 2, &Condition::ideal(), &mut rng).unwrap();
        assert!(a.concat(&other).is_err());
    }

    #[test]
    fn views_borrow_without_copying() {
        let mut rng = Rng::seed_from(11);
        let d = small(&mut rng);
        let v = d.view(4..13).unwrap();
        assert_eq!(v.len(), 9);
        assert_eq!(v.num_classes(), 4);
        // Same storage as the copying path.
        let copied = d.subset_range(4..13).unwrap();
        assert_eq!(v.images(), copied.images().as_slice());
        assert_eq!(v.labels(), copied.labels());
        assert_eq!(v.to_dataset().unwrap(), copied);
        // The borrowed pointer aims into the parent's storage: no clone.
        assert_eq!(v.images().as_ptr(), d.images().as_slice()[4 * SAMPLE_LEN..].as_ptr());
        assert!(d.view(4..21).is_err());
        assert!(d.view(5..5).unwrap().is_empty());
    }

    #[test]
    fn chunk_views_cover_the_dataset_in_order() {
        let mut rng = Rng::seed_from(12);
        let d = small(&mut rng); // 20 samples
        let chunks: Vec<_> = d.chunk_views(8).collect();
        assert_eq!(chunks.iter().map(|c| c.len()).collect::<Vec<_>>(), vec![8, 8, 4]);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for c in &chunks {
            c.append_to(&mut images, &mut labels);
        }
        assert_eq!(&images[..], d.images().as_slice());
        assert_eq!(&labels[..], d.labels());
        // chunk = 0 clamps to 1; empty dataset yields no chunks.
        assert_eq!(d.chunk_views(0).count(), 20);
        assert_eq!(d.subset_range(0..0).unwrap().chunk_views(4).count(), 0);
    }

    #[test]
    fn generate_into_matches_generate_bitwise() {
        let concepts: Vec<Concept> =
            (0..4).map(|c| Concept::for_class(c, 4).unwrap()).collect();
        let cond = Condition::in_situ();
        let mut rng_a = Rng::seed_from(31);
        let mut rng_b = Rng::seed_from(31);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..3 {
            let owned = Dataset::generate(6, 4, &cond, &mut rng_a).unwrap();
            Dataset::generate_into(&concepts, &cond, &mut rng_b, 6, &mut images, &mut labels)
                .unwrap();
            assert_eq!(owned.images().as_slice(), &images[..]);
            assert_eq!(owned.labels(), &labels[..]);
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        assert!(Dataset::generate_into(
            &[],
            &cond,
            &mut rng_b,
            2,
            &mut images,
            &mut labels
        )
        .is_err());
    }

    #[test]
    fn into_parts_round_trips() {
        let mut rng = Rng::seed_from(13);
        let d = small(&mut rng);
        let copy = d.clone();
        let (images, labels) = d.into_parts();
        assert_eq!(Dataset::from_parts(images, labels, 4).unwrap(), copy);
    }

    #[test]
    fn from_parts_validates() {
        let imgs = Tensor::zeros([2, 3, 36, 36]);
        assert!(Dataset::from_parts(imgs.clone(), vec![0], 2).is_err());
        assert!(Dataset::from_parts(imgs.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::from_parts(imgs, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn zero_classes_rejected() {
        let mut rng = Rng::seed_from(4);
        assert!(Dataset::generate(5, 0, &Condition::ideal(), &mut rng).is_err());
    }
}
