//! Labelled image datasets.

use crate::concepts::{Concept, CHANNELS, IMAGE_SIZE};
use crate::drift::Condition;
use crate::error::DataError;
use crate::Result;
use insitu_tensor::{Rng, Tensor};

/// A labelled set of synthetic IoT images, stored as one batched tensor
/// `(N, 3, 36, 36)` plus per-sample class labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Generates `n` images with uniformly random classes under the
    /// given environment condition.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `num_classes == 0`.
    pub fn generate(
        n: usize,
        num_classes: usize,
        condition: &Condition,
        rng: &mut Rng,
    ) -> Result<Dataset> {
        if num_classes == 0 {
            return Err(DataError::BadConfig { reason: "num_classes must be > 0".into() });
        }
        let concepts: Vec<Concept> = (0..num_classes)
            .map(|c| Concept::for_class(c, num_classes))
            .collect::<Result<_>>()?;
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        let mut data = Vec::with_capacity(n * sample_len);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let cls = rng.below(num_classes);
            let clean = concepts[cls].render(rng);
            let seen = condition.apply(&clean, rng)?;
            data.extend_from_slice(seen.as_slice());
            labels.push(cls);
        }
        Ok(Dataset {
            images: Tensor::from_vec([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data)?,
            labels,
            num_classes,
        })
    }

    /// Builds a dataset from existing parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the image count and label count disagree, or
    /// a label is out of range.
    pub fn from_parts(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Result<Dataset> {
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() {
            return Err(DataError::BadConfig {
                reason: format!("{n} images but {} labels", labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::BadConfig {
                reason: format!("label {bad} out of range 0..{num_classes}"),
            });
        }
        Ok(Dataset { images, labels, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The batched image tensor `(N, 3, 36, 36)`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Per-sample labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The image at index `i` as a `(3, 36, 36)` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if `i` is out of range.
    pub fn image(&self, i: usize) -> Result<Tensor> {
        if i >= self.len() {
            return Err(DataError::BadConfig {
                reason: format!("index {i} out of {}", self.len()),
            });
        }
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        Ok(Tensor::from_vec(
            [CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
            self.images.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
        )?)
    }

    /// Copies the samples at `indices` into a new dataset.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::BadConfig {
                    reason: format!("index {i} out of {}", self.len()),
                });
            }
            data.extend_from_slice(&self.images.as_slice()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        Ok(Dataset {
            images: Tensor::from_vec(
                [indices.len(), CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
                data,
            )?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Copies the contiguous sample range `range` into a new dataset.
    ///
    /// The allocation-light sibling of [`subset`](Dataset::subset) for
    /// batch loops that walk a dataset front to back: one bulk copy,
    /// no index vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the range reaches past the end.
    pub fn subset_range(&self, range: std::ops::Range<usize>) -> Result<Dataset> {
        if range.start > range.end || range.end > self.len() {
            return Err(DataError::BadConfig {
                reason: format!("range {range:?} out of {}", self.len()),
            });
        }
        let sample_len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        let data =
            self.images.as_slice()[range.start * sample_len..range.end * sample_len].to_vec();
        Ok(Dataset {
            images: Tensor::from_vec(
                [range.len(), CHANNELS, IMAGE_SIZE, IMAGE_SIZE],
                data,
            )?,
            labels: self.labels[range].to_vec(),
            num_classes: self.num_classes,
        })
    }

    /// Concatenates two datasets with the same class space.
    ///
    /// # Errors
    ///
    /// Returns an error if the class counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.num_classes != other.num_classes {
            return Err(DataError::BadConfig {
                reason: format!(
                    "class spaces differ: {} vs {}",
                    self.num_classes, other.num_classes
                ),
            });
        }
        let mut data = self.images.as_slice().to_vec();
        data.extend_from_slice(other.images.as_slice());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let n = self.len() + other.len();
        Ok(Dataset {
            images: Tensor::from_vec([n, CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data)?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Splits into `(first k, rest)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k > len`.
    pub fn split_at(&self, k: usize) -> Result<(Dataset, Dataset)> {
        if k > self.len() {
            return Err(DataError::BadConfig {
                reason: format!("split {k} out of {}", self.len()),
            });
        }
        let head: Vec<usize> = (0..k).collect();
        let tail: Vec<usize> = (k..self.len()).collect();
        Ok((self.subset(&head)?, self.subset(&tail)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(rng: &mut Rng) -> Dataset {
        Dataset::generate(20, 4, &Condition::ideal(), rng).unwrap()
    }

    #[test]
    fn generate_shapes() {
        let mut rng = Rng::seed_from(1);
        let d = small(&mut rng);
        assert_eq!(d.len(), 20);
        assert_eq!(d.images().dims(), &[20, 3, 36, 36]);
        assert_eq!(d.num_classes(), 4);
        assert!(d.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Dataset::generate(8, 3, &Condition::ideal(), &mut Rng::seed_from(5)).unwrap();
        let b = Dataset::generate(8, 3, &Condition::ideal(), &mut Rng::seed_from(5)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn subset_range_matches_subset() {
        let mut rng = Rng::seed_from(7);
        let d = small(&mut rng);
        let indices: Vec<usize> = (4..13).collect();
        assert_eq!(d.subset_range(4..13).unwrap(), d.subset(&indices).unwrap());
        assert_eq!(d.subset_range(5..5).unwrap().len(), 0);
        assert!(d.subset_range(4..21).is_err());
    }

    #[test]
    fn subset_and_image_access() {
        let mut rng = Rng::seed_from(2);
        let d = small(&mut rng);
        let s = d.subset(&[3, 7, 1]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels()[0], d.labels()[3]);
        assert_eq!(s.image(0).unwrap(), d.image(3).unwrap());
        assert!(d.subset(&[99]).is_err());
        assert!(d.image(99).is_err());
    }

    #[test]
    fn concat_and_split() {
        let mut rng = Rng::seed_from(3);
        let a = small(&mut rng);
        let b = small(&mut rng);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 40);
        let (head, tail) = c.split_at(20).unwrap();
        assert_eq!(head, a);
        assert_eq!(tail.len(), 20);
        assert!(c.split_at(41).is_err());
        let other = Dataset::generate(4, 2, &Condition::ideal(), &mut rng).unwrap();
        assert!(a.concat(&other).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let imgs = Tensor::zeros([2, 3, 36, 36]);
        assert!(Dataset::from_parts(imgs.clone(), vec![0], 2).is_err());
        assert!(Dataset::from_parts(imgs.clone(), vec![0, 5], 2).is_err());
        assert!(Dataset::from_parts(imgs, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn zero_classes_rejected() {
        let mut rng = Rng::seed_from(4);
        assert!(Dataset::generate(5, 0, &Condition::ideal(), &mut rng).is_err());
    }
}
