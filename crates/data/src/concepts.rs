//! Procedural "species" renderer: the synthetic stand-in for camera-trap
//! imagery.
//!
//! Each class is a parametric texture (stripes, spots, rings or
//! checkers at a class-specific orientation, frequency and palette)
//! rendered with per-instance variation — position jitter, phase, scale
//! and clutter — so recognition is learnable but not trivial, and the
//! spatial structure is rich enough for the jigsaw context-prediction
//! task to carry signal.

use crate::error::DataError;
use crate::Result;
use insitu_tensor::{Rng, Tensor};

/// Image edge length used across the reproduction (matches
/// `insitu_nn::models::IMAGE_SIZE`).
pub const IMAGE_SIZE: usize = 36;
/// Color channels.
pub const CHANNELS: usize = 3;

/// The texture family a class renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Oriented sinusoidal stripes (zebra-like).
    Stripes,
    /// A lattice of bright spots (leopard-like).
    Spots,
    /// Concentric rings around a moving center.
    Rings,
    /// A smoothed checkerboard.
    Checker,
}

impl PatternKind {
    fn from_index(i: usize) -> PatternKind {
        match i % 4 {
            0 => PatternKind::Stripes,
            1 => PatternKind::Spots,
            2 => PatternKind::Rings,
            _ => PatternKind::Checker,
        }
    }
}

/// The immutable parameters that define one class ("species").
#[derive(Debug, Clone, PartialEq)]
pub struct Concept {
    /// Class index.
    pub class: usize,
    /// Texture family.
    pub kind: PatternKind,
    /// Texture orientation in radians.
    pub angle: f32,
    /// Spatial frequency (cycles across the image).
    pub frequency: f32,
    /// Foreground RGB color, each in `[0, 1]`.
    pub color: [f32; 3],
    /// Background RGB color.
    pub background: [f32; 3],
}

impl Concept {
    /// Derives the deterministic parameters of class `class` out of
    /// `num_classes`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `class >= num_classes` or
    /// `num_classes == 0`.
    pub fn for_class(class: usize, num_classes: usize) -> Result<Concept> {
        if num_classes == 0 || class >= num_classes {
            return Err(DataError::BadConfig {
                reason: format!("class {class} out of {num_classes}"),
            });
        }
        // Only three hues cycle across classes, so color alone cannot
        // identify a class — several classes share a hue and differ
        // only in texture. This forces the CNN to learn shape/texture
        // features (which is also what makes conv-feature transfer
        // meaningful, as in real imagery).
        let hue = (class % 3) as f32 / 3.0 + (class / 12) as f32 * 0.11;
        let color = hue_to_rgb(hue % 1.0);
        let background = hue_to_rgb((hue + 0.5) % 1.0).map(|v| v * 0.25);
        let kind = PatternKind::from_index(class);
        let angle = ((class / 4) % 3) as f32 * 0.55 + 0.25;
        let frequency = 2.5 + ((class / 4) % 3) as f32 * 1.3;
        Ok(Concept { class, kind, angle, frequency, color, background })
    }

    /// Renders one instance of this concept with per-instance variation
    /// drawn from `rng`. Output shape is `(3, 36, 36)` with values in
    /// `[0, 1]`.
    ///
    /// The texture fills an elliptical "body" against a darker
    /// background with a fixed illumination gradient. The scene is
    /// therefore **spatially non-stationary** — tiles from different
    /// grid positions look different — which is what makes the jigsaw
    /// context-prediction task informative (exactly as in natural
    /// camera-trap imagery).
    pub fn render(&self, rng: &mut Rng) -> Tensor {
        let mut data = vec![0f32; CHANNELS * IMAGE_SIZE * IMAGE_SIZE];
        self.render_into(rng, &mut data);
        Tensor::from_vec([CHANNELS, IMAGE_SIZE, IMAGE_SIZE], data)
            .expect("render buffer sized correctly")
    }

    /// Renders one instance into a caller-provided buffer of exactly
    /// `CHANNELS * IMAGE_SIZE * IMAGE_SIZE` floats — the
    /// allocation-free spelling of [`render`](Concept::render) used by
    /// the streaming producer, which recycles frame buffers through an
    /// arena instead of allocating per image. Every element of `out` is
    /// overwritten, and the RNG draw order is identical to `render`'s,
    /// so the two are bitwise interchangeable.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != CHANNELS * IMAGE_SIZE * IMAGE_SIZE`.
    pub fn render_into(&self, rng: &mut Rng, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            CHANNELS * IMAGE_SIZE * IMAGE_SIZE,
            "render_into buffer must hold one (3, 36, 36) sample"
        );
        let phase = rng.uniform(0.0, std::f32::consts::TAU);
        let jitter_x = rng.uniform(-0.15, 0.15);
        let jitter_y = rng.uniform(-0.15, 0.15);
        let scale = rng.uniform(0.85, 1.2);
        let clutter = rng.uniform(0.02, 0.05);
        // Body ellipse: slightly anisotropic, jittered around center.
        let (body_cx, body_cy) = (rng.uniform(-0.15, 0.15), rng.uniform(-0.15, 0.15));
        let (body_a, body_b) = (rng.uniform(0.55, 0.8), rng.uniform(0.45, 0.7));
        let mut noise_rng = rng.fork();

        let n = IMAGE_SIZE;
        let (sin_a, cos_a) = self.angle.sin_cos();
        for y in 0..n {
            for x in 0..n {
                // Normalized coordinates in [-1, 1], instance-jittered.
                let xf = (x as f32 / (n - 1) as f32) * 2.0 - 1.0 + jitter_x;
                let yf = (y as f32 / (n - 1) as f32) * 2.0 - 1.0 + jitter_y;
                let (u, v) = (
                    (xf * cos_a + yf * sin_a) * scale,
                    (-xf * sin_a + yf * cos_a) * scale,
                );
                let f = self.frequency * std::f32::consts::PI;
                let value = match self.kind {
                    PatternKind::Stripes => 0.5 + 0.5 * (f * u + phase).sin(),
                    PatternKind::Spots => {
                        let s = (f * u + phase).sin() * (f * v + phase).sin();
                        (s.max(0.0)).powf(1.5)
                    }
                    PatternKind::Rings => {
                        let r = (u * u + v * v).sqrt();
                        0.5 + 0.5 * (f * 1.4 * r + phase).sin()
                    }
                    PatternKind::Checker => {
                        let s = (f * 0.8 * u + phase).sin() * (f * 0.8 * v + phase).sin();
                        0.5 + 0.5 * (3.0 * s).tanh()
                    }
                };
                // Smooth elliptical body mask (1 inside, →0 outside).
                let rx = (xf - body_cx) / body_a;
                let ry = (yf - body_cy) / body_b;
                let r2 = rx * rx + ry * ry;
                let mask = (1.0 - (r2 - 0.7).max(0.0) / 0.6).clamp(0.0, 1.0);
                // Fixed top-lit illumination gradient on the background.
                let glow = 0.18 * (1.0 - (yf + 1.0) / 2.0) + 0.06 * (xf + 1.0) / 2.0;
                for c in 0..CHANNELS {
                    let body = self.color[c] * value + self.background[c] * (1.0 - value);
                    let bg = self.background[c] * 0.5 + glow;
                    let fg = body * mask + bg * (1.0 - mask);
                    let noisy = fg + noise_rng.normal_with(0.0, clutter);
                    out[(c * n + y) * n + x] = noisy.clamp(0.0, 1.0);
                }
            }
        }
    }
}

/// Converts a hue in `[0, 1)` (full saturation/value) to RGB.
fn hue_to_rgb(h: f32) -> [f32; 3] {
    let h6 = (h % 1.0) * 6.0;
    let x = 1.0 - (h6 % 2.0 - 1.0).abs();
    match h6 as usize {
        0 => [1.0, x, 0.0],
        1 => [x, 1.0, 0.0],
        2 => [0.0, 1.0, x],
        3 => [0.0, x, 1.0],
        4 => [x, 0.0, 1.0],
        _ => [1.0, 0.0, x],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concepts_are_deterministic() {
        let a = Concept::for_class(3, 8).unwrap();
        let b = Concept::for_class(3, 8).unwrap();
        assert_eq!(a, b);
        assert!(Concept::for_class(8, 8).is_err());
        assert!(Concept::for_class(0, 0).is_err());
    }

    #[test]
    fn classes_differ() {
        let a = Concept::for_class(0, 8).unwrap();
        let b = Concept::for_class(1, 8).unwrap();
        assert_ne!(a.kind, b.kind);
        assert_ne!(a.color, b.color);
    }

    #[test]
    fn render_shape_and_range() {
        let mut rng = Rng::seed_from(1);
        let c = Concept::for_class(2, 8).unwrap();
        let img = c.render(&mut rng);
        assert_eq!(img.dims(), &[3, 36, 36]);
        assert!(img.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn render_into_matches_render_bitwise() {
        // The arena path must be a drop-in replacement: same pixels,
        // same RNG stream advancement.
        let c = Concept::for_class(1, 8).unwrap();
        let mut rng_a = Rng::seed_from(21);
        let mut rng_b = Rng::seed_from(21);
        let mut buf = vec![7.0f32; CHANNELS * IMAGE_SIZE * IMAGE_SIZE];
        for _ in 0..3 {
            let owned = c.render(&mut rng_a);
            c.render_into(&mut rng_b, &mut buf);
            assert_eq!(owned.as_slice(), &buf[..]);
            assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        }
    }

    #[test]
    fn instances_vary_but_share_structure() {
        let mut rng = Rng::seed_from(2);
        let c = Concept::for_class(0, 8).unwrap();
        let a = c.render(&mut rng);
        let b = c.render(&mut rng);
        // Different instances differ...
        assert!(a.max_abs_diff(&b).unwrap() > 0.05);
        // ...but on average (over many pairs) less than instances of a
        // different class: the class signal must dominate the nuisance.
        let other = Concept::for_class(5, 8).unwrap();
        let (mut intra, mut inter) = (0.0f32, 0.0f32);
        let pairs = 24;
        for _ in 0..pairs {
            let x = c.render(&mut rng);
            let y = c.render(&mut rng);
            let z = other.render(&mut rng);
            intra += x.sub(&y).unwrap().norm_sq();
            inter += x.sub(&z).unwrap().norm_sq();
        }
        assert!(inter > intra, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn all_pattern_kinds_reachable() {
        let kinds: Vec<PatternKind> =
            (0..4).map(|i| Concept::for_class(i, 4).unwrap().kind).collect();
        assert_eq!(
            kinds,
            vec![
                PatternKind::Stripes,
                PatternKind::Spots,
                PatternKind::Rings,
                PatternKind::Checker
            ]
        );
    }

    #[test]
    fn hue_wheel_is_valid_rgb() {
        for i in 0..12 {
            let rgb = hue_to_rgb(i as f32 / 12.0);
            assert!(rgb.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }
}
