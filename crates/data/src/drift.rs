//! The environment-drift model.
//!
//! The paper motivates In-situ AI with the gap between curated training
//! imagery and real camera-trap data (its Fig. 2): partial bodies
//! (animal too close), odd poses, poor illumination and weather. This
//! module models those failure modes as a parametric
//! [`Condition`] applied to rendered images: illumination gain/bias,
//! additive sensor noise, occluding blocks, translation ("pose") and a
//! box blur ("weather"). The [`ideal`](Condition::ideal) condition is
//! the identity — the Cloud's curated dataset; increasing
//! [`severity`](Condition::with_severity) interpolates toward the harsh
//! in-situ distribution.

use crate::concepts::{CHANNELS, IMAGE_SIZE};
use crate::error::DataError;
use crate::Result;
use insitu_tensor::{Rng, Tensor};

/// A distribution over image corruptions, representing one environment
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// Multiplicative illumination range (sampled per image).
    pub gain: (f32, f32),
    /// Additive illumination offset range.
    pub bias: (f32, f32),
    /// Standard deviation of additive Gaussian sensor noise.
    pub noise_std: f32,
    /// Probability that an occluding block is pasted over the image.
    pub occlusion_prob: f32,
    /// Edge of the occluding block, as a fraction of the image edge.
    pub occlusion_frac: f32,
    /// Maximum translation in pixels (random pose shift).
    pub max_shift: usize,
    /// Probability that a 3×3 box blur is applied (weather).
    pub blur_prob: f32,
}

impl Condition {
    /// The identity condition: curated, ideal imagery.
    pub fn ideal() -> Condition {
        Condition {
            gain: (1.0, 1.0),
            bias: (0.0, 0.0),
            noise_std: 0.0,
            occlusion_prob: 0.0,
            occlusion_frac: 0.0,
            max_shift: 0,
            blur_prob: 0.0,
        }
    }

    /// A condition whose corruption strength scales with
    /// `severity ∈ [0, 1]`: 0 is [`ideal`](Condition::ideal), 1 is the
    /// harshest in-situ environment (night-time, heavy rain, animals
    /// against the lens).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `severity` is outside
    /// `[0, 1]`.
    pub fn with_severity(severity: f32) -> Result<Condition> {
        if !(0.0..=1.0).contains(&severity) {
            return Err(DataError::BadConfig {
                reason: format!("severity {severity} outside [0, 1]"),
            });
        }
        let s = severity;
        Ok(Condition {
            gain: (1.0 - 0.75 * s, 1.0 + 0.3 * s),
            bias: (-0.35 * s, 0.15 * s),
            noise_std: 0.22 * s,
            occlusion_prob: 0.65 * s,
            occlusion_frac: 0.6 * s,
            max_shift: (8.0 * s) as usize,
            blur_prob: 0.7 * s,
        })
    }

    /// The canonical in-situ environment used by the experiments
    /// (severity 0.75).
    pub fn in_situ() -> Condition {
        Condition::with_severity(0.75).expect("0.75 is a valid severity")
    }

    /// Applies one sampled corruption to an image `(3, H, W)`, returning
    /// the corrupted copy.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadImage`] if the image is not
    /// `(3, 36, 36)`.
    pub fn apply(&self, image: &Tensor, rng: &mut Rng) -> Result<Tensor> {
        let expected = [CHANNELS, IMAGE_SIZE, IMAGE_SIZE];
        if image.dims() != expected {
            return Err(DataError::BadImage {
                expected: expected.to_vec(),
                actual: image.dims().to_vec(),
            });
        }
        let mut out = image.clone();
        let mut scratch = vec![0f32; out.len()];
        self.apply_in_place(out.as_mut_slice(), &mut scratch, rng)?;
        Ok(out)
    }

    /// Applies one sampled corruption to a flattened `(3, 36, 36)`
    /// sample in place — the allocation-free spelling of
    /// [`apply`](Condition::apply) used by the streaming producer,
    /// which corrupts samples directly inside recycled arena buffers.
    /// `scratch` provides the source copy for the shift/blur stencils
    /// and must hold at least as many elements as `image`. The RNG draw
    /// order is identical to `apply`'s, so the two are bitwise
    /// interchangeable.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `image` is not exactly one
    /// sample long or `scratch` is shorter than `image`.
    pub fn apply_in_place(
        &self,
        image: &mut [f32],
        scratch: &mut [f32],
        rng: &mut Rng,
    ) -> Result<()> {
        let len = CHANNELS * IMAGE_SIZE * IMAGE_SIZE;
        if image.len() != len {
            return Err(DataError::BadConfig {
                reason: format!("sample slice holds {} floats, expected {len}", image.len()),
            });
        }
        if scratch.len() < len {
            return Err(DataError::BadConfig {
                reason: format!("scratch holds {} floats, need {len}", scratch.len()),
            });
        }
        let n = IMAGE_SIZE;

        // Pose: random translation with edge replication.
        if self.max_shift > 0 {
            let dx = rng.below(2 * self.max_shift + 1) as isize - self.max_shift as isize;
            let dy = rng.below(2 * self.max_shift + 1) as isize - self.max_shift as isize;
            if dx != 0 || dy != 0 {
                scratch[..len].copy_from_slice(image);
                let s = &scratch[..len];
                let d = &mut *image;
                for c in 0..CHANNELS {
                    for y in 0..n {
                        let sy = (y as isize - dy).clamp(0, n as isize - 1) as usize;
                        for x in 0..n {
                            let sx = (x as isize - dx).clamp(0, n as isize - 1) as usize;
                            d[(c * n + y) * n + x] = s[(c * n + sy) * n + sx];
                        }
                    }
                }
            }
        }

        // Weather: 3x3 box blur.
        if rng.chance(self.blur_prob) {
            scratch[..len].copy_from_slice(image);
            let s = &scratch[..len];
            let d = &mut *image;
            for c in 0..CHANNELS {
                for y in 0..n {
                    for x in 0..n {
                        let mut acc = 0.0;
                        let mut cnt = 0.0;
                        for wy in -1isize..=1 {
                            let yy = y as isize + wy;
                            if yy < 0 || yy >= n as isize {
                                continue;
                            }
                            for wx in -1isize..=1 {
                                let xx = x as isize + wx;
                                if xx < 0 || xx >= n as isize {
                                    continue;
                                }
                                acc += s[(c * n + yy as usize) * n + xx as usize];
                                cnt += 1.0;
                            }
                        }
                        d[(c * n + y) * n + x] = acc / cnt;
                    }
                }
            }
        }

        // Occlusion: a flat block, e.g. an animal flank filling the frame.
        if rng.chance(self.occlusion_prob) && self.occlusion_frac > 0.0 {
            let edge = ((n as f32 * self.occlusion_frac) as usize).clamp(1, n);
            let ox = rng.below(n - edge + 1);
            let oy = rng.below(n - edge + 1);
            let shade = rng.uniform(0.05, 0.35);
            for c in 0..CHANNELS {
                for y in oy..oy + edge {
                    for x in ox..ox + edge {
                        image[(c * n + y) * n + x] = shade;
                    }
                }
            }
        }

        // Illumination + sensor noise.
        let gain = rng.uniform(self.gain.0, self.gain.1);
        let bias = rng.uniform(self.bias.0, self.bias.1);
        let noise = self.noise_std;
        let mut noise_rng = rng.fork();
        insitu_tensor::simd::affine(image, gain, bias);
        if noise > 0.0 {
            for v in image.iter_mut() {
                *v += noise_rng.normal_with(0.0, noise);
            }
        }
        insitu_tensor::simd::clamp(image, 0.0, 1.0);
        Ok(())
    }

    /// Expected severity of this condition on a 0–1 scale (rough scalar
    /// summary used for logging).
    pub fn severity_estimate(&self) -> f32 {
        let gain_spread = (self.gain.1 - self.gain.0) / 0.85;
        (gain_spread
            + self.noise_std / 0.14
            + self.occlusion_prob / 0.5
            + self.blur_prob / 0.5
            + self.max_shift as f32 / 6.0)
            / 5.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concepts::Concept;

    #[test]
    fn ideal_is_identity() {
        let mut rng = Rng::seed_from(1);
        let img = Concept::for_class(0, 4).unwrap().render(&mut rng);
        let out = Condition::ideal().apply(&img, &mut rng).unwrap();
        assert_eq!(out, img);
    }

    #[test]
    fn severity_bounds_checked() {
        assert!(Condition::with_severity(-0.1).is_err());
        assert!(Condition::with_severity(1.1).is_err());
        assert!(Condition::with_severity(0.0).is_ok());
        assert!(Condition::with_severity(1.0).is_ok());
    }

    #[test]
    fn zero_severity_equals_ideal() {
        let c = Condition::with_severity(0.0).unwrap();
        assert_eq!(c, Condition::ideal());
    }

    #[test]
    fn corruption_perturbs_images() {
        let mut rng = Rng::seed_from(2);
        let img = Concept::for_class(1, 4).unwrap().render(&mut rng);
        let harsh = Condition::with_severity(1.0).unwrap();
        let out = harsh.apply(&img, &mut rng).unwrap();
        assert!(out.max_abs_diff(&img).unwrap() > 0.1);
        assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn corruption_grows_with_severity() {
        let mut rng = Rng::seed_from(3);
        let img = Concept::for_class(2, 4).unwrap().render(&mut rng);
        let mut distortion = Vec::new();
        for &s in &[0.2f32, 0.6, 1.0] {
            let cond = Condition::with_severity(s).unwrap();
            // Average over several draws to smooth stochastic effects.
            let mut acc = 0.0;
            for _ in 0..24 {
                let out = cond.apply(&img, &mut rng).unwrap();
                acc += out.sub(&img).unwrap().norm_sq();
            }
            distortion.push(acc / 24.0);
        }
        assert!(distortion[0] < distortion[1]);
        assert!(distortion[1] < distortion[2]);
    }

    #[test]
    fn apply_in_place_matches_apply_bitwise() {
        // The arena path must be a drop-in replacement across the whole
        // severity range: same pixels, same RNG stream advancement.
        let img = Concept::for_class(3, 4).unwrap().render(&mut Rng::seed_from(6));
        let mut scratch = vec![0f32; img.len()];
        for &s in &[0.0f32, 0.4, 1.0] {
            let cond = Condition::with_severity(s).unwrap();
            let mut rng_a = Rng::seed_from(100 + s.to_bits() as u64);
            let mut rng_b = rng_a.clone();
            for _ in 0..8 {
                let owned = cond.apply(&img, &mut rng_a).unwrap();
                let mut buf = img.as_slice().to_vec();
                cond.apply_in_place(&mut buf, &mut scratch, &mut rng_b).unwrap();
                assert_eq!(owned.as_slice(), &buf[..]);
                assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            }
        }
        // Slice-length validation.
        let cond = Condition::in_situ();
        let mut rng = Rng::seed_from(7);
        let mut short = vec![0f32; 8];
        assert!(cond.apply_in_place(&mut short, &mut scratch, &mut rng).is_err());
        let mut buf = img.as_slice().to_vec();
        assert!(cond.apply_in_place(&mut buf, &mut short, &mut rng).is_err());
    }

    #[test]
    fn rejects_wrong_shape() {
        let mut rng = Rng::seed_from(4);
        let bad = Tensor::zeros([3, 8, 8]);
        assert!(Condition::in_situ().apply(&bad, &mut rng).is_err());
    }

    #[test]
    fn severity_estimate_is_monotone() {
        let lo = Condition::with_severity(0.2).unwrap().severity_estimate();
        let hi = Condition::with_severity(0.9).unwrap().severity_estimate();
        assert!(lo < hi);
    }
}
