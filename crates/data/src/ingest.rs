//! Producer-driven streaming ingestion: a frame source on its own
//! thread, a bounded backpressure queue, and a grow-only arena that
//! recycles frame storage so steady-state ingestion performs zero heap
//! allocations.
//!
//! Channel topology:
//!
//! ```text
//!   StreamSource ──► producer thread ──► IngestQueue (bounded) ──► consumer
//!        ▲                                                            │
//!        └──── FrameArena ◄── recycle channel (unbounded) ◄───────────┘
//! ```
//!
//! The producer materializes frame *N+1* while the consumer computes
//! on frame *N*; the queue bound is the only coupling. When the
//! consumer falls behind, the configured [`QueueFullPolicy`] decides
//! whether the producer stalls (`Block` — lossless, the
//! differential-testing mode) or evicts the oldest queued frame
//! (`DropOldest` — lossy, the real-time mode). Consumed frames return
//! their storage to the producer's [`FrameArena`] through an unbounded
//! recycle channel; the recycle direction must never apply
//! backpressure, or a full recycle channel would block the consumer
//! while the producer blocks on the full frame queue — a circular
//! wait. At most `capacity + 2` frames are ever in flight (the queued
//! frames plus one in each hand), so after that many frames the
//! producer allocates nothing.

use crate::concepts::Concept;
use crate::dataset::{Dataset, SAMPLE_LEN};
use crate::drift::Condition;
use crate::error::DataError;
use crate::Result;
use insitu_tensor::{Rng, Tensor};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Recyclable raw storage of one frame: the flattened image floats and
/// the label vector, capacity preserved across reuses.
#[derive(Debug, Default)]
pub struct FrameBuf {
    /// Flattened `(N, 3, 36, 36)` image storage.
    pub images: Vec<f32>,
    /// Per-sample labels.
    pub labels: Vec<usize>,
}

/// A grow-only pool of [`FrameBuf`]s.
///
/// `acquire` hands out a cleared buffer from the free list, minting a
/// fresh (empty) one only when the list is dry; `recycle` returns a
/// buffer to the list with its capacity intact. The fresh/reused
/// counters are the arena-reuse gate the benchmarks assert on: in
/// steady state every frame acquires a reused buffer and the fresh
/// count stays bounded by the pipeline's in-flight window.
#[derive(Debug, Default)]
pub struct FrameArena {
    free: Vec<FrameBuf>,
    fresh: u64,
    reused: u64,
}

impl FrameArena {
    /// Takes a cleared buffer, reusing a recycled one when available.
    pub fn acquire(&mut self) -> FrameBuf {
        match self.free.pop() {
            Some(mut buf) => {
                buf.images.clear();
                buf.labels.clear();
                self.reused += 1;
                buf
            }
            None => {
                self.fresh += 1;
                FrameBuf::default()
            }
        }
    }

    /// Returns a buffer to the free list (capacity preserved).
    pub fn recycle(&mut self, buf: FrameBuf) {
        self.free.push(buf);
    }

    /// Buffers minted because the free list was empty.
    pub fn fresh_buffers(&self) -> u64 {
        self.fresh
    }

    /// Acquisitions served from the free list.
    pub fn reused_buffers(&self) -> u64 {
        self.reused
    }
}

/// One materialized stage travelling from the producer to the consumer.
#[derive(Debug)]
pub struct Frame {
    /// Monotone production index (0-based).
    pub seq: u64,
    /// The stage's samples.
    pub data: Dataset,
    /// Wall-clock nanoseconds the producer spent materializing it.
    pub produce_ns: u64,
}

impl Frame {
    /// Decomposes the frame into recyclable storage.
    pub fn into_buf(self) -> FrameBuf {
        let (images, labels) = self.data.into_parts();
        FrameBuf { images: images.into_vec(), labels }
    }
}

/// A source of stream frames driven by the ingestion producer thread.
///
/// Implementations materialize each frame's samples into buffers
/// acquired from the passed [`FrameArena`] so consumed frames can hand
/// their storage back. Returning `Ok(None)` ends the stream.
pub trait StreamSource: Send {
    /// Materializes the next frame, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Returns an error when the source cannot produce a valid frame;
    /// the pipeline forwards it to the consumer via
    /// [`IngestPipeline::finish`].
    fn next_frame(&mut self, arena: &mut FrameArena) -> Result<Option<Dataset>>;

    /// Number of frames still to come, when known.
    fn frames_hint(&self) -> Option<usize> {
        None
    }
}

/// Builds a dataset around storage taken from an arena buffer.
fn dataset_from_buf(buf: FrameBuf, num_classes: usize) -> Result<Dataset> {
    let n = buf.labels.len();
    let images = Tensor::from_vec(
        [n, crate::concepts::CHANNELS, crate::concepts::IMAGE_SIZE, crate::concepts::IMAGE_SIZE],
        buf.images,
    )?;
    Dataset::from_parts(images, buf.labels, num_classes)
}

/// Replays a pre-materialized `Vec<Dataset>` as a frame stream.
///
/// Each frame's samples are copied from the shared stream into a
/// recycled arena buffer through borrowed [`Dataset::chunk_views`] —
/// the source never clones image storage beyond that single
/// unavoidable copy into the arena, and in steady state performs no
/// heap allocation at all.
#[derive(Debug)]
pub struct ReplaySource {
    stream: Arc<Vec<Dataset>>,
    next: usize,
}

impl ReplaySource {
    /// Wraps a shared stage sequence.
    pub fn new(stream: Arc<Vec<Dataset>>) -> ReplaySource {
        ReplaySource { stream, next: 0 }
    }
}

impl StreamSource for ReplaySource {
    fn next_frame(&mut self, arena: &mut FrameArena) -> Result<Option<Dataset>> {
        let Some(stage) = self.stream.get(self.next) else {
            return Ok(None);
        };
        self.next += 1;
        let mut buf = arena.acquire();
        buf.images.reserve(stage.len() * SAMPLE_LEN);
        buf.labels.reserve(stage.len());
        for chunk in stage.chunk_views(stage.len().max(1)) {
            chunk.append_to(&mut buf.images, &mut buf.labels);
        }
        Ok(Some(dataset_from_buf(buf, stage.num_classes())?))
    }

    fn frames_hint(&self) -> Option<usize> {
        Some(self.stream.len().saturating_sub(self.next))
    }
}

/// Per-frame drift severity ramp of a [`SyntheticDriftSource`]: frame
/// `i` is generated under `Condition::with_severity(start + i * step)`
/// (clamped to `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSchedule {
    /// Severity of the first frame.
    pub start: f32,
    /// Severity increase per frame.
    pub step: f32,
}

/// Synthesizes a drifting sensor stream frame by frame — the live
/// counterpart of pre-generating a `Vec<Dataset>` with a severity
/// ramp. Samples are rendered and corrupted directly inside recycled
/// arena buffers ([`Dataset::generate_into`]), so steady-state
/// production allocates nothing.
#[derive(Debug, Clone)]
pub struct SyntheticDriftSource {
    frames: usize,
    frame_size: usize,
    num_classes: usize,
    schedule: DriftSchedule,
    concepts: Vec<Concept>,
    rng: Rng,
    produced: usize,
}

impl SyntheticDriftSource {
    /// Creates a source of `frames` frames of `frame_size` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `num_classes == 0` or the
    /// schedule's starting severity is outside `[0, 1]`.
    pub fn new(
        frames: usize,
        frame_size: usize,
        num_classes: usize,
        schedule: DriftSchedule,
        seed: u64,
    ) -> Result<SyntheticDriftSource> {
        if num_classes == 0 {
            return Err(DataError::BadConfig { reason: "num_classes must be > 0".into() });
        }
        Condition::with_severity(schedule.start)?;
        let concepts: Vec<Concept> = (0..num_classes)
            .map(|c| Concept::for_class(c, num_classes))
            .collect::<Result<_>>()?;
        Ok(SyntheticDriftSource {
            frames,
            frame_size,
            num_classes,
            schedule,
            concepts,
            rng: Rng::seed_from(seed),
            produced: 0,
        })
    }

    fn condition_for(&self, frame: usize) -> Result<Condition> {
        let severity =
            (self.schedule.start + self.schedule.step * frame as f32).clamp(0.0, 1.0);
        Condition::with_severity(severity)
    }

    /// Runs the remaining frames serially into an owned `Vec<Dataset>`
    /// — the sequential oracle for differential tests: a pipeline fed
    /// by this source must deliver bitwise-identical frames in the
    /// same order (under the lossless `Block` policy). The source
    /// itself is not advanced.
    ///
    /// # Errors
    ///
    /// Returns any generation error.
    pub fn materialize(&self) -> Result<Vec<Dataset>> {
        let mut replica = self.clone();
        let mut arena = FrameArena::default();
        let mut out = Vec::with_capacity(self.frames - self.produced.min(self.frames));
        while let Some(frame) = replica.next_frame(&mut arena)? {
            out.push(frame);
        }
        Ok(out)
    }
}

impl StreamSource for SyntheticDriftSource {
    fn next_frame(&mut self, arena: &mut FrameArena) -> Result<Option<Dataset>> {
        if self.produced >= self.frames {
            return Ok(None);
        }
        let condition = self.condition_for(self.produced)?;
        self.produced += 1;
        let mut buf = arena.acquire();
        Dataset::generate_into(
            &self.concepts,
            &condition,
            &mut self.rng,
            self.frame_size,
            &mut buf.images,
            &mut buf.labels,
        )?;
        Ok(Some(dataset_from_buf(buf, self.num_classes)?))
    }

    fn frames_hint(&self) -> Option<usize> {
        Some(self.frames - self.produced.min(self.frames))
    }
}

/// What a full [`IngestQueue`] does with the next pushed frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum QueueFullPolicy {
    /// Stall the producer until the consumer drains a slot. Lossless:
    /// the consumer sees every frame in order, which is what makes the
    /// overlapped session bitwise comparable to the sequential oracle.
    #[default]
    Block,
    /// Evict the oldest queued frame (recycling its storage) and keep
    /// producing. Lossy but live: the consumer always sees the
    /// freshest frames, the real-time sensor semantics.
    DropOldest,
}

/// State shared between the producer and consumer sides of the queue.
#[derive(Debug)]
struct QueueState {
    frames: VecDeque<Frame>,
    /// The producer finished (end of stream or error): `pop` drains
    /// what is left, then returns `None`.
    closed: bool,
    /// The consumer is gone: `push` fails so the producer stops.
    abandoned: bool,
    dropped: u64,
    max_depth: usize,
}

/// A bounded MPSC frame queue with blocking push/pop, depth
/// inspection, and an eviction mode — the backpressure coupling
/// between the ingestion producer and the compute consumer.
///
/// (The vendored channel shim has no `try_send`/depth API, and the
/// policies need both; a mutex-and-condvar queue over a `VecDeque` is
/// all this takes.)
#[derive(Debug)]
pub struct IngestQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl IngestQueue {
    /// Creates a queue holding at most `capacity.max(1)` frames.
    pub fn new(capacity: usize) -> Arc<IngestQueue> {
        Arc::new(IngestQueue {
            state: Mutex::new(QueueState {
                frames: VecDeque::new(),
                closed: false,
                abandoned: false,
                dropped: 0,
                max_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Pushes a frame under `policy`. Returns the evicted frame under
    /// [`QueueFullPolicy::DropOldest`] (so the producer can recycle
    /// its storage), or the rejected frame as `Err` once the consumer
    /// has abandoned the queue.
    pub fn push(
        &self,
        frame: Frame,
        policy: QueueFullPolicy,
    ) -> std::result::Result<Option<Frame>, Box<Frame>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let evicted = match policy {
            QueueFullPolicy::Block => {
                while state.frames.len() >= self.capacity && !state.abandoned {
                    state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                if state.abandoned {
                    return Err(Box::new(frame));
                }
                None
            }
            QueueFullPolicy::DropOldest => {
                if state.abandoned {
                    return Err(Box::new(frame));
                }
                if state.frames.len() >= self.capacity {
                    state.dropped += 1;
                    state.frames.pop_front()
                } else {
                    None
                }
            }
        };
        state.frames.push_back(frame);
        state.max_depth = state.max_depth.max(state.frames.len());
        drop(state);
        self.not_empty.notify_one();
        Ok(evicted)
    }

    /// Pops the next frame in production order, blocking while the
    /// queue is empty but still open; `None` once the producer closed
    /// the queue and every queued frame was drained.
    pub fn pop(&self) -> Option<Frame> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(frame) = state.frames.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Frames currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).frames.len()
    }

    /// Frames evicted so far under [`QueueFullPolicy::DropOldest`].
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// High-water mark of the queue depth.
    pub fn max_depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).max_depth
    }

    /// Producer side: no more frames are coming.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
    }

    /// Consumer side: stop accepting frames and wake a blocked
    /// producer so it can exit (the consumer is leaving early).
    pub fn abandon(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).abandoned = true;
        self.not_full.notify_all();
    }
}

/// Tuning knobs of an [`IngestPipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Frame capacity of the bounded queue (clamped to at least 1).
    pub capacity: usize,
    /// What the producer does when the queue is full.
    pub policy: QueueFullPolicy,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig { capacity: 4, policy: QueueFullPolicy::Block }
    }
}

/// What the producer thread did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProducerReport {
    /// Frames materialized (including later-dropped ones).
    pub frames: u64,
    /// Frames evicted under [`QueueFullPolicy::DropOldest`].
    pub dropped: u64,
    /// Arena buffers minted fresh (the zero-steady-state-allocation
    /// gate: bounded by `queue capacity + 2` regardless of stream
    /// length).
    pub fresh_buffers: u64,
    /// Arena acquisitions served by recycled buffers.
    pub reused_buffers: u64,
    /// Total wall-clock nanoseconds spent materializing frames.
    pub produce_ns_total: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: u64,
}

/// A running ingestion pipeline: one producer thread materializing
/// frames from a [`StreamSource`] into a bounded [`IngestQueue`], plus
/// the recycle channel through which the consumer returns frame
/// storage to the producer's [`FrameArena`].
#[derive(Debug)]
pub struct IngestPipeline {
    queue: Arc<IngestQueue>,
    recycle_tx: mpsc::Sender<FrameBuf>,
    producer: Option<JoinHandle<Result<ProducerReport>>>,
}

impl IngestPipeline {
    /// Spawns the producer thread over `source`.
    pub fn spawn(mut source: Box<dyn StreamSource>, config: IngestConfig) -> IngestPipeline {
        let queue = IngestQueue::new(config.capacity);
        let (recycle_tx, recycle_rx) = mpsc::channel::<FrameBuf>();
        let policy = config.policy;
        let producer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || -> Result<ProducerReport> {
                let mut arena = FrameArena::default();
                let mut seq = 0u64;
                let mut produce_ns_total = 0u64;
                let run = (|| -> Result<()> {
                    loop {
                        // Reclaim whatever the consumer has finished
                        // with before materializing the next frame.
                        while let Ok(buf) = recycle_rx.try_recv() {
                            arena.recycle(buf);
                        }
                        let t0 = Instant::now();
                        let Some(data) = source.next_frame(&mut arena)? else {
                            return Ok(());
                        };
                        let produce_ns =
                            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        produce_ns_total += produce_ns;
                        let frame = Frame { seq, data, produce_ns };
                        seq += 1;
                        match queue.push(frame, policy) {
                            Ok(Some(evicted)) => arena.recycle(evicted.into_buf()),
                            Ok(None) => {}
                            // Consumer gone: stop producing quietly.
                            Err(_frame) => return Ok(()),
                        }
                    }
                })();
                // Close on *every* exit — an error path that leaves
                // the queue open would block the consumer forever.
                queue.close();
                run?;
                Ok(ProducerReport {
                    frames: seq,
                    dropped: queue.dropped(),
                    fresh_buffers: arena.fresh_buffers(),
                    reused_buffers: arena.reused_buffers(),
                    produce_ns_total,
                    max_queue_depth: queue.max_depth() as u64,
                })
            })
        };
        IngestPipeline { queue, recycle_tx, producer: Some(producer) }
    }

    /// Pops the next frame in production order (blocking while the
    /// producer is still working on it); `None` at end of stream.
    pub fn next_frame(&self) -> Option<Frame> {
        self.queue.pop()
    }

    /// Frames currently queued ahead of the consumer.
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }

    /// Frames evicted so far under [`QueueFullPolicy::DropOldest`].
    pub fn dropped(&self) -> u64 {
        self.queue.dropped()
    }

    /// Returns a consumed frame's storage to the producer arena.
    pub fn recycle(&self, frame: Frame) {
        // The producer may already be gone; its arena dying with it is
        // fine — the send only fails once nothing will allocate again.
        let _ = self.recycle_tx.send(frame.into_buf());
    }

    /// Shuts the pipeline down and returns the producer's report.
    /// Frames still queued are discarded. Call after `next_frame`
    /// returned `None` for an orderly end-of-stream harvest, or early
    /// to cancel (a blocked producer is woken and exits).
    ///
    /// # Errors
    ///
    /// Returns the producer's error, or [`DataError::BadConfig`] if
    /// the producer thread panicked.
    pub fn finish(mut self) -> Result<ProducerReport> {
        self.queue.abandon();
        let handle = self.producer.take().expect("finish consumes the only handle");
        match handle.join() {
            Ok(report) => report,
            Err(_) => Err(DataError::BadConfig {
                reason: "ingest producer thread panicked".into(),
            }),
        }
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        // Dropped without `finish` (consumer bailing out early, or
        // unwinding through an error): wake and join the producer so
        // no thread outlives the pipeline.
        if let Some(handle) = self.producer.take() {
            self.queue.abandon();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(n: usize, seed: u64) -> Vec<Dataset> {
        let mut rng = Rng::seed_from(seed);
        (0..n)
            .map(|_| Dataset::generate(6, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect()
    }

    #[test]
    fn arena_recycles_capacity() {
        let mut arena = FrameArena::default();
        let mut buf = arena.acquire();
        buf.images.extend_from_slice(&[1.0; 64]);
        buf.labels.push(3);
        let cap = buf.images.capacity();
        arena.recycle(buf);
        let again = arena.acquire();
        assert!(again.images.is_empty() && again.labels.is_empty());
        assert!(again.images.capacity() >= cap);
        assert_eq!(arena.fresh_buffers(), 1);
        assert_eq!(arena.reused_buffers(), 1);
    }

    #[test]
    fn queue_is_fifo_and_drains_after_close() {
        let q = IngestQueue::new(2);
        for seq in 0..2 {
            let data = Dataset::generate(1, 2, &Condition::ideal(), &mut Rng::seed_from(seq))
                .unwrap();
            q.push(Frame { seq, data, produce_ns: 0 }, QueueFullPolicy::Block).unwrap();
        }
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
        q.close();
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 1);
        assert!(q.pop().is_none());
    }

    #[test]
    fn drop_oldest_evicts_in_order_and_counts() {
        let q = IngestQueue::new(2);
        let mut evicted = Vec::new();
        for seq in 0..5 {
            let data = Dataset::generate(1, 2, &Condition::ideal(), &mut Rng::seed_from(seq))
                .unwrap();
            if let Some(old) =
                q.push(Frame { seq, data, produce_ns: 0 }, QueueFullPolicy::DropOldest).unwrap()
            {
                evicted.push(old.seq);
            }
        }
        assert_eq!(evicted, vec![0, 1, 2]);
        assert_eq!(q.dropped(), 3);
        q.close();
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 4);
        assert!(q.pop().is_none());
    }

    #[test]
    fn abandoned_queue_rejects_pushes() {
        let q = IngestQueue::new(1);
        q.abandon();
        let data = Dataset::generate(1, 2, &Condition::ideal(), &mut Rng::seed_from(1)).unwrap();
        assert!(q.push(Frame { seq: 0, data, produce_ns: 0 }, QueueFullPolicy::Block).is_err());
    }

    #[test]
    fn replay_pipeline_delivers_the_stream_bitwise() {
        let stream = Arc::new(stages(5, 40));
        let pipeline = IngestPipeline::spawn(
            Box::new(ReplaySource::new(Arc::clone(&stream))),
            IngestConfig { capacity: 2, policy: QueueFullPolicy::Block },
        );
        let mut seen = 0usize;
        while let Some(frame) = pipeline.next_frame() {
            assert_eq!(frame.seq, seen as u64);
            assert_eq!(&frame.data, &stream[seen], "frame {seen} must replay bitwise");
            seen += 1;
            pipeline.recycle(frame);
        }
        assert_eq!(seen, 5);
        let report = pipeline.finish().unwrap();
        assert_eq!(report.frames, 5);
        assert_eq!(report.dropped, 0);
        // The arena-reuse gate: fresh allocations bounded by the
        // in-flight window, never the stream length.
        assert!(
            report.fresh_buffers <= 2 + 2,
            "fresh {} exceeds capacity + 2",
            report.fresh_buffers
        );
        assert!(report.reused_buffers >= report.frames - report.fresh_buffers);
    }

    #[test]
    fn synthetic_source_matches_its_materialized_oracle() {
        let schedule = DriftSchedule { start: 0.3, step: 0.1 };
        let source = SyntheticDriftSource::new(4, 5, 3, schedule, 77).unwrap();
        assert_eq!(source.frames_hint(), Some(4));
        let oracle = source.materialize().unwrap();
        assert_eq!(oracle.len(), 4);
        // materialize() must not advance the source.
        assert_eq!(source.frames_hint(), Some(4));
        let pipeline = IngestPipeline::spawn(Box::new(source), IngestConfig::default());
        for stage in &oracle {
            let frame = pipeline.next_frame().expect("stream ends early");
            assert_eq!(&frame.data, stage);
            pipeline.recycle(frame);
        }
        assert!(pipeline.next_frame().is_none());
        pipeline.finish().unwrap();
    }

    #[test]
    fn block_policy_stalls_the_producer_at_capacity() {
        let stream = Arc::new(stages(6, 41));
        let pipeline = IngestPipeline::spawn(
            Box::new(ReplaySource::new(stream)),
            IngestConfig { capacity: 2, policy: QueueFullPolicy::Block },
        );
        // A deliberately slow consumer: the producer may only ever be
        // capacity + 1 frames ahead of what we have popped.
        let mut popped = 0u64;
        while let Some(frame) = pipeline.next_frame() {
            std::thread::sleep(std::time::Duration::from_millis(5));
            popped += 1;
            assert!(
                frame.seq < popped + 2,
                "producer ran ahead: seq {} after {popped} pops",
                frame.seq
            );
            pipeline.recycle(frame);
        }
        let report = pipeline.finish().unwrap();
        assert_eq!(report.frames, 6);
        assert_eq!(report.dropped, 0);
        assert!(report.max_queue_depth <= 2);
    }

    #[test]
    fn drop_oldest_pipeline_drops_under_a_slow_consumer() {
        let stream = Arc::new(stages(12, 42));
        let pipeline = IngestPipeline::spawn(
            Box::new(ReplaySource::new(stream)),
            IngestConfig { capacity: 1, policy: QueueFullPolicy::DropOldest },
        );
        let mut consumed = 0u64;
        let mut last_seq = None::<u64>;
        while let Some(frame) = pipeline.next_frame() {
            // Order is preserved even when frames go missing.
            if let Some(prev) = last_seq {
                assert!(frame.seq > prev);
            }
            last_seq = Some(frame.seq);
            std::thread::sleep(std::time::Duration::from_millis(10));
            consumed += 1;
            pipeline.recycle(frame);
        }
        let report = pipeline.finish().unwrap();
        assert_eq!(report.frames, 12);
        assert_eq!(report.dropped + consumed, 12, "every frame is consumed or dropped");
        assert!(report.dropped > 0, "a 10 ms consumer against instant replay must drop");
        assert!(report.fresh_buffers <= 1 + 2);
    }

    #[test]
    fn early_finish_cancels_a_blocked_producer() {
        let stream = Arc::new(stages(8, 43));
        let pipeline = IngestPipeline::spawn(
            Box::new(ReplaySource::new(stream)),
            IngestConfig { capacity: 1, policy: QueueFullPolicy::Block },
        );
        let frame = pipeline.next_frame().unwrap();
        drop(frame);
        // Cancel mid-stream: the blocked producer must wake and exit.
        let report = pipeline.finish().unwrap();
        assert!(report.frames < 8);
    }

    #[test]
    fn dropping_the_pipeline_joins_the_producer() {
        let stream = Arc::new(stages(8, 44));
        let pipeline = IngestPipeline::spawn(
            Box::new(ReplaySource::new(stream)),
            IngestConfig { capacity: 1, policy: QueueFullPolicy::Block },
        );
        let _ = pipeline.next_frame();
        drop(pipeline); // must not hang
    }
}
