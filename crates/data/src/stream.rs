//! Staged IoT data acquisition: the simulated deployment campaign.
//!
//! The paper's end-to-end evaluation (its Table II / Fig. 25) collects
//! 100k images to train an initial model and then updates it as the
//! cumulative acquisition reaches 200k, 400k, 800k and 1200k. This
//! module reproduces that schedule at a configurable scale (default
//! 1:100) and lets the environment drift from stage to stage, which is
//! precisely the non-stationarity In-situ AI exists to absorb.

use crate::dataset::Dataset;
use crate::drift::Condition;
use crate::error::DataError;
use crate::Result;
use insitu_tensor::Rng;

/// One acquisition stage: how many new images arrive and under which
/// environment condition.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage name (e.g. `"200k"`), used in reports.
    pub name: String,
    /// Number of newly acquired images in this stage.
    pub new_images: usize,
    /// Environment condition during this stage.
    pub condition: Condition,
}

/// A full acquisition campaign: an initial curated stage plus
/// incremental in-situ stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    stages: Vec<Stage>,
    num_classes: usize,
    seed: u64,
}

impl Campaign {
    /// Builds the paper's five-point schedule (100k, +100k, +200k,
    /// +400k, +400k) scaled by `scale` images per paper-kiloimage
    /// (e.g. `scale = 10` → 1000, +1000, +2000, +4000, +4000).
    ///
    /// The initial stage is curated (ideal condition); all subsequent
    /// stages live in the same harsh in-situ environment.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if `scale` or `num_classes`
    /// is zero.
    pub fn paper_schedule(scale: usize, num_classes: usize, seed: u64) -> Result<Campaign> {
        if scale == 0 || num_classes == 0 {
            return Err(DataError::BadConfig {
                reason: "scale and num_classes must be positive".into(),
            });
        }
        let counts = [100, 100, 200, 400, 400].map(|k| k * scale);
        let names = ["100k", "200k", "400k", "800k", "1200k"];
        // Stage 0 is the curated bootstrap; every later stage lives in
        // the same harsh in-situ environment (a Serengeti does not get
        // easier). The incremental learner gains ground every stage, so
        // the unrecognized fraction falls — the paper's Table II shape.
        let severities = [0.0f32, 0.95, 0.95, 0.95, 0.95];
        let stages = names
            .iter()
            .zip(counts)
            .zip(severities)
            .map(|((name, new_images), severity)| {
                Ok(Stage {
                    name: (*name).to_string(),
                    new_images,
                    condition: Condition::with_severity(severity)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Campaign { stages, num_classes, seed })
    }

    /// Builds a custom campaign.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadConfig`] if there are no stages or no
    /// classes.
    pub fn custom(stages: Vec<Stage>, num_classes: usize, seed: u64) -> Result<Campaign> {
        if stages.is_empty() || num_classes == 0 {
            return Err(DataError::BadConfig {
                reason: "campaign needs at least one stage and one class".into(),
            });
        }
        Ok(Campaign { stages, num_classes, seed })
    }

    /// The stages in order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of classes in the recognition task.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total images across all stages.
    pub fn total_images(&self) -> usize {
        self.stages.iter().map(|s| s.new_images).sum()
    }

    /// Materializes the data of stage `index`.
    ///
    /// Every stage is generated from its own deterministic sub-seed, so
    /// different IoT system variants compared in the experiments see
    /// **the same stream**.
    ///
    /// # Errors
    ///
    /// Returns an error if `index` is out of range.
    pub fn stage_data(&self, index: usize) -> Result<Dataset> {
        let stage = self.stages.get(index).ok_or_else(|| DataError::BadConfig {
            reason: format!("stage {index} out of {}", self.stages.len()),
        })?;
        let mut rng = Rng::seed_from(self.seed ^ ((index as u64 + 1) * 0x9E37_79B9));
        Dataset::generate(stage.new_images, self.num_classes, &stage.condition, &mut rng)
    }

    /// A held-out evaluation set drawn from the condition of stage
    /// `index` (same environment, fresh samples).
    ///
    /// # Errors
    ///
    /// Returns an error if `index` is out of range.
    pub fn eval_data(&self, index: usize, n: usize) -> Result<Dataset> {
        let stage = self.stages.get(index).ok_or_else(|| DataError::BadConfig {
            reason: format!("stage {index} out of {}", self.stages.len()),
        })?;
        let mut rng = Rng::seed_from(self.seed ^ 0xE7A1_5EED ^ ((index as u64 + 1) << 32));
        Dataset::generate(n, self.num_classes, &stage.condition, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schedule_counts() {
        let c = Campaign::paper_schedule(1, 6, 42).unwrap();
        assert_eq!(c.stages().len(), 5);
        let counts: Vec<usize> = c.stages().iter().map(|s| s.new_images).collect();
        assert_eq!(counts, vec![100, 100, 200, 400, 400]);
        assert_eq!(c.total_images(), 1200);
        assert_eq!(c.stages()[0].condition, Condition::ideal());
    }

    #[test]
    fn stage_data_is_deterministic_and_stagewise() {
        let c = Campaign::paper_schedule(1, 4, 7).unwrap();
        let a = c.stage_data(1).unwrap();
        let b = c.stage_data(1).unwrap();
        assert_eq!(a, b);
        let other = c.stage_data(2).unwrap();
        assert_ne!(a.images().as_slice()[..64], other.images().as_slice()[..64]);
        assert!(c.stage_data(9).is_err());
    }

    #[test]
    fn drift_grows_across_stages() {
        let c = Campaign::paper_schedule(1, 4, 7).unwrap();
        let sev: Vec<f32> =
            c.stages().iter().map(|s| s.condition.severity_estimate()).collect();
        assert!(sev.windows(2).all(|w| w[0] <= w[1] + 1e-6), "{sev:?}");
    }

    #[test]
    fn validation() {
        assert!(Campaign::paper_schedule(0, 4, 1).is_err());
        assert!(Campaign::paper_schedule(1, 0, 1).is_err());
        assert!(Campaign::custom(vec![], 4, 1).is_err());
    }

    #[test]
    fn eval_data_fresh_but_same_condition() {
        let c = Campaign::paper_schedule(1, 4, 9).unwrap();
        let eval = c.eval_data(1, 32).unwrap();
        assert_eq!(eval.len(), 32);
        let train = c.stage_data(1).unwrap();
        assert_ne!(eval.images().as_slice()[..32], train.images().as_slice()[..32]);
    }
}
