//! The mobile-GPU analytical model: the paper's Eqs. (2), (3), (5)–(9)
//! plus a co-running contention model.
//!
//! CONV layers are lowered to GEMM (im2col), so their achieved
//! performance is the compute roof scaled by block-level utilization
//! (Eqs. 2–3, 5). FCN layers become matrix–matrix products under
//! batching but are usually memory-bound, so they follow the roofline
//! of Eq. (6) with the compute-to-memory ratio of Eq. (8). The
//! resource model of Eq. (9) bounds the diagnosis batch size by device
//! memory.

use crate::layers::{ConvShape, FcShape, LayerShape, NetworkShapes};
use crate::spec::GpuSpec;
use serde::{Deserialize, Serialize};

/// Per-batch latency split into the paper's two layer classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuBreakdown {
    /// Seconds spent in CONV layers for the whole batch.
    pub conv_s: f64,
    /// Seconds spent in FCN layers for the whole batch.
    pub fc_s: f64,
    /// Time-weighted average utilization (drives the power model).
    pub avg_utilization: f64,
}

impl GpuBreakdown {
    /// Total batch latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.conv_s + self.fc_s
    }

    /// Fraction of the batch latency spent in FCN layers.
    pub fn fc_fraction(&self) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            self.fc_s / self.total_s()
        }
    }
}

/// The analytical model of a mobile GPU executing CNN layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    spec: GpuSpec,
}

impl GpuModel {
    /// Creates a model over a device specification.
    pub fn new(spec: GpuSpec) -> Self {
        GpuModel { spec }
    }

    /// TX1-like convenience constructor.
    pub fn tx1() -> Self {
        GpuModel::new(GpuSpec::tx1())
    }

    /// TX2-like convenience constructor.
    pub fn tx2() -> Self {
        GpuModel::new(GpuSpec::tx2())
    }

    /// The underlying specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Paper Eq. (2): thread blocks launched for a GEMM with an output
    /// of `rows x cols`.
    pub fn grid_size(&self, rows: u64, cols: u64) -> u64 {
        rows.div_ceil(self.spec.tile_m as u64).max(1)
            * cols.div_ceil(self.spec.tile_n as u64).max(1)
    }

    /// Paper Eq. (3): utilization of the GPU given a grid size — the
    /// tail effect of partially filled waves of `maxBlocks`.
    pub fn utilization(&self, grid: u64) -> f64 {
        if grid == 0 {
            return 0.0;
        }
        let max_blocks = self.spec.max_blocks as u64;
        grid as f64 / (max_blocks * grid.div_ceil(max_blocks)) as f64
    }

    /// Utilization of one CONV layer at a batch size (output matrix is
    /// `M x (R·C·B)`).
    pub fn conv_utilization(&self, shape: &ConvShape, batch: usize) -> f64 {
        self.utilization(
            self.grid_size(shape.m as u64, (shape.r * shape.c * batch) as u64),
        )
    }

    /// Paper Eq. (5): CONV-layer time for a whole batch.
    pub fn conv_time(&self, shape: &ConvShape, batch: usize) -> f64 {
        let ops = shape.ops() * batch as u64;
        let achieved = self.spec.peak_ops() * self.conv_utilization(shape, batch);
        ops as f64 / achieved
    }

    /// Utilization of one FCN layer at a batch size (output matrix is
    /// `out x B` after the batching transformation).
    pub fn fc_utilization(&self, shape: &FcShape, batch: usize) -> f64 {
        self.utilization(self.grid_size(shape.output as u64, batch as u64))
    }

    /// Paper Eqs. (6)–(8): FCN-layer time for a whole batch under the
    /// roofline of compute vs memory bandwidth.
    pub fn fc_time(&self, shape: &FcShape, batch: usize) -> f64 {
        let b = batch as u64;
        let ops = shape.ops() * b;
        let compute = self.spec.peak_ops() * self.fc_utilization(shape, batch);
        // Eq. (8): Din + Dw + Dout elements, 4 bytes each.
        let data_bytes =
            4 * (shape.input as u64 * b + shape.dw_elems() + shape.output as u64 * b);
        let ctm_rate = ops as f64 / data_bytes as f64 * self.spec.mem_bw;
        let achieved = compute.min(ctm_rate);
        ops as f64 / achieved
    }

    /// Latency breakdown of a whole network for one batch.
    pub fn batch_breakdown(&self, net: &NetworkShapes, batch: usize) -> GpuBreakdown {
        let mut conv_s = 0.0;
        let mut fc_s = 0.0;
        let mut util_time = 0.0;
        for layer in &net.layers {
            match layer {
                LayerShape::Conv(c) => {
                    let t = self.conv_time(c, batch);
                    conv_s += t;
                    util_time += t * self.conv_utilization(c, batch);
                }
                LayerShape::Fc(f) => {
                    let t = self.fc_time(f, batch);
                    fc_s += t;
                    // Memory-bound phases still keep part of the chip
                    // busy; attribute the roofline ratio as utilization.
                    let compute_t = f.ops() as f64 * batch as f64
                        / (self.spec.peak_ops() * self.fc_utilization(f, batch));
                    util_time += compute_t.min(t) * self.fc_utilization(f, batch);
                }
            }
        }
        let total = conv_s + fc_s;
        GpuBreakdown {
            conv_s,
            fc_s,
            avg_utilization: if total > 0.0 { (util_time / total).clamp(0.0, 1.0) } else { 0.0 },
        }
    }

    /// Batch latency in seconds.
    pub fn batch_latency(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.batch_breakdown(net, batch).total_s()
    }

    /// Sustained throughput in images/second at a batch size.
    pub fn throughput(&self, net: &NetworkShapes, batch: usize) -> f64 {
        batch as f64 / self.batch_latency(net, batch)
    }

    /// Board power while running the network at a batch size.
    pub fn power(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.spec.power_at(self.batch_breakdown(net, batch).avg_utilization)
    }

    /// Energy-efficiency in images/second/watt — the paper's
    /// performance-to-power ratio.
    pub fn perf_per_watt(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.throughput(net, batch) / self.power(net, batch)
    }

    /// Energy per processed image in joules.
    pub fn energy_per_image(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.power(net, batch) * self.batch_latency(net, batch) / batch as f64
    }

    /// Paper's Single-running time model use: the largest batch whose
    /// latency meets `t_user` seconds (the optimal batch maximizes
    /// perf/power subject to the latency constraint). Returns `None`
    /// when even batch 1 misses the deadline.
    pub fn optimal_batch(
        &self,
        net: &NetworkShapes,
        t_user: f64,
        max_batch: usize,
    ) -> Option<usize> {
        let mut best = None;
        for b in 1..=max_batch {
            if self.batch_latency(net, b) <= t_user {
                best = Some(b);
            }
        }
        best
    }

    /// Exhaustive search for the best perf/W under the latency
    /// constraint — the paper's brute-force "best case" baseline for
    /// its Fig. 21.
    pub fn brute_force_best(
        &self,
        net: &NetworkShapes,
        t_user: f64,
        max_batch: usize,
    ) -> Option<(usize, f64)> {
        (1..=max_batch)
            .filter(|&b| self.batch_latency(net, b) <= t_user)
            .map(|b| (b, self.perf_per_watt(net, b)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Paper Eq. (9), the resource model: the largest batch whose peak
    /// layer working set (`Din + Dw + Dout`) fits in device memory.
    pub fn max_batch_under_ram(&self, net: &NetworkShapes, limit: usize) -> usize {
        let mut best = 0;
        'batch: for b in 1..=limit {
            for layer in &net.layers {
                let bytes = 4 * match layer {
                    LayerShape::Conv(c) => {
                        c.din_elems(b) + c.dw_elems() + c.dout_elems(b)
                    }
                    LayerShape::Fc(f) => {
                        (f.input * b) as u64 + f.dw_elems() + (f.output * b) as u64
                    }
                };
                if bytes > self.spec.ram_bytes {
                    break 'batch;
                }
            }
            best = b;
        }
        best
    }

    /// Co-running contention model (the paper's Fig. 16): the latency
    /// multiplier suffered by the inference task when the diagnosis
    /// network shares the GPU. The slowdown grows with the competing
    /// task's relative compute demand and saturates a little above 3×,
    /// matching the paper's measurement.
    pub fn corun_slowdown(
        &self,
        inference: &NetworkShapes,
        diagnosis: &NetworkShapes,
    ) -> f64 {
        let inf_ops = inference.total_ops().max(1) as f64;
        let diag_ops = diagnosis.total_ops() as f64;
        1.0 + (diag_ops / inf_ops).min(2.25)
    }

    /// Inference latency while co-running with a diagnosis task.
    pub fn corun_latency(
        &self,
        inference: &NetworkShapes,
        diagnosis: &NetworkShapes,
        batch: usize,
    ) -> f64 {
        self.batch_latency(inference, batch) * self.corun_slowdown(inference, diagnosis)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GpuModel {
        GpuModel::tx1()
    }

    #[test]
    fn utilization_in_unit_interval_and_full_waves() {
        let m = model();
        assert_eq!(m.utilization(0), 0.0);
        assert_eq!(m.utilization(32), 1.0); // exactly one wave
        assert_eq!(m.utilization(64), 1.0);
        assert!((m.utilization(33) - 33.0 / 64.0).abs() < 1e-12); // tail wave
        for g in 1..200 {
            let u = m.utilization(g);
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn latency_increases_with_batch() {
        let m = model();
        let net = NetworkShapes::alexnet();
        let mut last = 0.0;
        for b in [1usize, 2, 4, 8, 16, 32, 64] {
            let t = m.batch_latency(&net, b);
            assert!(t > last, "latency must grow with batch: {t} after {last}");
            last = t;
        }
    }

    #[test]
    fn perf_per_watt_improves_with_batch() {
        let m = model();
        let net = NetworkShapes::alexnet();
        let ppw1 = m.perf_per_watt(&net, 1);
        let ppw32 = m.perf_per_watt(&net, 32);
        assert!(ppw32 > 1.5 * ppw1, "ppw1 {ppw1} vs ppw32 {ppw32}");
    }

    #[test]
    fn fc_dominates_at_small_batch() {
        // Paper Fig. 12: FCN layers are ~50% of AlexNet runtime at
        // batch 1-4 and shrink as batching amortizes the weights.
        let m = model();
        let net = NetworkShapes::alexnet();
        let frac1 = m.batch_breakdown(&net, 1).fc_fraction();
        let frac64 = m.batch_breakdown(&net, 64).fc_fraction();
        assert!(frac1 > 0.3, "fc fraction at b=1: {frac1}");
        assert!(frac64 < frac1 / 2.0, "fc fraction at b=64: {frac64}");
    }

    #[test]
    fn fc_time_is_memory_bound_at_batch_1() {
        let m = model();
        let fc = FcShape { input: 9216, output: 4096 };
        let t = m.fc_time(&fc, 1);
        // Pure weight transfer takes Dw*4/bw seconds; compute alone
        // would be far faster.
        let mem_floor = (fc.dw_elems() * 4) as f64 / m.spec().mem_bw;
        assert!(t >= mem_floor * 0.99, "t {t} < mem floor {mem_floor}");
    }

    #[test]
    fn optimal_batch_meets_deadline_and_is_maximal() {
        let m = model();
        let net = NetworkShapes::alexnet();
        let t_user = 0.1; // 100 ms
        let b = m.optimal_batch(&net, t_user, 128).expect("some batch feasible");
        assert!(m.batch_latency(&net, b) <= t_user);
        if b < 128 {
            assert!(m.batch_latency(&net, b + 1) > t_user);
        }
        // Impossible deadline → None.
        assert_eq!(m.optimal_batch(&net, 1e-6, 128), None);
    }

    #[test]
    fn brute_force_best_is_at_least_time_model_choice() {
        let m = model();
        let net = NetworkShapes::alexnet();
        let t_user = 0.2;
        let picked = m.optimal_batch(&net, t_user, 64).unwrap();
        let (best_b, best_ppw) = m.brute_force_best(&net, t_user, 64).unwrap();
        assert!(m.batch_latency(&net, best_b) <= t_user);
        assert!(best_ppw >= m.perf_per_watt(&net, picked) * 0.999);
    }

    #[test]
    fn ram_bounds_diagnosis_batch() {
        let m = model();
        let net = NetworkShapes::alexnet();
        let max_b = m.max_batch_under_ram(&net, 100_000);
        assert!(max_b > 64, "TX1-class RAM should hold >64 images: {max_b}");
        assert!(max_b < 100_000);
        // A tighter-memory device admits fewer.
        let mut small = *m.spec();
        small.ram_bytes /= 64;
        let max_small = GpuModel::new(small).max_batch_under_ram(&net, 100_000);
        assert!(max_small < max_b);
    }

    #[test]
    fn corun_slowdown_reaches_about_3x() {
        let m = model();
        let inf = NetworkShapes::alexnet();
        let diag = NetworkShapes::diagnosis_of(&inf, 9);
        let s = m.corun_slowdown(&inf, &diag);
        assert!(s > 2.0 && s <= 3.25, "slowdown {s}");
        assert!(m.corun_latency(&inf, &diag, 1) > m.batch_latency(&inf, 1));
    }

    #[test]
    fn tx2_dominates_tx1() {
        // Successor hardware: faster and more efficient at every batch
        // size — the sanity check for the cross-device ablation.
        let t1 = GpuModel::tx1();
        let t2 = GpuModel::tx2();
        let net = NetworkShapes::alexnet();
        for b in [1usize, 8, 64] {
            assert!(t2.batch_latency(&net, b) < t1.batch_latency(&net, b));
            assert!(t2.throughput(&net, b) > t1.throughput(&net, b));
        }
    }

    #[test]
    fn vgg_utilizes_resources_better_than_alexnet() {
        // Paper Fig. 21's explanation: VGG's layers saturate the GPU
        // even without batching, so batching gains are small.
        let m = model();
        let alex = NetworkShapes::alexnet();
        let vgg = NetworkShapes::vgg16();
        let gain = |net: &NetworkShapes| {
            m.perf_per_watt(net, 32) / m.perf_per_watt(net, 1)
        };
        assert!(gain(&alex) > gain(&vgg), "alex {} vgg {}", gain(&alex), gain(&vgg));
    }
}
