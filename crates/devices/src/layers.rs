//! Layer shapes for the analytical models, plus the published
//! dimensions of the full-size networks the paper characterizes.

use insitu_nn::{LayerDesc, NetworkDesc};
use serde::{Deserialize, Serialize};

/// Shape of one convolutional layer in the paper's `M, N, K, R, C`
/// notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvShape {
    /// Output feature maps (filters).
    pub m: usize,
    /// Input feature maps.
    pub n: usize,
    /// Square kernel edge.
    pub k: usize,
    /// Output height.
    pub r: usize,
    /// Output width.
    pub c: usize,
}

impl ConvShape {
    /// Multiply-accumulate ops for one sample, the paper's Eq. (1).
    pub fn ops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * (self.k * self.k) as u64 * self.r as u64
            * self.c as u64
    }

    /// Elements of the im2col data matrix for a batch (`Din`).
    pub fn din_elems(&self, batch: usize) -> u64 {
        (self.n * self.k * self.k * self.r * self.c) as u64 * batch as u64
    }

    /// Elements of the filter matrix (`Dw`), batch-independent.
    pub fn dw_elems(&self) -> u64 {
        (self.m * self.n * self.k * self.k) as u64
    }

    /// Elements of the output matrix for a batch (`Dout`).
    pub fn dout_elems(&self, batch: usize) -> u64 {
        (self.m * self.r * self.c) as u64 * batch as u64
    }

    /// The same layer with its spatial output halved (ceil), which is
    /// how the diagnosis network's patch-sized layers relate to the
    /// inference network's (e.g. 55×55 → 27×27 in the paper's first
    /// layer, a 4× compute reduction).
    pub fn halved_spatial(&self) -> ConvShape {
        ConvShape { r: self.r.div_ceil(2).max(1), c: self.c.div_ceil(2).max(1), ..*self }
    }
}

/// Shape of one fully connected layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FcShape {
    /// Input features.
    pub input: usize,
    /// Output features.
    pub output: usize,
}

impl FcShape {
    /// Multiply-accumulate ops for one sample.
    pub fn ops(&self) -> u64 {
        2 * self.input as u64 * self.output as u64
    }

    /// Weight elements (`Dw`).
    pub fn dw_elems(&self) -> u64 {
        (self.input * self.output) as u64
    }
}

/// One compute-relevant layer of a network under analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerShape {
    /// Convolutional layer.
    Conv(ConvShape),
    /// Fully connected layer.
    Fc(FcShape),
}

impl LayerShape {
    /// Multiply-accumulate ops for one sample.
    pub fn ops(&self) -> u64 {
        match self {
            LayerShape::Conv(c) => c.ops(),
            LayerShape::Fc(f) => f.ops(),
        }
    }

    /// Whether this is a convolutional layer.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerShape::Conv(_))
    }
}

/// A network as seen by the analytical models.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkShapes {
    /// Network name for reports.
    pub name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerShape>,
}

impl NetworkShapes {
    /// Creates a network description.
    pub fn new(name: impl Into<String>, layers: Vec<LayerShape>) -> Self {
        NetworkShapes { name: name.into(), layers }
    }

    /// The convolutional layers, in order.
    pub fn convs(&self) -> Vec<ConvShape> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                LayerShape::Conv(c) => Some(*c),
                LayerShape::Fc(_) => None,
            })
            .collect()
    }

    /// The fully connected layers, in order.
    pub fn fcs(&self) -> Vec<FcShape> {
        self.layers
            .iter()
            .filter_map(|l| match l {
                LayerShape::Fc(f) => Some(*f),
                LayerShape::Conv(_) => None,
            })
            .collect()
    }

    /// Total per-sample ops.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(LayerShape::ops).sum()
    }

    /// The published AlexNet dimensions (227×227 input, ungrouped).
    pub fn alexnet() -> NetworkShapes {
        NetworkShapes::new(
            "alexnet",
            vec![
                LayerShape::Conv(ConvShape { m: 96, n: 3, k: 11, r: 55, c: 55 }),
                LayerShape::Conv(ConvShape { m: 256, n: 96, k: 5, r: 27, c: 27 }),
                LayerShape::Conv(ConvShape { m: 384, n: 256, k: 3, r: 13, c: 13 }),
                LayerShape::Conv(ConvShape { m: 384, n: 384, k: 3, r: 13, c: 13 }),
                LayerShape::Conv(ConvShape { m: 256, n: 384, k: 3, r: 13, c: 13 }),
                LayerShape::Fc(FcShape { input: 9216, output: 4096 }),
                LayerShape::Fc(FcShape { input: 4096, output: 4096 }),
                LayerShape::Fc(FcShape { input: 4096, output: 1000 }),
            ],
        )
    }

    /// The published VGG-16 dimensions (224×224 input).
    pub fn vgg16() -> NetworkShapes {
        let conv = |m, n, s| LayerShape::Conv(ConvShape { m, n, k: 3, r: s, c: s });
        NetworkShapes::new(
            "vgg16",
            vec![
                conv(64, 3, 224),
                conv(64, 64, 224),
                conv(128, 64, 112),
                conv(128, 128, 112),
                conv(256, 128, 56),
                conv(256, 256, 56),
                conv(256, 256, 56),
                conv(512, 256, 28),
                conv(512, 512, 28),
                conv(512, 512, 28),
                conv(512, 512, 14),
                conv(512, 512, 14),
                conv(512, 512, 14),
                LayerShape::Fc(FcShape { input: 25088, output: 4096 }),
                LayerShape::Fc(FcShape { input: 4096, output: 4096 }),
                LayerShape::Fc(FcShape { input: 4096, output: 1000 }),
            ],
        )
    }

    /// The diagnosis-network view of an inference network: the same
    /// conv stack with halved spatial outputs (patch-sized inputs),
    /// replicated over `patches` independent tiles, plus the jigsaw
    /// head's FC layers.
    pub fn diagnosis_of(inference: &NetworkShapes, patches: usize) -> NetworkShapes {
        let mut layers: Vec<LayerShape> = Vec::new();
        for l in &inference.layers {
            if let LayerShape::Conv(c) = l {
                // One patch's conv, replicated `patches` times in ops by
                // scaling R (a conservative flattening that preserves
                // total compute).
                let per_patch = c.halved_spatial();
                layers.push(LayerShape::Conv(ConvShape {
                    r: per_patch.r * patches,
                    ..per_patch
                }));
            }
        }
        // Jigsaw head sized after the paper's AlexNet-based diagnosis
        // net: concatenated features -> 4096 -> permutation classes.
        let feat = 9216 / 4; // quarter-size final feature map per patch
        layers.push(LayerShape::Fc(FcShape { input: feat * patches, output: 4096 }));
        layers.push(LayerShape::Fc(FcShape { input: 4096, output: 100 }));
        NetworkShapes::new(format!("{}-diagnosis", inference.name), layers)
    }
}

/// Converts a trained `insitu-nn` network description into analytical
/// shapes, so the device models can plan for the actual Mini networks
/// too.
impl From<&NetworkDesc> for NetworkShapes {
    fn from(desc: &NetworkDesc) -> Self {
        let layers = desc
            .layers
            .iter()
            .map(|l| match *l {
                LayerDesc::Conv { m, n, k, r, c } => {
                    LayerShape::Conv(ConvShape { m, n, k, r, c })
                }
                LayerDesc::Fc { input, output } => {
                    LayerShape::Fc(FcShape { input, output })
                }
            })
            .collect();
        NetworkShapes::new(desc.name.clone(), layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_ops_match_eq1() {
        let net = NetworkShapes::alexnet();
        let conv1 = net.convs()[0];
        assert_eq!(conv1.ops(), 2 * 96 * 3 * 121 * 55 * 55);
    }

    #[test]
    fn alexnet_structure() {
        let net = NetworkShapes::alexnet();
        assert_eq!(net.convs().len(), 5);
        assert_eq!(net.fcs().len(), 3);
        // AlexNet ~1.45 Gops conv + ~0.12 Gops fc.
        let total = net.total_ops();
        assert!(total > 2_000_000_000 && total < 3_500_000_000, "{total}");
    }

    #[test]
    fn vgg16_is_much_heavier() {
        let a = NetworkShapes::alexnet().total_ops();
        let v = NetworkShapes::vgg16().total_ops();
        assert!(v > 8 * a, "vgg {v} vs alexnet {a}");
    }

    #[test]
    fn halved_spatial_quarter_compute() {
        let c = ConvShape { m: 96, n: 3, k: 11, r: 55, c: 55 };
        let h = c.halved_spatial();
        assert_eq!((h.r, h.c), (28, 28));
        assert!(h.ops() * 3 < c.ops());
    }

    #[test]
    fn diagnosis_ops_roughly_double_inference_convs() {
        // 9 patches at quarter compute each ≈ 2.25x the conv ops.
        let inf = NetworkShapes::alexnet();
        let diag = NetworkShapes::diagnosis_of(&inf, 9);
        let inf_conv_ops: u64 = inf.convs().iter().map(ConvShape::ops).sum();
        let diag_conv_ops: u64 = diag.convs().iter().map(ConvShape::ops).sum();
        let ratio = diag_conv_ops as f64 / inf_conv_ops as f64;
        assert!(ratio > 1.8 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn data_matrix_sizes() {
        let c = ConvShape { m: 4, n: 3, k: 2, r: 5, c: 5 };
        assert_eq!(c.din_elems(2), (3 * 4 * 25 * 2) as u64);
        assert_eq!(c.dw_elems(), (4 * 3 * 4) as u64);
        assert_eq!(c.dout_elems(2), (4 * 25 * 2) as u64);
    }

    #[test]
    fn conversion_from_nn_desc() {
        let desc = NetworkDesc::new(
            "toy",
            vec![
                LayerDesc::Conv { m: 4, n: 3, k: 3, r: 8, c: 8 },
                LayerDesc::Fc { input: 256, output: 10 },
            ],
        );
        let shapes = NetworkShapes::from(&desc);
        assert_eq!(shapes.layers.len(), 2);
        assert_eq!(shapes.total_ops(), desc.total_ops());
        assert!(shapes.layers[0].is_conv());
    }
}
