//! The FPGA analytical model: tiled convolution engines (the paper's
//! Fig. 9/10 baseline), its Eq. (4) utilization, and the FCN batching
//! optimization of its Fig. 13.
//!
//! Unlike the GPU, the FPGA executes convolutions directly (no im2col
//! data duplication). A convolution engine unrolls `Tn` input and `Tm`
//! output feature maps; resource utilization (Eq. 4) depends only on
//! how evenly `N` and `M` divide — **not on the batch size**, which is
//! why the paper finds FPGA CONV energy-efficiency flat across batches.
//! FCN layers are memory-bound unless the batch loop of Fig. 13 reuses
//! each weight across the batch.

use crate::layers::{ConvShape, FcShape, LayerShape, NetworkShapes};
use crate::spec::FpgaSpec;
use serde::{Deserialize, Serialize};

/// A loop-tiling choice for the convolution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tiling {
    /// Output-feature-map unroll factor.
    pub tm: u32,
    /// Input-feature-map unroll factor.
    pub tn: u32,
}

impl Tiling {
    /// DSP slices consumed: `Tm x Tn` multipliers.
    pub fn dsp(&self) -> u32 {
        self.tm * self.tn
    }
}

/// Per-batch latency split for the FPGA model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaBreakdown {
    /// Seconds in CONV layers for the whole batch.
    pub conv_s: f64,
    /// Seconds in FCN layers for the whole batch.
    pub fc_s: f64,
}

impl FpgaBreakdown {
    /// Total batch latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.conv_s + self.fc_s
    }

    /// Fraction of the batch latency spent in FCN layers.
    pub fn fc_fraction(&self) -> f64 {
        if self.total_s() == 0.0 {
            0.0
        } else {
            self.fc_s / self.total_s()
        }
    }
}

/// The analytical model of an FPGA accelerator built from tiled
/// convolution engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaModel {
    spec: FpgaSpec,
    tiling: Tiling,
    /// Whether the FCN batch-reuse loop (paper Fig. 13) is implemented.
    fcn_batch_opt: bool,
}

impl FpgaModel {
    /// Creates a model with an explicit tiling.
    pub fn new(spec: FpgaSpec, tiling: Tiling, fcn_batch_opt: bool) -> Self {
        FpgaModel { spec, tiling, fcn_batch_opt }
    }

    /// VX690T-like model with a tiling auto-fitted to AlexNet and the
    /// batching optimization enabled.
    pub fn vx690t() -> Self {
        let spec = FpgaSpec::vx690t();
        let tiling = best_tiling(&NetworkShapes::alexnet().convs(), spec.dsp_total);
        FpgaModel::new(spec, tiling, true)
    }

    /// The underlying specification.
    pub fn spec(&self) -> &FpgaSpec {
        &self.spec
    }

    /// The tiling in use.
    pub fn tiling(&self) -> Tiling {
        self.tiling
    }

    /// Returns a copy with the FCN batch optimization toggled.
    pub fn with_fcn_batch_opt(mut self, on: bool) -> Self {
        self.fcn_batch_opt = on;
        self
    }

    /// Paper Eq. (4): fraction of the `Tm x Tn` multiplier array doing
    /// useful work for a layer — batch-independent.
    pub fn conv_utilization(&self, shape: &ConvShape) -> f64 {
        let (tn, tm) = (self.tiling.tn as usize, self.tiling.tm as usize);
        let denom = tn * tm * shape.n.div_ceil(tn) * shape.m.div_ceil(tm);
        (shape.n * shape.m) as f64 / denom as f64
    }

    /// CONV-layer time for one sample: tile iterations × window cycles.
    pub fn conv_time_per_sample(&self, shape: &ConvShape) -> f64 {
        let (tn, tm) = (self.tiling.tn as usize, self.tiling.tm as usize);
        let cycles = (shape.n.div_ceil(tn) * shape.m.div_ceil(tm)) as u64
            * (shape.r * shape.c) as u64
            * (shape.k * shape.k) as u64;
        cycles as f64 / self.spec.freq_hz
    }

    /// FCN-layer time for a whole batch. Without the batch loop the
    /// weights stream from off-chip for **every** sample; with it they
    /// stream once per batch (paper Fig. 13/14).
    pub fn fc_time(&self, shape: &FcShape, batch: usize) -> f64 {
        let (tn, tm) = (self.tiling.tn as usize, self.tiling.tm as usize);
        let compute_cycles =
            (shape.input.div_ceil(tn) * shape.output.div_ceil(tm)) as u64 * batch as u64;
        let compute_s = compute_cycles as f64 / self.spec.freq_hz;
        let weight_bytes = shape.dw_elems() * 4;
        let act_bytes = 4 * (shape.input + shape.output) as u64 * batch as u64;
        let weight_loads = if self.fcn_batch_opt { 1 } else { batch as u64 };
        let mem_s = (weight_bytes * weight_loads + act_bytes) as f64 / self.spec.mem_bw;
        // Paper Eq. (12): Max(compute, memory).
        compute_s.max(mem_s)
    }

    /// Latency breakdown for one batch.
    pub fn batch_breakdown(&self, net: &NetworkShapes, batch: usize) -> FpgaBreakdown {
        let mut conv_s = 0.0;
        let mut fc_s = 0.0;
        for layer in &net.layers {
            match layer {
                LayerShape::Conv(c) => conv_s += self.conv_time_per_sample(c) * batch as f64,
                LayerShape::Fc(f) => fc_s += self.fc_time(f, batch),
            }
        }
        FpgaBreakdown { conv_s, fc_s }
    }

    /// Batch latency in seconds.
    pub fn batch_latency(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.batch_breakdown(net, batch).total_s()
    }

    /// Sustained throughput in images/second.
    pub fn throughput(&self, net: &NetworkShapes, batch: usize) -> f64 {
        batch as f64 / self.batch_latency(net, batch)
    }

    /// Board power: static plus dynamic scaled by the active-DSP
    /// fraction (tiling footprint × average array utilization).
    pub fn power(&self, net: &NetworkShapes, _batch: usize) -> f64 {
        let convs = net.convs();
        let avg_util = if convs.is_empty() {
            1.0
        } else {
            convs.iter().map(|c| self.conv_utilization(c)).sum::<f64>() / convs.len() as f64
        };
        let fraction = self.tiling.dsp() as f64 / self.spec.dsp_total as f64 * avg_util;
        self.spec.power_at(fraction)
    }

    /// Energy-efficiency in images/second/watt.
    pub fn perf_per_watt(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.throughput(net, batch) / self.power(net, batch)
    }

    /// Energy per processed image in joules.
    pub fn energy_per_image(&self, net: &NetworkShapes, batch: usize) -> f64 {
        self.power(net, batch) * self.batch_latency(net, batch) / batch as f64
    }
}

/// Searches the tiling space (`Tm·Tn ≤ dsp_budget`) for the choice that
/// minimizes total CONV time over the given layers — the per-network
/// design-space exploration of Zhang et al. that the paper builds on.
pub fn best_tiling(convs: &[ConvShape], dsp_budget: u32) -> Tiling {
    let mut best = Tiling { tm: 1, tn: 1 };
    let mut best_cycles = u64::MAX;
    let candidates: Vec<u32> = (0..=11).map(|p| 1u32 << p).collect();
    for &tm in &candidates {
        for &tn in &candidates {
            if tm * tn > dsp_budget {
                continue;
            }
            let t = Tiling { tm, tn };
            let cycles: u64 = convs
                .iter()
                .map(|s| {
                    (s.n.div_ceil(tn as usize) * s.m.div_ceil(tm as usize)) as u64
                        * (s.r * s.c * s.k * s.k) as u64
                })
                .sum();
            if cycles < best_cycles || (cycles == best_cycles && t.dsp() < best.dsp()) {
                best_cycles = cycles;
                best = t;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FpgaModel {
        FpgaModel::vx690t()
    }

    #[test]
    fn tiling_respects_budget() {
        let t = best_tiling(&NetworkShapes::alexnet().convs(), 3600);
        assert!(t.dsp() <= 3600);
        assert!(t.tm >= 1 && t.tn >= 1);
    }

    #[test]
    fn utilization_eq4_known_value() {
        // N=3, M=96, Tn=4, Tm=32: util = 288 / (4*32*1*3) = 0.75.
        let m = FpgaModel::new(FpgaSpec::vx690t(), Tiling { tm: 32, tn: 4 }, true);
        let shape = ConvShape { m: 96, n: 3, k: 11, r: 55, c: 55 };
        assert!((m.conv_utilization(&shape) - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn conv_utilization_is_batch_independent() {
        // Eq. (4) has no batch term; the model reflects that: per-sample
        // conv time is constant so per-image efficiency never changes.
        let m = model();
        let net = NetworkShapes::alexnet();
        let t1 = m.batch_breakdown(&net, 1).conv_s;
        let t8 = m.batch_breakdown(&net, 8).conv_s;
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fcn_batch_opt_amortizes_weights() {
        let with = model();
        let without = model().with_fcn_batch_opt(false);
        let fc = FcShape { input: 9216, output: 4096 };
        // Per-sample FCN cost without reuse is flat; with reuse it drops.
        let per_sample_with = with.fc_time(&fc, 32) / 32.0;
        let per_sample_without = without.fc_time(&fc, 32) / 32.0;
        assert!(per_sample_with < per_sample_without / 4.0);
        // At batch 1 the two coincide.
        assert_eq!(with.fc_time(&fc, 1), without.fc_time(&fc, 1));
    }

    #[test]
    fn fcn_memory_bound_without_batching() {
        let m = model().with_fcn_batch_opt(false);
        let fc = FcShape { input: 9216, output: 4096 };
        let weight_floor = (fc.dw_elems() * 4) as f64 / m.spec().mem_bw;
        assert!(m.fc_time(&fc, 1) >= weight_floor);
    }

    #[test]
    fn throughput_flat_with_batch_when_no_opt() {
        // Paper Fig. 23's NWS curve: no batching optimization → no
        // throughput gain from a looser latency budget.
        let m = model().with_fcn_batch_opt(false);
        let net = NetworkShapes::alexnet();
        let t1 = m.throughput(&net, 1);
        let t16 = m.throughput(&net, 16);
        assert!((t16 - t1).abs() / t1 < 0.02, "t1 {t1} vs t16 {t16}");
        // With the optimization, throughput improves.
        let opt = model();
        assert!(opt.throughput(&net, 16) > 1.2 * opt.throughput(&net, 1));
    }

    #[test]
    fn power_within_spec_envelope() {
        let m = model();
        let net = NetworkShapes::alexnet();
        let p = m.power(&net, 8);
        assert!(p >= m.spec().static_power_w);
        assert!(p <= m.spec().static_power_w + m.spec().dynamic_power_w);
    }

    #[test]
    fn gpu_beats_fpga_on_efficiency_single_task() {
        // Paper characterization result (3): GPU energy-efficiency is
        // better than FPGA when one task runs alone.
        let fpga = model();
        let gpu = crate::gpu::GpuModel::tx1();
        let net = NetworkShapes::alexnet();
        for b in [1usize, 8, 32] {
            assert!(
                gpu.perf_per_watt(&net, b) > fpga.perf_per_watt(&net, b),
                "batch {b}"
            );
        }
    }

    #[test]
    fn vgg_slower_than_alexnet() {
        let m = model();
        assert!(
            m.batch_latency(&NetworkShapes::vgg16(), 1)
                > 3.0 * m.batch_latency(&NetworkShapes::alexnet(), 1)
        );
    }
}
