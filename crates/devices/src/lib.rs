//! # insitu-devices
//!
//! Analytical time, utilization and energy models of the paper's
//! evaluation platforms: the TX1-class mobile GPU (Eqs. 2–3, 5–9), the
//! VX690T-class FPGA built from tiled convolution engines (Eqs. 4,
//! 12), the Titan X-class Cloud trainer, and the IoT uplink. These
//! models drive the Single-running configuration planner and every
//! microarchitecture figure of the evaluation (Figs. 11–16, 21).
//!
//! ## Example
//!
//! ```
//! use insitu_devices::{GpuModel, NetworkShapes};
//!
//! let gpu = GpuModel::tx1();
//! let alexnet = NetworkShapes::alexnet();
//! // Pick the optimal batch under a 100 ms deadline (paper Fig. 21).
//! let batch = gpu.optimal_batch(&alexnet, 0.1, 128).unwrap();
//! assert!(gpu.batch_latency(&alexnet, batch) <= 0.1);
//! ```

#![warn(missing_docs)]

mod fpga;
mod gpu;
mod layers;
mod spec;

pub use fpga::{best_tiling, FpgaBreakdown, FpgaModel, Tiling};
pub use gpu::{GpuBreakdown, GpuModel};
pub use layers::{ConvShape, FcShape, LayerShape, NetworkShapes};
pub use spec::{CloudGpuSpec, FpgaSpec, GpuSpec, UplinkSpec};
