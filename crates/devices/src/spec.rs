//! Device specifications: the constants behind the analytical models.
//!
//! The numbers are sized after the paper's evaluation platforms — an
//! NVIDIA Jetson TX1 mobile GPU, a Xilinx Virtex-7 VX690T FPGA and an
//! NVIDIA Titan X Cloud trainer. Absolute values need not match silicon
//! datasheets exactly (we reproduce *shapes*, not nanoseconds); what
//! matters is that the ratios — compute roof vs memory bandwidth,
//! static vs dynamic power — land in the regime the paper
//! characterizes.

use serde::{Deserialize, Serialize};

/// A mobile GPU in the style of the NVIDIA Jetson TX1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Core clock in Hz.
    pub freq_hz: f64,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Maximum thread blocks resident at once (the paper's
    /// `maxBlocks`).
    pub max_blocks: u32,
    /// GEMM tile rows computed per thread block (the paper's `m`).
    pub tile_m: u32,
    /// GEMM tile columns computed per thread block (the paper's `n`).
    pub tile_n: u32,
    /// Off-chip memory bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Idle board power in watts.
    pub idle_power_w: f64,
    /// Peak board power at full utilization in watts.
    pub max_power_w: f64,
    /// Device memory capacity in bytes (the resource model's
    /// `RAMcapacity`).
    pub ram_bytes: u64,
}

impl GpuSpec {
    /// TX1-like defaults.
    pub fn tx1() -> GpuSpec {
        GpuSpec {
            freq_hz: 0.998e9,
            cuda_cores: 256,
            max_blocks: 32,
            tile_m: 128,
            tile_n: 128,
            mem_bw: 25.6e9,
            idle_power_w: 2.0,
            max_power_w: 12.0,
            ram_bytes: 4 * 1024 * 1024 * 1024,
        }
    }

    /// TX2-like defaults: the successor board — same core count at a
    /// higher clock, twice the memory bandwidth and capacity. Used by
    /// the cross-device ablation to show the analytical models carry
    /// across GPU generations.
    pub fn tx2() -> GpuSpec {
        GpuSpec {
            freq_hz: 1.3e9,
            cuda_cores: 256,
            max_blocks: 32,
            tile_m: 128,
            tile_n: 128,
            mem_bw: 59.7e9,
            idle_power_w: 2.5,
            max_power_w: 15.0,
            ram_bytes: 8 * 1024 * 1024 * 1024,
        }
    }

    /// Peak multiply-accumulate throughput in ops/second at full
    /// utilization (the paper's Eq. (7) numerator: `2·Freq·nCUDACore`).
    pub fn peak_ops(&self) -> f64 {
        2.0 * self.freq_hz * self.cuda_cores as f64
    }

    /// Power draw at a given utilization in `[0, 1]` (linear
    /// idle→peak model).
    pub fn power_at(&self, utilization: f64) -> f64 {
        self.idle_power_w
            + (self.max_power_w - self.idle_power_w) * utilization.clamp(0.0, 1.0)
    }
}

/// An FPGA in the style of the Xilinx Virtex-7 VX690T.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaSpec {
    /// Fabric clock in Hz.
    pub freq_hz: f64,
    /// Total DSP slices (the paper's `DSPtotal`).
    pub dsp_total: u32,
    /// Off-chip memory bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Static power in watts.
    pub static_power_w: f64,
    /// Dynamic power at full DSP activity in watts.
    pub dynamic_power_w: f64,
    /// On-chip BRAM capacity in bytes (weight/activation buffers).
    pub bram_bytes: u64,
}

impl FpgaSpec {
    /// VX690T-like defaults.
    pub fn vx690t() -> FpgaSpec {
        FpgaSpec {
            freq_hz: 150e6,
            dsp_total: 3600,
            mem_bw: 12.8e9,
            static_power_w: 5.0,
            dynamic_power_w: 20.0,
            bram_bytes: 6_640_000, // ~52.9 Mbit of BRAM
        }
    }

    /// Peak multiply-accumulate throughput with `active_dsp` slices
    /// busy every cycle (1 MAC = 2 ops).
    pub fn peak_ops(&self, active_dsp: u32) -> f64 {
        2.0 * self.freq_hz * active_dsp.min(self.dsp_total) as f64
    }

    /// Power draw with a fraction of DSPs active.
    pub fn power_at(&self, dsp_fraction: f64) -> f64 {
        self.static_power_w + self.dynamic_power_w * dsp_fraction.clamp(0.0, 1.0)
    }
}

/// The Cloud training GPU (Titan X-like), used by the model-update
/// energy/time accounting of the end-to-end experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudGpuSpec {
    /// Peak fp32 throughput in ops/second.
    pub peak_ops: f64,
    /// Fraction of peak sustained on CNN training workloads.
    pub training_efficiency: f64,
    /// Board power under training load, watts.
    pub training_power_w: f64,
}

impl CloudGpuSpec {
    /// Titan X (Maxwell)-like defaults.
    pub fn titan_x() -> CloudGpuSpec {
        CloudGpuSpec { peak_ops: 6.14e12, training_efficiency: 0.45, training_power_w: 250.0 }
    }

    /// Wall-clock seconds to spend `ops` multiply-accumulate operations
    /// of training on this device.
    pub fn training_time(&self, ops: u64) -> f64 {
        ops as f64 / (self.peak_ops * self.training_efficiency)
    }

    /// Energy in joules to spend `ops` of training.
    pub fn training_energy(&self, ops: u64) -> f64 {
        self.training_time(ops) * self.training_power_w
    }
}

/// Network uplink between an IoT node and the Cloud, used for the
/// data-movement energy accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UplinkSpec {
    /// Sustained throughput in bytes/second.
    pub bw: f64,
    /// Transmit energy in joules per byte (radio + amplifiers).
    pub energy_per_byte: f64,
}

impl UplinkSpec {
    /// LTE-class defaults for a remote IoT deployment.
    pub fn lte() -> UplinkSpec {
        UplinkSpec { bw: 1.5e6, energy_per_byte: 3.0e-6 }
    }

    /// Seconds to upload `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bw
    }

    /// Joules to upload `bytes`.
    pub fn transfer_energy(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx1_peak_ops() {
        let g = GpuSpec::tx1();
        // 2 * 0.998 GHz * 256 cores ≈ 511 Gops.
        assert!((g.peak_ops() - 511e9).abs() / 511e9 < 0.01);
    }

    #[test]
    fn gpu_power_is_linear_and_clamped() {
        let g = GpuSpec::tx1();
        assert_eq!(g.power_at(0.0), g.idle_power_w);
        assert_eq!(g.power_at(1.0), g.max_power_w);
        assert_eq!(g.power_at(2.0), g.max_power_w);
        assert!(g.power_at(0.5) > g.idle_power_w && g.power_at(0.5) < g.max_power_w);
    }

    #[test]
    fn fpga_peak_ops_clamps_dsp() {
        let f = FpgaSpec::vx690t();
        assert_eq!(f.peak_ops(5000), f.peak_ops(3600));
        assert!((f.peak_ops(3600) - 2.0 * 150e6 * 3600.0).abs() < 1.0);
    }

    #[test]
    fn titan_training_model() {
        let t = CloudGpuSpec::titan_x();
        let ops = 1_000_000_000_000u64; // 1 Tops
        let secs = t.training_time(ops);
        assert!(secs > 0.0 && secs < 1.0);
        assert!((t.training_energy(ops) - secs * 250.0).abs() < 1e-9);
    }

    #[test]
    fn uplink_accounting() {
        let u = UplinkSpec::lte();
        assert!((u.transfer_time(1_500_000) - 1.0).abs() < 1e-9);
        assert!(u.transfer_energy(1_000_000) > 0.0);
    }
}
