//! The co-running activation-reuse contract: the fused stage pipeline
//! (logit cache + tile-embedding fast path) must be **bitwise
//! identical** to the unfused reference for every diagnosis policy, at
//! any batch size, image count and kernel thread count.
//!
//! Two nodes are built from the same seed; one runs
//! [`InsituNode::process_stage`] (fused), the other
//! [`InsituNode::process_stage_unfused`] (reference). Everything the
//! stage produces is compared at the bit level: predictions, verdict
//! flags, verdict score bits, upload selection and byte accounting —
//! and, because the jigsaw policies draw probe permutations from the
//! node RNG, equality also proves the fused path consumes the RNG
//! stream in exactly the reference order.

use insitu_core::{DiagnosisPolicy, InsituNode, StageOutcome};
use insitu_data::{Condition, Dataset, PermutationSet};
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::transfer::transfer_and_freeze;
use insitu_tensor::{num_threads, set_num_threads, Rng};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes access to the global kernel thread count.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

const PERMS: usize = 8;
const CLASSES: usize = 4;

fn make_node(seed: u64, policy: DiagnosisPolicy) -> InsituNode {
    let mut rng = Rng::seed_from(seed);
    let jigsaw = jigsaw_network(PERMS, &mut rng).unwrap();
    let mut inference = mini_alexnet(CLASSES, &mut rng).unwrap();
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
    let set = PermutationSet::generate(PERMS, &mut rng).unwrap();
    InsituNode::new(inference, jigsaw, set, policy, 3, seed ^ 0xA5).unwrap()
}

/// Every bit the stage outcome carries, in comparable form:
/// (predictions, verdict bits, upload selection, uploaded bytes).
type OutcomeBits = (Vec<usize>, Vec<(bool, u32)>, Vec<usize>, u64);

fn outcome_bits(o: &StageOutcome) -> OutcomeBits {
    (
        o.predictions.clone(),
        o.verdicts.iter().map(|v| (v.valuable, v.score.to_bits())).collect(),
        o.valuable.clone(),
        o.uploaded_bytes,
    )
}

fn policy_from_index(idx: usize) -> DiagnosisPolicy {
    match idx {
        0 => DiagnosisPolicy::Oracle,
        1 => DiagnosisPolicy::InferenceConfidence { threshold: 0.6 },
        2 => DiagnosisPolicy::JigsawProbe { probes: 3 },
        3 => DiagnosisPolicy::JigsawConfidence { threshold: 0.4 },
        // Degenerate and larger probe counts exercise the batched
        // head's k=1 path and a head batch bigger than the perm pool.
        4 => DiagnosisPolicy::JigsawProbe { probes: 1 },
        _ => DiagnosisPolicy::JigsawProbe { probes: 5 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fused == unfused, bitwise, across seeds, ragged batch sizes,
    /// image counts, six policy variants (including 1- and 5-probe
    /// jigsaw, which stress the batched head) and 1/2/4 kernel
    /// threads. The single-thread reference outcome is also pinned
    /// across thread counts, so parallelism cannot smuggle in a
    /// divergence either.
    #[test]
    fn fused_stage_is_bitwise_identical_to_reference(
        seed in 0u64..500,
        batch in 1usize..9,
        images in 1usize..11,
        policy_idx in 0usize..6,
    ) {
        let policy = policy_from_index(policy_idx);
        let data = Dataset::generate(
            images,
            CLASSES,
            &Condition::in_situ(),
            &mut Rng::seed_from(seed.wrapping_add(991)),
        )
        .unwrap();
        let mut pinned: Option<OutcomeBits> = None;
        for threads in [1usize, 2, 4] {
            let (fused, reference) = with_threads(threads, || {
                let mut a = make_node(seed, policy);
                let mut b = make_node(seed, policy);
                a.prewarm(batch).unwrap();
                b.prewarm(batch).unwrap();
                (
                    outcome_bits(&a.process_stage(&data, batch).unwrap()),
                    outcome_bits(&b.process_stage_unfused(&data, batch).unwrap()),
                )
            });
            // (policy, threads) context lives in the proptest case
            // inputs; the stub's prop_assert_eq! is two-argument only.
            prop_assert_eq!(&fused, &reference);
            match &pinned {
                None => pinned = Some(fused),
                Some(first) => prop_assert_eq!(first, &fused),
            }
        }
    }
}

/// Repeated fused stages on one node keep matching a reference node
/// that consumed the identical stream — the logit cache and embedding
/// buffers carry no state across stages.
#[test]
fn fused_path_is_stateless_across_stages() {
    let policy = DiagnosisPolicy::JigsawProbe { probes: 2 };
    let mut fused = make_node(41, policy);
    let mut reference = make_node(41, policy);
    fused.prewarm(4).unwrap();
    reference.prewarm(4).unwrap();
    let mut rng = Rng::seed_from(1234);
    for stage in 0..3 {
        let data = Dataset::generate(7, CLASSES, &Condition::in_situ(), &mut rng).unwrap();
        let a = fused.process_stage(&data, 4).unwrap();
        let b = reference.process_stage_unfused(&data, 4).unwrap();
        assert_eq!(outcome_bits(&a), outcome_bits(&b), "stage {stage} diverged");
    }
    assert_eq!(fused.movement().images_seen, reference.movement().images_seen);
    assert_eq!(fused.movement().images_uploaded, reference.movement().images_uploaded);
}
