//! Telemetry proof of the tile-embedding reuse: under `JigsawProbe`
//! the fused stage runs **exactly one** jigsaw trunk pass per image
//! (`jigsaw.trunk_passes == images`), while the unfused reference pays
//! one per probe (`images × probes`). Runs alone in its own process:
//! the telemetry registry is process-global, so no other test may
//! record into the windows captured here.

use insitu_core::{DiagnosisPolicy, InsituNode};
use insitu_data::{Condition, Dataset, PermutationSet};
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::transfer::transfer_and_freeze;
use insitu_telemetry as telemetry;
use insitu_tensor::Rng;

const IMAGES: usize = 10;
const PROBES: usize = 3;

fn make_node(seed: u64) -> InsituNode {
    let mut rng = Rng::seed_from(seed);
    let jigsaw = jigsaw_network(8, &mut rng).unwrap();
    let mut inference = mini_alexnet(4, &mut rng).unwrap();
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
    let set = PermutationSet::generate(8, &mut rng).unwrap();
    InsituNode::new(
        inference,
        jigsaw,
        set,
        DiagnosisPolicy::JigsawProbe { probes: PROBES },
        3,
        seed,
    )
    .unwrap()
}

/// Counter total of `jigsaw.trunk_passes` over one recording window.
fn counted<R>(f: impl FnOnce() -> R) -> (u64, telemetry::TelemetrySnapshot, R) {
    telemetry::set_enabled(true);
    telemetry::reset();
    let out = f();
    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);
    telemetry::reset();
    let total = snap.counter("jigsaw.trunk_passes", "").map_or(0, |c| c.total);
    (total, snap, out)
}

#[test]
fn trunk_passes_count_images_not_images_times_probes() {
    let mut node = make_node(21);
    let data =
        Dataset::generate(IMAGES, 4, &Condition::in_situ(), &mut Rng::seed_from(5)).unwrap();
    // Prewarm outside the recording windows: its warm-up passes are
    // not stage work.
    node.prewarm(4).unwrap();

    let (fused_passes, snap, _) = counted(|| node.process_stage(&data, 4).unwrap());
    assert_eq!(
        fused_passes, IMAGES as u64,
        "fused stage must run exactly one trunk pass per image"
    );
    // The reuse layer announces itself in the trace.
    assert!(
        snap.spans.iter().any(|s| s.name == "node.reuse"),
        "fused diagnosis must open a node.reuse span"
    );

    let (unfused_passes, _, _) = counted(|| node.process_stage_unfused(&data, 4).unwrap());
    assert_eq!(
        unfused_passes,
        (IMAGES * PROBES) as u64,
        "reference stage pays one trunk pass per probe"
    );
}
