//! Closed-loop observability, end to end: the latency histograms the
//! node records during a live session must (a) distil into a
//! [`MeasuredProfile`] the planner can re-plan from, (b) export as
//! valid Prometheus text and JSON through the session's
//! [`MetricsHub`], and (c) actually close the loop — a session whose
//! stage latency is perturbed mid-flight re-plans itself within the
//! configured cadence.
//!
//! The telemetry registry is process-global, so every test here takes
//! the `GATE` mutex and runs its recording inside a fresh epoch.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use insitu_core::{
    run_streaming_session, validate_prometheus, Availability, CloudEndpoint, DiagnosisPolicy,
    InferencePrecision, InsituNode, MeasuredProfile, ModelUpdate, NodePlan, PlanRequest, Platform,
    ReplanConfig, WorkingMode,
};
use insitu_data::{Condition, Dataset, PermutationSet};
use insitu_devices::NetworkShapes;
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::serialize::state_dict;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_telemetry as telemetry;
use insitu_tensor::Rng;

/// Serializes tests that enable the process-global telemetry registry.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// A recording window: enable + fresh epoch on entry, disabled and
/// reset on drop, so no state leaks into the next test.
struct Window(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Window {
    fn open() -> Self {
        let guard = gate();
        telemetry::set_enabled(true);
        telemetry::advance_epoch();
        Window(guard)
    }
}

impl Drop for Window {
    fn drop(&mut self) {
        telemetry::set_enabled(false);
        telemetry::reset();
    }
}

fn make_node(seed: u64) -> InsituNode {
    let mut rng = Rng::seed_from(seed);
    let jigsaw = jigsaw_network(8, &mut rng).unwrap();
    let mut inference = mini_alexnet(4, &mut rng).unwrap();
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
    let set = PermutationSet::generate(8, &mut rng).unwrap();
    InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, seed).unwrap()
}

/// A trivially fast Cloud double: echoes back the same weights.
#[derive(Debug)]
struct EchoCloud {
    params: Vec<insitu_tensor::Tensor>,
    version: u32,
}

impl CloudEndpoint for EchoCloud {
    fn incremental_update(&mut self, _uploaded: &Dataset) -> insitu_core::Result<ModelUpdate> {
        self.version += 1;
        Ok(ModelUpdate {
            version: self.version,
            inference_params: self.params.clone(),
            jigsaw_params: None,
            training_ops: 0,
            eval_accuracy: None,
        })
    }
}

fn stream(stages: usize, images: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = Rng::seed_from(seed);
    (0..stages)
        .map(|_| Dataset::generate(images, 4, &Condition::in_situ(), &mut rng).unwrap())
        .collect()
}

/// `MeasuredProfile::from_snapshot` reads the per-image latency
/// histograms (by precision label), the i8/f32 speedup, and the
/// achieved uplink rate, with exact values when every sample in a
/// bucket is identical (percentiles clamp to the observed max).
#[test]
fn measured_profile_distils_the_window() {
    let _w = Window::open();
    for _ in 0..10 {
        telemetry::hist_record("node.stage_per_image", "f32", 8_000_000); // 8 ms
        telemetry::hist_record("node.stage_per_image", "i8", 2_000_000); // 2 ms
    }
    telemetry::hist_record("node.upload_bytes", "", 3 * 15_552);
    telemetry::hist_record("node.stage", "", 1_000_000_000); // 1 s of stage time
    let snap = telemetry::snapshot();

    let f32_profile =
        MeasuredProfile::from_snapshot(&snap, InferencePrecision::F32).expect("f32 samples");
    assert_eq!(f32_profile.per_image_p50_s, 0.008);
    assert_eq!(f32_profile.per_image_p90_s, 0.008);
    assert_eq!(f32_profile.stages, 10);
    assert_eq!(f32_profile.i8_speedup, Some(4.0));
    assert_eq!(f32_profile.uplink_bytes_per_s, (3 * 15_552) as f64);

    let i8_profile =
        MeasuredProfile::from_snapshot(&snap, InferencePrecision::I8).expect("i8 samples");
    assert_eq!(i8_profile.per_image_p90_s, 0.002);
}

/// A real streaming session must come back with percentile rows in
/// its [`insitu_core::SessionStats::metrics`] hub, and both exports
/// must be machine-readable: the Prometheus text passes
/// [`validate_prometheus`], the JSON parses.
#[test]
fn session_exports_validate_and_carry_percentiles() {
    let _w = Window::open();
    let mut node = make_node(41);
    let params = state_dict(node.inference_mut());
    let cloud = std::sync::Arc::new(parking_lot::Mutex::new(EchoCloud { params, version: 0 }));
    let (_, stats) = run_streaming_session(node, cloud, stream(4, 16, 42), 8).unwrap();

    assert!(stats.telemetry.epoch > 0, "session must run in a fresh telemetry epoch");
    assert_eq!(stats.metrics.epoch(), stats.telemetry.epoch);
    for field in ["count", "p50", "p90", "p99", "p100"] {
        assert!(
            stats.metrics.get("node.stage_per_image", "f32", field).is_some(),
            "missing node.stage_per_image {field} row"
        );
    }
    assert!(stats.metrics.get("node.infer_chunk", "f32", "p99").is_some());
    assert!(stats.metrics.get("node.upload_bytes", "", "sum").is_some());

    let text = stats.metrics.to_prometheus();
    let samples = validate_prometheus(&text).expect("Prometheus export must parse");
    assert!(samples > 20, "suspiciously few samples ({samples}):\n{text}");
    assert!(text.contains("insitu_h_node_stage_per_image"), "{text}");
    assert!(text.contains("quantile=\"0.99\""), "{text}");

    let v = telemetry::json::parse(&stats.metrics.to_json()).expect("JSON export must parse");
    let series = v.get("series").and_then(|s| s.as_array()).expect("series array");
    assert_eq!(series.len(), stats.metrics.len());
}

/// The acceptance loop: a seeded session whose stage latency is
/// perturbed (injected 40 ms delay per stage against a plan that
/// predicted 0.1 ms/image) must re-plan within the configured cadence,
/// change its batch, emit the `node.replan` instant, and still export
/// valid metrics.
#[test]
fn perturbed_session_replans_online() {
    let _w = Window::open();
    let mut node = make_node(43);
    let params = state_dict(node.inference_mut());

    // A deliberately optimistic plan: 8-image batches at a predicted
    // 0.1 ms/image. The injected 40 ms/stage delay pushes the measured
    // p90 per image to >= 5 ms, a ratio far outside theta = 1.5.
    node.install_plan(NodePlan {
        mode: WorkingMode::CoRunning,
        platform: Platform::Fpga,
        inference_batch: 8,
        diagnosis_batch: 8,
        predicted_latency_s: 0.0008,
        predicted_throughput: 10_000.0,
        predicted_perf_per_watt: 0.0,
        wss_group_size: 0,
        precision: InferencePrecision::F32,
        accuracy_delta: 0.0,
    });
    node.enable_replan(ReplanConfig {
        every_stages: 2,
        divergence: 1.5,
        queue_depth_trigger: None,
        allow_precision_flip: false,
        request: PlanRequest { availability: Availability::AlwaysOn, t_user: 10.0, max_batch: 64 },
        inference_shapes: NetworkShapes::alexnet(),
        quant: None,
    });
    node.set_injected_stage_delay(Some(Duration::from_millis(40)));

    let cloud = std::sync::Arc::new(parking_lot::Mutex::new(EchoCloud { params, version: 0 }));
    let (node, stats) = run_streaming_session(node, cloud, stream(6, 8, 44), 8).unwrap();

    assert!(stats.replans >= 1, "the perturbed session never re-planned");
    assert_eq!(stats.replans, node.replans());
    assert_eq!(node.stages_processed(), 6);
    // The measured p90 (~5 ms/image) against a 10 s deadline admits
    // far more than max_batch: the new plan clamps to it.
    let plan = node.plan().expect("a plan stays installed after re-planning");
    assert_eq!(plan.inference_batch, 64, "re-plan must adopt the measured batch");
    assert!(plan.predicted_latency_s > 0.0008, "prediction must track the measurement");

    assert!(
        stats.telemetry.spans.iter().any(|s| s.name == "node.replan"),
        "re-planning must emit the node.replan instant"
    );
    assert!(stats.metrics.get("node.stage_per_image", "f32", "p90").is_some());

    let text = stats.metrics.to_prometheus();
    validate_prometheus(&text).expect("Prometheus export must parse");
    assert!(text.contains("insitu_h_node_stage_per_image"), "{text}");
}
