//! The overlapped-ingestion contract, end to end.
//!
//! The load-bearing property: an overlapped session under the lossless
//! `Block` policy with lockstep uploads is a **bitwise drop-in** for
//! the sequential vec-driven loop — identical [`SessionStats`]
//! trajectory and identical final model state — across seeds and
//! kernel thread counts. The backpressure tests then pin each policy's
//! observable behavior under a deliberately slow consumer: `Block`
//! stalls the producer and loses nothing, `DropOldest` sheds the
//! oldest frames and counts them, `Degrade` shrinks the node's batch
//! (and, at the floor, flips inference to i8 when allowed). Finally,
//! the re-plan loop's queue-depth trigger is driven end to end: a
//! backed-up queue makes a planned f32 node re-plan itself into the
//! calibrated i8 configuration mid-session.

use std::sync::{Arc, Mutex as StdMutex, MutexGuard, OnceLock};
use std::time::Duration;

use insitu_core::{
    run_ingested_session, run_replayed_session, run_streaming_session_with, Availability,
    CloudEndpoint, DegradeConfig, DiagnosisPolicy, InferencePrecision, IngestPolicy,
    IngestSessionConfig, InsituNode, ModelUpdate, NodePlan, PlanRequest, Platform, QuantProfile,
    ReplanConfig, SessionConfig, SessionStats, WorkingMode,
};
use insitu_data::{Condition, Dataset, DriftSchedule, PermutationSet, SyntheticDriftSource};
use insitu_devices::NetworkShapes;
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::serialize::state_dict;
use insitu_nn::transfer::transfer_and_freeze;
use insitu_telemetry as telemetry;
use insitu_tensor::{num_threads, set_num_threads, Rng};
use parking_lot::Mutex;
use proptest::prelude::*;

/// Serializes access to the global kernel thread count.
static THREADS_LOCK: StdMutex<()> = StdMutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

/// Serializes tests that enable the process-global telemetry registry.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<StdMutex<()>> = OnceLock::new();
    GATE.get_or_init(|| StdMutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// A recording window: enable + fresh epoch on entry, disabled and
/// reset on drop, so no state leaks into the next test.
struct Window(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Window {
    fn open() -> Self {
        let guard = gate();
        telemetry::set_enabled(true);
        telemetry::advance_epoch();
        Window(guard)
    }
}

impl Drop for Window {
    fn drop(&mut self) {
        telemetry::set_enabled(false);
        telemetry::reset();
    }
}

const CLASSES: usize = 4;

fn make_node(seed: u64) -> InsituNode {
    let mut rng = Rng::seed_from(seed);
    let jigsaw = jigsaw_network(8, &mut rng).unwrap();
    let mut inference = mini_alexnet(CLASSES, &mut rng).unwrap();
    transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
    let set = PermutationSet::generate(8, &mut rng).unwrap();
    InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, seed).unwrap()
}

/// A trivially fast Cloud double: echoes back the same weights. Fully
/// deterministic, so two sessions fed identical uploads in identical
/// order install identical updates.
#[derive(Debug)]
struct EchoCloud {
    params: Vec<insitu_tensor::Tensor>,
    version: u32,
}

impl EchoCloud {
    fn for_seed(seed: u64) -> Arc<Mutex<EchoCloud>> {
        let mut node = make_node(seed);
        let params = state_dict(node.inference_mut());
        Arc::new(Mutex::new(EchoCloud { params, version: 0 }))
    }
}

impl CloudEndpoint for EchoCloud {
    fn incremental_update(&mut self, _uploaded: &Dataset) -> insitu_core::Result<ModelUpdate> {
        self.version += 1;
        Ok(ModelUpdate {
            version: self.version,
            inference_params: self.params.clone(),
            jigsaw_params: None,
            training_ops: 0,
            eval_accuracy: None,
        })
    }
}

fn drift_source(frames: usize, images: usize, seed: u64) -> SyntheticDriftSource {
    SyntheticDriftSource::new(
        frames,
        images,
        CLASSES,
        DriftSchedule { start: 0.1, step: 0.15 },
        seed,
    )
    .unwrap()
}

fn stream(stages: usize, images: usize, seed: u64) -> Vec<Dataset> {
    let mut rng = Rng::seed_from(seed);
    (0..stages)
        .map(|_| Dataset::generate(images, CLASSES, &Condition::in_situ(), &mut rng).unwrap())
        .collect()
}

/// Everything a session's outcome carries, in comparable form.
fn session_fingerprint(mut node: InsituNode, stats: &SessionStats) -> (SessionStats, u32, Vec<insitu_tensor::Tensor>) {
    (stats.clone(), node.version(), state_dict(node.inference_mut()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The differential oracle: an overlapped `Block` session with
    /// lockstep uploads must be bitwise identical — same
    /// [`SessionStats`], same final model version and weights — to the
    /// sequential loop over the materialized stream, across seeds,
    /// queue capacities and 1/2/4 kernel threads.
    #[test]
    fn block_overlapped_session_is_bitwise_identical_to_sequential(
        seed in 0u64..200,
        capacity in 1usize..5,
    ) {
        let frames = 4usize;
        let images = 8usize;
        let session = SessionConfig {
            batch_size: 4,
            uplink_capacity: 4,
            lockstep_uploads: true,
        };
        for threads in [1usize, 2, 4] {
            let (sequential, overlapped) = with_threads(threads, || {
                let source = drift_source(frames, images, seed.wrapping_add(17));
                let oracle_stream = source.materialize().unwrap();
                let (node_a, stats_a) = run_streaming_session_with(
                    make_node(seed),
                    EchoCloud::for_seed(seed),
                    oracle_stream,
                    &session,
                )
                .unwrap();
                let (node_b, stats_b, summary) = run_ingested_session(
                    make_node(seed),
                    EchoCloud::for_seed(seed),
                    Box::new(source),
                    &IngestSessionConfig {
                        session: session.clone(),
                        queue_capacity: capacity,
                        policy: IngestPolicy::Block,
                    },
                )
                .unwrap();
                // Block is lossless: every frame reaches the node and
                // arena recycling bounds fresh allocations by the
                // queue capacity, never the stream length.
                assert_eq!(summary.frames, frames as u64);
                assert_eq!(summary.drops, 0);
                assert!(
                    summary.fresh_buffers <= capacity as u64 + 2,
                    "fresh {} > cap {} + 2",
                    summary.fresh_buffers,
                    capacity
                );
                (
                    session_fingerprint(node_a, &stats_a),
                    session_fingerprint(node_b, &stats_b),
                )
            });
            prop_assert_eq!(&sequential, &overlapped);
        }
    }
}

#[test]
fn block_policy_stalls_a_slow_consumer_without_loss() {
    let mut node = make_node(21);
    // A consumer ~25x slower than the producer: the queue saturates.
    node.set_injected_stage_delay(Some(Duration::from_millis(25)));
    let cloud = EchoCloud::for_seed(21);
    let config = IngestSessionConfig {
        session: SessionConfig::with_batch(8),
        queue_capacity: 2,
        policy: IngestPolicy::Block,
    };
    let (_, stats, summary) =
        run_replayed_session(node, cloud, Arc::new(stream(8, 8, 22)), &config).unwrap();
    assert_eq!(stats.batches, 8, "Block must deliver every frame");
    assert_eq!(summary.frames, 8);
    assert_eq!(summary.drops, 0, "Block never drops");
    assert!(
        summary.max_queue_depth <= 2,
        "queue bound violated: depth {}",
        summary.max_queue_depth
    );
    assert!(summary.fresh_buffers <= 4, "arena must recycle: {} fresh", summary.fresh_buffers);
}

#[test]
fn drop_oldest_sheds_frames_under_a_slow_consumer() {
    let mut node = make_node(23);
    node.set_injected_stage_delay(Some(Duration::from_millis(30)));
    let cloud = EchoCloud::for_seed(23);
    let config = IngestSessionConfig {
        session: SessionConfig::with_batch(8),
        queue_capacity: 1,
        policy: IngestPolicy::DropOldest,
    };
    let frames = 10u64;
    let (_, stats, summary) =
        run_replayed_session(node, cloud, Arc::new(stream(frames as usize, 8, 24)), &config)
            .unwrap();
    assert_eq!(summary.frames, frames);
    assert!(summary.drops > 0, "a 30 ms/frame consumer behind a cap-1 queue must drop");
    assert_eq!(
        stats.batches + summary.drops,
        frames,
        "every frame is either processed or counted dropped"
    );
}

#[test]
fn degrade_policy_halves_the_batch_under_pressure() {
    let mut node = make_node(25);
    node.set_injected_stage_delay(Some(Duration::from_millis(25)));
    let cloud = EchoCloud::for_seed(25);
    let config = IngestSessionConfig {
        session: SessionConfig::with_batch(8),
        queue_capacity: 3,
        policy: IngestPolicy::Degrade(DegradeConfig {
            high_watermark: 1,
            low_watermark: 0,
            min_batch: 1,
            allow_precision_flip: false,
        }),
    };
    let (_, stats, summary) =
        run_replayed_session(node, cloud, Arc::new(stream(8, 8, 26)), &config).unwrap();
    assert_eq!(stats.batches, 8, "Degrade keeps every frame");
    assert_eq!(summary.drops, 0, "Degrade sheds load on the consumer, not the stream");
    assert!(summary.degrades >= 1, "a backed-up queue must shrink the batch");
}

#[test]
fn degrade_policy_flips_precision_at_the_batch_floor() {
    let mut node = make_node(27);
    // Calibrate the i8 path, then deploy at f32 so the flip is live.
    let calib = Dataset::generate(16, CLASSES, &Condition::ideal(), &mut Rng::seed_from(28))
        .unwrap();
    node.enable_quantized(&calib).unwrap();
    node.set_precision(InferencePrecision::F32).unwrap();
    node.set_injected_stage_delay(Some(Duration::from_millis(25)));
    let cloud = EchoCloud::for_seed(27);
    let config = IngestSessionConfig {
        session: SessionConfig::with_batch(8),
        queue_capacity: 3,
        policy: IngestPolicy::Degrade(DegradeConfig {
            high_watermark: 1,
            low_watermark: 0,
            // The floor equals the deployed batch: halving is already
            // exhausted, so the first degrade step is the flip.
            min_batch: 8,
            allow_precision_flip: true,
        }),
    };
    let (_, stats, summary) =
        run_replayed_session(node, cloud, Arc::new(stream(8, 8, 29)), &config).unwrap();
    assert_eq!(stats.batches, 8);
    assert!(
        summary.precision_flips >= 1,
        "queue pressure at the batch floor must flip f32 -> i8"
    );
}

/// The re-plan loop's queue-depth trigger, end to end: a planned f32
/// node with a calibrated i8 network, a huge divergence threshold (so
/// only the depth trigger can fire) and a backed-up ingest queue must
/// re-plan into the i8 configuration mid-session.
#[test]
fn queue_pressure_replans_into_the_quantized_configuration() {
    let _w = Window::open();
    let mut node = make_node(31);
    let calib = Dataset::generate(16, CLASSES, &Condition::ideal(), &mut Rng::seed_from(32))
        .unwrap();
    node.enable_quantized(&calib).unwrap();
    node.set_precision(InferencePrecision::F32).unwrap();
    node.install_plan(NodePlan {
        mode: WorkingMode::CoRunning,
        platform: Platform::Fpga,
        inference_batch: 8,
        diagnosis_batch: 8,
        predicted_latency_s: 0.08,
        predicted_throughput: 100.0,
        predicted_perf_per_watt: 0.0,
        wss_group_size: 0,
        precision: InferencePrecision::F32,
        accuracy_delta: 0.0,
    });
    node.enable_replan(ReplanConfig {
        every_stages: 2,
        // Effectively disable the latency trigger: only queue depth
        // can cause this session's re-plan.
        divergence: 1e9,
        queue_depth_trigger: Some(1),
        allow_precision_flip: true,
        request: PlanRequest { availability: Availability::AlwaysOn, t_user: 10.0, max_batch: 64 },
        inference_shapes: NetworkShapes::alexnet(),
        quant: Some(QuantProfile { speedup: 1.5, accuracy_delta: -0.01 }),
    });
    node.set_injected_stage_delay(Some(Duration::from_millis(25)));
    let cloud = EchoCloud::for_seed(31);
    let config = IngestSessionConfig {
        session: SessionConfig::with_batch(8),
        queue_capacity: 4,
        policy: IngestPolicy::Block,
    };
    let (node, stats, summary) =
        run_replayed_session(node, cloud, Arc::new(stream(8, 8, 33)), &config).unwrap();
    assert!(summary.max_queue_depth >= 1, "the slow consumer must back the queue up");
    assert!(stats.replans >= 1, "queue depth must trigger a re-plan");
    assert!(
        summary.precision_flips >= 1,
        "the depth-triggered re-plan must flip f32 -> i8 live"
    );
    assert_eq!(
        node.precision(),
        InferencePrecision::I8,
        "the node must end the session on the quantized path"
    );
    assert!(
        stats.telemetry.spans.iter().any(|s| s.name == "node.precision_flip"),
        "the flip must emit its telemetry instant"
    );
}
