//! End-to-end gate on the fixed-point inference path: a node running
//! [`InferencePrecision::I8`] must hold held-out accuracy within two
//! points of the same node at f32.
//!
//! The run mirrors a deployment at paper shapes: a Mini-AlexNet is
//! trained on a seeded synthetic dataset, transferred against a jigsaw
//! trunk (the node constructor's shared-prefix invariant), calibrated
//! on a held-out split and evaluated on a third split large enough
//! (100 images) that a single argmax flip moves the accuracy by only
//! one point. Everything is seeded, so the gate is deterministic.

use insitu_core::{DiagnosisPolicy, InferencePrecision, InsituNode};
use insitu_data::{Condition, Dataset, PermutationSet};
use insitu_nn::models::{jigsaw_network, mini_alexnet};
use insitu_nn::transfer::transfer_and_freeze;
use insitu_nn::{LabeledBatch, TrainConfig};
use insitu_tensor::Rng;

const CLASSES: usize = 4;
const TRAIN: usize = 96;
const CALIB: usize = 16;
const EVAL: usize = 100;

/// Builds a trained node plus (calibration, evaluation) splits.
fn trained_node() -> (InsituNode, Dataset, Dataset) {
    let mut rng = Rng::seed_from(2024);
    let train = Dataset::generate(TRAIN, CLASSES, &Condition::ideal(), &mut rng).unwrap();
    let calib = Dataset::generate(CALIB, CLASSES, &Condition::ideal(), &mut rng).unwrap();
    let eval = Dataset::generate(EVAL, CLASSES, &Condition::ideal(), &mut rng).unwrap();

    let jigsaw = jigsaw_network(8, &mut rng).unwrap();
    let mut inference = mini_alexnet(CLASSES, &mut rng).unwrap();
    let cfg = TrainConfig { epochs: 4, batch_size: 8, lr: 0.01, ..Default::default() };
    insitu_nn::train(
        &mut inference,
        LabeledBatch::new(train.images(), train.labels()).unwrap(),
        None,
        &cfg,
        &mut rng,
    )
    .unwrap();
    // Deploy recipe: share + freeze the conv prefix so the node's
    // shared-weight invariant holds.
    let mut inference = {
        let mut fresh = inference;
        transfer_and_freeze(jigsaw.trunk(), &mut fresh, 3, 3).unwrap();
        fresh
    };
    // Brief fine-tune after the transfer so the classifier adapts to
    // the (now frozen) shared trunk.
    let cfg = TrainConfig { epochs: 2, batch_size: 8, lr: 0.01, ..Default::default() };
    insitu_nn::train(
        &mut inference,
        LabeledBatch::new(train.images(), train.labels()).unwrap(),
        None,
        &cfg,
        &mut rng,
    )
    .unwrap();
    let set = PermutationSet::generate(8, &mut rng).unwrap();
    let node = InsituNode::new(
        inference,
        jigsaw,
        set,
        DiagnosisPolicy::JigsawProbe { probes: 3 },
        3,
        77,
    )
    .unwrap();
    (node, calib, eval)
}

#[test]
fn quantized_accuracy_within_two_points_of_f32() {
    let (mut node, calib, eval) = trained_node();
    let acc_f32 = node.accuracy_on(&eval, 8).unwrap();
    assert!(acc_f32 > 1.5 / CLASSES as f32, "f32 model failed to train: {acc_f32}");

    node.enable_quantized(&calib).unwrap();
    assert_eq!(node.precision(), InferencePrecision::I8);
    node.prewarm(8).unwrap();
    let acc_i8 = node.accuracy_on(&eval, 8).unwrap();
    let delta = acc_i8 - acc_f32;
    assert!(
        delta.abs() <= 0.02 + f32::EPSILON,
        "i8 accuracy {acc_i8} drifted {delta} from f32 {acc_f32} (gate: 2 points)"
    );

    // The quantized stage runs end to end and keeps its accounting.
    let outcome = node.process_stage(&eval, 8).unwrap();
    assert_eq!(outcome.predictions.len(), eval.len());
    assert_eq!(outcome.verdicts.len(), eval.len());

    // Dropping back to f32 restores the exact reference accuracy.
    node.set_precision(InferencePrecision::F32).unwrap();
    let back = node.accuracy_on(&eval, 8).unwrap();
    assert_eq!(back.to_bits(), acc_f32.to_bits());
}

#[test]
fn quantized_predictions_mostly_agree_with_f32() {
    let (mut node, calib, eval) = trained_node();
    let f32_stage = node.process_stage(&eval, 8).unwrap();
    node.enable_quantized(&calib).unwrap();
    let i8_stage = node.process_stage(&eval, 8).unwrap();
    let agree = f32_stage
        .predictions
        .iter()
        .zip(&i8_stage.predictions)
        .filter(|(a, b)| a == b)
        .count();
    // Same 2-point budget, expressed on raw predictions: at most 2 of
    // the 100 held-out argmaxes may flip under quantization.
    assert!(
        agree >= EVAL - 2,
        "only {agree}/{EVAL} predictions survived quantization"
    );
}
