//! A threaded deployment runtime: the node, the Cloud — and, for
//! ingested sessions, a stream producer — as concurrent actors
//! exchanging messages over channels.
//!
//! The batch-oriented APIs ([`InsituNode::process_stage`],
//! [`CloudEndpoint::incremental_update`]) are what the experiments
//! drive; this module wires them into a live system the way a real
//! deployment would run — the node consuming a sensor stream on its
//! own thread, shipping valuable data upstream, and hot-swapping model
//! updates as they arrive. [`run_streaming_session`] feeds the node
//! from a pre-materialized `Vec<Dataset>`; [`run_ingested_session`]
//! overlaps ingestion with compute instead, running a
//! [`StreamSource`] producer thread behind a bounded
//! [`insitu_data::IngestQueue`] so the node computes stage *N* while
//! the producer materializes stage *N+1* (stage wall-clock ≈
//! max(compute, ingest) instead of their sum).
//!
//! Because updates install *opportunistically* (the node drains the
//! downlink with `try_recv` between batches), which batch first sees
//! update `k` depends on the wall-clock race between Cloud training
//! and node inference. A session's trajectory is therefore stable
//! across reruns of one build but **not** byte-stable across hosts,
//! thread counts or kernel selections — unlike the tensor layer, whose
//! results are bitwise identical under all of those knobs. For
//! differential testing, [`SessionConfig::lockstep_uploads`] removes
//! the race: the node blocks for each update right after uploading,
//! which makes a whole session trajectory deterministic — the
//! overlapped pipeline under the lossless `Block` policy then produces
//! a [`SessionStats`] and final model bitwise identical to the
//! sequential loop's.

use crate::error::CoreError;
use crate::hub::MetricsHub;
use crate::node::{InferencePrecision, InsituNode};
use crate::planner::precision_label;
use crate::recorder;
use crate::update::CloudEndpoint;
use crate::Result;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use insitu_data::{
    Dataset, Frame, IngestConfig, IngestPipeline, QueueFullPolicy, ReplaySource, StreamSource,
};
use insitu_telemetry as telemetry;
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// A message from the node to the Cloud uplink.
#[derive(Debug)]
enum Uplink {
    /// Valuable data for incremental training.
    Valuable(Dataset),
    /// End of stream.
    Shutdown,
}

/// Tuning knobs of a streaming session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionConfig {
    /// Inference batch size while the node is unplanned (a re-planning
    /// node's active plan takes precedence mid-session).
    pub batch_size: usize,
    /// Capacity of the bounded node→Cloud uplink channel, in pending
    /// uploads (clamped to at least 1). The bound is what applies
    /// backpressure to a node that uploads faster than the Cloud
    /// trains.
    ///
    /// The Cloud→node **downlink has no such knob by design**: it must
    /// stay unbounded, because a bounded downlink filling up would
    /// block the Cloud while the node is blocked on this full uplink —
    /// a circular wait. Updates are small snapshots and the node
    /// drains them between batches, so the unbounded side stays flat
    /// (this is the no-circular-wait invariant; the ingest pipeline's
    /// recycle channel follows the same rule).
    pub uplink_capacity: usize,
    /// Deterministic update installs for differential testing: after
    /// each upload the node blocks until the Cloud's update arrives
    /// and installs it immediately, instead of draining the downlink
    /// opportunistically. This removes the wall-clock race from the
    /// session trajectory — at the cost of serializing node and Cloud,
    /// so leave it off in production-shaped runs.
    pub lockstep_uploads: bool,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig { batch_size: 8, uplink_capacity: 4, lockstep_uploads: false }
    }
}

impl SessionConfig {
    /// The default config at a given batch size.
    pub fn with_batch(batch_size: usize) -> SessionConfig {
        SessionConfig { batch_size, ..SessionConfig::default() }
    }
}

/// What an ingested session's consumer does when the producer runs
/// ahead of it (the queue backs up).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum IngestPolicy {
    /// Stall the producer at the queue bound; the node sees every
    /// frame. Lossless — the differential-testing mode, bitwise
    /// comparable to the sequential loop.
    #[default]
    Block,
    /// Evict the oldest queued frame and keep producing; the node
    /// always sees the freshest frames. Lossy — the real-time sensor
    /// semantics. Drops are counted and recorded.
    DropOldest,
    /// Keep every frame (the producer blocks like `Block`) but shed
    /// load on the node instead: under queue pressure the consumer
    /// halves its batch size down to a floor, then — if allowed and
    /// calibrated — flips inference to i8; steps are undone one at a
    /// time once the queue drains.
    Degrade(DegradeConfig),
}

/// Tuning of [`IngestPolicy::Degrade`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Queue depth (observed after popping a frame) at or above which
    /// one degrade step is taken (clamped to at least 1).
    pub high_watermark: usize,
    /// Queue depth at or below which one degrade step is undone.
    pub low_watermark: usize,
    /// Floor for batch shrinking (clamped to at least 1). Once the
    /// batch cannot halve further, the next step is the precision
    /// flip.
    pub min_batch: usize,
    /// Allow the final degrade step to flip inference F32→I8 (requires
    /// a calibrated quantized network; restored on drain).
    pub allow_precision_flip: bool,
}

impl Default for DegradeConfig {
    fn default() -> DegradeConfig {
        DegradeConfig {
            high_watermark: 3,
            low_watermark: 0,
            min_batch: 1,
            allow_precision_flip: false,
        }
    }
}

/// Tuning knobs of an overlapped (producer-driven) session.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestSessionConfig {
    /// The session knobs shared with the vec-driven path.
    pub session: SessionConfig,
    /// Frame capacity of the bounded ingest queue (clamped to at
    /// least 1). Deeper queues absorb burstier producers at the cost
    /// of staleness under pressure.
    pub queue_capacity: usize,
    /// Backpressure policy when the node falls behind the producer.
    pub policy: IngestPolicy,
}

/// Statistics of one completed streaming session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Batches the node processed.
    pub batches: u64,
    /// Images the node examined.
    pub images_seen: u64,
    /// Images uploaded to the Cloud.
    pub images_uploaded: u64,
    /// Model updates installed on the node.
    pub updates_installed: u64,
    /// Times the node re-planned itself mid-session (see
    /// [`InsituNode::enable_replan`]).
    pub replans: u64,
    /// Telemetry captured over the session — empty unless tracing was
    /// enabled (see [`insitu_telemetry::set_enabled`]).
    pub telemetry: telemetry::TelemetrySnapshot,
    /// Export-ready metric series folded from the session's telemetry
    /// (Prometheus text via [`MetricsHub::to_prometheus`], JSON via
    /// [`MetricsHub::to_json`]); empty unless tracing was enabled.
    pub metrics: MetricsHub,
}

/// What the ingestion pipeline of a [`run_ingested_session`] did.
///
/// Kept separate from [`SessionStats`] so the stats of an overlapped
/// session stay field-for-field comparable (bitwise, under the `Block`
/// policy with lockstep uploads) to a sequential session's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSummary {
    /// Frames the producer materialized (including dropped ones).
    pub frames: u64,
    /// Frames evicted under [`IngestPolicy::DropOldest`].
    pub drops: u64,
    /// Degrade steps taken (batch halvings) under
    /// [`IngestPolicy::Degrade`].
    pub degrades: u64,
    /// Degrade steps undone after the queue drained.
    pub restores: u64,
    /// Live F32↔I8 precision flips, from the degrade controller and
    /// from depth-triggered re-plans combined.
    pub precision_flips: u64,
    /// High-water mark of the ingest queue depth.
    pub max_queue_depth: u64,
    /// Arena buffers the producer minted fresh (the
    /// zero-steady-state-allocation gate: bounded by
    /// `queue_capacity + 2`, never the stream length).
    pub fresh_buffers: u64,
    /// Arena acquisitions served by recycled buffers.
    pub reused_buffers: u64,
    /// Total producer wall-clock spent materializing frames, ns.
    pub produce_ns_total: u64,
}

/// Where the session's frames come from.
enum Feed {
    /// The legacy vec-driven path: stages owned up front.
    Replay(std::vec::IntoIter<Dataset>),
    /// The overlapped path: a producer thread behind a bounded queue.
    Ingested { pipeline: IngestPipeline, policy: IngestPolicy },
}

/// Runs a live session: feeds every dataset from `stream` through the
/// node on a worker thread while a Cloud thread consumes the uploads
/// and pushes back model updates, which the node installs between
/// batches. Returns the final node together with session statistics.
///
/// Equivalent to [`run_streaming_session_with`] under
/// [`SessionConfig::with_batch`]`(batch_size)`.
///
/// # Errors
///
/// See [`run_streaming_session_with`].
pub fn run_streaming_session<C>(
    node: InsituNode,
    cloud: Arc<Mutex<C>>,
    stream: Vec<Dataset>,
    batch_size: usize,
) -> Result<(InsituNode, SessionStats)>
where
    C: CloudEndpoint + Send + 'static,
{
    run_streaming_session_with(node, cloud, stream, &SessionConfig::with_batch(batch_size))
}

/// [`run_streaming_session`] with explicit [`SessionConfig`] knobs.
///
/// The Cloud is shared behind a mutex so callers keep ownership of
/// whatever state their [`CloudEndpoint`] carries.
///
/// The Cloud thread is joined on **every** exit path — errors and node
/// panics included — so no actor thread outlives the call. A panicking
/// Cloud actor surfaces as [`CoreError::ActorPanicked`] (carrying the
/// panic message); a node panic is re-raised here after the Cloud
/// thread has shut down.
///
/// # Errors
///
/// Returns the first error raised by either actor; when both fail, the
/// Cloud's failure wins (a node-side "cloud hung up" error is usually
/// its symptom).
pub fn run_streaming_session_with<C>(
    node: InsituNode,
    cloud: Arc<Mutex<C>>,
    stream: Vec<Dataset>,
    config: &SessionConfig,
) -> Result<(InsituNode, SessionStats)>
where
    C: CloudEndpoint + Send + 'static,
{
    let start_detail = format!("{} stages @bs{}", stream.len(), config.batch_size);
    let (node, stats, _summary) = run_session(
        node,
        cloud,
        Feed::Replay(stream.into_iter()),
        config,
        start_detail,
    )?;
    Ok((node, stats))
}

/// Runs an **overlapped** live session: a producer thread materializes
/// frames from `source` into a bounded ingest queue while the node
/// computes, so stage wall-clock approaches max(compute, ingest)
/// instead of their sum. The configured [`IngestPolicy`] governs what
/// happens when the node falls behind; queue depth, producer latency
/// and drop/degrade/flip counts land in telemetry (`node.ingest.*`)
/// and the flight recorder, and the pipeline's bookkeeping comes back
/// as an [`IngestSummary`] next to the ordinary [`SessionStats`].
///
/// Frame storage is recycled through the producer's arena: in steady
/// state ingestion allocates nothing (see
/// [`insitu_data::ProducerReport::fresh_buffers`]).
///
/// Under `IngestPolicy::Block` with
/// [`SessionConfig::lockstep_uploads`], the session is a bitwise
/// drop-in for [`run_streaming_session_with`] over the materialized
/// stream: identical [`SessionStats`] and final model state.
///
/// # Errors
///
/// As [`run_streaming_session_with`], plus any error the stream source
/// raises on the producer thread.
pub fn run_ingested_session<C>(
    node: InsituNode,
    cloud: Arc<Mutex<C>>,
    source: Box<dyn StreamSource>,
    config: &IngestSessionConfig,
) -> Result<(InsituNode, SessionStats, IngestSummary)>
where
    C: CloudEndpoint + Send + 'static,
{
    let queue_policy = match config.policy {
        IngestPolicy::DropOldest => QueueFullPolicy::DropOldest,
        // Degrade sheds load on the consumer side; the producer still
        // keeps every frame.
        IngestPolicy::Block | IngestPolicy::Degrade(_) => QueueFullPolicy::Block,
    };
    let start_detail = format!(
        "{} frames @bs{} cap{} {:?}",
        config
            .policy
            .frames_hint_label(source.frames_hint()),
        config.session.batch_size,
        config.queue_capacity.max(1),
        queue_policy,
    );
    let pipeline = IngestPipeline::spawn(
        source,
        IngestConfig { capacity: config.queue_capacity.max(1), policy: queue_policy },
    );
    run_session(
        node,
        cloud,
        Feed::Ingested { pipeline, policy: config.policy.clone() },
        &config.session,
        start_detail,
    )
}

impl IngestPolicy {
    /// Human label for the session-start flight event.
    fn frames_hint_label(&self, hint: Option<usize>) -> String {
        hint.map_or_else(|| "?".to_string(), |n| n.to_string())
    }
}

/// The shared session core behind both public entry points.
fn run_session<C>(
    node: InsituNode,
    cloud: Arc<Mutex<C>>,
    feed: Feed,
    config: &SessionConfig,
    start_detail: String,
) -> Result<(InsituNode, SessionStats, IngestSummary)>
where
    C: CloudEndpoint + Send + 'static,
{
    // Resolve the kernel thread count (INSITU_THREADS / core count) up
    // front, on the session thread: all actors' tensor work — node
    // inference, Cloud incremental training, producer synthesis — then
    // shares one already-configured worker pool instead of racing to
    // create it under the first batch.
    let _kernel_threads = insitu_tensor::num_threads();
    // Start a fresh telemetry window: back-to-back sessions in one
    // process must not merge each other's counters and histograms
    // (nothing to isolate while tracing is off, and resetting here
    // would race tests that record around a disabled session).
    if telemetry::enabled() {
        telemetry::advance_epoch();
    }
    let batch_size = config.batch_size;
    recorder::record(
        "mode_decision",
        node.plan().map_or_else(
            || {
                format!(
                    "unplanned: bs={batch_size} {} v{}",
                    precision_label(node.precision()),
                    node.version()
                )
            },
            |p| p.summary(),
        ),
    );
    recorder::record("session_start", start_detail.clone());
    let session_span = telemetry::span_with("runtime.session", move || start_detail);
    let (up_tx, up_rx): (Sender<Uplink>, Receiver<Uplink>) =
        bounded(config.uplink_capacity.max(1));
    // The downlink must never apply backpressure — see the
    // [`SessionConfig::uplink_capacity`] rustdoc for the
    // no-circular-wait invariant.
    let (down_tx, down_rx) = unbounded::<crate::update::ModelUpdate>();
    // Uploads sent but not yet consumed by the Cloud; the node samples
    // it at each send as the uplink queue-depth telemetry.
    let in_flight = Arc::new(AtomicU64::new(0));

    // Cloud actor: train on whatever arrives, ship updates back.
    let cloud_thread = {
        let in_flight = Arc::clone(&in_flight);
        thread::spawn(move || -> Result<u64> {
            let mut served = 0u64;
            while let Ok(msg) = up_rx.recv() {
                match msg {
                    Uplink::Shutdown => break,
                    Uplink::Valuable(data) => {
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                        let update = cloud.lock().incremental_update(&data)?;
                        served += 1;
                        // The node may have exited; a closed channel is fine.
                        if down_tx.send(update).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(served)
        })
    };

    // Node actor (this thread): process the stream, install updates
    // opportunistically between batches (or in lockstep after each
    // upload). The loop runs under `catch_unwind` so that even a panic
    // still shuts the Cloud actor down and joins it before
    // propagating; an in-scope `Feed::Ingested` pipeline is likewise
    // dropped by the unwind, which joins the producer thread.
    let flips_before = node.precision_flips();
    let mut stats = SessionStats::default();
    let lockstep = config.lockstep_uploads;
    let node_run = catch_unwind(AssertUnwindSafe(|| {
        let mut node = node;
        let mut feed = feed;
        let mut summary = IngestSummary::default();
        // Size every conv workspace and GEMM packing arena before the
        // stream starts: real batches then run the zero-allocation
        // kernel path from the first image.
        if let Err(e) = node.prewarm(batch_size) {
            return (node, Some(e), summary);
        }
        let install = |node: &mut InsituNode,
                           stats: &mut SessionStats,
                           update: &crate::update::ModelUpdate|
         -> Result<()> {
            node.install_update(update)?;
            telemetry::instant_with("runtime.model_swap", || format!("v{}", update.version));
            recorder::record("model_swap", format!("v{}", update.version));
            stats.updates_installed += 1;
            Ok(())
        };
        // Degrade controller state: the current shed batch (None while
        // undegraded) and whether the controller flipped precision.
        let mut degraded_batch: Option<usize> = None;
        let mut degrade_flipped = false;
        let mut drops_seen = 0u64;
        loop {
            // Fetch the next frame. On the ingested path this blocks
            // only while the producer is still materializing it — the
            // overlap window — and the observed wait and queue depth
            // feed the ingest telemetry and the re-plan loop.
            let (frame, depth) = match &mut feed {
                Feed::Replay(iter) => match iter.next() {
                    Some(data) => {
                        (Frame { seq: stats.batches, data, produce_ns: 0 }, None)
                    }
                    None => break,
                },
                Feed::Ingested { pipeline, .. } => {
                    let wait_start = telemetry::enabled().then(std::time::Instant::now);
                    match pipeline.next_frame() {
                        Some(f) => {
                            if let Some(t0) = wait_start {
                                let ns = u64::try_from(t0.elapsed().as_nanos())
                                    .unwrap_or(u64::MAX);
                                telemetry::hist_record("node.ingest.wait", "", ns);
                            }
                            let depth = pipeline.depth() as u64;
                            (f, Some(depth))
                        }
                        None => break,
                    }
                }
            };
            if let Some(depth) = depth {
                summary.max_queue_depth = summary.max_queue_depth.max(depth);
                node.note_ingest_depth(depth);
                telemetry::hist_record("node.ingest.queue_depth", "", depth);
                telemetry::hist_record("node.ingest.produce", "", frame.produce_ns);
                telemetry::counter_add("node.ingest.frames", "", 1);
                if let Feed::Ingested { pipeline, policy } = &feed {
                    let dropped = pipeline.dropped();
                    if dropped > drops_seen {
                        telemetry::counter_add("node.ingest.drops", "", dropped - drops_seen);
                        recorder::record(
                            "ingest_drop",
                            format!("{} frame(s) dropped, {dropped} total", dropped - drops_seen),
                        );
                        drops_seen = dropped;
                    }
                    if let IngestPolicy::Degrade(dc) = policy {
                        let base = node.active_batch().unwrap_or(batch_size).max(1);
                        if depth as usize >= dc.high_watermark.max(1) {
                            // One degrade step per frame: halve the
                            // batch to the floor, then flip precision.
                            let current = degraded_batch.unwrap_or(base);
                            let next = (current / 2).max(dc.min_batch.max(1));
                            if next < current {
                                degraded_batch = Some(next);
                                summary.degrades += 1;
                                telemetry::counter_add("node.ingest.degrades", "", 1);
                                recorder::record(
                                    "degrade",
                                    format!("queue depth {depth}: batch {current} -> {next}"),
                                );
                            } else if dc.allow_precision_flip
                                && !degrade_flipped
                                && node.quantized().is_some()
                                && node.precision() == InferencePrecision::F32
                                && node.set_precision(InferencePrecision::I8).is_ok()
                            {
                                degrade_flipped = true;
                                summary.precision_flips += 1;
                                telemetry::counter_add("node.ingest.flips", "", 1);
                                recorder::record(
                                    "precision_flip",
                                    format!("queue depth {depth}: f32 -> i8 (degrade)"),
                                );
                            }
                        } else if depth as usize <= dc.low_watermark {
                            // Undo one step, most recent first.
                            if degrade_flipped {
                                if node.set_precision(InferencePrecision::F32).is_ok() {
                                    degrade_flipped = false;
                                    summary.precision_flips += 1;
                                    summary.restores += 1;
                                    telemetry::counter_add("node.ingest.flips", "", 1);
                                    recorder::record(
                                        "precision_flip",
                                        format!("queue depth {depth}: i8 -> f32 (restore)"),
                                    );
                                }
                            } else if let Some(shed) = degraded_batch {
                                let next = (shed * 2).min(base);
                                summary.restores += 1;
                                recorder::record(
                                    "restore",
                                    format!("queue depth {depth}: batch {shed} -> {next}"),
                                );
                                degraded_batch = if next >= base { None } else { Some(next) };
                            }
                        }
                    }
                }
            }
            // Install any updates that arrived while we were busy.
            while let Ok(update) = down_rx.try_recv() {
                if let Err(e) = install(&mut node, &mut stats, &update) {
                    return (node, Some(e), summary);
                }
            }
            // A re-planning node can change its own batch size mid
            // session; honor the degrade controller first, then the
            // active plan, then the caller's value.
            let bs = degraded_batch.unwrap_or_else(|| node.active_batch().unwrap_or(batch_size));
            let outcome = match node.process_stage(&frame.data, bs) {
                Ok(o) => o,
                Err(e) => return (node, Some(e), summary),
            };
            stats.batches += 1;
            stats.images_seen += frame.data.len() as u64;
            stats.images_uploaded += outcome.valuable.len() as u64;
            // Periodically fold the telemetry window into the export
            // hub so a long session's stats stay fresh even if it is
            // later killed.
            if telemetry::enabled() && stats.batches % 4 == 0 {
                stats.metrics.fold(&telemetry::snapshot());
            }
            if !outcome.valuable.is_empty() {
                let payload = match node.upload_payload(&frame.data, &outcome) {
                    Ok(p) => p,
                    Err(e) => return (node, Some(e), summary),
                };
                let in_flight_depth = in_flight.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("runtime.uplink_depth", "", in_flight_depth);
                recorder::record(
                    "uplink",
                    format!("{} images, {} in flight", payload.len(), in_flight_depth + 1),
                );
                if up_tx.send(Uplink::Valuable(payload)).is_err() {
                    let e = CoreError::BadConfig { reason: "cloud thread hung up early".into() };
                    return (node, Some(e), summary);
                }
                if lockstep {
                    // Deterministic trajectory: wait for this upload's
                    // update and install it before the next stage.
                    match down_rx.recv() {
                        Ok(update) => {
                            if let Err(e) = install(&mut node, &mut stats, &update) {
                                return (node, Some(e), summary);
                            }
                        }
                        Err(_) => {
                            let e = CoreError::BadConfig {
                                reason: "cloud thread hung up early".into(),
                            };
                            return (node, Some(e), summary);
                        }
                    }
                }
            }
            // Hand the frame's storage back to the producer arena.
            if let Feed::Ingested { pipeline, .. } = &feed {
                pipeline.recycle(frame);
            }
        }
        // End of stream: harvest the producer's report.
        if let Feed::Ingested { pipeline, .. } = feed {
            match pipeline.finish() {
                Ok(report) => {
                    summary.frames = report.frames;
                    summary.drops = report.dropped;
                    summary.fresh_buffers = report.fresh_buffers;
                    summary.reused_buffers = report.reused_buffers;
                    summary.produce_ns_total = report.produce_ns_total;
                    summary.max_queue_depth =
                        summary.max_queue_depth.max(report.max_queue_depth);
                }
                Err(e) => return (node, Some(e.into()), summary),
            }
        }
        (node, None, summary)
    }));

    // Single shutdown path: whatever happened above, stop the Cloud
    // actor and join its thread before reporting anything.
    let _ = up_tx.send(Uplink::Shutdown);
    let cloud_error = match cloud_thread.join() {
        Ok(Ok(_served)) => None,
        Ok(Err(e)) => Some(e),
        Err(payload) => {
            Some(CoreError::ActorPanicked { actor: "cloud", message: panic_message(&*payload) })
        }
    };
    let (mut node, node_error, mut summary) = match node_run {
        Ok(triple) => triple,
        // The Cloud thread is already joined; let the caller see the
        // original node panic (after leaving a post-mortem).
        Err(payload) => {
            recorder::dump(&format!("node panicked: {}", panic_message(&*payload)));
            resume_unwind(payload);
        }
    };
    // The Cloud's failure wins: a node-side send error is usually just
    // the symptom of the Cloud dying first. Every error exit leaves a
    // flight-recorder post-mortem before surfacing.
    if let Some(e) = cloud_error {
        recorder::dump(&e.to_string());
        return Err(e);
    }
    if let Some(e) = node_error {
        recorder::dump(&e.to_string());
        return Err(e);
    }
    // Drain the final updates so the returned node is as fresh as
    // possible.
    while let Ok(update) = down_rx.try_recv() {
        if let Err(e) = node.install_update(&update) {
            recorder::dump(&e.to_string());
            return Err(e);
        }
        telemetry::instant_with("runtime.model_swap", || format!("v{}", update.version));
        recorder::record("model_swap", format!("v{}", update.version));
        stats.updates_installed += 1;
    }
    drop(session_span);
    stats.replans = node.replans();
    summary.precision_flips += node.precision_flips() - flips_before;
    stats.telemetry = telemetry::snapshot();
    stats.metrics.fold(&stats.telemetry);
    Ok((node, stats, summary))
}

/// Convenience: replays a shared, pre-materialized stream through the
/// overlapped pipeline (the producer copies stages into recycled arena
/// buffers via borrowed views — no per-frame image cloning).
///
/// # Errors
///
/// See [`run_ingested_session`].
pub fn run_replayed_session<C>(
    node: InsituNode,
    cloud: Arc<Mutex<C>>,
    stream: Arc<Vec<Dataset>>,
    config: &IngestSessionConfig,
) -> Result<(InsituNode, SessionStats, IngestSummary)>
where
    C: CloudEndpoint + Send + 'static,
{
    run_ingested_session(node, cloud, Box::new(ReplaySource::new(stream)), config)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::DiagnosisPolicy;
    use crate::update::ModelUpdate;
    use insitu_data::{Condition, PermutationSet};
    use insitu_nn::models::{jigsaw_network, mini_alexnet};
    use insitu_nn::serialize::state_dict;
    use insitu_nn::transfer::transfer_and_freeze;
    use insitu_tensor::Rng;

    /// Finds this test's flight-recorder post-mortem (the dump store
    /// is process-global and tests run concurrently, so scan for the
    /// matching reason), parses it, and asserts the coarse history a
    /// post-mortem must carry: the session's mode decision and at
    /// least one processed stage.
    fn assert_post_mortem(reason_fragment: &str) {
        let dumps = recorder::last_dumps();
        let dump = dumps
            .iter()
            .rev()
            .find(|d| d.contains(reason_fragment))
            .unwrap_or_else(|| panic!("no flight dump mentioning {reason_fragment:?}"));
        let v = telemetry::json::parse(dump).expect("post-mortem must be valid JSON");
        let reason = v.get("reason").and_then(|r| r.as_str()).expect("reason field");
        assert!(reason.contains(reason_fragment), "{reason}");
        let events = v.get("events").and_then(|e| e.as_array()).expect("events array");
        let kinds: Vec<&str> =
            events.iter().filter_map(|e| e.get("kind").and_then(|k| k.as_str())).collect();
        assert!(kinds.contains(&"mode_decision"), "no mode decision in {kinds:?}");
        assert!(kinds.contains(&"stage"), "no stage event in {kinds:?}");
    }

    /// A trivially fast Cloud double: echoes back the same weights.
    #[derive(Debug)]
    struct EchoCloud {
        params: Vec<insitu_tensor::Tensor>,
        version: u32,
    }

    impl CloudEndpoint for EchoCloud {
        fn incremental_update(&mut self, uploaded: &Dataset) -> Result<ModelUpdate> {
            let _ = uploaded;
            self.version += 1;
            Ok(ModelUpdate {
                version: self.version,
                inference_params: self.params.clone(),
                jigsaw_params: None,
                training_ops: 1,
                eval_accuracy: None,
            })
        }
    }

    fn make_node(seed: u64) -> InsituNode {
        let mut rng = Rng::seed_from(seed);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let mut inference = mini_alexnet(4, &mut rng).unwrap();
        transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, seed).unwrap()
    }

    #[test]
    fn streaming_session_processes_and_updates() {
        let mut node = make_node(5);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(9);
        let stream: Vec<Dataset> = (0..3)
            .map(|_| Dataset::generate(20, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let (node, stats) = run_streaming_session(node, cloud, stream, 8).unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.images_seen, 60);
        assert!(stats.images_uploaded > 0); // untrained model errs plenty
        assert!(stats.updates_installed >= 1);
        assert!(node.version() >= 1);
    }

    #[test]
    fn long_streams_do_not_deadlock() {
        // Regression test: with a bounded downlink, a stream longer
        // than the channel capacity deadlocked (node blocked on the
        // uplink, Cloud blocked on the downlink).
        let mut node = make_node(8);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(10);
        let stream: Vec<Dataset> = (0..12)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let (_, stats) = run_streaming_session(node, cloud, stream, 8).unwrap();
        assert_eq!(stats.batches, 12);
    }

    #[test]
    fn uplink_capacity_is_configurable() {
        // The tightest legal uplink (capacity 1, and 0 clamps to 1)
        // must still complete a stream that uploads on most stages.
        let mut node = make_node(8);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(10);
        let stream: Vec<Dataset> = (0..6)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let config =
            SessionConfig { batch_size: 8, uplink_capacity: 0, lockstep_uploads: false };
        assert_eq!(SessionConfig::default().uplink_capacity, 4);
        let (_, stats) = run_streaming_session_with(node, cloud, stream, &config).unwrap();
        assert_eq!(stats.batches, 6);
        assert!(stats.updates_installed >= 1);
    }

    /// A Cloud double that panics on the first upload (injected fault).
    #[derive(Debug)]
    struct PanickingCloud;

    impl CloudEndpoint for PanickingCloud {
        fn incremental_update(&mut self, _uploaded: &Dataset) -> Result<ModelUpdate> {
            panic!("injected cloud panic");
        }
    }

    #[test]
    fn cloud_panic_surfaces_as_error() {
        // Regression test: a panicking Cloud actor must be joined and
        // reported, not leave the session hanging or return a generic
        // "hung up" error with the cause swallowed.
        let node = make_node(11);
        let cloud = Arc::new(Mutex::new(PanickingCloud));
        let mut rng = Rng::seed_from(12);
        let stream: Vec<Dataset> = (0..6)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        match run_streaming_session(node, cloud, stream, 8) {
            Err(CoreError::ActorPanicked { actor, message }) => {
                assert_eq!(actor, "cloud");
                assert!(message.contains("injected cloud panic"), "{message}");
            }
            other => panic!("expected ActorPanicked, got {other:?}"),
        }
        assert_post_mortem("injected cloud panic");
    }

    /// A Cloud double that fails with a plain error on every upload.
    #[derive(Debug)]
    struct FailingCloud;

    impl CloudEndpoint for FailingCloud {
        fn incremental_update(&mut self, _uploaded: &Dataset) -> Result<ModelUpdate> {
            Err(CoreError::BadConfig { reason: "cloud says no".into() })
        }
    }

    #[test]
    fn cloud_error_wins_over_node_send_failure() {
        // When the Cloud dies first, the node's subsequent "hung up"
        // send failure is a symptom; the session must report the cause.
        let node = make_node(13);
        let cloud = Arc::new(Mutex::new(FailingCloud));
        let mut rng = Rng::seed_from(14);
        let stream: Vec<Dataset> = (0..8)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        match run_streaming_session(node, cloud, stream, 8) {
            Err(CoreError::BadConfig { reason }) => {
                assert!(reason.contains("cloud says no"), "{reason}");
            }
            other => panic!("expected the cloud's error, got {other:?}"),
        }
        assert_post_mortem("cloud says no");
    }

    #[test]
    fn cloud_error_surfaces_from_an_ingested_session_too() {
        // The overlapped path has a third actor; a Cloud failure must
        // still win, and the producer thread must be joined (the test
        // would hang otherwise).
        let node = make_node(13);
        let cloud = Arc::new(Mutex::new(FailingCloud));
        let mut rng = Rng::seed_from(14);
        let stream: Vec<Dataset> = (0..8)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let config = IngestSessionConfig {
            session: SessionConfig::with_batch(8),
            queue_capacity: 2,
            policy: IngestPolicy::Block,
        };
        match run_replayed_session(node, cloud, Arc::new(stream), &config) {
            Err(CoreError::BadConfig { reason }) => {
                assert!(reason.contains("cloud says no"), "{reason}");
            }
            other => panic!("expected the cloud's error, got {other:?}"),
        }
    }

    /// A Cloud double that ships back updates no node can install.
    #[derive(Debug)]
    struct BadUpdateCloud {
        version: u32,
    }

    impl CloudEndpoint for BadUpdateCloud {
        fn incremental_update(&mut self, _uploaded: &Dataset) -> Result<ModelUpdate> {
            self.version += 1;
            Ok(ModelUpdate {
                version: self.version,
                inference_params: vec![], // wrong arity: install must fail
                jigsaw_params: None,
                training_ops: 0,
                eval_accuracy: None,
            })
        }
    }

    #[test]
    fn bad_update_surfaces_node_error_and_joins_cloud() {
        // A node-side install failure must still shut the Cloud actor
        // down (no leaked thread) and report the node's error.
        let node = make_node(15);
        let cloud = Arc::new(Mutex::new(BadUpdateCloud { version: 0 }));
        let mut rng = Rng::seed_from(16);
        let stream: Vec<Dataset> = (0..8)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        match run_streaming_session(node, cloud, stream, 8) {
            Err(CoreError::Nn(_)) => {}
            other => panic!("expected the node's install error, got {other:?}"),
        }
        assert_post_mortem("network error");
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let node = make_node(6);
        let params = {
            let mut n = make_node(6);
            state_dict(n.inference_mut())
        };
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let (node, stats) = run_streaming_session(node, cloud, vec![], 8).unwrap();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.images_seen, 0);
        assert_eq!(node.version(), 0);
    }

    #[test]
    fn empty_ingested_stream_is_a_noop() {
        let node = make_node(6);
        let params = {
            let mut n = make_node(6);
            state_dict(n.inference_mut())
        };
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let (node, stats, summary) =
            run_replayed_session(node, cloud, Arc::new(vec![]), &IngestSessionConfig::default())
                .unwrap();
        assert_eq!(stats.batches, 0);
        assert_eq!(summary.frames, 0);
        assert_eq!(node.version(), 0);
    }
}
