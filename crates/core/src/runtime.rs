//! A threaded deployment runtime: the node and the Cloud as
//! concurrent actors exchanging messages over channels.
//!
//! The batch-oriented APIs ([`InsituNode::process_stage`],
//! [`CloudEndpoint::incremental_update`]) are what the experiments
//! drive; this module wires them into a live system the way a real
//! deployment would run — the node consuming a sensor stream on its
//! own thread, shipping valuable data upstream, and hot-swapping model
//! updates as they arrive.
//!
//! Because updates install *opportunistically* (the node drains the
//! downlink with `try_recv` between batches), which batch first sees
//! update `k` depends on the wall-clock race between Cloud training
//! and node inference. A session's trajectory is therefore stable
//! across reruns of one build but **not** byte-stable across hosts,
//! thread counts or kernel selections — unlike the tensor layer, whose
//! results are bitwise identical under all of those knobs. Experiments
//! that compare system variants on identical streams use the
//! sequential batch APIs directly for exactly this reason.

use crate::error::CoreError;
use crate::hub::MetricsHub;
use crate::node::InsituNode;
use crate::planner::precision_label;
use crate::recorder;
use crate::update::CloudEndpoint;
use crate::Result;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use insitu_data::Dataset;
use insitu_telemetry as telemetry;
use parking_lot::Mutex;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// A message from the node to the Cloud uplink.
#[derive(Debug)]
enum Uplink {
    /// Valuable data for incremental training.
    Valuable(Dataset),
    /// End of stream.
    Shutdown,
}

/// Statistics of one completed streaming session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Batches the node processed.
    pub batches: u64,
    /// Images the node examined.
    pub images_seen: u64,
    /// Images uploaded to the Cloud.
    pub images_uploaded: u64,
    /// Model updates installed on the node.
    pub updates_installed: u64,
    /// Times the node re-planned itself mid-session (see
    /// [`InsituNode::enable_replan`]).
    pub replans: u64,
    /// Telemetry captured over the session — empty unless tracing was
    /// enabled (see [`insitu_telemetry::set_enabled`]).
    pub telemetry: telemetry::TelemetrySnapshot,
    /// Export-ready metric series folded from the session's telemetry
    /// (Prometheus text via [`MetricsHub::to_prometheus`], JSON via
    /// [`MetricsHub::to_json`]); empty unless tracing was enabled.
    pub metrics: MetricsHub,
}

/// Runs a live session: feeds every dataset from `stream` through the
/// node on a worker thread while a Cloud thread consumes the uploads
/// and pushes back model updates, which the node installs between
/// batches. Returns the final node together with session statistics.
///
/// The Cloud is shared behind a mutex so callers keep ownership of
/// whatever state their [`CloudEndpoint`] carries.
///
/// The Cloud thread is joined on **every** exit path — errors and node
/// panics included — so no actor thread outlives the call. A panicking
/// Cloud actor surfaces as [`CoreError::ActorPanicked`] (carrying the
/// panic message); a node panic is re-raised here after the Cloud
/// thread has shut down.
///
/// # Errors
///
/// Returns the first error raised by either actor; when both fail, the
/// Cloud's failure wins (a node-side "cloud hung up" error is usually
/// its symptom).
pub fn run_streaming_session<C>(
    node: InsituNode,
    cloud: Arc<Mutex<C>>,
    stream: Vec<Dataset>,
    batch_size: usize,
) -> Result<(InsituNode, SessionStats)>
where
    C: CloudEndpoint + Send + 'static,
{
    // Resolve the kernel thread count (INSITU_THREADS / core count) up
    // front, on the session thread: both actors' tensor work — node
    // inference and Cloud incremental training — then shares one
    // already-configured worker pool instead of racing to create it
    // under the first batch.
    let _kernel_threads = insitu_tensor::num_threads();
    // Start a fresh telemetry window: back-to-back sessions in one
    // process must not merge each other's counters and histograms
    // (nothing to isolate while tracing is off, and resetting here
    // would race tests that record around a disabled session).
    if telemetry::enabled() {
        telemetry::advance_epoch();
    }
    recorder::record(
        "mode_decision",
        node.plan().map_or_else(
            || {
                format!(
                    "unplanned: bs={batch_size} {} v{}",
                    precision_label(node.precision()),
                    node.version()
                )
            },
            |p| p.summary(),
        ),
    );
    recorder::record(
        "session_start",
        format!("{} stages @bs{batch_size}", stream.len()),
    );
    let session_span = telemetry::span_with("runtime.session", || {
        format!("{} stages @bs{batch_size}", stream.len())
    });
    let (up_tx, up_rx): (Sender<Uplink>, Receiver<Uplink>) = bounded(4);
    // The downlink must never apply backpressure: if it were bounded,
    // a full downlink would block the Cloud while the node is blocked
    // on a full uplink — a circular wait. Updates are small snapshots
    // and the node drains them between batches, so unbounded is safe.
    let (down_tx, down_rx) = unbounded::<crate::update::ModelUpdate>();
    // Uploads sent but not yet consumed by the Cloud; the node samples
    // it at each send as the uplink queue-depth telemetry.
    let in_flight = Arc::new(AtomicU64::new(0));

    // Cloud actor: train on whatever arrives, ship updates back.
    let cloud_thread = {
        let in_flight = Arc::clone(&in_flight);
        thread::spawn(move || -> Result<u64> {
            let mut served = 0u64;
            while let Ok(msg) = up_rx.recv() {
                match msg {
                    Uplink::Shutdown => break,
                    Uplink::Valuable(data) => {
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                        let update = cloud.lock().incremental_update(&data)?;
                        served += 1;
                        // The node may have exited; a closed channel is fine.
                        if down_tx.send(update).is_err() {
                            break;
                        }
                    }
                }
            }
            Ok(served)
        })
    };

    // Node actor (this thread): process the stream, install updates
    // opportunistically between batches. The loop runs under
    // `catch_unwind` so that even a panic still shuts the Cloud actor
    // down and joins it before propagating.
    let mut stats = SessionStats::default();
    let node_run = catch_unwind(AssertUnwindSafe(|| {
        let mut node = node;
        // Size every conv workspace and GEMM packing arena before the
        // stream starts: real batches then run the zero-allocation
        // kernel path from the first image.
        if let Err(e) = node.prewarm(batch_size) {
            return (node, Some(e));
        }
        let install = |node: &mut InsituNode,
                           stats: &mut SessionStats,
                           update: &crate::update::ModelUpdate|
         -> Result<()> {
            node.install_update(update)?;
            telemetry::instant_with("runtime.model_swap", || format!("v{}", update.version));
            recorder::record("model_swap", format!("v{}", update.version));
            stats.updates_installed += 1;
            Ok(())
        };
        for data in stream {
            // Install any updates that arrived while we were busy.
            while let Ok(update) = down_rx.try_recv() {
                if let Err(e) = install(&mut node, &mut stats, &update) {
                    return (node, Some(e));
                }
            }
            // A re-planning node can change its own batch size mid
            // session; honor the active plan over the caller's value.
            let bs = node.active_batch().unwrap_or(batch_size);
            let outcome = match node.process_stage(&data, bs) {
                Ok(o) => o,
                Err(e) => return (node, Some(e)),
            };
            stats.batches += 1;
            stats.images_seen += data.len() as u64;
            stats.images_uploaded += outcome.valuable.len() as u64;
            // Periodically fold the telemetry window into the export
            // hub so a long session's stats stay fresh even if it is
            // later killed.
            if telemetry::enabled() && stats.batches % 4 == 0 {
                stats.metrics.fold(&telemetry::snapshot());
            }
            if !outcome.valuable.is_empty() {
                let payload = match node.upload_payload(&data, &outcome) {
                    Ok(p) => p,
                    Err(e) => return (node, Some(e)),
                };
                let depth = in_flight.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("runtime.uplink_depth", "", depth);
                recorder::record(
                    "uplink",
                    format!("{} images, {} in flight", payload.len(), depth + 1),
                );
                if up_tx.send(Uplink::Valuable(payload)).is_err() {
                    let e = CoreError::BadConfig { reason: "cloud thread hung up early".into() };
                    return (node, Some(e));
                }
            }
        }
        (node, None)
    }));

    // Single shutdown path: whatever happened above, stop the Cloud
    // actor and join its thread before reporting anything.
    let _ = up_tx.send(Uplink::Shutdown);
    let cloud_error = match cloud_thread.join() {
        Ok(Ok(_served)) => None,
        Ok(Err(e)) => Some(e),
        Err(payload) => {
            Some(CoreError::ActorPanicked { actor: "cloud", message: panic_message(&*payload) })
        }
    };
    let (mut node, node_error) = match node_run {
        Ok(pair) => pair,
        // The Cloud thread is already joined; let the caller see the
        // original node panic (after leaving a post-mortem).
        Err(payload) => {
            recorder::dump(&format!("node panicked: {}", panic_message(&*payload)));
            resume_unwind(payload);
        }
    };
    // The Cloud's failure wins: a node-side send error is usually just
    // the symptom of the Cloud dying first. Every error exit leaves a
    // flight-recorder post-mortem before surfacing.
    if let Some(e) = cloud_error {
        recorder::dump(&e.to_string());
        return Err(e);
    }
    if let Some(e) = node_error {
        recorder::dump(&e.to_string());
        return Err(e);
    }
    // Drain the final updates so the returned node is as fresh as
    // possible.
    while let Ok(update) = down_rx.try_recv() {
        if let Err(e) = node.install_update(&update) {
            recorder::dump(&e.to_string());
            return Err(e);
        }
        telemetry::instant_with("runtime.model_swap", || format!("v{}", update.version));
        recorder::record("model_swap", format!("v{}", update.version));
        stats.updates_installed += 1;
    }
    drop(session_span);
    stats.replans = node.replans();
    stats.telemetry = telemetry::snapshot();
    stats.metrics.fold(&stats.telemetry);
    Ok((node, stats))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::DiagnosisPolicy;
    use crate::update::ModelUpdate;
    use insitu_data::{Condition, PermutationSet};
    use insitu_nn::models::{jigsaw_network, mini_alexnet};
    use insitu_nn::serialize::state_dict;
    use insitu_nn::transfer::transfer_and_freeze;
    use insitu_tensor::Rng;

    /// Finds this test's flight-recorder post-mortem (the dump store
    /// is process-global and tests run concurrently, so scan for the
    /// matching reason), parses it, and asserts the coarse history a
    /// post-mortem must carry: the session's mode decision and at
    /// least one processed stage.
    fn assert_post_mortem(reason_fragment: &str) {
        let dumps = recorder::last_dumps();
        let dump = dumps
            .iter()
            .rev()
            .find(|d| d.contains(reason_fragment))
            .unwrap_or_else(|| panic!("no flight dump mentioning {reason_fragment:?}"));
        let v = telemetry::json::parse(dump).expect("post-mortem must be valid JSON");
        let reason = v.get("reason").and_then(|r| r.as_str()).expect("reason field");
        assert!(reason.contains(reason_fragment), "{reason}");
        let events = v.get("events").and_then(|e| e.as_array()).expect("events array");
        let kinds: Vec<&str> =
            events.iter().filter_map(|e| e.get("kind").and_then(|k| k.as_str())).collect();
        assert!(kinds.contains(&"mode_decision"), "no mode decision in {kinds:?}");
        assert!(kinds.contains(&"stage"), "no stage event in {kinds:?}");
    }

    /// A trivially fast Cloud double: echoes back the same weights.
    #[derive(Debug)]
    struct EchoCloud {
        params: Vec<insitu_tensor::Tensor>,
        version: u32,
    }

    impl CloudEndpoint for EchoCloud {
        fn incremental_update(&mut self, uploaded: &Dataset) -> Result<ModelUpdate> {
            let _ = uploaded;
            self.version += 1;
            Ok(ModelUpdate {
                version: self.version,
                inference_params: self.params.clone(),
                jigsaw_params: None,
                training_ops: 1,
                eval_accuracy: None,
            })
        }
    }

    fn make_node(seed: u64) -> InsituNode {
        let mut rng = Rng::seed_from(seed);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let mut inference = mini_alexnet(4, &mut rng).unwrap();
        transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, seed).unwrap()
    }

    #[test]
    fn streaming_session_processes_and_updates() {
        let mut node = make_node(5);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(9);
        let stream: Vec<Dataset> = (0..3)
            .map(|_| Dataset::generate(20, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let (node, stats) = run_streaming_session(node, cloud, stream, 8).unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.images_seen, 60);
        assert!(stats.images_uploaded > 0); // untrained model errs plenty
        assert!(stats.updates_installed >= 1);
        assert!(node.version() >= 1);
    }

    #[test]
    fn long_streams_do_not_deadlock() {
        // Regression test: with a bounded downlink, a stream longer
        // than the channel capacity deadlocked (node blocked on the
        // uplink, Cloud blocked on the downlink).
        let mut node = make_node(8);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(10);
        let stream: Vec<Dataset> = (0..12)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let (_, stats) = run_streaming_session(node, cloud, stream, 8).unwrap();
        assert_eq!(stats.batches, 12);
    }

    /// A Cloud double that panics on the first upload (injected fault).
    #[derive(Debug)]
    struct PanickingCloud;

    impl CloudEndpoint for PanickingCloud {
        fn incremental_update(&mut self, _uploaded: &Dataset) -> Result<ModelUpdate> {
            panic!("injected cloud panic");
        }
    }

    #[test]
    fn cloud_panic_surfaces_as_error() {
        // Regression test: a panicking Cloud actor must be joined and
        // reported, not leave the session hanging or return a generic
        // "hung up" error with the cause swallowed.
        let node = make_node(11);
        let cloud = Arc::new(Mutex::new(PanickingCloud));
        let mut rng = Rng::seed_from(12);
        let stream: Vec<Dataset> = (0..6)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        match run_streaming_session(node, cloud, stream, 8) {
            Err(CoreError::ActorPanicked { actor, message }) => {
                assert_eq!(actor, "cloud");
                assert!(message.contains("injected cloud panic"), "{message}");
            }
            other => panic!("expected ActorPanicked, got {other:?}"),
        }
        assert_post_mortem("injected cloud panic");
    }

    /// A Cloud double that fails with a plain error on every upload.
    #[derive(Debug)]
    struct FailingCloud;

    impl CloudEndpoint for FailingCloud {
        fn incremental_update(&mut self, _uploaded: &Dataset) -> Result<ModelUpdate> {
            Err(CoreError::BadConfig { reason: "cloud says no".into() })
        }
    }

    #[test]
    fn cloud_error_wins_over_node_send_failure() {
        // When the Cloud dies first, the node's subsequent "hung up"
        // send failure is a symptom; the session must report the cause.
        let node = make_node(13);
        let cloud = Arc::new(Mutex::new(FailingCloud));
        let mut rng = Rng::seed_from(14);
        let stream: Vec<Dataset> = (0..8)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        match run_streaming_session(node, cloud, stream, 8) {
            Err(CoreError::BadConfig { reason }) => {
                assert!(reason.contains("cloud says no"), "{reason}");
            }
            other => panic!("expected the cloud's error, got {other:?}"),
        }
        assert_post_mortem("cloud says no");
    }

    /// A Cloud double that ships back updates no node can install.
    #[derive(Debug)]
    struct BadUpdateCloud {
        version: u32,
    }

    impl CloudEndpoint for BadUpdateCloud {
        fn incremental_update(&mut self, _uploaded: &Dataset) -> Result<ModelUpdate> {
            self.version += 1;
            Ok(ModelUpdate {
                version: self.version,
                inference_params: vec![], // wrong arity: install must fail
                jigsaw_params: None,
                training_ops: 0,
                eval_accuracy: None,
            })
        }
    }

    #[test]
    fn bad_update_surfaces_node_error_and_joins_cloud() {
        // A node-side install failure must still shut the Cloud actor
        // down (no leaked thread) and report the node's error.
        let node = make_node(15);
        let cloud = Arc::new(Mutex::new(BadUpdateCloud { version: 0 }));
        let mut rng = Rng::seed_from(16);
        let stream: Vec<Dataset> = (0..8)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        match run_streaming_session(node, cloud, stream, 8) {
            Err(CoreError::Nn(_)) => {}
            other => panic!("expected the node's install error, got {other:?}"),
        }
        assert_post_mortem("network error");
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let node = make_node(6);
        let params = {
            let mut n = make_node(6);
            state_dict(n.inference_mut())
        };
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let (node, stats) = run_streaming_session(node, cloud, vec![], 8).unwrap();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.images_seen, 0);
        assert_eq!(node.version(), 0);
    }
}
