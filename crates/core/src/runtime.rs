//! A threaded deployment runtime: the node and the Cloud as
//! concurrent actors exchanging messages over channels.
//!
//! The batch-oriented APIs ([`InsituNode::process_stage`],
//! [`CloudEndpoint::incremental_update`]) are what the experiments
//! drive; this module wires them into a live system the way a real
//! deployment would run — the node consuming a sensor stream on its
//! own thread, shipping valuable data upstream, and hot-swapping model
//! updates as they arrive.

use crate::error::CoreError;
use crate::node::InsituNode;
use crate::update::CloudEndpoint;
use crate::Result;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use insitu_data::Dataset;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

/// A message from the node to the Cloud uplink.
#[derive(Debug)]
enum Uplink {
    /// Valuable data for incremental training.
    Valuable(Dataset),
    /// End of stream.
    Shutdown,
}

/// Statistics of one completed streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Batches the node processed.
    pub batches: u64,
    /// Images the node examined.
    pub images_seen: u64,
    /// Images uploaded to the Cloud.
    pub images_uploaded: u64,
    /// Model updates installed on the node.
    pub updates_installed: u64,
}

/// Runs a live session: feeds every dataset from `stream` through the
/// node on a worker thread while a Cloud thread consumes the uploads
/// and pushes back model updates, which the node installs between
/// batches. Returns the final node together with session statistics.
///
/// The Cloud is shared behind a mutex so callers keep ownership of
/// whatever state their [`CloudEndpoint`] carries.
///
/// # Errors
///
/// Returns the first error raised by either actor.
pub fn run_streaming_session<C>(
    mut node: InsituNode,
    cloud: Arc<Mutex<C>>,
    stream: Vec<Dataset>,
    batch_size: usize,
) -> Result<(InsituNode, SessionStats)>
where
    C: CloudEndpoint + Send + 'static,
{
    // Resolve the kernel thread count (INSITU_THREADS / core count) up
    // front, on the session thread: both actors' tensor work — node
    // inference and Cloud incremental training — then shares one
    // already-configured worker pool instead of racing to create it
    // under the first batch.
    let _kernel_threads = insitu_tensor::num_threads();
    let (up_tx, up_rx): (Sender<Uplink>, Receiver<Uplink>) = bounded(4);
    // The downlink must never apply backpressure: if it were bounded,
    // a full downlink would block the Cloud while the node is blocked
    // on a full uplink — a circular wait. Updates are small snapshots
    // and the node drains them between batches, so unbounded is safe.
    let (down_tx, down_rx) = unbounded::<crate::update::ModelUpdate>();

    // Cloud actor: train on whatever arrives, ship updates back.
    let cloud_thread = thread::spawn(move || -> Result<u64> {
        let mut served = 0u64;
        while let Ok(msg) = up_rx.recv() {
            match msg {
                Uplink::Shutdown => break,
                Uplink::Valuable(data) => {
                    let update = cloud.lock().incremental_update(&data)?;
                    served += 1;
                    // The node may have exited; a closed channel is fine.
                    if down_tx.send(update).is_err() {
                        break;
                    }
                }
            }
        }
        Ok(served)
    });

    // Node actor (this thread): process the stream, install updates
    // opportunistically between batches.
    let mut stats = SessionStats {
        batches: 0,
        images_seen: 0,
        images_uploaded: 0,
        updates_installed: 0,
    };
    let mut first_error: Option<CoreError> = None;
    for data in stream {
        // Install any updates that arrived while we were busy.
        while let Ok(update) = down_rx.try_recv() {
            node.install_update(&update)?;
            stats.updates_installed += 1;
        }
        let outcome = node.process_stage(&data, batch_size)?;
        stats.batches += 1;
        stats.images_seen += data.len() as u64;
        stats.images_uploaded += outcome.valuable.len() as u64;
        if !outcome.valuable.is_empty() {
            let payload = node.upload_payload(&data, &outcome)?;
            if up_tx.send(Uplink::Valuable(payload)).is_err() {
                first_error = Some(CoreError::BadConfig {
                    reason: "cloud thread hung up early".into(),
                });
                break;
            }
        }
    }
    let _ = up_tx.send(Uplink::Shutdown);
    // Drain the final updates so the returned node is as fresh as
    // possible.
    match cloud_thread.join() {
        Ok(Ok(_served)) => {}
        Ok(Err(e)) => return Err(e),
        Err(_) => {
            return Err(CoreError::BadConfig { reason: "cloud thread panicked".into() })
        }
    }
    while let Ok(update) = down_rx.try_recv() {
        node.install_update(&update)?;
        stats.updates_installed += 1;
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok((node, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnosis::DiagnosisPolicy;
    use crate::update::ModelUpdate;
    use insitu_data::{Condition, PermutationSet};
    use insitu_nn::models::{jigsaw_network, mini_alexnet};
    use insitu_nn::serialize::state_dict;
    use insitu_nn::transfer::transfer_and_freeze;
    use insitu_tensor::Rng;

    /// A trivially fast Cloud double: echoes back the same weights.
    #[derive(Debug)]
    struct EchoCloud {
        params: Vec<insitu_tensor::Tensor>,
        version: u32,
    }

    impl CloudEndpoint for EchoCloud {
        fn incremental_update(&mut self, uploaded: &Dataset) -> Result<ModelUpdate> {
            let _ = uploaded;
            self.version += 1;
            Ok(ModelUpdate {
                version: self.version,
                inference_params: self.params.clone(),
                jigsaw_params: None,
                training_ops: 1,
            })
        }
    }

    fn make_node(seed: u64) -> InsituNode {
        let mut rng = Rng::seed_from(seed);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let mut inference = mini_alexnet(4, &mut rng).unwrap();
        transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, seed).unwrap()
    }

    #[test]
    fn streaming_session_processes_and_updates() {
        let mut node = make_node(5);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(9);
        let stream: Vec<Dataset> = (0..3)
            .map(|_| Dataset::generate(20, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let (node, stats) = run_streaming_session(node, cloud, stream, 8).unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.images_seen, 60);
        assert!(stats.images_uploaded > 0); // untrained model errs plenty
        assert!(stats.updates_installed >= 1);
        assert!(node.version() >= 1);
    }

    #[test]
    fn long_streams_do_not_deadlock() {
        // Regression test: with a bounded downlink, a stream longer
        // than the channel capacity deadlocked (node blocked on the
        // uplink, Cloud blocked on the downlink).
        let mut node = make_node(8);
        let params = state_dict(node.inference_mut());
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let mut rng = Rng::seed_from(10);
        let stream: Vec<Dataset> = (0..12)
            .map(|_| Dataset::generate(8, 4, &Condition::in_situ(), &mut rng).unwrap())
            .collect();
        let (_, stats) = run_streaming_session(node, cloud, stream, 8).unwrap();
        assert_eq!(stats.batches, 12);
    }

    #[test]
    fn empty_stream_is_a_noop() {
        let node = make_node(6);
        let params = {
            let mut n = make_node(6);
            state_dict(n.inference_mut())
        };
        let cloud = Arc::new(Mutex::new(EchoCloud { params, version: 0 }));
        let (node, stats) = run_streaming_session(node, cloud, vec![], 8).unwrap();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.images_seen, 0);
        assert_eq!(node.version(), 0);
    }
}
