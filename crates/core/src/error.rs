//! Error type for the In-situ AI framework.

use insitu_data::DataError;
use insitu_nn::NnError;
use std::fmt;

/// Error produced by node construction, diagnosis, planning or the
/// update protocol.
#[derive(Debug)]
pub enum CoreError {
    /// A neural-network operation failed.
    Nn(NnError),
    /// A data operation failed.
    Data(DataError),
    /// A configuration is inconsistent (e.g. no feasible batch size).
    BadConfig {
        /// Human-readable description.
        reason: String,
    },
    /// The planner found no configuration meeting the constraints.
    Infeasible {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A runtime actor thread panicked instead of returning an error.
    ActorPanicked {
        /// Which actor died ("node" or "cloud").
        actor: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Data(e) => write!(f, "data error: {e}"),
            CoreError::BadConfig { reason } => write!(f, "bad configuration: {reason}"),
            CoreError::Infeasible { reason } => write!(f, "infeasible: {reason}"),
            CoreError::ActorPanicked { actor, message } => {
                write!(f, "{actor} actor panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Nn(e) => Some(e),
            CoreError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<DataError> for CoreError {
    fn from(e: DataError) -> Self {
        CoreError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = CoreError::Infeasible { reason: "no batch meets 1 ms".into() };
        assert!(e.to_string().contains("1 ms"));
        let n: CoreError = NnError::NoSuchLayer { layer: "x".into() }.into();
        assert!(std::error::Error::source(&n).is_some());
    }
}
