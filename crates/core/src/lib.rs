//! # insitu-core
//!
//! The In-situ AI framework — the paper's primary contribution. An
//! [`InsituNode`] runs the inference task and the **autonomous data
//! diagnosis** task at the edge, uploads only the valuable
//! (unrecognized) samples, and installs incremental model updates from
//! the Cloud. The [`planner`](crate::plan) turns the paper's
//! analytical models into deployment decisions: Single-running on the
//! mobile GPU or Co-running on the WSS-NWS FPGA pipeline, with batch
//! sizes chosen by the time and resource models.
//!
//! ## Example
//!
//! ```
//! use insitu_core::{plan, Availability, PlanRequest};
//! use insitu_devices::NetworkShapes;
//!
//! # fn main() -> Result<(), insitu_core::CoreError> {
//! let inference = NetworkShapes::alexnet();
//! let diagnosis = NetworkShapes::diagnosis_of(&inference, 9);
//! let request = PlanRequest {
//!     availability: Availability::AlwaysOn, // 24/7 → Co-running FPGA
//!     t_user: 0.2,
//!     max_batch: 128,
//! };
//! let plan = plan(&request, &inference, &diagnosis)?;
//! assert!(plan.predicted_latency_s <= 0.2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod diagnosis;
mod error;
mod hub;
mod metrics;
mod modes;
mod node;
mod planner;
pub mod recorder;
mod runtime;
mod update;

pub use diagnosis::{diagnose, diagnose_with_logits, valuable_indices, DiagnosisPolicy, Verdict};
pub use error::CoreError;
pub use hub::{validate_prometheus, MetricsHub};
pub use metrics::{DataMovementMeter, EnergyMeter, UpdateClock, IMAGE_BYTES};
pub use modes::{select_mode, Availability, Platform, WorkingMode};
pub use node::{InferencePrecision, InsituNode, ReplanConfig, StageOutcome};
pub use planner::{
    plan, plan_with_measurements, plan_with_precision, precision_label, MeasuredProfile, NodePlan,
    PlanRequest, QuantProfile,
};
pub use runtime::{
    run_ingested_session, run_replayed_session, run_streaming_session,
    run_streaming_session_with, DegradeConfig, IngestPolicy, IngestSessionConfig, IngestSummary,
    SessionConfig, SessionStats,
};
pub use update::{CloudEndpoint, ModelUpdate};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
