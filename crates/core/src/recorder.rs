//! The fault flight recorder: a bounded ring of coarse runtime events
//! dumped as JSON when a session dies.
//!
//! Telemetry spans answer "where did the time go"; the flight recorder
//! answers "what was the system *doing* just before it crashed". It is
//! **always on** (no enable flag): events are coarse — one per stage,
//! mode decision, model swap, upload or re-plan, never per image or
//! per kernel — so the cost is one short-lived mutex lock on a
//! bounded ring per stage-scale event.
//!
//! When [`crate::run_streaming_session`] surfaces any error
//! (including [`crate::CoreError::ActorPanicked`] from an injected
//! fault), it calls [`dump`] with the error as the reason. The dump is
//! a self-contained JSON post-mortem: the reason plus the most recent
//! events in order. Dumps are kept in a small in-process store
//! ([`last_dumps`]) for tests and tooling, and additionally written to
//! `$INSITU_FLIGHT_DIR/flight_<n>.json` when that variable is set.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Ring capacity: enough for several sessions' worth of stage-scale
/// events (~100 stages each) without unbounded growth.
const RING_CAPACITY: usize = 512;

/// Post-mortem dumps retained in-process.
const MAX_DUMPS: usize = 8;

/// One recorded flight event.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Process-wide sequence number (gap-free, monotonic).
    pub seq: u64,
    /// Milliseconds since the recorder first saw an event.
    pub t_ms: u64,
    /// Coarse event kind (`stage`, `mode_decision`, `model_swap`, …).
    pub kind: &'static str,
    /// Human-readable detail line.
    pub detail: String,
}

static RING: OnceLock<Mutex<VecDeque<FlightEvent>>> = OnceLock::new();
static DUMPS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
static START: OnceLock<Instant> = OnceLock::new();
static NEXT_DUMP_ID: AtomicU64 = AtomicU64::new(0);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn ring() -> &'static Mutex<VecDeque<FlightEvent>> {
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING_CAPACITY)))
}

fn dumps() -> &'static Mutex<Vec<String>> {
    DUMPS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one coarse event. Call this at stage granularity (a stage
/// processed, a plan picked, a model swapped), never per image.
pub fn record(kind: &'static str, detail: impl Into<String>) {
    let t_ms =
        u64::try_from(START.get_or_init(Instant::now).elapsed().as_millis()).unwrap_or(u64::MAX);
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut ring = lock(ring());
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(FlightEvent { seq, t_ms, kind, detail: detail.into() });
}

/// Number of events currently buffered.
pub fn len() -> usize {
    lock(ring()).len()
}

/// Builds a post-mortem JSON dump (`{"reason":…,"events":[…]}`),
/// stores it in the in-process dump list (oldest evicted past a small
/// cap), optionally writes it to `$INSITU_FLIGHT_DIR`, and returns it.
/// The ring is left intact — a later fault still sees the history.
pub fn dump(reason: &str) -> String {
    let events: Vec<FlightEvent> = lock(ring()).iter().cloned().collect();
    let mut out = String::with_capacity(events.len() * 64 + 64);
    out.push('{');
    let _ = write!(out, "\"reason\":{},\"events\":[", json_string(reason));
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ms\":{},\"kind\":{},\"detail\":{}}}",
            e.seq,
            e.t_ms,
            json_string(e.kind),
            json_string(&e.detail)
        );
    }
    out.push_str("]}");
    {
        let mut dumps = lock(dumps());
        if dumps.len() >= MAX_DUMPS {
            dumps.remove(0);
        }
        dumps.push(out.clone());
    }
    if let Ok(dir) = std::env::var("INSITU_FLIGHT_DIR") {
        if !dir.is_empty() {
            let id = NEXT_DUMP_ID.fetch_add(1, Ordering::Relaxed);
            let path = std::path::Path::new(&dir).join(format!("flight_{id}.json"));
            // Post-mortem best effort: a failed write must not mask the
            // error that triggered the dump.
            let _ = std::fs::write(path, &out);
        }
    }
    out
}

/// The retained post-mortem dumps, oldest first. Concurrent sessions
/// share the store, so scan for the dump whose `reason` matches rather
/// than assuming the last entry is yours.
pub fn last_dumps() -> Vec<String> {
    lock(dumps()).clone()
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_dump_roundtrip() {
        record("test_event", "stage 1: 8 images");
        record("test_event", "detail with \"quotes\" and\nnewline");
        let dump = dump("unit-test reason");
        let v = insitu_telemetry::json::parse(&dump).expect("dump must be valid JSON");
        assert_eq!(
            v.get("reason").and_then(|r| r.as_str()),
            Some("unit-test reason")
        );
        let events = v.get("events").and_then(|e| e.as_array()).unwrap();
        assert!(events.len() >= 2);
        assert!(events.iter().any(|e| {
            e.get("detail").and_then(|d| d.as_str()) == Some("detail with \"quotes\" and\nnewline")
        }));
        // The dump is retained for later inspection.
        assert!(last_dumps().iter().any(|d| d.contains("unit-test reason")));
    }

    #[test]
    fn ring_is_bounded() {
        for i in 0..(RING_CAPACITY + 50) {
            record("flood", format!("event {i}"));
        }
        assert!(len() <= RING_CAPACITY);
    }
}
