//! The configuration planner: the paper's analytical models put to
//! work.
//!
//! Given the deployment constraints (availability, end-user latency
//! bound) and the network shapes, the planner chooses the working
//! mode, platform, and batch sizes:
//!
//! * **Single-running (GPU)** — the *time model* (Eqs. 5–8) picks the
//!   largest inference batch meeting the latency bound (maximum
//!   perf/W under the deadline, the paper's Fig. 21 method); the
//!   *resource model* (Eq. 9) picks the largest diagnosis batch that
//!   fits device memory.
//! * **Co-running (FPGA)** — Eqs. (10)–(14) configure the WSS Group +
//!   NWS pipeline and pick the largest batch meeting the latency
//!   bound.

use crate::error::CoreError;
use crate::modes::{select_mode, Availability, Platform, WorkingMode};
use crate::Result;
use insitu_devices::{FpgaSpec, GpuModel, GpuSpec, NetworkShapes};
use insitu_fpga::WssNwsPipeline;
use serde::{Deserialize, Serialize};

/// Deployment constraints supplied by the end user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Availability requirement for the inference task.
    pub availability: Availability,
    /// End-user latency bound for inference, in seconds.
    pub t_user: f64,
    /// Upper bound on batch sizes the search considers.
    pub max_batch: usize,
}

impl Default for PlanRequest {
    fn default() -> Self {
        PlanRequest { availability: Availability::Scheduled, t_user: 0.1, max_batch: 256 }
    }
}

/// The planner's decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Chosen working mode.
    pub mode: WorkingMode,
    /// Chosen accelerator.
    pub platform: Platform,
    /// Inference batch size.
    pub inference_batch: usize,
    /// Diagnosis batch size (Single-running) or pipeline batch
    /// (Co-running).
    pub diagnosis_batch: usize,
    /// Predicted inference latency at the chosen batch, seconds.
    pub predicted_latency_s: f64,
    /// Predicted throughput, images/second.
    pub predicted_throughput: f64,
    /// Predicted energy-efficiency, images/second/watt (GPU path only;
    /// 0.0 for the FPGA pipeline where the paper optimizes throughput).
    pub predicted_perf_per_watt: f64,
    /// WSS group size (Co-running only; 0 otherwise).
    pub wss_group_size: usize,
}

/// Plans a node configuration for the given constraints and networks.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no batch size meets the
/// latency bound on the selected platform.
pub fn plan(
    request: &PlanRequest,
    inference: &NetworkShapes,
    diagnosis: &NetworkShapes,
) -> Result<NodePlan> {
    let (mode, platform) = select_mode(request.availability);
    match platform {
        Platform::MobileGpu => {
            let gpu = GpuModel::new(GpuSpec::tx1());
            let inference_batch = gpu
                .optimal_batch(inference, request.t_user, request.max_batch)
                .ok_or_else(|| CoreError::Infeasible {
                    reason: format!(
                        "no GPU batch meets {} s for `{}`",
                        request.t_user, inference.name
                    ),
                })?;
            let diagnosis_batch = gpu.max_batch_under_ram(diagnosis, request.max_batch).max(1);
            Ok(NodePlan {
                mode,
                platform,
                inference_batch,
                diagnosis_batch,
                predicted_latency_s: gpu.batch_latency(inference, inference_batch),
                predicted_throughput: gpu.throughput(inference, inference_batch),
                predicted_perf_per_watt: gpu.perf_per_watt(inference, inference_batch),
                wss_group_size: 0,
            })
        }
        Platform::Fpga => {
            let spec = FpgaSpec::vx690t();
            let convs = inference.convs();
            let fcs = inference.fcs();
            let pipe = WssNwsPipeline::configure(spec, &convs, &fcs);
            let point = pipe
                .best_under_latency(&convs, &fcs, request.t_user, request.max_batch)
                .ok_or_else(|| CoreError::Infeasible {
                    reason: format!(
                        "no pipeline batch meets {} s for `{}`",
                        request.t_user, inference.name
                    ),
                })?;
            Ok(NodePlan {
                mode,
                platform,
                inference_batch: point.batch,
                diagnosis_batch: point.batch,
                predicted_latency_s: point.latency_s,
                predicted_throughput: point.throughput,
                predicted_perf_per_watt: 0.0,
                wss_group_size: pipe.group_size,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nets() -> (NetworkShapes, NetworkShapes) {
        let inf = NetworkShapes::alexnet();
        let diag = NetworkShapes::diagnosis_of(&inf, 9);
        (inf, diag)
    }

    #[test]
    fn scheduled_plan_uses_gpu_time_and_resource_models() {
        let (inf, diag) = nets();
        let req = PlanRequest {
            availability: Availability::Scheduled,
            t_user: 0.1,
            max_batch: 128,
        };
        let plan = plan(&req, &inf, &diag).unwrap();
        assert_eq!(plan.platform, Platform::MobileGpu);
        assert_eq!(plan.mode, WorkingMode::SingleRunning);
        assert!(plan.predicted_latency_s <= 0.1);
        assert!(plan.inference_batch >= 1);
        assert!(plan.diagnosis_batch >= plan.inference_batch); // RAM >> deadline bound
        assert!(plan.predicted_perf_per_watt > 0.0);
    }

    #[test]
    fn always_on_plan_uses_fpga_pipeline() {
        let (inf, diag) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.2, max_batch: 128 };
        let plan = plan(&req, &inf, &diag).unwrap();
        assert_eq!(plan.platform, Platform::Fpga);
        assert_eq!(plan.mode, WorkingMode::CoRunning);
        assert!(plan.predicted_latency_s <= 0.2);
        assert!(plan.wss_group_size >= 1);
    }

    #[test]
    fn impossible_deadline_is_infeasible() {
        let (inf, diag) = nets();
        let req = PlanRequest {
            availability: Availability::Scheduled,
            t_user: 1e-9,
            max_batch: 16,
        };
        assert!(matches!(
            plan(&req, &inf, &diag),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn looser_deadline_never_reduces_throughput() {
        let (inf, diag) = nets();
        let mut last = 0.0;
        for &t in &[0.05, 0.1, 0.2, 0.4] {
            let req = PlanRequest {
                availability: Availability::AlwaysOn,
                t_user: t,
                max_batch: 256,
            };
            let p = plan(&req, &inf, &diag).unwrap();
            assert!(p.predicted_throughput >= last * 0.999);
            last = p.predicted_throughput;
        }
    }
}
