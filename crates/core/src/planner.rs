//! The configuration planner: the paper's analytical models put to
//! work.
//!
//! Given the deployment constraints (availability, end-user latency
//! bound) and the network shapes, the planner chooses the working
//! mode, platform, and batch sizes:
//!
//! * **Single-running (GPU)** — the *time model* (Eqs. 5–8) picks the
//!   largest inference batch meeting the latency bound (maximum
//!   perf/W under the deadline, the paper's Fig. 21 method); the
//!   *resource model* (Eq. 9) picks the largest diagnosis batch that
//!   fits device memory.
//! * **Co-running (FPGA)** — Eqs. (10)–(14) configure the WSS Group +
//!   NWS pipeline and pick the largest batch meeting the latency
//!   bound.

use crate::error::CoreError;
use crate::modes::{select_mode, Availability, Platform, WorkingMode};
use crate::node::InferencePrecision;
use crate::Result;
use insitu_devices::{FpgaSpec, GpuModel, GpuSpec, NetworkShapes};
use insitu_fpga::WssNwsPipeline;
use insitu_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// Measured i8-vs-f32 trade-off a node feeds back to the planner.
///
/// The paper's FPGA PEs are fixed-point; running the deployed network
/// at [`InferencePrecision::I8`] trades a small accuracy delta for a
/// throughput gain. Both numbers come from *measurement* on the node
/// (the `node_snapshot` benchmark reports them), not from the
/// analytical model — the planner folds them into the Eqs. (10)–(14)
/// time model to decide whether the quantized configuration still
/// meets the user's deadline and what batch it admits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantProfile {
    /// Measured i8 throughput multiplier over f32 (e.g. `1.8`).
    pub speedup: f64,
    /// Held-out accuracy change of i8 relative to f32, in fractional
    /// points (usually a small negative number).
    pub accuracy_delta: f32,
}

/// Per-stage costs *measured* on the running node, distilled from the
/// telemetry histograms — the closed-loop replacement for the static
/// device model.
///
/// The node's fused stage records a `node.stage_per_image` histogram
/// labelled by precision (`"f32"` / `"i8"`) and a `node.upload_bytes`
/// size histogram; [`MeasuredProfile::from_snapshot`] reads those into
/// per-image latency percentiles, the observed i8-vs-f32 speedup, and
/// the achieved uplink rate. [`plan_with_measurements`] then admits
/// the largest batch whose **measured p90** per-image cost meets the
/// user deadline, instead of trusting Eqs. 5–14's assumed costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredProfile {
    /// Median per-image stage latency, seconds.
    pub per_image_p50_s: f64,
    /// 90th-percentile per-image stage latency, seconds — what the
    /// admission decision uses (tail-aware, unlike a mean).
    pub per_image_p90_s: f64,
    /// Measured f32-p50 / i8-p50 throughput ratio, when both
    /// precisions have samples in the window.
    pub i8_speedup: Option<f64>,
    /// Achieved upload rate over the window, bytes/second of stage
    /// time (0.0 when nothing was uploaded).
    pub uplink_bytes_per_s: f64,
    /// Stage samples the profile distils.
    pub stages: u64,
}

impl MeasuredProfile {
    /// Distils a profile from a telemetry snapshot, reading the
    /// per-image latency histogram at `precision`. Returns `None`
    /// when the snapshot has no samples at that precision (telemetry
    /// disabled, or the window just reset).
    pub fn from_snapshot(snap: &TelemetrySnapshot, precision: InferencePrecision) -> Option<Self> {
        let label = precision_label(precision);
        let per_image = snap.hist("node.stage_per_image", label)?;
        if per_image.hist.is_empty() {
            return None;
        }
        let f32_p50 = snap.hist("node.stage_per_image", "f32").map(|h| h.p50);
        let i8_p50 = snap.hist("node.stage_per_image", "i8").map(|h| h.p50);
        let i8_speedup = match (f32_p50, i8_p50) {
            (Some(f), Some(i)) if i > 0 => Some(f as f64 / i as f64),
            _ => None,
        };
        let uplink_bytes_per_s = match (
            snap.hist("node.upload_bytes", ""),
            snap.hist("node.stage", ""),
        ) {
            (Some(bytes), Some(stage)) if stage.hist.sum() > 0 => {
                bytes.hist.sum() as f64 / (stage.hist.sum() as f64 / 1e9)
            }
            _ => 0.0,
        };
        Some(MeasuredProfile {
            per_image_p50_s: per_image.p50 as f64 / 1e9,
            per_image_p90_s: per_image.p90 as f64 / 1e9,
            i8_speedup,
            uplink_bytes_per_s,
            stages: per_image.hist.count(),
        })
    }
}

/// Telemetry label of a precision (`"f32"` / `"i8"`).
pub fn precision_label(precision: InferencePrecision) -> &'static str {
    match precision {
        InferencePrecision::F32 => "f32",
        InferencePrecision::I8 => "i8",
    }
}

/// Deployment constraints supplied by the end user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Availability requirement for the inference task.
    pub availability: Availability,
    /// End-user latency bound for inference, in seconds.
    pub t_user: f64,
    /// Upper bound on batch sizes the search considers.
    pub max_batch: usize,
}

impl Default for PlanRequest {
    fn default() -> Self {
        PlanRequest { availability: Availability::Scheduled, t_user: 0.1, max_batch: 256 }
    }
}

/// The planner's decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodePlan {
    /// Chosen working mode.
    pub mode: WorkingMode,
    /// Chosen accelerator.
    pub platform: Platform,
    /// Inference batch size.
    pub inference_batch: usize,
    /// Diagnosis batch size (Single-running) or pipeline batch
    /// (Co-running).
    pub diagnosis_batch: usize,
    /// Predicted inference latency at the chosen batch, seconds.
    pub predicted_latency_s: f64,
    /// Predicted throughput, images/second.
    pub predicted_throughput: f64,
    /// Predicted energy-efficiency, images/second/watt (GPU path only;
    /// 0.0 for the FPGA pipeline where the paper optimizes throughput).
    pub predicted_perf_per_watt: f64,
    /// WSS group size (Co-running only; 0 otherwise).
    pub wss_group_size: usize,
    /// Precision the inference task should run at.
    pub precision: InferencePrecision,
    /// Expected accuracy change of the chosen precision vs f32, in
    /// fractional points (0.0 for f32 plans).
    pub accuracy_delta: f32,
}

impl NodePlan {
    /// One-line description for logs, instants and flight-recorder
    /// events, e.g. `CoRunning/Fpga bs=32 i8 (0.0123 s/batch)`.
    pub fn summary(&self) -> String {
        format!(
            "{}/{} bs={} {} ({:.4} s/batch)",
            self.mode,
            self.platform,
            self.inference_batch,
            precision_label(self.precision),
            self.predicted_latency_s
        )
    }
}

/// Plans a node configuration for the given constraints and networks.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no batch size meets the
/// latency bound on the selected platform.
pub fn plan(
    request: &PlanRequest,
    inference: &NetworkShapes,
    diagnosis: &NetworkShapes,
) -> Result<NodePlan> {
    plan_with_precision(request, inference, diagnosis, None)
}

/// Plans a node configuration, optionally folding a measured
/// [`QuantProfile`] into the Co-running time model.
///
/// With a profile, the FPGA branch scales the pipeline's per-batch
/// latency by the measured i8 speedup before applying the latency
/// bound — a batch is admissible iff its f32 latency is within
/// `t_user × speedup` — and reports i8-adjusted latency/throughput and
/// the expected accuracy delta. The GPU branch always plans f32: the
/// quantized kernels model the FPGA's fixed-point PEs, not the mobile
/// GPU's floating-point ALUs.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when no batch size meets the
/// latency bound, and [`CoreError::BadConfig`] for a degenerate
/// profile (non-finite or non-positive speedup).
pub fn plan_with_precision(
    request: &PlanRequest,
    inference: &NetworkShapes,
    diagnosis: &NetworkShapes,
    quant: Option<&QuantProfile>,
) -> Result<NodePlan> {
    if let Some(q) = quant {
        if !(q.speedup.is_finite() && q.speedup > 0.0) {
            return Err(CoreError::BadConfig {
                reason: format!("quant profile speedup must be finite and > 0, got {}", q.speedup),
            });
        }
    }
    let (mode, platform) = select_mode(request.availability);
    match platform {
        Platform::MobileGpu => {
            let gpu = GpuModel::new(GpuSpec::tx1());
            let inference_batch = gpu
                .optimal_batch(inference, request.t_user, request.max_batch)
                .ok_or_else(|| CoreError::Infeasible {
                    reason: format!(
                        "no GPU batch meets {} s for `{}`",
                        request.t_user, inference.name
                    ),
                })?;
            let diagnosis_batch = gpu.max_batch_under_ram(diagnosis, request.max_batch).max(1);
            Ok(NodePlan {
                mode,
                platform,
                inference_batch,
                diagnosis_batch,
                predicted_latency_s: gpu.batch_latency(inference, inference_batch),
                predicted_throughput: gpu.throughput(inference, inference_batch),
                predicted_perf_per_watt: gpu.perf_per_watt(inference, inference_batch),
                wss_group_size: 0,
                precision: InferencePrecision::F32,
                accuracy_delta: 0.0,
            })
        }
        Platform::Fpga => {
            let spec = FpgaSpec::vx690t();
            let convs = inference.convs();
            let fcs = inference.fcs();
            let pipe = WssNwsPipeline::configure(spec, &convs, &fcs);
            let speedup = quant.map_or(1.0, |q| q.speedup);
            let point = pipe
                .best_under_latency(&convs, &fcs, request.t_user * speedup, request.max_batch)
                .ok_or_else(|| CoreError::Infeasible {
                    reason: format!(
                        "no pipeline batch meets {} s for `{}`",
                        request.t_user, inference.name
                    ),
                })?;
            Ok(NodePlan {
                mode,
                platform,
                inference_batch: point.batch,
                diagnosis_batch: point.batch,
                predicted_latency_s: point.latency_s / speedup,
                predicted_throughput: point.throughput * speedup,
                predicted_perf_per_watt: 0.0,
                wss_group_size: pipe.group_size,
                precision: if quant.is_some() {
                    InferencePrecision::I8
                } else {
                    InferencePrecision::F32
                },
                accuracy_delta: quant.map_or(0.0, |q| q.accuracy_delta),
            })
        }
    }
}

/// Plans a node configuration from **measured** per-stage costs
/// instead of the analytical device model: the mode/platform decision
/// still follows the paper's availability rule, but batch admission
/// uses the profile's p90 per-image latency — the largest batch whose
/// measured cost fits `t_user` is chosen. This is what the node's
/// online re-plan path calls when the observed p90 diverges from the
/// current plan's prediction.
///
/// The `quant` profile plays the same role as in
/// [`plan_with_precision`]: on the FPGA platform it marks the plan i8
/// and carries the accuracy delta. The measured per-image latencies in
/// `measured` are taken as-is (they were recorded at the precision the
/// node actually runs), so no speedup rescaling is applied.
///
/// # Errors
///
/// Returns [`CoreError::Infeasible`] when even a single image misses
/// the deadline at the measured p90, and [`CoreError::BadConfig`] for
/// a degenerate profile (non-finite or non-positive latency).
pub fn plan_with_measurements(
    request: &PlanRequest,
    inference: &NetworkShapes,
    quant: Option<&QuantProfile>,
    measured: &MeasuredProfile,
) -> Result<NodePlan> {
    let per_image = measured.per_image_p90_s;
    if !(per_image.is_finite() && per_image > 0.0) {
        return Err(CoreError::BadConfig {
            reason: format!("measured per-image latency must be finite and > 0, got {per_image}"),
        });
    }
    let (mode, platform) = select_mode(request.availability);
    if per_image > request.t_user {
        return Err(CoreError::Infeasible {
            reason: format!(
                "measured p90 per-image latency {per_image:.6} s exceeds the {} s deadline \
                 for `{}`",
                request.t_user, inference.name
            ),
        });
    }
    let batch =
        ((request.t_user / per_image).floor() as usize).clamp(1, request.max_batch.max(1));
    let quantized = platform == Platform::Fpga && quant.is_some();
    let wss_group_size = if platform == Platform::Fpga {
        let convs = inference.convs();
        let fcs = inference.fcs();
        WssNwsPipeline::configure(FpgaSpec::vx690t(), &convs, &fcs).group_size
    } else {
        0
    };
    Ok(NodePlan {
        mode,
        platform,
        inference_batch: batch,
        diagnosis_batch: batch,
        predicted_latency_s: batch as f64 * per_image,
        predicted_throughput: 1.0 / per_image,
        predicted_perf_per_watt: 0.0,
        wss_group_size,
        precision: if quantized { InferencePrecision::I8 } else { InferencePrecision::F32 },
        accuracy_delta: if quantized { quant.map_or(0.0, |q| q.accuracy_delta) } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nets() -> (NetworkShapes, NetworkShapes) {
        let inf = NetworkShapes::alexnet();
        let diag = NetworkShapes::diagnosis_of(&inf, 9);
        (inf, diag)
    }

    #[test]
    fn scheduled_plan_uses_gpu_time_and_resource_models() {
        let (inf, diag) = nets();
        let req = PlanRequest {
            availability: Availability::Scheduled,
            t_user: 0.1,
            max_batch: 128,
        };
        let plan = plan(&req, &inf, &diag).unwrap();
        assert_eq!(plan.platform, Platform::MobileGpu);
        assert_eq!(plan.mode, WorkingMode::SingleRunning);
        assert!(plan.predicted_latency_s <= 0.1);
        assert!(plan.inference_batch >= 1);
        assert!(plan.diagnosis_batch >= plan.inference_batch); // RAM >> deadline bound
        assert!(plan.predicted_perf_per_watt > 0.0);
    }

    #[test]
    fn always_on_plan_uses_fpga_pipeline() {
        let (inf, diag) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.2, max_batch: 128 };
        let plan = plan(&req, &inf, &diag).unwrap();
        assert_eq!(plan.platform, Platform::Fpga);
        assert_eq!(plan.mode, WorkingMode::CoRunning);
        assert!(plan.predicted_latency_s <= 0.2);
        assert!(plan.wss_group_size >= 1);
    }

    #[test]
    fn impossible_deadline_is_infeasible() {
        let (inf, diag) = nets();
        let req = PlanRequest {
            availability: Availability::Scheduled,
            t_user: 1e-9,
            max_batch: 16,
        };
        assert!(matches!(
            plan(&req, &inf, &diag),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn quant_profile_boosts_fpga_throughput_and_records_delta() {
        let (inf, diag) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.2, max_batch: 128 };
        let f32_plan = plan(&req, &inf, &diag).unwrap();
        let profile = QuantProfile { speedup: 1.8, accuracy_delta: -0.007 };
        let i8_plan = plan_with_precision(&req, &inf, &diag, Some(&profile)).unwrap();
        assert_eq!(i8_plan.precision, InferencePrecision::I8);
        assert_eq!(i8_plan.accuracy_delta, -0.007);
        assert!(i8_plan.predicted_latency_s <= req.t_user + 1e-12);
        assert!(
            i8_plan.predicted_throughput > f32_plan.predicted_throughput,
            "i8 {} vs f32 {}",
            i8_plan.predicted_throughput,
            f32_plan.predicted_throughput
        );
        // Without a profile, plan_with_precision is exactly plan().
        assert_eq!(plan_with_precision(&req, &inf, &diag, None).unwrap(), f32_plan);
        assert_eq!(f32_plan.precision, InferencePrecision::F32);
        assert_eq!(f32_plan.accuracy_delta, 0.0);
    }

    #[test]
    fn quant_profile_can_rescue_an_infeasible_deadline() {
        let (inf, diag) = nets();
        // Find a deadline tight enough that f32 fails but 4x i8 passes.
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 1e-4, max_batch: 64 };
        if plan(&req, &inf, &diag).is_err() {
            let profile = QuantProfile { speedup: 1e3, accuracy_delta: -0.01 };
            let rescued = plan_with_precision(&req, &inf, &diag, Some(&profile));
            assert!(rescued.is_ok(), "large measured speedup should admit a batch");
        }
    }

    #[test]
    fn gpu_plans_stay_f32_even_with_a_profile() {
        let (inf, diag) = nets();
        let req = PlanRequest {
            availability: Availability::Scheduled,
            t_user: 0.1,
            max_batch: 128,
        };
        let profile = QuantProfile { speedup: 2.0, accuracy_delta: -0.01 };
        let p = plan_with_precision(&req, &inf, &diag, Some(&profile)).unwrap();
        assert_eq!(p.platform, Platform::MobileGpu);
        assert_eq!(p.precision, InferencePrecision::F32);
        assert_eq!(p.accuracy_delta, 0.0);
        assert_eq!(p, plan(&req, &inf, &diag).unwrap());
    }

    #[test]
    fn degenerate_quant_profile_is_rejected() {
        let (inf, diag) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.2, max_batch: 128 };
        for speedup in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let profile = QuantProfile { speedup, accuracy_delta: 0.0 };
            assert!(matches!(
                plan_with_precision(&req, &inf, &diag, Some(&profile)),
                Err(CoreError::BadConfig { .. })
            ));
        }
    }

    fn profile(per_image_s: f64) -> MeasuredProfile {
        MeasuredProfile {
            per_image_p50_s: per_image_s * 0.8,
            per_image_p90_s: per_image_s,
            i8_speedup: None,
            uplink_bytes_per_s: 0.0,
            stages: 10,
        }
    }

    #[test]
    fn measured_plan_admits_batch_from_p90() {
        let (inf, _) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.1, max_batch: 256 };
        let p = plan_with_measurements(&req, &inf, None, &profile(0.01)).unwrap();
        assert_eq!(p.platform, Platform::Fpga);
        assert_eq!(p.mode, WorkingMode::CoRunning);
        assert_eq!(p.inference_batch, 10); // floor(0.1 / 0.01)
        assert!(p.predicted_latency_s <= req.t_user + 1e-12);
        assert!((p.predicted_throughput - 100.0).abs() < 1e-6);
        assert!(p.wss_group_size >= 1);
        // A slower node admits a smaller batch.
        let slow = plan_with_measurements(&req, &inf, None, &profile(0.04)).unwrap();
        assert!(slow.inference_batch < p.inference_batch);
        // max_batch caps the admission.
        let tiny = PlanRequest { max_batch: 4, ..req };
        let capped = plan_with_measurements(&tiny, &inf, None, &profile(0.01)).unwrap();
        assert_eq!(capped.inference_batch, 4);
    }

    #[test]
    fn measured_plan_infeasible_and_degenerate() {
        let (inf, _) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.01, max_batch: 64 };
        assert!(matches!(
            plan_with_measurements(&req, &inf, None, &profile(0.02)),
            Err(CoreError::Infeasible { .. })
        ));
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                plan_with_measurements(&req, &inf, None, &profile(bad)),
                Err(CoreError::BadConfig { .. })
            ));
        }
    }

    #[test]
    fn measured_plan_quant_marks_i8_on_fpga_only() {
        let (inf, _) = nets();
        let q = QuantProfile { speedup: 1.7, accuracy_delta: -0.005 };
        let fpga =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.1, max_batch: 64 };
        let p = plan_with_measurements(&fpga, &inf, Some(&q), &profile(0.01)).unwrap();
        assert_eq!(p.precision, InferencePrecision::I8);
        assert_eq!(p.accuracy_delta, -0.005);
        let gpu =
            PlanRequest { availability: Availability::Scheduled, t_user: 0.1, max_batch: 64 };
        let p = plan_with_measurements(&gpu, &inf, Some(&q), &profile(0.01)).unwrap();
        assert_eq!(p.precision, InferencePrecision::F32);
        assert_eq!(p.accuracy_delta, 0.0);
        assert_eq!(p.wss_group_size, 0);
    }

    #[test]
    fn plan_summary_is_one_line() {
        let (inf, diag) = nets();
        let req =
            PlanRequest { availability: Availability::AlwaysOn, t_user: 0.2, max_batch: 128 };
        let s = plan(&req, &inf, &diag).unwrap().summary();
        assert!(s.contains("CoRunning/Fpga"), "{s}");
        assert!(s.contains("bs="), "{s}");
        assert!(!s.contains('\n'));
    }

    #[test]
    fn empty_snapshot_yields_no_profile() {
        assert!(
            MeasuredProfile::from_snapshot(&TelemetrySnapshot::default(), InferencePrecision::F32)
                .is_none()
        );
    }

    #[test]
    fn looser_deadline_never_reduces_throughput() {
        let (inf, diag) = nets();
        let mut last = 0.0;
        for &t in &[0.05, 0.1, 0.2, 0.4] {
            let req = PlanRequest {
                availability: Availability::AlwaysOn,
                t_user: t,
                max_batch: 256,
            };
            let p = plan(&req, &inf, &diag).unwrap();
            assert!(p.predicted_throughput >= last * 0.999);
            last = p.predicted_throughput;
        }
    }
}
