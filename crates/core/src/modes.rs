//! Working modes and platform selection.
//!
//! The paper's characterization (its Section IV) yields a simple
//! decision rule: when the inference task need not be available 24/7,
//! the two tasks time-share the **GPU** (Single-running mode — GPU
//! wins on energy-efficiency for isolated tasks); when inference must
//! be always-on, the tasks co-run on the **FPGA** (Co-running mode —
//! hardware partitioning avoids the up-to-3× GPU interference).

use serde::{Deserialize, Serialize};

/// Whether the deployment requires inference to be available 24/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Availability {
    /// Inference runs in scheduled windows (e.g. daytime); diagnosis
    /// can use the off-hours.
    Scheduled,
    /// Inference must be available around the clock.
    AlwaysOn,
}

/// How the two In-situ tasks share the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkingMode {
    /// Tasks alternate on one device (different time slots).
    SingleRunning,
    /// Tasks execute simultaneously on partitioned hardware.
    CoRunning,
}

/// The accelerator the node deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Platform {
    /// TX1-class mobile GPU.
    MobileGpu,
    /// VX690T-class FPGA with the WSS-NWS pipeline.
    Fpga,
}

impl std::fmt::Display for Availability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Availability::Scheduled => "Scheduled",
            Availability::AlwaysOn => "AlwaysOn",
        })
    }
}

impl std::fmt::Display for WorkingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkingMode::SingleRunning => "SingleRunning",
            WorkingMode::CoRunning => "CoRunning",
        })
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Platform::MobileGpu => "MobileGpu",
            Platform::Fpga => "Fpga",
        })
    }
}

/// The paper's platform decision rule.
pub fn select_mode(availability: Availability) -> (WorkingMode, Platform) {
    match availability {
        Availability::Scheduled => (WorkingMode::SingleRunning, Platform::MobileGpu),
        Availability::AlwaysOn => (WorkingMode::CoRunning, Platform::Fpga),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_goes_to_gpu() {
        assert_eq!(
            select_mode(Availability::Scheduled),
            (WorkingMode::SingleRunning, Platform::MobileGpu)
        );
    }

    #[test]
    fn always_on_goes_to_fpga() {
        assert_eq!(
            select_mode(Availability::AlwaysOn),
            (WorkingMode::CoRunning, Platform::Fpga)
        );
    }
}
