//! The incremental-update protocol between node and Cloud.

use crate::Result;
use insitu_data::Dataset;
use insitu_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A model refresh produced by the Cloud after incremental training on
/// uploaded valuable data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelUpdate {
    /// Monotonically increasing model version.
    pub version: u32,
    /// Full state dict of the inference network.
    pub inference_params: Vec<Tensor>,
    /// Updated diagnosis (jigsaw) state dict, when the unsupervised
    /// network was also refreshed.
    pub jigsaw_params: Option<Vec<Tensor>>,
    /// Multiply-accumulate operations the Cloud spent producing this
    /// update (drives the energy/time accounting).
    pub training_ops: u64,
    /// Accuracy on the Cloud's held-out split after this update, when a
    /// holdout is configured (`IncrementalConfig::holdout`).
    pub eval_accuracy: Option<f32>,
}

/// The node's view of the Cloud: something that accepts valuable data
/// and returns a refreshed model. Implemented by
/// `insitu_cloud::Cloud`; test doubles implement it directly.
pub trait CloudEndpoint {
    /// Incrementally trains on `uploaded` and returns the new model.
    ///
    /// # Errors
    ///
    /// Returns an error if training fails (shape disagreements).
    fn incremental_update(&mut self, uploaded: &Dataset) -> Result<ModelUpdate>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_is_cloneable_and_comparable() {
        let u = ModelUpdate {
            version: 1,
            inference_params: vec![Tensor::zeros([2, 2])],
            jigsaw_params: None,
            training_ops: 42,
            eval_accuracy: None,
        };
        assert_eq!(u.clone(), u);
    }
}
