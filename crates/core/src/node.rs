//! The In-situ AI node: inference + autonomous diagnosis at the edge.

use crate::diagnosis::{diagnose, valuable_indices, DiagnosisPolicy, Verdict};
use crate::error::CoreError;
use crate::metrics::{DataMovementMeter, IMAGE_BYTES};
use crate::update::ModelUpdate;
use crate::Result;
use insitu_data::{Dataset, PermutationSet};
use insitu_nn::serialize::load_state_dict;
use insitu_nn::transfer::conv_prefix_identical;
use insitu_nn::{evaluate, JigsawNet, LabeledBatch, Sequential};
use insitu_tensor::{Rng, Tensor};
use insitu_telemetry as telemetry;

/// The outcome of processing one acquisition stage on the node.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The node's class prediction for every image.
    pub predictions: Vec<usize>,
    /// Per-image diagnosis verdicts.
    pub verdicts: Vec<Verdict>,
    /// Indices of the images the node decided to upload.
    pub valuable: Vec<usize>,
    /// Bytes the node sent to the Cloud for this stage.
    pub uploaded_bytes: u64,
}

impl StageOutcome {
    /// Fraction of the stage that was uploaded.
    pub fn upload_fraction(&self) -> f64 {
        if self.predictions.is_empty() {
            0.0
        } else {
            self.valuable.len() as f64 / self.predictions.len() as f64
        }
    }
}

/// An edge node running the two In-situ AI tasks over an IoT stream.
///
/// The node holds the deployed inference network and the unsupervised
/// diagnosis network; the first `shared_convs` convolutional layers of
/// the two hold identical weights (the invariant the WSS hardware's
/// shared weight buffers rely on), which
/// [`InsituNode::new`] verifies at construction.
#[derive(Debug)]
pub struct InsituNode {
    inference: Sequential,
    jigsaw: JigsawNet,
    perm_set: PermutationSet,
    policy: DiagnosisPolicy,
    shared_convs: usize,
    version: u32,
    movement: DataMovementMeter,
    rng: Rng,
}

impl InsituNode {
    /// Assembles a node from deployed models.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] if the first `shared_convs`
    /// conv layers of the inference network and the jigsaw trunk are
    /// not weight-identical.
    pub fn new(
        inference: Sequential,
        jigsaw: JigsawNet,
        perm_set: PermutationSet,
        policy: DiagnosisPolicy,
        shared_convs: usize,
        seed: u64,
    ) -> Result<Self> {
        if shared_convs > 0
            && !conv_prefix_identical(jigsaw.trunk(), &inference, shared_convs)?
        {
            return Err(CoreError::BadConfig {
                reason: format!(
                    "first {shared_convs} conv layers of inference and diagnosis differ; \
                     deploy via transfer_and_freeze first"
                ),
            });
        }
        Ok(InsituNode {
            inference,
            jigsaw,
            perm_set,
            policy,
            shared_convs,
            version: 0,
            movement: DataMovementMeter::new(),
            rng: Rng::seed_from(seed),
        })
    }

    /// The deployed model version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The diagnosis policy in force.
    pub fn policy(&self) -> DiagnosisPolicy {
        self.policy
    }

    /// Replaces the diagnosis policy.
    pub fn set_policy(&mut self, policy: DiagnosisPolicy) {
        self.policy = policy;
    }

    /// Number of weight-shared convolutional layers.
    pub fn shared_convs(&self) -> usize {
        self.shared_convs
    }

    /// Cumulative data-movement accounting.
    pub fn movement(&self) -> &DataMovementMeter {
        &self.movement
    }

    /// Borrow of the deployed inference network.
    pub fn inference(&self) -> &Sequential {
        &self.inference
    }

    /// Mutable borrow of the deployed inference network.
    pub fn inference_mut(&mut self) -> &mut Sequential {
        &mut self.inference
    }

    /// Borrow of the deployed diagnosis network.
    pub fn jigsaw(&self) -> &JigsawNet {
        &self.jigsaw
    }

    /// Warms every kernel workspace by pushing one zeroed batch through
    /// the inference network in Eval mode (the prediction is discarded).
    ///
    /// The conv workspaces and GEMM packing arenas inside the layers
    /// grow to their steady-state size on first use; running that first
    /// use here — before the stream starts — means the session's real
    /// batches hit the zero-allocation kernel path from image one.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements (a network that cannot
    /// consume the deployment's image shape).
    pub fn prewarm(&mut self, batch: usize) -> Result<()> {
        use insitu_nn::models::{CHANNELS, IMAGE_SIZE};
        let _t = telemetry::span_with("node.prewarm", || format!("bs{batch}"));
        let zeros = Tensor::zeros([batch.max(1), CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        self.inference.predict(&zeros)?;
        Ok(())
    }

    /// Held-out accuracy of the deployed inference model.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn accuracy_on(&mut self, data: &Dataset, batch: usize) -> Result<f32> {
        Ok(evaluate(
            &mut self.inference,
            LabeledBatch::new(data.images(), data.labels())?,
            batch,
        )?)
    }

    /// Processes one acquisition stage: runs inference on every image,
    /// diagnoses which images are valuable, and accounts the upload.
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn process_stage(&mut self, data: &Dataset, batch: usize) -> Result<StageOutcome> {
        let _t =
            telemetry::span_with("node.stage", || format!("{} images @bs{batch}", data.len()));
        // Inference task: predictions for the end application.
        let mut predictions = Vec::with_capacity(data.len());
        let indices: Vec<usize> = (0..data.len()).collect();
        {
            let _inf = telemetry::span("node.inference");
            for chunk in indices.chunks(batch.max(1)) {
                let sub = data.subset(chunk)?;
                let logits = self.inference.predict(sub.images())?;
                predictions.extend(insitu_nn::predictions(&logits)?);
            }
        }
        // Diagnosis task: select valuable data.
        let _diag = telemetry::span("node.diagnosis");
        let verdicts = diagnose(
            self.policy,
            &mut self.inference,
            &mut self.jigsaw,
            &self.perm_set,
            data,
            batch,
            &mut self.rng,
        )?;
        let valuable = valuable_indices(&verdicts);
        let uploaded_bytes = valuable.len() as u64 * IMAGE_BYTES;
        self.movement.record(data.len() as u64, valuable.len() as u64);
        Ok(StageOutcome { predictions, verdicts, valuable, uploaded_bytes })
    }

    /// Extracts the valuable subset chosen by
    /// [`process_stage`](InsituNode::process_stage) for upload.
    ///
    /// # Errors
    ///
    /// Returns an error if indices are out of range (a stale outcome).
    pub fn upload_payload(&self, data: &Dataset, outcome: &StageOutcome) -> Result<Dataset> {
        Ok(data.subset(&outcome.valuable)?)
    }

    /// Installs a model refresh from the Cloud.
    ///
    /// # Errors
    ///
    /// Returns an error if a snapshot does not match the deployed
    /// architecture.
    pub fn install_update(&mut self, update: &ModelUpdate) -> Result<()> {
        load_state_dict(&mut self.inference, &update.inference_params)?;
        if let Some(jp) = &update.jigsaw_params {
            load_state_dict(&mut self.jigsaw, jp)?;
        }
        self.version = update.version;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_data::Condition;
    use insitu_nn::models::{jigsaw_network, mini_alexnet};
    use insitu_nn::serialize::state_dict;
    use insitu_nn::transfer::transfer_and_freeze;

    fn node() -> InsituNode {
        let mut rng = Rng::seed_from(3);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let mut inference = mini_alexnet(4, &mut rng).unwrap();
        transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, 7).unwrap()
    }

    fn data() -> Dataset {
        Dataset::generate(12, 4, &Condition::ideal(), &mut Rng::seed_from(5)).unwrap()
    }

    #[test]
    fn construction_requires_shared_prefix() {
        let mut rng = Rng::seed_from(4);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let inference = mini_alexnet(4, &mut rng).unwrap(); // NOT transferred
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        assert!(matches!(
            InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, 7),
            Err(CoreError::BadConfig { .. })
        ));
    }

    #[test]
    fn process_stage_accounts_movement() {
        let mut n = node();
        let d = data();
        let outcome = n.process_stage(&d, 4).unwrap();
        assert_eq!(outcome.predictions.len(), d.len());
        assert_eq!(outcome.verdicts.len(), d.len());
        assert_eq!(
            outcome.uploaded_bytes,
            outcome.valuable.len() as u64 * IMAGE_BYTES
        );
        assert_eq!(n.movement().images_seen, d.len() as u64);
        assert_eq!(n.movement().images_uploaded, outcome.valuable.len() as u64);
        // Oracle policy: valuable == mispredicted.
        for (i, v) in outcome.verdicts.iter().enumerate() {
            assert_eq!(v.valuable, outcome.predictions[i] != d.labels()[i]);
        }
    }

    #[test]
    fn upload_payload_matches_valuable() {
        let mut n = node();
        let d = data();
        let outcome = n.process_stage(&d, 4).unwrap();
        let payload = n.upload_payload(&d, &outcome).unwrap();
        assert_eq!(payload.len(), outcome.valuable.len());
    }

    #[test]
    fn install_update_bumps_version_and_weights() {
        let mut n = node();
        let mut rng = Rng::seed_from(9);
        let mut other = mini_alexnet(4, &mut rng).unwrap();
        let update = ModelUpdate {
            version: 5,
            inference_params: state_dict(&mut other),
            jigsaw_params: None,
            training_ops: 1,
        };
        n.install_update(&update).unwrap();
        assert_eq!(n.version(), 5);
        assert_eq!(state_dict(n.inference_mut()), update.inference_params);
        // Mismatched snapshot rejected.
        let bad = ModelUpdate {
            version: 6,
            inference_params: vec![],
            jigsaw_params: None,
            training_ops: 0,
        };
        assert!(n.install_update(&bad).is_err());
        assert_eq!(n.version(), 5);
    }

    #[test]
    fn policy_accessors() {
        let mut n = node();
        assert_eq!(n.policy(), DiagnosisPolicy::Oracle);
        n.set_policy(DiagnosisPolicy::JigsawProbe { probes: 1 });
        assert_eq!(n.policy(), DiagnosisPolicy::JigsawProbe { probes: 1 });
        assert_eq!(n.shared_convs(), 3);
    }

    #[test]
    fn accuracy_in_unit_interval() {
        let mut n = node();
        let acc = n.accuracy_on(&data(), 4).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }
}
