//! The In-situ AI node: inference + autonomous diagnosis at the edge.

use crate::diagnosis::{
    diagnose, diagnose_with_logits, valuable_indices, DiagnosisPolicy, Verdict,
};
use crate::error::CoreError;
use crate::metrics::{DataMovementMeter, ScoreSummary, IMAGE_BYTES};
use crate::planner::{
    plan_with_measurements, precision_label, MeasuredProfile, NodePlan, PlanRequest, QuantProfile,
};
use crate::recorder;
use crate::update::ModelUpdate;
use crate::Result;
use insitu_data::{Dataset, PermutationSet};
use insitu_devices::NetworkShapes;
use insitu_nn::serialize::load_state_dict;
use insitu_nn::transfer::conv_prefix_identical;
use insitu_nn::{evaluate, JigsawNet, LabeledBatch, QuantizedNet, Sequential};
use insitu_tensor::{Rng, Tensor};
use insitu_telemetry as telemetry;
use serde::{Deserialize, Serialize};

/// Numeric precision of the node's inference forward pass.
///
/// `F32` is the reference path; `I8` runs the deployed inference
/// network through the symmetric fixed-point kernels (the paper's
/// FPGA PEs operate in fixed point — Section V). Diagnosis always runs
/// in f32: the jigsaw verdicts and the RNG stream are part of the
/// bitwise equivalence contract with
/// [`process_stage_unfused`](InsituNode::process_stage_unfused), and
/// the diagnosis task is not on the end-user latency path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum InferencePrecision {
    /// Full-precision f32 inference (the default and the reference).
    #[default]
    F32,
    /// Symmetric i8 fixed-point inference with i32 accumulation.
    /// Requires a calibrated [`QuantizedNet`] — see
    /// [`InsituNode::enable_quantized`].
    I8,
}

/// Configuration of the node's telemetry-driven online re-plan loop.
///
/// With a config installed (see [`InsituNode::enable_replan`]) and an
/// active [`NodePlan`], the node checks every `every_stages` fused
/// stages whether the **measured** p90 per-image latency (from the
/// `node.stage_per_image` histogram) has diverged from the plan's
/// predicted per-image cost by more than `divergence`× in either
/// direction — or, when `queue_depth_trigger` is set, whether the
/// ingest queue has backed up that far since the last check — and if
/// so re-runs the planner on the measurements
/// ([`plan_with_measurements`]), emitting a `node.replan` instant with
/// the before/after plans. With `allow_precision_flip` a re-plan may
/// switch [`InferencePrecision`] live: under queue pressure an f32
/// node folds the i8 speedup (the configured [`QuantProfile`]'s, or
/// the [`MeasuredProfile`]'s observed one) into the measured per-image
/// cost so the planner admits the faster fixed-point configuration,
/// and a comfortably fast i8 node flips back once the estimated f32
/// cost fits the deadline again. Requires telemetry to be enabled —
/// with it off there are no measurements and the check is skipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanConfig {
    /// Check cadence, in fused stages (`>= 1`).
    pub every_stages: u64,
    /// Divergence threshold θ (`> 1`): re-plan when the measured/
    /// predicted per-image ratio leaves `[1/θ, θ]`.
    pub divergence: f64,
    /// Re-plan when the peak ingest-queue depth observed since the
    /// last check (fed by [`InsituNode::note_ingest_depth`]) reaches
    /// this many frames; `None` disables the depth trigger.
    pub queue_depth_trigger: Option<u64>,
    /// Allow a re-plan to flip the inference precision F32↔I8 live
    /// (only ever toward i8 under queue pressure, and only when a
    /// calibrated quantized network exists).
    pub allow_precision_flip: bool,
    /// The deployment constraints to re-plan under.
    pub request: PlanRequest,
    /// Shapes of the deployed inference network.
    pub inference_shapes: NetworkShapes,
    /// Measured i8 trade-off to fold in, if the node is calibrated.
    pub quant: Option<QuantProfile>,
}

/// The outcome of processing one acquisition stage on the node.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// The node's class prediction for every image.
    pub predictions: Vec<usize>,
    /// Per-image diagnosis verdicts.
    pub verdicts: Vec<Verdict>,
    /// Indices of the images the node decided to upload.
    pub valuable: Vec<usize>,
    /// Bytes the node sent to the Cloud for this stage.
    pub uploaded_bytes: u64,
    /// Distribution of the stage's diagnosis scores.
    pub scores: ScoreSummary,
}

impl StageOutcome {
    /// Fraction of the stage that was uploaded.
    pub fn upload_fraction(&self) -> f64 {
        if self.predictions.is_empty() {
            0.0
        } else {
            self.valuable.len() as f64 / self.predictions.len() as f64
        }
    }
}

/// An edge node running the two In-situ AI tasks over an IoT stream.
///
/// The node holds the deployed inference network and the unsupervised
/// diagnosis network; the first `shared_convs` convolutional layers of
/// the two hold identical weights (the invariant the WSS hardware's
/// shared weight buffers rely on), which
/// [`InsituNode::new`] verifies at construction.
#[derive(Debug)]
pub struct InsituNode {
    inference: Sequential,
    jigsaw: JigsawNet,
    perm_set: PermutationSet,
    policy: DiagnosisPolicy,
    shared_convs: usize,
    version: u32,
    movement: DataMovementMeter,
    rng: Rng,
    precision: InferencePrecision,
    quantized: Option<QuantizedNet>,
    calib_images: Option<Tensor>,
    plan: Option<NodePlan>,
    replan: Option<ReplanConfig>,
    stages_processed: u64,
    replans: u64,
    precision_flips: u64,
    ingest_depth_peak: u64,
    injected_stage_delay: Option<std::time::Duration>,
}

impl InsituNode {
    /// Assembles a node from deployed models.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] if the first `shared_convs`
    /// conv layers of the inference network and the jigsaw trunk are
    /// not weight-identical.
    pub fn new(
        inference: Sequential,
        jigsaw: JigsawNet,
        perm_set: PermutationSet,
        policy: DiagnosisPolicy,
        shared_convs: usize,
        seed: u64,
    ) -> Result<Self> {
        if shared_convs > 0
            && !conv_prefix_identical(jigsaw.trunk(), &inference, shared_convs)?
        {
            return Err(CoreError::BadConfig {
                reason: format!(
                    "first {shared_convs} conv layers of inference and diagnosis differ; \
                     deploy via transfer_and_freeze first"
                ),
            });
        }
        Ok(InsituNode {
            inference,
            jigsaw,
            perm_set,
            policy,
            shared_convs,
            version: 0,
            movement: DataMovementMeter::new(),
            rng: Rng::seed_from(seed),
            precision: InferencePrecision::F32,
            quantized: None,
            calib_images: None,
            plan: None,
            replan: None,
            stages_processed: 0,
            replans: 0,
            precision_flips: 0,
            ingest_depth_peak: 0,
            injected_stage_delay: None,
        })
    }

    /// The precision the inference forward runs at.
    pub fn precision(&self) -> InferencePrecision {
        self.precision
    }

    /// Borrow of the calibrated quantized network, if one exists.
    pub fn quantized(&self) -> Option<&QuantizedNet> {
        self.quantized.as_ref()
    }

    /// Calibrates an i8 copy of the inference network over `calib`
    /// (a held-out split that should mirror the deployment's input
    /// distribution) and switches inference to
    /// [`InferencePrecision::I8`]. The calibration images are retained
    /// so [`install_update`](InsituNode::install_update) can
    /// recalibrate automatically after a model refresh.
    ///
    /// # Errors
    ///
    /// Returns an error if the calibration split is empty or does not
    /// flow through the network.
    pub fn enable_quantized(&mut self, calib: &Dataset) -> Result<()> {
        let _t = telemetry::span_with("node.quantize", || {
            format!("calibrate over {} images", calib.len())
        });
        self.quantized = Some(QuantizedNet::calibrate(&self.inference, calib.images())?);
        self.calib_images = Some(calib.images().clone());
        self.precision = InferencePrecision::I8;
        Ok(())
    }

    /// Switches the inference precision.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadConfig`] when asked for
    /// [`InferencePrecision::I8`] before
    /// [`enable_quantized`](InsituNode::enable_quantized) has
    /// calibrated a quantized network.
    pub fn set_precision(&mut self, precision: InferencePrecision) -> Result<()> {
        if precision == InferencePrecision::I8 && self.quantized.is_none() {
            return Err(CoreError::BadConfig {
                reason: "i8 inference requires calibration; call enable_quantized first"
                    .to_string(),
            });
        }
        self.precision = precision;
        Ok(())
    }

    /// Installs a planner decision as the node's active plan. The
    /// plan's precision is applied when the node can honor it (i8
    /// requires a calibrated quantized network; an i8 plan on an
    /// uncalibrated node keeps f32). Records a `mode_decision` flight
    /// event.
    pub fn install_plan(&mut self, plan: NodePlan) {
        let precision = match plan.precision {
            InferencePrecision::I8 if self.quantized.is_none() => InferencePrecision::F32,
            p => p,
        };
        self.precision = precision;
        recorder::record("mode_decision", plan.summary());
        self.plan = Some(plan);
    }

    /// The active plan, if one was installed.
    pub fn plan(&self) -> Option<&NodePlan> {
        self.plan.as_ref()
    }

    /// The inference batch size the active plan prescribes; `None`
    /// while unplanned (callers fall back to their own batch size).
    pub fn active_batch(&self) -> Option<usize> {
        self.plan.as_ref().map(|p| p.inference_batch)
    }

    /// Turns the online re-plan loop on. Takes effect once a plan is
    /// installed ([`InsituNode::install_plan`]) and telemetry is
    /// enabled; `every_stages` is clamped to at least 1.
    pub fn enable_replan(&mut self, mut config: ReplanConfig) {
        config.every_stages = config.every_stages.max(1);
        self.replan = Some(config);
    }

    /// How many times the node has re-planned itself.
    pub fn replans(&self) -> u64 {
        self.replans
    }

    /// How many times a re-plan flipped the effective inference
    /// precision (F32↔I8) live.
    pub fn precision_flips(&self) -> u64 {
        self.precision_flips
    }

    /// Feeds the re-plan loop an observed ingest-queue depth (frames
    /// waiting behind the one being processed). The peak since the
    /// last re-plan check is what `queue_depth_trigger` compares
    /// against; the runtime calls this once per popped frame.
    pub fn note_ingest_depth(&mut self, depth: u64) {
        self.ingest_depth_peak = self.ingest_depth_peak.max(depth);
    }

    /// Fused stages processed since construction.
    pub fn stages_processed(&self) -> u64 {
        self.stages_processed
    }

    /// Test/fault-injection hook: sleep this long inside every fused
    /// stage span, inflating the measured stage latency without
    /// touching predictions, verdicts or the RNG stream. This is how
    /// the end-to-end re-plan test perturbs a seeded session
    /// deterministically; `None` (the default) disables it.
    pub fn set_injected_stage_delay(&mut self, delay: Option<std::time::Duration>) {
        self.injected_stage_delay = delay;
    }

    /// The deployed model version.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The diagnosis policy in force.
    pub fn policy(&self) -> DiagnosisPolicy {
        self.policy
    }

    /// Replaces the diagnosis policy.
    pub fn set_policy(&mut self, policy: DiagnosisPolicy) {
        self.policy = policy;
    }

    /// Number of weight-shared convolutional layers.
    pub fn shared_convs(&self) -> usize {
        self.shared_convs
    }

    /// Cumulative data-movement accounting.
    pub fn movement(&self) -> &DataMovementMeter {
        &self.movement
    }

    /// Borrow of the deployed inference network.
    pub fn inference(&self) -> &Sequential {
        &self.inference
    }

    /// Mutable borrow of the deployed inference network.
    pub fn inference_mut(&mut self) -> &mut Sequential {
        &mut self.inference
    }

    /// Borrow of the deployed diagnosis network.
    pub fn jigsaw(&self) -> &JigsawNet {
        &self.jigsaw
    }

    /// Mutable borrow of the deployed diagnosis network.
    pub fn jigsaw_mut(&mut self) -> &mut JigsawNet {
        &mut self.jigsaw
    }

    /// Warms every kernel workspace by pushing zeroed batches through
    /// **both** deployed networks in Eval mode (outputs discarded).
    ///
    /// The conv workspaces and GEMM packing arenas inside the layers
    /// grow to their steady-state size on first use; running that first
    /// use here — before the stream starts — means the session's real
    /// batches hit the zero-allocation kernel path from image one. The
    /// diagnosis warm-up covers both probe shapes the stage can take:
    /// the folded full forward (the unfused reference) and the
    /// tile-embedding fast path (trunk at tile-batch size plus the
    /// feature-gather head pass).
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements (a network that cannot
    /// consume the deployment's image shape).
    pub fn prewarm(&mut self, batch: usize) -> Result<()> {
        use insitu_nn::models::{CHANNELS, IMAGE_SIZE, PATCHES, PATCH_SIZE};
        let _t = telemetry::span_with("node.prewarm", || format!("bs{batch}"));
        let zeros = Tensor::zeros([batch.max(1), CHANNELS, IMAGE_SIZE, IMAGE_SIZE]);
        self.inference.predict(&zeros)?;
        if let Some(q) = &mut self.quantized {
            q.predict(&zeros)?;
        }
        let probe = Tensor::zeros([1, PATCHES, CHANNELS, PATCH_SIZE, PATCH_SIZE]);
        self.jigsaw.predict(&probe)?;
        let tiles = Tensor::zeros([PATCHES, CHANNELS, PATCH_SIZE, PATCH_SIZE]);
        let feats = self.jigsaw.tile_features(&tiles)?;
        let identity: Vec<u8> = (0..PATCHES as u8).collect();
        self.jigsaw.predict_from_features(&feats, &identity)?;
        // The fused stage drives the head through its batched entry
        // point (one GEMM over all probes of an image) — warm that
        // shape too, at the probe count the active policy will use.
        let probes = match self.policy {
            DiagnosisPolicy::JigsawProbe { probes } => probes.max(1),
            _ => 1,
        };
        let perms: Vec<&[u8]> = (0..probes).map(|_| identity.as_slice()).collect();
        self.jigsaw.predict_from_features_batch(&feats, &perms)?;
        Ok(())
    }

    /// Held-out accuracy of the deployed inference model, evaluated at
    /// the node's current [`InferencePrecision`].
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn accuracy_on(&mut self, data: &Dataset, batch: usize) -> Result<f32> {
        if let (Some(q), InferencePrecision::I8) = (&mut self.quantized, self.precision) {
            return Ok(q.accuracy_on(data.images(), data.labels(), batch)?);
        }
        Ok(evaluate(
            &mut self.inference,
            LabeledBatch::new(data.images(), data.labels())?,
            batch,
        )?)
    }

    /// Processes one acquisition stage: runs inference on every image,
    /// diagnoses which images are valuable, and accounts the upload.
    ///
    /// This is the **co-running fast path**: the inference forward runs
    /// exactly once per image and its logits are handed to the
    /// diagnosis policies as a per-stage cache, and the jigsaw policies
    /// evaluate every probe permutation from one cached trunk pass per
    /// image (see [`diagnose_with_logits`]). At
    /// [`InferencePrecision::F32`] predictions and verdicts are bitwise
    /// identical to the unfused reference
    /// ([`process_stage_unfused`](InsituNode::process_stage_unfused)).
    ///
    /// At [`InferencePrecision::I8`] the inference forward runs on the
    /// calibrated fixed-point network; its logits feed the application
    /// predictions *and* the logit-consuming diagnosis policies, while
    /// the jigsaw network stays f32. The contract there is statistical,
    /// not bitwise: held-out accuracy within two points of f32 (see
    /// the `quantized_inference` integration tests).
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn process_stage(&mut self, data: &Dataset, batch: usize) -> Result<StageOutcome> {
        let _t =
            telemetry::span_with("node.stage", || format!("{} images @bs{batch}", data.len()));
        // Stage timing for the measured planner profile. Behind the
        // single relaxed `enabled` check so the disabled path stays
        // clock-free.
        let stage_start = telemetry::enabled().then(std::time::Instant::now);
        let label = precision_label(self.effective_precision());
        // Inference task: predictions for the end application. The
        // per-chunk logits double as the diagnosis logit cache.
        let mut predictions = Vec::with_capacity(data.len());
        let bs = batch.max(1);
        let mut logit_chunks = Vec::with_capacity(data.len().div_ceil(bs));
        {
            let _inf = telemetry::span("node.inference");
            let mut start = 0;
            while start < data.len() {
                let end = (start + bs).min(data.len());
                let sub = data.subset_range(start..end)?;
                let chunk_start = stage_start.map(|_| std::time::Instant::now());
                let logits = match (&mut self.quantized, self.precision) {
                    (Some(q), InferencePrecision::I8) => q.predict(sub.images())?,
                    _ => self.inference.predict(sub.images())?,
                };
                if let Some(t0) = chunk_start {
                    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    telemetry::hist_record("node.infer_chunk", label, ns);
                }
                predictions.extend(insitu_nn::predictions(&logits)?);
                logit_chunks.push(logits);
                start = end;
            }
        }
        // Diagnosis task: select valuable data, reusing the shared work.
        let verdicts = {
            let _diag = telemetry::span("node.diagnosis");
            diagnose_with_logits(
                self.policy,
                &logit_chunks,
                &mut self.jigsaw,
                &self.perm_set,
                data,
                &mut self.rng,
            )?
        };
        // Fault-injection hook: inflate the measured stage latency
        // (inside the stage span, before the per-image sample lands).
        if let Some(delay) = self.injected_stage_delay {
            std::thread::sleep(delay);
        }
        if let Some(t0) = stage_start {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            telemetry::hist_record(
                "node.stage_per_image",
                label,
                ns / data.len().max(1) as u64,
            );
        }
        let outcome = self.finish_stage(data, predictions, verdicts)?;
        self.stages_processed += 1;
        self.maybe_replan();
        Ok(outcome)
    }

    /// The precision the next fused stage will actually run at (i8
    /// requires the calibrated network to exist).
    fn effective_precision(&self) -> InferencePrecision {
        match (&self.quantized, self.precision) {
            (Some(_), InferencePrecision::I8) => InferencePrecision::I8,
            _ => InferencePrecision::F32,
        }
    }

    /// The online re-plan check: every `every_stages` fused stages,
    /// compare the measured p90 per-image latency with the active
    /// plan's prediction and re-plan from the measurements when they
    /// disagree by more than the configured divergence factor — or
    /// when the ingest queue has backed up past `queue_depth_trigger`
    /// since the last check. A re-plan may also flip the inference
    /// precision live (see [`ReplanConfig::allow_precision_flip`]).
    fn maybe_replan(&mut self) {
        let Some(cfg) = self.replan.clone() else { return };
        if !telemetry::enabled()
            || !self.stages_processed.is_multiple_of(cfg.every_stages)
            || self.plan.is_none()
        {
            return;
        }
        let plan = self.plan.clone().expect("checked above");
        if plan.inference_batch == 0 || plan.predicted_latency_s <= 0.0 {
            return;
        }
        let snap = telemetry::snapshot();
        let effective = self.effective_precision();
        let Some(measured) = MeasuredProfile::from_snapshot(&snap, effective) else {
            return;
        };
        // The depth peak resets at every check: pressure must persist
        // into the next window to trigger again.
        let depth_peak = std::mem::take(&mut self.ingest_depth_peak);
        let depth_pressure = cfg.queue_depth_trigger.is_some_and(|t| depth_peak >= t.max(1));
        let predicted_per_image = plan.predicted_latency_s / plan.inference_batch as f64;
        let ratio = measured.per_image_p90_s / predicted_per_image;
        let theta = cfg.divergence.max(1.0 + 1e-9);
        let diverged = !(1.0 / theta..=theta).contains(&ratio);
        if !diverged && !depth_pressure {
            return;
        }
        // Pick the precision to plan for. Under queue pressure an f32
        // node with a calibrated i8 network rescales the measured
        // per-image cost by the i8 speedup so the planner admits the
        // fixed-point configuration; a comfortably fast i8 node
        // reverses the rescale and flips back once the estimated f32
        // cost still meets the deadline.
        let mut measured_for_plan = measured;
        let mut quant = cfg.quant;
        if cfg.allow_precision_flip && self.quantized.is_some() {
            let speedup = cfg
                .quant
                .map(|q| q.speedup)
                .or(measured.i8_speedup)
                .filter(|s| s.is_finite() && *s > 1.0);
            match (effective, speedup) {
                (InferencePrecision::F32, Some(s)) if depth_pressure => {
                    measured_for_plan.per_image_p50_s /= s;
                    measured_for_plan.per_image_p90_s /= s;
                    quant = Some(
                        cfg.quant.unwrap_or(QuantProfile { speedup: s, accuracy_delta: 0.0 }),
                    );
                }
                (InferencePrecision::I8, Some(s))
                    if !depth_pressure
                        && ratio < 1.0
                        && measured.per_image_p90_s * s <= cfg.request.t_user =>
                {
                    measured_for_plan.per_image_p50_s *= s;
                    measured_for_plan.per_image_p90_s *= s;
                    quant = None;
                }
                _ => {}
            }
        }
        let cause = if depth_pressure {
            format!("queue depth {depth_peak}")
        } else {
            format!("p90 ratio {ratio:.2}")
        };
        match plan_with_measurements(
            &cfg.request,
            &cfg.inference_shapes,
            quant.as_ref(),
            &measured_for_plan,
        ) {
            Ok(new_plan) => {
                let before = plan.summary();
                let after = new_plan.summary();
                telemetry::instant_with("node.replan", || {
                    format!("{before} -> {after} ({cause})")
                });
                recorder::record("replan", format!("{before} -> {after} ({cause})"));
                self.replans += 1;
                self.install_plan(new_plan);
                let now = self.effective_precision();
                if now != effective {
                    self.precision_flips += 1;
                    let flip = format!(
                        "{} -> {} ({cause})",
                        precision_label(effective),
                        precision_label(now)
                    );
                    telemetry::instant_with("node.precision_flip", || flip.clone());
                    recorder::record("precision_flip", flip);
                }
            }
            Err(e) => {
                // The measurements admit nothing: keep the old plan
                // but leave a trace of the failed attempt.
                telemetry::instant_with("node.replan_infeasible", || e.to_string());
                recorder::record("replan_infeasible", e.to_string());
            }
        }
    }

    /// Processes one stage on the **unfused reference path**: the
    /// diagnosis policies recompute the inference forward and run one
    /// full jigsaw trunk pass per probe, exactly as the node did before
    /// the activation-reuse layer existed.
    ///
    /// Kept public as the differential-testing oracle and the "before"
    /// side of the `node_snapshot` benchmark;
    /// [`process_stage`](InsituNode::process_stage) must stay bitwise
    /// identical to it (same predictions, verdict bits and RNG stream).
    ///
    /// # Errors
    ///
    /// Returns an error on shape disagreements.
    pub fn process_stage_unfused(&mut self, data: &Dataset, batch: usize) -> Result<StageOutcome> {
        let _t = telemetry::span_with("node.stage_unfused", || {
            format!("{} images @bs{batch}", data.len())
        });
        let mut predictions = Vec::with_capacity(data.len());
        let bs = batch.max(1);
        {
            let _inf = telemetry::span("node.inference");
            let mut start = 0;
            while start < data.len() {
                let end = (start + bs).min(data.len());
                let sub = data.subset_range(start..end)?;
                let logits = self.inference.predict(sub.images())?;
                predictions.extend(insitu_nn::predictions(&logits)?);
                start = end;
            }
        }
        let _diag = telemetry::span("node.diagnosis");
        let verdicts = diagnose(
            self.policy,
            &mut self.inference,
            &mut self.jigsaw,
            &self.perm_set,
            data,
            batch,
            &mut self.rng,
        )?;
        self.finish_stage(data, predictions, verdicts)
    }

    /// Shared stage epilogue: upload selection and movement accounting.
    fn finish_stage(
        &mut self,
        data: &Dataset,
        predictions: Vec<usize>,
        verdicts: Vec<Verdict>,
    ) -> Result<StageOutcome> {
        let valuable = valuable_indices(&verdicts);
        let uploaded_bytes = valuable.len() as u64 * IMAGE_BYTES;
        self.movement.record(data.len() as u64, valuable.len() as u64);
        telemetry::hist_record("node.upload_bytes", "", uploaded_bytes);
        recorder::record(
            "stage",
            format!("{} images, {} uploaded (v{})", data.len(), valuable.len(), self.version),
        );
        let score_buf: Vec<f32> = verdicts.iter().map(|v| v.score).collect();
        let scores = ScoreSummary::from_scores(&score_buf);
        Ok(StageOutcome { predictions, verdicts, valuable, uploaded_bytes, scores })
    }

    /// Extracts the valuable subset chosen by
    /// [`process_stage`](InsituNode::process_stage) for upload.
    ///
    /// # Errors
    ///
    /// Returns an error if indices are out of range (a stale outcome).
    pub fn upload_payload(&self, data: &Dataset, outcome: &StageOutcome) -> Result<Dataset> {
        Ok(data.subset(&outcome.valuable)?)
    }

    /// Installs a model refresh from the Cloud. If the node is running
    /// quantized inference, the quantized network is recalibrated
    /// against the retained calibration split — fixed-point scales are
    /// only valid for the weights they were measured with.
    ///
    /// # Errors
    ///
    /// Returns an error if a snapshot does not match the deployed
    /// architecture.
    pub fn install_update(&mut self, update: &ModelUpdate) -> Result<()> {
        load_state_dict(&mut self.inference, &update.inference_params)?;
        if let Some(jp) = &update.jigsaw_params {
            load_state_dict(&mut self.jigsaw, jp)?;
        }
        if self.quantized.is_some() {
            if let Some(calib) = &self.calib_images {
                let _t = telemetry::span("node.quantize_refresh");
                self.quantized = Some(QuantizedNet::calibrate(&self.inference, calib)?);
            }
        }
        self.version = update.version;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_data::Condition;
    use insitu_nn::models::{jigsaw_network, mini_alexnet};
    use insitu_nn::serialize::state_dict;
    use insitu_nn::transfer::transfer_and_freeze;

    fn node() -> InsituNode {
        let mut rng = Rng::seed_from(3);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let mut inference = mini_alexnet(4, &mut rng).unwrap();
        transfer_and_freeze(jigsaw.trunk(), &mut inference, 3, 3).unwrap();
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, 7).unwrap()
    }

    fn data() -> Dataset {
        Dataset::generate(12, 4, &Condition::ideal(), &mut Rng::seed_from(5)).unwrap()
    }

    #[test]
    fn construction_requires_shared_prefix() {
        let mut rng = Rng::seed_from(4);
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let inference = mini_alexnet(4, &mut rng).unwrap(); // NOT transferred
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        assert!(matches!(
            InsituNode::new(inference, jigsaw, set, DiagnosisPolicy::Oracle, 3, 7),
            Err(CoreError::BadConfig { .. })
        ));
    }

    #[test]
    fn process_stage_accounts_movement() {
        let mut n = node();
        let d = data();
        let outcome = n.process_stage(&d, 4).unwrap();
        assert_eq!(outcome.predictions.len(), d.len());
        assert_eq!(outcome.verdicts.len(), d.len());
        assert_eq!(
            outcome.uploaded_bytes,
            outcome.valuable.len() as u64 * IMAGE_BYTES
        );
        assert_eq!(n.movement().images_seen, d.len() as u64);
        assert_eq!(n.movement().images_uploaded, outcome.valuable.len() as u64);
        // Oracle policy: valuable == mispredicted.
        for (i, v) in outcome.verdicts.iter().enumerate() {
            assert_eq!(v.valuable, outcome.predictions[i] != d.labels()[i]);
        }
    }

    #[test]
    fn upload_payload_matches_valuable() {
        let mut n = node();
        let d = data();
        let outcome = n.process_stage(&d, 4).unwrap();
        let payload = n.upload_payload(&d, &outcome).unwrap();
        assert_eq!(payload.len(), outcome.valuable.len());
    }

    #[test]
    fn install_update_bumps_version_and_weights() {
        let mut n = node();
        let mut rng = Rng::seed_from(9);
        let mut other = mini_alexnet(4, &mut rng).unwrap();
        let update = ModelUpdate {
            version: 5,
            inference_params: state_dict(&mut other),
            jigsaw_params: None,
            training_ops: 1,
            eval_accuracy: None,
        };
        n.install_update(&update).unwrap();
        assert_eq!(n.version(), 5);
        assert_eq!(state_dict(n.inference_mut()), update.inference_params);
        // Mismatched snapshot rejected.
        let bad = ModelUpdate {
            version: 6,
            inference_params: vec![],
            jigsaw_params: None,
            training_ops: 0,
            eval_accuracy: None,
        };
        assert!(n.install_update(&bad).is_err());
        assert_eq!(n.version(), 5);
    }

    #[test]
    fn policy_accessors() {
        let mut n = node();
        assert_eq!(n.policy(), DiagnosisPolicy::Oracle);
        n.set_policy(DiagnosisPolicy::JigsawProbe { probes: 1 });
        assert_eq!(n.policy(), DiagnosisPolicy::JigsawProbe { probes: 1 });
        assert_eq!(n.shared_convs(), 3);
    }

    #[test]
    fn accuracy_in_unit_interval() {
        let mut n = node();
        let acc = n.accuracy_on(&data(), 4).unwrap();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn i8_precision_requires_calibration() {
        let mut n = node();
        assert_eq!(n.precision(), InferencePrecision::F32);
        assert!(matches!(
            n.set_precision(InferencePrecision::I8),
            Err(CoreError::BadConfig { .. })
        ));
        assert_eq!(n.precision(), InferencePrecision::F32);
    }

    #[test]
    fn enable_quantized_switches_precision_and_f32_reverts_bitwise() {
        let d = data();
        let calib = Dataset::generate(4, 4, &Condition::ideal(), &mut Rng::seed_from(11)).unwrap();
        let mut n = node();
        n.enable_quantized(&calib).unwrap();
        assert_eq!(n.precision(), InferencePrecision::I8);
        assert!(n.quantized().is_some());
        n.prewarm(4).unwrap();
        let quantized = n.process_stage(&d, 4).unwrap();
        assert_eq!(quantized.predictions.len(), d.len());

        // Dropping back to f32 restores the reference stage bitwise
        // (same predictions and verdict stream as a never-quantized
        // node at the same RNG position).
        n.set_precision(InferencePrecision::F32).unwrap();
        let mut reference2 = node();
        reference2.process_stage(&d, 4).unwrap(); // advance RNG like `n`
        let a = n.process_stage(&d, 4).unwrap();
        let b = reference2.process_stage(&d, 4).unwrap();
        assert_eq!(a.predictions, b.predictions);
        assert_eq!(
            a.verdicts.iter().map(|v| (v.valuable, v.score.to_bits())).collect::<Vec<_>>(),
            b.verdicts.iter().map(|v| (v.valuable, v.score.to_bits())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn install_update_recalibrates_quantized_net() {
        let mut n = node();
        let calib = Dataset::generate(4, 4, &Condition::ideal(), &mut Rng::seed_from(13)).unwrap();
        n.enable_quantized(&calib).unwrap();
        let before: Vec<f32> =
            n.quantized().unwrap().calibration().iter().map(|c| c.in_scale).collect();
        let mut rng = Rng::seed_from(17);
        let mut other = mini_alexnet(4, &mut rng).unwrap();
        let update = ModelUpdate {
            version: 2,
            inference_params: state_dict(&mut other),
            jigsaw_params: None,
            training_ops: 1,
            eval_accuracy: None,
        };
        n.install_update(&update).unwrap();
        // Still quantized, still runnable, and the scales were re-measured.
        assert_eq!(n.precision(), InferencePrecision::I8);
        let after: Vec<f32> =
            n.quantized().unwrap().calibration().iter().map(|c| c.in_scale).collect();
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after, "update with new weights must refresh the scales");
        n.process_stage(&data(), 4).unwrap();
    }
}
