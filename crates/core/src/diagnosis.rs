//! The autonomous data-diagnosis task.
//!
//! The diagnosis task decides, **without labels**, whether an incoming
//! image is "valuable" — i.e. likely to be unrecognized by the current
//! model and therefore worth uploading for incremental training. The
//! paper's mechanism is the unsupervised context-prediction network:
//! if the network cannot recover a known tile permutation, its learned
//! features do not capture the sample, so the sample is out of the
//! learned distribution.
//!
//! Several policies are provided (the paper fixes one; the extras form
//! the design-space ablation in `insitu-experiments`):
//!
//! * [`DiagnosisPolicy::JigsawProbe`] — apply `probes` random known
//!   permutations; the sample is valuable if the network misidentifies
//!   more than half of them.
//! * [`DiagnosisPolicy::JigsawConfidence`] — valuable if the softmax
//!   probability assigned to the *true* permutation falls below a
//!   threshold (a graded version of the probe).
//! * [`DiagnosisPolicy::InferenceConfidence`] — valuable if the
//!   inference network's top softmax probability falls below a
//!   threshold (no second network; a classical baseline).
//! * [`DiagnosisPolicy::Oracle`] — valuable iff the inference
//!   prediction is wrong. Needs labels; the upper bound a deployed
//!   system cannot use (labels don't exist in situ).

use crate::error::CoreError;
use crate::Result;
use insitu_data::{jigsaw::normalize_tiles, jigsaw::permute_tiles, patchify, Dataset, PermutationSet};
use insitu_nn::{confidence, softmax, JigsawNet, Sequential};
use insitu_telemetry as telemetry;
use insitu_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// How the node decides which samples are valuable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DiagnosisPolicy {
    /// Majority vote over `probes` jigsaw probes.
    JigsawProbe {
        /// Number of random permutations probed per image.
        probes: usize,
    },
    /// True-permutation softmax probability below `threshold`.
    JigsawConfidence {
        /// Valuable when `p(true permutation) < threshold`.
        threshold: f32,
    },
    /// Inference top-1 softmax probability below `threshold`.
    InferenceConfidence {
        /// Valuable when `max softmax < threshold`.
        threshold: f32,
    },
    /// Ground-truth comparison (upper bound; unavailable in situ).
    Oracle,
}

impl Default for DiagnosisPolicy {
    fn default() -> Self {
        DiagnosisPolicy::JigsawProbe { probes: 3 }
    }
}

/// Per-sample diagnosis outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Whether the sample should be uploaded for incremental training.
    pub valuable: bool,
    /// Policy-specific confidence score in `[0, 1]`; higher means the
    /// node is more certain the sample is *recognized*.
    pub score: f32,
}

/// Runs a diagnosis policy over a dataset — the **unfused reference
/// path**.
///
/// `inference` is consulted by the inference-side policies;
/// `jigsaw`/`set` by the unsupervised policies. Inputs are processed in
/// batches of `batch_size`.
///
/// Every forward pass is recomputed from scratch: the inference-side
/// policies re-run the inference network and the jigsaw policies run
/// the full trunk once per probe. The co-running fast path
/// ([`diagnose_with_logits`]) must stay bitwise identical to this
/// function; it is kept public as the differential-testing and
/// benchmarking oracle.
///
/// # Errors
///
/// Returns an error on shape disagreements between the networks and the
/// data.
pub fn diagnose(
    policy: DiagnosisPolicy,
    inference: &mut Sequential,
    jigsaw: &mut JigsawNet,
    set: &PermutationSet,
    data: &Dataset,
    batch_size: usize,
    rng: &mut Rng,
) -> Result<Vec<Verdict>> {
    match policy {
        DiagnosisPolicy::Oracle => oracle(inference, data, batch_size),
        DiagnosisPolicy::InferenceConfidence { threshold } => {
            inference_confidence(inference, data, batch_size, threshold)
        }
        DiagnosisPolicy::JigsawProbe { probes } => {
            if probes == 0 {
                return Err(CoreError::BadConfig {
                    reason: "JigsawProbe requires at least one probe".into(),
                });
            }
            jigsaw_probe(jigsaw, set, data, batch_size, probes, rng)
        }
        DiagnosisPolicy::JigsawConfidence { threshold } => {
            jigsaw_confidence(jigsaw, set, data, batch_size, threshold, rng)
        }
    }
}

/// Runs a diagnosis policy reusing the co-running stage's work — the
/// **fused fast path**.
///
/// `logit_chunks` are the inference logits the caller already computed
/// for this stage, one tensor per consecutive batch (the stage's logit
/// cache); the inference-side policies read them instead of re-running
/// the network. The jigsaw policies take the tile-embedding fast path:
/// one trunk pass over the canonical tiles per image
/// ([`JigsawNet::tile_features`]), then every probe permutation is a
/// row gather plus a head pass
/// ([`JigsawNet::predict_from_features`]).
///
/// Verdicts — including the `f32` score bits and the RNG draw order —
/// are bitwise identical to [`diagnose`] on the same inputs.
///
/// # Errors
///
/// Returns an error on shape disagreements, or
/// [`CoreError::BadConfig`] if the cached logit rows do not cover the
/// dataset exactly or a [`DiagnosisPolicy::JigsawProbe`] has zero
/// probes.
pub fn diagnose_with_logits(
    policy: DiagnosisPolicy,
    logit_chunks: &[Tensor],
    jigsaw: &mut JigsawNet,
    set: &PermutationSet,
    data: &Dataset,
    rng: &mut Rng,
) -> Result<Vec<Verdict>> {
    match policy {
        DiagnosisPolicy::Oracle => {
            let _r = telemetry::span_with("node.reuse", || {
                format!("logit_cache oracle {} images", data.len())
            });
            oracle_from_logits(logit_chunks, data)
        }
        DiagnosisPolicy::InferenceConfidence { threshold } => {
            let _r = telemetry::span_with("node.reuse", || {
                format!("logit_cache confidence {} images", data.len())
            });
            inference_confidence_from_logits(logit_chunks, data, threshold)
        }
        DiagnosisPolicy::JigsawProbe { probes } => {
            if probes == 0 {
                return Err(CoreError::BadConfig {
                    reason: "JigsawProbe requires at least one probe".into(),
                });
            }
            let _r = telemetry::span_with("node.reuse", || {
                format!("tile_embeddings {} images x{probes} probes", data.len())
            });
            jigsaw_probe_fused(jigsaw, set, data, probes, rng)
        }
        DiagnosisPolicy::JigsawConfidence { threshold } => {
            let _r = telemetry::span_with("node.reuse", || {
                format!("tile_embeddings {} images x1 probe", data.len())
            });
            jigsaw_confidence_fused(jigsaw, set, data, threshold, rng)
        }
    }
}

fn oracle(
    inference: &mut Sequential,
    data: &Dataset,
    batch_size: usize,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    let bs = batch_size.max(1);
    let mut start = 0;
    while start < data.len() {
        let end = (start + bs).min(data.len());
        let sub = data.subset_range(start..end)?;
        let logits = inference.predict(sub.images())?;
        let preds = insitu_nn::predictions(&logits)?;
        for (p, &label) in preds.iter().zip(sub.labels()) {
            let correct = *p == label;
            verdicts.push(Verdict { valuable: !correct, score: f32::from(u8::from(correct)) });
        }
        start = end;
    }
    Ok(verdicts)
}

/// [`oracle`] over cached logits: no dataset copies, no forward pass.
fn oracle_from_logits(logit_chunks: &[Tensor], data: &Dataset) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    let mut offset = 0usize;
    for logits in logit_chunks {
        let preds = insitu_nn::predictions(logits)?;
        let labels = data.labels().get(offset..offset + preds.len()).ok_or_else(|| {
            CoreError::BadConfig {
                reason: format!(
                    "logit cache covers more rows than the {}-image stage",
                    data.len()
                ),
            }
        })?;
        for (p, &label) in preds.iter().zip(labels) {
            let correct = *p == label;
            verdicts.push(Verdict { valuable: !correct, score: f32::from(u8::from(correct)) });
        }
        offset += preds.len();
    }
    check_covered(offset, data.len())?;
    Ok(verdicts)
}

fn inference_confidence(
    inference: &mut Sequential,
    data: &Dataset,
    batch_size: usize,
    threshold: f32,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    let bs = batch_size.max(1);
    let mut start = 0;
    while start < data.len() {
        let end = (start + bs).min(data.len());
        let sub = data.subset_range(start..end)?;
        let logits = inference.predict(sub.images())?;
        for c in confidence(&logits)? {
            verdicts.push(Verdict { valuable: c < threshold, score: c });
        }
        start = end;
    }
    Ok(verdicts)
}

/// [`inference_confidence`] over cached logits.
fn inference_confidence_from_logits(
    logit_chunks: &[Tensor],
    data: &Dataset,
    threshold: f32,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    for logits in logit_chunks {
        for c in confidence(logits)? {
            verdicts.push(Verdict { valuable: c < threshold, score: c });
        }
    }
    check_covered(verdicts.len(), data.len())?;
    Ok(verdicts)
}

/// The logit cache must cover the stage exactly: a silent mismatch
/// would misalign verdicts and images.
fn check_covered(rows: usize, images: usize) -> Result<()> {
    if rows != images {
        return Err(CoreError::BadConfig {
            reason: format!("logit cache has {rows} rows for a {images}-image stage"),
        });
    }
    Ok(())
}

/// Builds the probe input for one image: tiles shuffled by `perm`.
fn probe_input(image: &Tensor, perm: &[u8; 9]) -> Result<Tensor> {
    let tiles = normalize_tiles(&patchify(image)?)?;
    let shuffled = permute_tiles(&tiles, perm)?;
    let d = shuffled.dims().to_vec();
    Ok(shuffled.reshape([1, d[0], d[1], d[2], d[3]]).map_err(insitu_nn::NnError::from)?)
}

fn jigsaw_probe(
    jigsaw: &mut JigsawNet,
    set: &PermutationSet,
    data: &Dataset,
    _batch_size: usize,
    probes: usize,
    rng: &mut Rng,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let image = data.image(i)?;
        let mut correct = 0usize;
        for _ in 0..probes {
            let cls = rng.below(set.len());
            let input = probe_input(&image, set.permutation(cls))?;
            let logits = jigsaw.predict(&input)?;
            let pred = insitu_nn::predictions(&logits)?[0];
            if pred == cls {
                correct += 1;
            }
        }
        let score = correct as f32 / probes as f32;
        verdicts.push(Verdict { valuable: 2 * correct < probes || correct == 0, score });
    }
    Ok(verdicts)
}

fn jigsaw_confidence(
    jigsaw: &mut JigsawNet,
    set: &PermutationSet,
    data: &Dataset,
    _batch_size: usize,
    threshold: f32,
    rng: &mut Rng,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let image = data.image(i)?;
        let cls = rng.below(set.len());
        let input = probe_input(&image, set.permutation(cls))?;
        let logits = jigsaw.predict(&input)?;
        let probs = softmax(&logits)?;
        let p_true = probs.at(&[0, cls]).map_err(insitu_nn::NnError::from)?;
        verdicts.push(Verdict { valuable: p_true < threshold, score: p_true });
    }
    Ok(verdicts)
}

/// Canonical-order normalized tiles of one image — the shared input of
/// both jigsaw fast paths.
fn canonical_tiles(data: &Dataset, i: usize) -> Result<Tensor> {
    Ok(normalize_tiles(&patchify(&data.image(i)?)?)?)
}

/// [`jigsaw_probe`] via the tile-embedding fast path: one trunk pass
/// per image, then **one batched head pass** over all `probes`
/// permutations ([`JigsawNet::predict_from_features_batch`]) instead
/// of one head pass per probe. All probe classes are drawn *before*
/// the head runs — predictions consume no randomness, so the RNG
/// stream is consumed in exactly the reference order — and the batched
/// head is row-equivariant, so verdicts are bitwise identical to the
/// reference.
fn jigsaw_probe_fused(
    jigsaw: &mut JigsawNet,
    set: &PermutationSet,
    data: &Dataset,
    probes: usize,
    rng: &mut Rng,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    let mut classes = Vec::with_capacity(probes);
    let mut perms: Vec<&[u8]> = Vec::with_capacity(probes);
    for i in 0..data.len() {
        let feats = jigsaw.tile_features(&canonical_tiles(data, i)?)?;
        classes.clear();
        classes.extend((0..probes).map(|_| rng.below(set.len())));
        perms.clear();
        perms.extend(classes.iter().map(|&cls| set.permutation(cls) as &[u8]));
        let logits = jigsaw.predict_from_features_batch(&feats, &perms)?;
        let preds = insitu_nn::predictions(&logits)?;
        let correct = preds.iter().zip(&classes).filter(|(p, cls)| *p == *cls).count();
        let score = correct as f32 / probes as f32;
        verdicts.push(Verdict { valuable: 2 * correct < probes || correct == 0, score });
    }
    Ok(verdicts)
}

/// [`jigsaw_confidence`] via the tile-embedding fast path.
fn jigsaw_confidence_fused(
    jigsaw: &mut JigsawNet,
    set: &PermutationSet,
    data: &Dataset,
    threshold: f32,
    rng: &mut Rng,
) -> Result<Vec<Verdict>> {
    let mut verdicts = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let feats = jigsaw.tile_features(&canonical_tiles(data, i)?)?;
        let cls = rng.below(set.len());
        let logits = jigsaw.predict_from_features(&feats, set.permutation(cls))?;
        let probs = softmax(&logits)?;
        let p_true = probs.at(&[0, cls]).map_err(insitu_nn::NnError::from)?;
        verdicts.push(Verdict { valuable: p_true < threshold, score: p_true });
    }
    Ok(verdicts)
}

/// Indices of the valuable samples in a verdict list.
pub fn valuable_indices(verdicts: &[Verdict]) -> Vec<usize> {
    verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.valuable)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_data::Condition;
    use insitu_nn::models::{jigsaw_network, mini_alexnet};

    fn setup() -> (Sequential, JigsawNet, PermutationSet, Dataset, Rng) {
        let mut rng = Rng::seed_from(11);
        let inference = mini_alexnet(4, &mut rng).unwrap();
        let jigsaw = jigsaw_network(8, &mut rng).unwrap();
        let set = PermutationSet::generate(8, &mut rng).unwrap();
        let data = Dataset::generate(10, 4, &Condition::ideal(), &mut rng).unwrap();
        (inference, jigsaw, set, data, rng)
    }

    #[test]
    fn oracle_matches_prediction_errors() {
        let (mut inf, mut jig, set, data, mut rng) = setup();
        let verdicts = diagnose(
            DiagnosisPolicy::Oracle,
            &mut inf,
            &mut jig,
            &set,
            &data,
            4,
            &mut rng,
        )
        .unwrap();
        assert_eq!(verdicts.len(), data.len());
        let logits = inf.predict(data.images()).unwrap();
        let preds = insitu_nn::predictions(&logits).unwrap();
        for ((v, p), &l) in verdicts.iter().zip(preds).zip(data.labels()) {
            assert_eq!(v.valuable, p != l);
        }
    }

    #[test]
    fn confidence_threshold_extremes() {
        let (mut inf, mut jig, set, data, mut rng) = setup();
        let all = diagnose(
            DiagnosisPolicy::InferenceConfidence { threshold: 1.1 },
            &mut inf,
            &mut jig,
            &set,
            &data,
            4,
            &mut rng,
        )
        .unwrap();
        assert!(all.iter().all(|v| v.valuable)); // everything below 1.1
        let none = diagnose(
            DiagnosisPolicy::InferenceConfidence { threshold: 0.0 },
            &mut inf,
            &mut jig,
            &set,
            &data,
            4,
            &mut rng,
        )
        .unwrap();
        assert!(none.iter().all(|v| !v.valuable));
    }

    #[test]
    fn jigsaw_probe_runs_and_scores() {
        let (mut inf, mut jig, set, data, mut rng) = setup();
        let verdicts = diagnose(
            DiagnosisPolicy::JigsawProbe { probes: 3 },
            &mut inf,
            &mut jig,
            &set,
            &data,
            4,
            &mut rng,
        )
        .unwrap();
        assert_eq!(verdicts.len(), data.len());
        assert!(verdicts.iter().all(|v| (0.0..=1.0).contains(&v.score)));
        // An untrained jigsaw should find most samples valuable.
        let frac =
            verdicts.iter().filter(|v| v.valuable).count() as f32 / verdicts.len() as f32;
        assert!(frac > 0.5, "untrained jigsaw flagged only {frac}");
    }

    #[test]
    fn zero_probes_rejected() {
        let (mut inf, mut jig, set, data, mut rng) = setup();
        assert!(diagnose(
            DiagnosisPolicy::JigsawProbe { probes: 0 },
            &mut inf,
            &mut jig,
            &set,
            &data,
            4,
            &mut rng,
        )
        .is_err());
    }

    /// Chunked inference logits, as `process_stage` caches them.
    fn logit_chunks(inf: &mut Sequential, data: &Dataset, bs: usize) -> Vec<Tensor> {
        let mut chunks = Vec::new();
        let mut start = 0;
        while start < data.len() {
            let end = (start + bs).min(data.len());
            let sub = data.subset_range(start..end).unwrap();
            chunks.push(inf.predict(sub.images()).unwrap());
            start = end;
        }
        chunks
    }

    fn verdict_bits(verdicts: &[Verdict]) -> Vec<(bool, u32)> {
        verdicts.iter().map(|v| (v.valuable, v.score.to_bits())).collect()
    }

    #[test]
    fn fused_matches_reference_for_every_policy() {
        let policies = [
            DiagnosisPolicy::Oracle,
            DiagnosisPolicy::InferenceConfidence { threshold: 0.5 },
            DiagnosisPolicy::JigsawProbe { probes: 3 },
            DiagnosisPolicy::JigsawConfidence { threshold: 0.5 },
        ];
        for policy in policies {
            let (mut inf, mut jig, set, data, _) = setup();
            let mut rng_ref = Rng::seed_from(77);
            let mut rng_fused = Rng::seed_from(77);
            let reference =
                diagnose(policy, &mut inf, &mut jig, &set, &data, 4, &mut rng_ref).unwrap();
            let chunks = logit_chunks(&mut inf, &data, 4);
            let fused =
                diagnose_with_logits(policy, &chunks, &mut jig, &set, &data, &mut rng_fused)
                    .unwrap();
            assert_eq!(
                verdict_bits(&fused),
                verdict_bits(&reference),
                "fused diverged under {policy:?}"
            );
        }
    }

    #[test]
    fn fused_rejects_mismatched_logit_cache() {
        let (mut inf, mut jig, set, data, mut rng) = setup();
        // One chunk short: the cache covers 8 of 10 images.
        let mut chunks = logit_chunks(&mut inf, &data, 4);
        chunks.pop();
        for policy in
            [DiagnosisPolicy::Oracle, DiagnosisPolicy::InferenceConfidence { threshold: 0.5 }]
        {
            assert!(matches!(
                diagnose_with_logits(policy, &chunks, &mut jig, &set, &data, &mut rng),
                Err(CoreError::BadConfig { .. })
            ));
        }
        // Zero probes rejected on the fused path too.
        assert!(diagnose_with_logits(
            DiagnosisPolicy::JigsawProbe { probes: 0 },
            &[],
            &mut jig,
            &set,
            &data,
            &mut rng,
        )
        .is_err());
    }

    #[test]
    fn valuable_indices_helper() {
        let verdicts = [
            Verdict { valuable: true, score: 0.0 },
            Verdict { valuable: false, score: 1.0 },
            Verdict { valuable: true, score: 0.2 },
        ];
        assert_eq!(valuable_indices(&verdicts), vec![0, 2]);
    }

    #[test]
    fn jigsaw_confidence_policy_runs() {
        let (mut inf, mut jig, set, data, mut rng) = setup();
        let verdicts = diagnose(
            DiagnosisPolicy::JigsawConfidence { threshold: 0.5 },
            &mut inf,
            &mut jig,
            &set,
            &data,
            4,
            &mut rng,
        )
        .unwrap();
        assert_eq!(verdicts.len(), data.len());
    }
}
