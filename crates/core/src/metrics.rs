//! Accounting meters: data movement, energy and update time.
//!
//! These are the three metrics the paper's end-to-end evaluation
//! reports (its Table II and Fig. 25). They are plain accumulators —
//! every component that moves data or spends modeled time/energy
//! reports into them, so system variants can be compared on the same
//! stream.

use serde::{Deserialize, Serialize};

/// Bytes occupied by one image on the uplink (3×36×36 fp32).
pub const IMAGE_BYTES: u64 = (3 * 36 * 36 * 4) as u64;

/// Accumulates node→Cloud data movement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataMovementMeter {
    /// Images examined by the node.
    pub images_seen: u64,
    /// Images actually uploaded.
    pub images_uploaded: u64,
    /// Bytes uploaded.
    pub bytes_uploaded: u64,
}

impl DataMovementMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a processed stage: `seen` images examined, `uploaded`
    /// of them sent to the Cloud.
    pub fn record(&mut self, seen: u64, uploaded: u64) {
        self.images_seen += seen;
        self.images_uploaded += uploaded;
        self.bytes_uploaded += uploaded * IMAGE_BYTES;
    }

    /// Folds another meter into this one, e.g. to total the movement of
    /// several nodes or session phases.
    pub fn merge(&mut self, other: &DataMovementMeter) {
        self.images_seen += other.images_seen;
        self.images_uploaded += other.images_uploaded;
        self.bytes_uploaded += other.bytes_uploaded;
    }

    /// Fraction of seen images that were uploaded (1.0 when nothing
    /// was seen, i.e. "everything moved" is the conservative default).
    pub fn upload_fraction(&self) -> f64 {
        if self.images_seen == 0 {
            1.0
        } else {
            self.images_uploaded as f64 / self.images_seen as f64
        }
    }
}

/// Accumulates modeled energy by category, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Cloud training energy.
    pub cloud_training_j: f64,
    /// Radio/uplink transfer energy.
    pub transfer_j: f64,
    /// Node-side compute energy (inference + diagnosis).
    pub node_compute_j: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another meter into this one, per category.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.cloud_training_j += other.cloud_training_j;
        self.transfer_j += other.transfer_j;
        self.node_compute_j += other.node_compute_j;
    }

    /// Total joules across categories.
    pub fn total_j(&self) -> f64 {
        self.cloud_training_j + self.transfer_j + self.node_compute_j
    }
}

/// Accumulates modeled model-update wall time, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateClock {
    /// Time spent transferring data to the Cloud.
    pub transfer_s: f64,
    /// Time spent retraining in the Cloud.
    pub training_s: f64,
}

impl UpdateClock {
    /// Creates a zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds another clock into this one, per phase.
    pub fn merge(&mut self, other: &UpdateClock) {
        self.transfer_s += other.transfer_s;
        self.training_s += other.training_s;
    }

    /// Total update latency in seconds.
    pub fn total_s(&self) -> f64 {
        self.transfer_s + self.training_s
    }
}

/// Summary statistics of a stage's diagnosis scores, computed with
/// the SIMD reductions in
/// [`insitu_tensor::simd`]: a deterministic 8-lane sum for the mean
/// and a NaN-skipping min/max scan. Stage telemetry and snapshots
/// report it so drift shows up as a shifting score distribution, not
/// just a valuable-count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScoreSummary {
    /// Scores summarized.
    pub count: usize,
    /// Mean score (0 when empty).
    pub mean: f32,
    /// Smallest score (0 when empty).
    pub min: f32,
    /// Largest score (0 when empty).
    pub max: f32,
}

impl ScoreSummary {
    /// Summarizes a slice of scores.
    pub fn from_scores(scores: &[f32]) -> Self {
        if scores.is_empty() {
            return Self::default();
        }
        let (min, max) = insitu_tensor::simd::min_max(scores);
        ScoreSummary {
            count: scores.len(),
            mean: insitu_tensor::simd::sum8(scores) / scores.len() as f32,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_summary_statistics() {
        let s = ScoreSummary::from_scores(&[0.25, 0.75, 0.5, 1.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 0.625).abs() < 1e-6);
        assert_eq!(s.min, 0.25);
        assert_eq!(s.max, 1.0);
        assert_eq!(ScoreSummary::from_scores(&[]), ScoreSummary::default());
    }

    #[test]
    fn movement_accounting() {
        let mut m = DataMovementMeter::new();
        assert_eq!(m.upload_fraction(), 1.0);
        m.record(100, 25);
        m.record(100, 15);
        assert_eq!(m.images_seen, 200);
        assert_eq!(m.images_uploaded, 40);
        assert_eq!(m.bytes_uploaded, 40 * IMAGE_BYTES);
        assert!((m.upload_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn energy_totals() {
        let e = EnergyMeter { cloud_training_j: 10.0, transfer_j: 2.5, node_compute_j: 1.5 };
        assert!((e.total_j() - 14.0).abs() < 1e-12);
        assert_eq!(EnergyMeter::new().total_j(), 0.0);
    }

    #[test]
    fn clock_totals() {
        let c = UpdateClock { transfer_s: 3.0, training_s: 7.0 };
        assert!((c.total_s() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn image_bytes_constant() {
        assert_eq!(IMAGE_BYTES, 15_552);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let mut m = DataMovementMeter::new();
        m.record(100, 25);
        let mut m2 = DataMovementMeter::new();
        m2.record(60, 5);
        m.merge(&m2);
        assert_eq!(m.images_seen, 160);
        assert_eq!(m.images_uploaded, 30);
        assert_eq!(m.bytes_uploaded, 30 * IMAGE_BYTES);

        let mut e = EnergyMeter { cloud_training_j: 1.0, transfer_j: 2.0, node_compute_j: 3.0 };
        e.merge(&EnergyMeter { cloud_training_j: 0.5, transfer_j: 0.25, node_compute_j: 0.125 });
        assert!((e.total_j() - 6.875).abs() < 1e-12);

        let mut c = UpdateClock { transfer_s: 1.0, training_s: 2.0 };
        c.merge(&UpdateClock { transfer_s: 3.0, training_s: 4.0 });
        assert!((c.total_s() - 10.0).abs() < 1e-12);
        // Merging an empty meter is the identity.
        let before = c;
        c.merge(&UpdateClock::new());
        assert_eq!(c, before);
    }
}
