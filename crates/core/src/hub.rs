//! The session metrics hub: folds telemetry snapshots into named
//! series and exports them as Prometheus-style text or JSON.
//!
//! [`TelemetrySnapshot`] is a full-fidelity dump (raw spans, merged
//! histograms); the [`MetricsHub`] is the *export* surface on top of
//! it — a flat `(name, label, field) → u64` series map a scraper or a
//! dashboard can consume without knowing the span model. The runtime
//! folds snapshots into the hub periodically during a streaming
//! session and once at the end, so [`crate::SessionStats`] carries a
//! ready-to-export view.
//!
//! All values are `u64` (nanoseconds, bytes, counts): that keeps the
//! hub `Eq` (so `SessionStats` stays comparable in tests) and the
//! exports bit-stable across runs of the same recorded data.

use insitu_telemetry::TelemetrySnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Histogram quantiles the hub extracts, as `(field, prometheus tag)`.
const QUANTILES: [(&str, &str); 3] = [("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99")];

/// A fold of telemetry snapshots into flat named series.
///
/// Keys are `(name, label, field)`: counters contribute the fields
/// `calls`/`total`/`max`, histograms contribute
/// `count`/`sum`/`p50`/`p90`/`p99`/`p100`. Re-folding a newer snapshot
/// of the same epoch overwrites the series in place (snapshots are
/// cumulative within an epoch).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsHub {
    series: BTreeMap<(String, String, &'static str), u64>,
    folds: u64,
    epoch: u64,
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds a snapshot's counters and histograms into the series map.
    pub fn fold(&mut self, snap: &TelemetrySnapshot) {
        self.folds += 1;
        self.epoch = snap.epoch;
        for c in &snap.counters {
            let key = |field| (c.name.clone(), c.label.clone(), field);
            self.series.insert(key("calls"), c.calls);
            self.series.insert(key("total"), c.total);
            self.series.insert(key("max"), c.max);
        }
        for h in &snap.hists {
            let key = |field| (h.name.clone(), h.label.clone(), field);
            self.series.insert(key("count"), h.hist.count());
            self.series.insert(key("sum"), h.hist.sum());
            self.series.insert(key("p50"), h.p50);
            self.series.insert(key("p90"), h.p90);
            self.series.insert(key("p99"), h.p99);
            self.series.insert(key("p100"), h.max);
        }
    }

    /// Number of series currently held.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether nothing has been folded in.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// How many snapshots have been folded.
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Telemetry epoch of the last folded snapshot.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up one series value.
    pub fn get(&self, name: &str, label: &str, field: &str) -> Option<u64> {
        self.series
            .iter()
            .find(|((n, l, f), _)| n == name && l == label && *f == field)
            .map(|(_, &v)| v)
    }

    /// Iterates every series as `(name, label, field, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &'static str, u64)> + '_ {
        self.series.iter().map(|((n, l, f), &v)| (n.as_str(), l.as_str(), *f, v))
    }

    /// Renders the series in the Prometheus text exposition format.
    ///
    /// Counter series become `insitu_c_<name>_{calls,total,max}`
    /// families; histogram series become one `summary` family
    /// `insitu_h_<name>` (with `quantile` labels plus `_sum`/`_count`)
    /// and a gauge `insitu_h_<name>_max`. Dots in telemetry names map
    /// to underscores; the telemetry label rides along as a
    /// `label="…"` Prometheus label. The output always passes
    /// [`validate_prometheus`].
    pub fn to_prometheus(&self) -> String {
        // Regroup series by (name, label) so each family is emitted once.
        let mut counters: BTreeMap<(&str, &str), BTreeMap<&str, u64>> = BTreeMap::new();
        let mut hists: BTreeMap<(&str, &str), BTreeMap<&str, u64>> = BTreeMap::new();
        for ((name, label, field), &v) in &self.series {
            let group = match *field {
                "calls" | "total" | "max" => counters.entry((name, label)).or_default(),
                _ => hists.entry((name, label)).or_default(),
            };
            group.insert(field, v);
        }
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for ((name, label), fields) in &counters {
            let base = format!("insitu_c_{}", sanitize(name));
            for (field, v) in fields {
                let family = format!("{base}_{field}");
                if typed.insert(family.clone()) {
                    let _ = writeln!(out, "# HELP {family} telemetry counter {name} {field}");
                    let kind = if *field == "max" { "gauge" } else { "counter" };
                    let _ = writeln!(out, "# TYPE {family} {kind}");
                }
                let _ = writeln!(out, "{family}{} {v}", label_set(&[("label", label)]));
            }
        }
        for ((name, label), fields) in &hists {
            let base = format!("insitu_h_{}", sanitize(name));
            if typed.insert(base.clone()) {
                let _ = writeln!(out, "# HELP {base} telemetry histogram {name}");
                let _ = writeln!(out, "# TYPE {base} summary");
            }
            for (field, tag) in QUANTILES {
                if let Some(v) = fields.get(field) {
                    let _ = writeln!(
                        out,
                        "{base}{} {v}",
                        label_set(&[("label", label), ("quantile", tag)])
                    );
                }
            }
            if let Some(v) = fields.get("sum") {
                let _ = writeln!(out, "{base}_sum{} {v}", label_set(&[("label", label)]));
            }
            if let Some(v) = fields.get("count") {
                let _ = writeln!(out, "{base}_count{} {v}", label_set(&[("label", label)]));
            }
            if let Some(v) = fields.get("p100") {
                let family = format!("{base}_max");
                if typed.insert(family.clone()) {
                    let _ = writeln!(out, "# HELP {family} largest sample of {name}");
                    let _ = writeln!(out, "# TYPE {family} gauge");
                }
                let _ = writeln!(out, "{family}{} {v}", label_set(&[("label", label)]));
            }
        }
        out
    }

    /// Renders the series as a JSON object:
    /// `{"epoch":…,"folds":…,"series":[{"name":…,"label":…,"field":…,"value":…},…]}`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .series
            .iter()
            .map(|((name, label, field), v)| {
                format!(
                    "{{\"name\":{},\"label\":{},\"field\":\"{field}\",\"value\":{v}}}",
                    json_string(name),
                    json_string(label)
                )
            })
            .collect();
        format!(
            "{{\"epoch\":{},\"folds\":{},\"series\":[{}]}}",
            self.epoch,
            self.folds,
            rows.join(",")
        )
    }
}

/// Maps a telemetry name to a Prometheus metric-name fragment.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders a `{k="v",…}` label set, escaping values.
fn label_set(pairs: &[(&str, &str)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| {
            let escaped: String = v
                .chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    '\n' => vec!['\\', 'n'],
                    c => vec![c],
                })
                .collect();
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A tiny Prometheus text-format checker: validates comment lines
/// (`# HELP` / `# TYPE` with a known metric type), metric-name syntax,
/// balanced `name="value"` label sets, numeric sample values, and that
/// every sample belongs to a family declared by a preceding `# TYPE`
/// (allowing the summary's `_sum`/`_count` children). Returns the
/// number of sample lines.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> std::result::Result<usize, String> {
    let mut families: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    for (no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |why: &str| Err(format!("line {}: {why}: {line:?}", no + 1));
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut it = decl.split_whitespace();
                let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                    return err("malformed TYPE line");
                };
                if !valid_metric_name(name) {
                    return err("bad metric name in TYPE");
                }
                if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                    return err("unknown metric type");
                }
                families.insert(name);
            } else if rest.strip_prefix("HELP ").is_none() && !rest.is_empty() {
                // Plain comments are legal; nothing to check.
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return err("bad metric name");
        }
        let family_known = families.contains(name)
            || name
                .strip_suffix("_sum")
                .or_else(|| name.strip_suffix("_count"))
                .is_some_and(|base| families.contains(base));
        if !family_known {
            return err("sample before its # TYPE declaration");
        }
        let mut rest = &line[name_end..];
        if let Some(body) = rest.strip_prefix('{') {
            let Some(close) = body.find('}') else {
                return err("unterminated label set");
            };
            let labels = &body[..close];
            if !labels.is_empty() {
                for pair in split_label_pairs(labels) {
                    let Some((k, v)) = pair.split_once('=') else {
                        return err("label without '='");
                    };
                    if !valid_metric_name(k) {
                        return err("bad label name");
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return err("label value not quoted");
                    }
                }
            }
            rest = &body[close + 1..];
        }
        let value = rest.trim();
        let numeric = matches!(value, "+Inf" | "-Inf" | "NaN")
            || value.parse::<f64>().is_ok();
        if value.is_empty() || !numeric {
            return err("missing or non-numeric sample value");
        }
        samples += 1;
    }
    Ok(samples)
}

/// Splits a label body on commas that are outside quoted values.
fn split_label_pairs(labels: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
    for (i, c) in labels.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(&labels[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    out.push(&labels[start..]);
    out
}

/// Prometheus metric/label name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_telemetry::hist::Histogram;
    use insitu_telemetry::{CounterTotal, HistogramTotal};

    fn snapshot() -> TelemetrySnapshot {
        let mut h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000, 1_000_000] {
            h.record(v);
        }
        let (p50, p90, p99, max) =
            (h.percentile(0.5), h.percentile(0.9), h.percentile(0.99), h.max());
        TelemetrySnapshot {
            spans: vec![],
            counters: vec![CounterTotal {
                name: "node.stage".into(),
                label: String::new(),
                calls: 4,
                total: 1_007_000,
                max: 1_000_000,
            }],
            hists: vec![HistogramTotal {
                name: "node.stage".into(),
                label: String::new(),
                hist: h,
                p50,
                p90,
                p99,
                max,
            }],
            epoch: 2,
            dropped_events: 0,
        }
    }

    #[test]
    fn fold_builds_series() {
        let mut hub = MetricsHub::new();
        assert!(hub.is_empty());
        hub.fold(&snapshot());
        assert_eq!(hub.folds(), 1);
        assert_eq!(hub.epoch(), 2);
        assert_eq!(hub.get("node.stage", "", "calls"), Some(4));
        assert_eq!(hub.get("node.stage", "", "count"), Some(4));
        assert_eq!(hub.get("node.stage", "", "p100"), Some(1_000_000));
        assert!(hub.get("node.stage", "", "p99").unwrap() >= hub.get("node.stage", "", "p50").unwrap());
        // Re-folding overwrites rather than double-counting.
        hub.fold(&snapshot());
        assert_eq!(hub.get("node.stage", "", "calls"), Some(4));
        assert_eq!(hub.folds(), 2);
    }

    #[test]
    fn prometheus_export_validates_and_carries_quantiles() {
        let mut hub = MetricsHub::new();
        hub.fold(&snapshot());
        let text = hub.to_prometheus();
        let n = validate_prometheus(&text).expect("export must parse");
        assert!(n >= 8, "expected counter + summary samples, got {n}:\n{text}");
        assert!(text.contains("quantile=\"0.99\""), "{text}");
        assert!(text.contains("insitu_h_node_stage_sum"), "{text}");
        assert!(text.contains("insitu_c_node_stage_calls"), "{text}");
        assert!(text.contains("# TYPE insitu_h_node_stage summary"), "{text}");
    }

    #[test]
    fn json_export_parses() {
        let mut hub = MetricsHub::new();
        hub.fold(&snapshot());
        let v = insitu_telemetry::json::parse(&hub.to_json()).expect("valid JSON");
        assert_eq!(v.get("epoch").and_then(|e| e.as_f64()), Some(2.0));
        let series = v.get("series").and_then(|s| s.as_array()).unwrap();
        assert_eq!(series.len(), hub.len());
        assert!(series.iter().any(|row| {
            row.get("field").and_then(|f| f.as_str()) == Some("p99")
        }));
    }

    #[test]
    fn json_export_round_trips_every_series() {
        let mut hub = MetricsHub::new();
        let mut snap = snapshot();
        // Exercise string escaping: labels with quotes, backslashes,
        // newlines and control characters must survive the round trip.
        snap.counters.push(CounterTotal {
            name: "cloud.cache.hit".into(),
            label: "bs=\"8\"\\\n\t\u{1}".into(),
            calls: 3,
            total: 123,
            max: 100,
        });
        hub.fold(&snap);
        let v = insitu_telemetry::json::parse(&hub.to_json()).expect("valid JSON");
        assert_eq!(v.get("epoch").and_then(|e| e.as_f64()), Some(hub.epoch() as f64));
        assert_eq!(v.get("folds").and_then(|f| f.as_f64()), Some(hub.folds() as f64));
        // Rebuild the flat series map from the parsed document and
        // compare it against the hub's own iterator, key by key.
        let rows = v.get("series").and_then(|s| s.as_array()).unwrap();
        let mut parsed: std::collections::BTreeMap<(String, String, String), u64> = rows
            .iter()
            .map(|row| {
                let s = |k: &str| row.get(k).and_then(|x| x.as_str()).unwrap().to_string();
                let value = row.get("value").and_then(|x| x.as_f64()).unwrap() as u64;
                ((s("name"), s("label"), s("field")), value)
            })
            .collect();
        assert_eq!(parsed.len(), hub.len(), "duplicate or missing rows");
        for (name, label, field, value) in hub.iter() {
            let key = (name.to_string(), label.to_string(), field.to_string());
            assert_eq!(parsed.remove(&key), Some(value), "series {key:?} mismatched");
        }
        assert!(parsed.is_empty(), "extra rows in export: {parsed:?}");
    }

    #[test]
    fn validator_rejects_malformed_text() {
        assert!(validate_prometheus("# TYPE ok counter\nok 1").is_ok());
        for bad in [
            "no_type_decl 1",
            "# TYPE m counter\n1bad_name 2",
            "# TYPE m wat\nm 1",
            "# TYPE m counter\nm{x=unquoted} 1",
            "# TYPE m counter\nm not_a_number",
            "# TYPE m counter\nm{unterminated=\"v\" 1",
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted: {bad}");
        }
        // Summary children are covered by the parent family.
        let ok = "# TYPE s summary\ns{quantile=\"0.5\"} 1\ns_sum 2\ns_count 3";
        assert_eq!(validate_prometheus(ok), Ok(3));
    }

    #[test]
    fn label_values_are_escaped() {
        let set = label_set(&[("label", "8x\"16\"")]);
        assert_eq!(set, "{label=\"8x\\\"16\\\"\"}");
        let text = format!("# TYPE m counter\nm{set} 5");
        assert_eq!(validate_prometheus(&text), Ok(1));
    }
}
