//! The fixed-point i8 GEMM against its naive oracle.
//!
//! Integer accumulation is exact, so the contract is stronger than the
//! f32 suite's: [`matmul_i8`] must equal [`matmul_i8_naive`] **exactly**
//! at any shape, any selected kernel (the harness pins the portable
//! kernel via `INSITU_GEMM_KERNEL=scalar` in one CI leg) and any thread
//! count — packing, the vectorized `madd` pairing and panel
//! partitioning can reorder the sum freely without changing a single
//! accumulator bit. The same ragged ladder as `packed_gemm.rs` is swept
//! so partial tiles at every edge are covered.
//!
//! The quantize/dequantize round-trip tests pin the numeric half of the
//! scheme: symmetric scale `max_abs/127`, error at most half a step.

use insitu_tensor::{
    dequantize_i8, gemm_kernels_supported, matmul_i8, matmul_i8_naive, matmul_i8_with_kernel,
    matmul_i8_ws, max_abs, num_threads, quant_scale, quantize_i8, set_num_threads, GemmScratch,
    Rng, QUANT_MAX,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Micro-kernel tile height (shared with the f32 kernels).
const MR: usize = 8;

/// The ragged ladder: dimension 1, tile-edge straddles (MR−1, MR,
/// MR+1), and two-panel-plus-tail sizes.
const RAGGED: &[usize] = &[1, MR - 1, MR, MR + 1, 2 * MR + 3, 4 * MR + 5];

/// Serializes tests that sweep the global kernel thread count.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

/// Deterministic i8 matrix spanning the full value range (±127).
fn rand_i8(len: usize, rng: &mut Rng) -> Vec<i8> {
    (0..len).map(|_| (rng.below(255) as i32 - 127) as i8).collect()
}

/// Every (m, k, n) in the ragged ladder at 1/2/4 threads: exactly
/// equal to the oracle's i32 accumulators.
#[test]
fn ragged_ladder_matches_naive_exactly_at_all_thread_counts() {
    let mut rng = Rng::seed_from(303);
    for &m in RAGGED {
        for &k in RAGGED {
            for &n in RAGGED {
                let a = rand_i8(m * k, &mut rng);
                let b = rand_i8(k * n, &mut rng);
                let oracle = matmul_i8_naive(&a, &b, m, k, n);
                for threads in [1usize, 2, 4] {
                    let got = with_threads(threads, || matmul_i8(&a, &b, m, k, n).unwrap());
                    assert_eq!(got, oracle, "matmul_i8 {m}x{k}x{n} @ t{threads}");
                }
            }
        }
    }
}

/// Every GEMM kernel variant that could exist on any target; entries
/// absent from [`gemm_kernels_supported`] are skipped with a note.
const KERNEL_UNIVERSE: &[&str] = &["scalar_8x4", "avx2_8x8", "avx512_8x16", "neon_8x8"];

/// The ragged ladder through **every** detected kernel via
/// [`matmul_i8_with_kernel`], at 1/2/4 threads: i32 accumulation is
/// exact, so each kernel's `madd` pairing and tile width must never
/// change an accumulator.
#[test]
fn ragged_ladder_all_detected_kernels_exact() {
    let supported = gemm_kernels_supported();
    for name in KERNEL_UNIVERSE {
        if !supported.contains(name) {
            eprintln!("skipped: GEMM kernel `{name}` not detected on this host");
        }
    }
    let mut rng = Rng::seed_from(808);
    for &m in RAGGED {
        for &k in RAGGED {
            for &n in RAGGED {
                let a = rand_i8(m * k, &mut rng);
                let b = rand_i8(k * n, &mut rng);
                let oracle = matmul_i8_naive(&a, &b, m, k, n);
                for kernel in &supported {
                    for threads in [1usize, 2, 4] {
                        let got = with_threads(threads, || {
                            matmul_i8_with_kernel(&a, &b, m, k, n, kernel).unwrap()
                        });
                        assert_eq!(got, oracle, "kernel {kernel} {m}x{k}x{n} @ t{threads}");
                    }
                }
            }
        }
    }
}

/// Unknown kernel names must be a hard error naming the supported set.
#[test]
fn unknown_i8_kernel_name_is_an_error() {
    let err = matmul_i8_with_kernel(&[1i8], &[1i8], 1, 1, 1, "mmx_2x2").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("mmx_2x2"), "error must name the request: {msg}");
    assert!(msg.contains("scalar_8x4"), "error must list supported kernels: {msg}");
}

/// One warm scratch serves the whole ladder; growth goes flat after
/// the first pass and reuse never changes an accumulator.
#[test]
fn i8_scratch_reuse_is_allocation_free_and_exact() {
    let mut rng = Rng::seed_from(404);
    let mut scratch = GemmScratch::new();
    let shapes: Vec<(usize, Vec<i8>, Vec<i8>)> = RAGGED
        .iter()
        .map(|&d| {
            (
                d,
                rand_i8(d * (2 * MR + 3), &mut rng),
                rand_i8((2 * MR + 3) * d, &mut rng),
            )
        })
        .collect();
    let k = 2 * MR + 3;
    let run = |scratch: &mut GemmScratch| -> Vec<Vec<i32>> {
        shapes
            .iter()
            .map(|(d, a, b)| {
                let mut out = vec![0i32; d * d];
                matmul_i8_ws(a, b, *d, k, *d, scratch, &mut out).unwrap();
                out
            })
            .collect()
    };
    let first = run(&mut scratch);
    for ((d, a, b), got) in shapes.iter().zip(&first) {
        assert_eq!(got, &matmul_i8_naive(a, b, *d, k, *d), "d={d}");
    }
    let warm_grows = scratch.reallocations();
    assert!(warm_grows >= 1, "first pass must size the arena");
    for _ in 0..3 {
        assert_eq!(run(&mut scratch), first, "scratch reuse changed results");
    }
    assert_eq!(
        scratch.reallocations(),
        warm_grows,
        "steady-state i8 kernel path must not allocate"
    );
}

/// Symmetric round-trip: `dequant(quant(x))` is within half a
/// quantization step of `x` for every in-range value, and the scale
/// maps `max_abs` to exactly ±127.
#[test]
fn quantize_round_trip_stays_within_half_a_step() {
    let mut rng = Rng::seed_from(505);
    let src: Vec<f32> = (0..1000)
        .map(|_| (rng.below(20001) as f32 - 10000.0) / 1234.5)
        .collect();
    let scale = quant_scale(max_abs(&src));
    let mut q = vec![0i8; src.len()];
    quantize_i8(&src, scale, &mut q);
    let mut back = vec![0.0f32; src.len()];
    dequantize_i8(&q, scale, &mut back);
    for (i, (&x, &y)) in src.iter().zip(&back).enumerate() {
        assert!(
            (x - y).abs() <= scale * 0.5 + f32::EPSILON,
            "element {i}: {x} -> {y}, step {scale}"
        );
    }
    // The extreme value uses the full i8 range.
    let peak = src.iter().cloned().fold(0.0f32, |m, v| m.max(v.abs()));
    let qpeak = q.iter().map(|&v| i32::from(v).unsigned_abs()).max().unwrap();
    assert_eq!(qpeak, QUANT_MAX as u32);
    assert!((peak / scale - QUANT_MAX).abs() < 1e-3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized ragged shapes stay exactly equal to the oracle at
    /// every thread count.
    #[test]
    fn random_shapes_match_naive_exactly(
        m in 1usize..(4 * MR + 6), k in 1usize..40, n in 1usize..(4 * MR + 6),
        seed in 0u64..10_000
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = rand_i8(m * k, &mut rng);
        let b = rand_i8(k * n, &mut rng);
        let oracle = matmul_i8_naive(&a, &b, m, k, n);
        for threads in [1usize, 2, 4] {
            let got = with_threads(threads, || matmul_i8(&a, &b, m, k, n).unwrap());
            prop_assert_eq!(&got, &oracle);
        }
        // And through every detected kernel, not just the selected one.
        for kernel in gemm_kernels_supported() {
            let got = matmul_i8_with_kernel(&a, &b, m, k, n, kernel).unwrap();
            prop_assert!(got == oracle, "kernel {}", kernel);
        }
    }
}
