//! Property-based tests for the tensor kernels.

use insitu_tensor::{
    col2im, conv2d_backward, conv2d_forward, im2col, matmul, matmul_naive, matmul_nt, matmul_tn,
    matvec, num_threads, set_num_threads, ConvGeometry, Rng, Shape, Tensor,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that sweep the global kernel thread count. (The
/// count never affects results — that is what these tests prove — but
/// each sweep needs a stable setting while it computes.)
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

/// Raw bit patterns — equality here is bitwise, stricter than `==`
/// (which would let `-0.0 == 0.0` slip through).
fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let fast = matmul(&a, &b).unwrap();
        let slow = matmul_naive(&a, &b).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn gemm_distributes_over_addition(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([7, 3], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform([7, 3], -1.0, 1.0, &mut rng);
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn tn_and_nt_consistent_with_plain(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([6, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([6, 5], -1.0, 1.0, &mut rng);
        let tn = matmul_tn(&a, &b).unwrap(); // (4, 5)
        let direct = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        prop_assert!(tn.max_abs_diff(&direct).unwrap() < 1e-4);
        let nt = matmul_nt(&tn, &b).unwrap(); // (4,5)x(6,5)ᵀ = (4,6)
        let direct2 = matmul(&tn, &b.transpose2d().unwrap()).unwrap();
        prop_assert!(nt.max_abs_diff(&direct2).unwrap() < 1e-3);
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..4, h in 3usize..8, k in 1usize..4, pad in 0usize..2, seed in 0u64..500
    ) {
        prop_assume!(k <= h + 2 * pad);
        let g = ConvGeometry::new(c, h, h, 1, k, 1, pad).unwrap();
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::rand_uniform([c, h, h], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform([g.col_rows(), g.col_cols()], -1.0, 1.0, &mut rng);
        let lhs: f32 = im2col(&x, &g).unwrap().as_slice().iter()
            .zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter()
            .zip(col2im(&y, &g).unwrap().as_slice()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn shape_offset_unravel_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(dims);
        for lin in 0..s.len() {
            let idx = s.unravel(lin);
            prop_assert_eq!(s.offset(&idx).unwrap(), lin);
        }
    }

    #[test]
    fn rng_below_in_range(seed in 0u64..10_000, n in 1usize..1000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn elementwise_ops_commute_and_associate(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([4, 4], -5.0, 5.0, &mut rng);
        let b = Tensor::rand_uniform([4, 4], -5.0, 5.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        prop_assert_eq!(a.mul(&b).unwrap(), b.mul(&a).unwrap());
    }

    #[test]
    fn argmax_is_maximal(v in proptest::collection::vec(-100f32..100.0, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec([n], v.clone()).unwrap();
        let idx = t.argmax().unwrap();
        let max = t.max().unwrap();
        prop_assert_eq!(v[idx], max);
        prop_assert!(v.iter().all(|&x| x <= max));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three GEMM variants must be bitwise identical at 1, 2 and 4
    /// threads. The ranges include degenerate edges (1×1×1) and sizes
    /// straddling the 64-wide cache block.
    #[test]
    fn gemm_bitwise_identical_across_threads(
        m in 1usize..96, k in 1usize..80, n in 1usize..80, seed in 0u64..1000
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let a_tn = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
        let b_nt = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
        let x = Tensor::rand_uniform([k], -2.0, 2.0, &mut rng);
        let run = || {
            (
                matmul(&a, &b).unwrap(),
                matmul_tn(&a_tn, &b).unwrap(),
                matmul_nt(&a, &b_nt).unwrap(),
                matvec(&a, &x).unwrap(),
            )
        };
        let reference = with_threads(1, run);
        for threads in [2usize, 4] {
            let got = with_threads(threads, run);
            prop_assert_eq!(bits(&got.0), bits(&reference.0));
            prop_assert_eq!(bits(&got.1), bits(&reference.1));
            prop_assert_eq!(bits(&got.2), bits(&reference.2));
            prop_assert_eq!(bits(&got.3), bits(&reference.3));
        }
    }

    /// Batched conv forward + backward must be bitwise identical at 1, 2
    /// and 4 threads (batch sizes straddle the thread counts).
    #[test]
    fn conv_bitwise_identical_across_threads(
        b in 1usize..9, c in 1usize..3, h in 5usize..11, m in 1usize..9,
        k in 1usize..4, pad in 0usize..2, seed in 0u64..1000
    ) {
        prop_assume!(k <= h + 2 * pad);
        let g = ConvGeometry::new(c, h, h, m, k, 1, pad).unwrap();
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::rand_uniform([b, c, h, h], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([m, c, k, k], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([m], -0.1, 0.1, &mut rng);
        let dout = Tensor::rand_uniform([b, m, g.out_h, g.out_w], -1.0, 1.0, &mut rng);
        let run = || {
            let (y, cols) = conv2d_forward(&x, &w, &bias, &g).unwrap();
            let (dx, dw, db) = conv2d_backward(&dout, &w, &cols, &g).unwrap();
            (y, dx, dw, db)
        };
        let reference = with_threads(1, run);
        for threads in [2usize, 4] {
            let got = with_threads(threads, run);
            prop_assert_eq!(bits(&got.0), bits(&reference.0));
            prop_assert_eq!(bits(&got.1), bits(&reference.1));
            prop_assert_eq!(bits(&got.2), bits(&reference.2));
            prop_assert_eq!(bits(&got.3), bits(&reference.3));
        }
    }
}

/// Shapes big enough to take the pooled path for real (the property
/// sweep above mostly stays under the work threshold): the im2col GEMMs
/// of the paper-scale networks, plus awkward non-multiples of the cache
/// block and degenerate extremes.
#[test]
fn parallel_gemm_bitwise_on_paper_shapes() {
    let shapes = [
        (24usize, 144usize, 324 * 8usize), // mini_alexnet conv2 im2col, batch 8
        (32, 216, 81 * 8),                 // mini_alexnet conv3 im2col, batch 8
        (130, 65, 67),                     // straddles the 64-wide block
        (1, 300, 1000),                    // single output row
        (257, 1000, 1),                    // single output column
        (1, 1, 1),                         // fully degenerate
    ];
    let mut rng = Rng::seed_from(2024);
    for (m, k, n) in shapes {
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let a_tn = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
        let b_nt = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
        let run = || {
            (
                matmul(&a, &b).unwrap(),
                matmul_tn(&a_tn, &b).unwrap(),
                matmul_nt(&a, &b_nt).unwrap(),
            )
        };
        let reference = with_threads(1, run);
        for threads in [2usize, 3, 4] {
            let got = with_threads(threads, run);
            assert_eq!(bits(&got.0), bits(&reference.0), "matmul {m}x{k}x{n} @ {threads}");
            assert_eq!(bits(&got.1), bits(&reference.1), "matmul_tn {m}x{k}x{n} @ {threads}");
            assert_eq!(bits(&got.2), bits(&reference.2), "matmul_nt {m}x{k}x{n} @ {threads}");
        }
    }
}

/// Conv at a paper-realistic batch/geometry engages the batch-parallel
/// path; gradients must still match single-threaded bit for bit.
#[test]
fn parallel_conv_bitwise_on_paper_batch() {
    let g = ConvGeometry::new(16, 18, 18, 24, 3, 1, 1).unwrap(); // mini_alexnet conv2
    let b = 8;
    let mut rng = Rng::seed_from(77);
    let x = Tensor::rand_uniform([b, 16, 18, 18], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform([24, 16, 3, 3], -0.2, 0.2, &mut rng);
    let bias = Tensor::rand_uniform([24], -0.1, 0.1, &mut rng);
    let dout = Tensor::rand_uniform([b, 24, 18, 18], -1.0, 1.0, &mut rng);
    let run = || {
        let (y, cols) = conv2d_forward(&x, &w, &bias, &g).unwrap();
        let (dx, dw, db) = conv2d_backward(&dout, &w, &cols, &g).unwrap();
        (y, dx, dw, db)
    };
    let reference = with_threads(1, run);
    for threads in [2usize, 4] {
        let got = with_threads(threads, run);
        assert_eq!(bits(&got.0), bits(&reference.0), "forward @ {threads}");
        assert_eq!(bits(&got.1), bits(&reference.1), "dinput @ {threads}");
        assert_eq!(bits(&got.2), bits(&reference.2), "dweight @ {threads}");
        assert_eq!(bits(&got.3), bits(&reference.3), "dbias @ {threads}");
    }
}
