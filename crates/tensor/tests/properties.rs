//! Property-based tests for the tensor kernels.

use insitu_tensor::{
    col2im, im2col, matmul, matmul_naive, matmul_nt, matmul_tn, ConvGeometry, Rng, Shape, Tensor,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_naive(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let fast = matmul(&a, &b).unwrap();
        let slow = matmul_naive(&a, &b).unwrap();
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3);
    }

    #[test]
    fn gemm_distributes_over_addition(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([7, 3], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform([7, 3], -1.0, 1.0, &mut rng);
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    #[test]
    fn tn_and_nt_consistent_with_plain(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([6, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([6, 5], -1.0, 1.0, &mut rng);
        let tn = matmul_tn(&a, &b).unwrap(); // (4, 5)
        let direct = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        prop_assert!(tn.max_abs_diff(&direct).unwrap() < 1e-4);
        let nt = matmul_nt(&tn, &b).unwrap(); // (4,5)x(6,5)ᵀ = (4,6)
        let direct2 = matmul(&tn, &b.transpose2d().unwrap()).unwrap();
        prop_assert!(nt.max_abs_diff(&direct2).unwrap() < 1e-3);
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..4, h in 3usize..8, k in 1usize..4, pad in 0usize..2, seed in 0u64..500
    ) {
        prop_assume!(k <= h + 2 * pad);
        let g = ConvGeometry::new(c, h, h, 1, k, 1, pad).unwrap();
        let mut rng = Rng::seed_from(seed);
        let x = Tensor::rand_uniform([c, h, h], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform([g.col_rows(), g.col_cols()], -1.0, 1.0, &mut rng);
        let lhs: f32 = im2col(&x, &g).unwrap().as_slice().iter()
            .zip(y.as_slice()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter()
            .zip(col2im(&y, &g).unwrap().as_slice()).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    #[test]
    fn shape_offset_unravel_roundtrip(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(dims);
        for lin in 0..s.len() {
            let idx = s.unravel(lin);
            prop_assert_eq!(s.offset(&idx).unwrap(), lin);
        }
    }

    #[test]
    fn rng_below_in_range(seed in 0u64..10_000, n in 1usize..1000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn elementwise_ops_commute_and_associate(seed in 0u64..1000) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([4, 4], -5.0, 5.0, &mut rng);
        let b = Tensor::rand_uniform([4, 4], -5.0, 5.0, &mut rng);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        prop_assert_eq!(a.mul(&b).unwrap(), b.mul(&a).unwrap());
    }

    #[test]
    fn argmax_is_maximal(v in proptest::collection::vec(-100f32..100.0, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec([n], v.clone()).unwrap();
        let idx = t.argmax().unwrap();
        let max = t.max().unwrap();
        prop_assert_eq!(v[idx], max);
        prop_assert!(v.iter().all(|&x| x <= max));
    }
}
