//! Scalar↔SIMD equivalence for every dispatched op.
//!
//! The scalar body of each [`SimdOp`] is the reference semantics;
//! these properties hold every other runnable body
//! ([`Isa::supported`]) to it **bitwise** (compared via `to_bits`)
//! across ragged shapes and 1/2/4 threads, per the policy in
//! `insitu_tensor::simd`: relu forward / train / backward, clamp,
//! affine, quantize_i8, max_abs, max_abs_diff, sum8, softmax, and
//! maxpool values *and* argmax. Softmax is additionally checked
//! against a plain libm reference within 1e-6 absolute, pinning the
//! documented accuracy of its polynomial `exp`.
//!
//! Beyond scalar↔vector, `cross_isa_all_pairs_bitwise` holds every
//! *pair* of host-supported ISAs to each other at 1/2/4 threads, and
//! prints a `skipped:` note for universe ISAs the host cannot run.
//!
//! CI runs this suite several times: with auto detection, with
//! `INSITU_SIMD=scalar` (which `dispatch_env_override_is_honored`
//! checks is actually in force), and — where the host supports it —
//! with `INSITU_SIMD=avx512`.

use insitu_tensor::simd::{
    dispatch_on, simd_isa_name, Affine, Clamp, Isa, MaxAbs, MaxAbsDiff, MaxPool2d, MinMax,
    QuantizeI8, Relu, ReluBackward, ReluTrain, SoftmaxRows, Sum8, ISA_NAMES,
};
use insitu_tensor::{maxpool2d_forward, num_threads, set_num_threads, PoolGeometry, Rng, Tensor};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that sweep the global kernel thread count.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

/// Values with sign changes, exact zeros (both signs) and magnitude
/// spread down to the denormal range, from the repo's seeded RNG.
fn values(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    (0..len)
        .map(|_| match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => rng.uniform(-1e-30, 1e-30),
            _ => rng.uniform(-100.0, 100.0),
        })
        .collect()
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relu_eval_bitwise(n in 0usize..300, seed in 0u64..1000) {
        let src = values(n, seed);
        let mut oracle = src.clone();
        dispatch_on(Isa::Scalar, Relu { buf: &mut oracle });
        for isa in Isa::supported() {
            let mut got = src.clone();
            dispatch_on(isa, Relu { buf: &mut got });
            assert_bits_eq(&got, &oracle, isa.name());
        }
    }

    #[test]
    fn relu_train_and_backward_bitwise(n in 0usize..300, seed in 0u64..1000) {
        let src = values(n, seed);
        let grad = values(n, seed.wrapping_add(7001));
        let (src, grad) = (&src[..], &grad[..]);
        let mut obuf = src.to_vec();
        let mut omask = vec![0u8; n.div_ceil(8)];
        dispatch_on(Isa::Scalar, ReluTrain { buf: &mut obuf, mask: &mut omask });
        let mut ograd = grad.to_vec();
        dispatch_on(Isa::Scalar, ReluBackward { grad: &mut ograd, mask: &omask });
        for isa in Isa::supported() {
            let mut buf = src.to_vec();
            let mut mask = vec![0u8; n.div_ceil(8)];
            dispatch_on(isa, ReluTrain { buf: &mut buf, mask: &mut mask });
            assert_bits_eq(&buf, &obuf, "relu_train values");
            prop_assert!(mask == omask, "relu_train mask @ {}", isa.name());
            let mut g = grad.to_vec();
            dispatch_on(isa, ReluBackward { grad: &mut g, mask: &mask });
            assert_bits_eq(&g, &ograd, "relu_backward");
        }
    }

    #[test]
    fn affine_and_clamp_bitwise(
        n in 0usize..300,
        seed in 0u64..1000,
        gain in -3.0f32..3.0,
        bias in -1.0f32..1.0,
    ) {
        let src = values(n, seed);
        let mut oracle = src.clone();
        dispatch_on(Isa::Scalar, Affine { buf: &mut oracle, gain, bias });
        dispatch_on(Isa::Scalar, Clamp { buf: &mut oracle, lo: 0.0, hi: 1.0 });
        for isa in Isa::supported() {
            let mut got = src.clone();
            dispatch_on(isa, Affine { buf: &mut got, gain, bias });
            dispatch_on(isa, Clamp { buf: &mut got, lo: 0.0, hi: 1.0 });
            assert_bits_eq(&got, &oracle, isa.name());
        }
    }

    #[test]
    fn quantize_i8_bitwise(
        n in 0usize..300,
        seed in 0u64..1000,
        scale in 1e-3f32..10.0,
    ) {
        let src = values(n, seed);
        let mut oracle = vec![0i8; src.len()];
        dispatch_on(
            Isa::Scalar,
            QuantizeI8 { src: &src, inv_scale: 1.0 / scale, dst: &mut oracle },
        );
        for isa in Isa::supported() {
            let mut got = vec![0i8; src.len()];
            dispatch_on(isa, QuantizeI8 { src: &src, inv_scale: 1.0 / scale, dst: &mut got });
            prop_assert!(got == oracle, "quantize_i8 @ {}", isa.name());
        }
    }

    #[test]
    fn reductions_match_scalar(n in 1usize..300, seed in 0u64..1000) {
        let a = values(n, seed);
        let b = values(n, seed.wrapping_add(7919));
        let (a, b) = (&a[..], &b[..]);
        let o_abs = dispatch_on(Isa::Scalar, MaxAbs { src: a });
        let o_diff = dispatch_on(Isa::Scalar, MaxAbsDiff { a, b });
        let o_sum = dispatch_on(Isa::Scalar, Sum8 { src: a });
        let o_mm = dispatch_on(Isa::Scalar, MinMax { src: a });
        for isa in Isa::supported() {
            prop_assert_eq!(dispatch_on(isa, MaxAbs { src: a }).to_bits(), o_abs.to_bits());
            prop_assert_eq!(dispatch_on(isa, MaxAbsDiff { a, b }).to_bits(), o_diff.to_bits());
            prop_assert_eq!(dispatch_on(isa, Sum8 { src: a }).to_bits(), o_sum.to_bits());
            // min/max: value-exact (±0 sign may legally differ).
            prop_assert_eq!(dispatch_on(isa, MinMax { src: a }), o_mm);
        }
    }

    #[test]
    fn softmax_bitwise_and_near_libm(
        rows in 0usize..24,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let src: Vec<f32> = (0..rows * k).map(|_| rng.uniform(-12.0, 12.0)).collect();
        let mut oracle = src.clone();
        dispatch_on(Isa::Scalar, SoftmaxRows { buf: &mut oracle, k });
        for isa in Isa::supported() {
            let mut got = src.clone();
            dispatch_on(isa, SoftmaxRows { buf: &mut got, k });
            assert_bits_eq(&got, &oracle, isa.name());
        }
        // Documented accuracy: the polynomial exp keeps probabilities
        // within 1e-6 absolute of a plain libm softmax.
        for (row, orow) in src.chunks(k).zip(oracle.chunks(k)) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            for (i, (e, o)) in exps.iter().zip(orow).enumerate() {
                prop_assert!(
                    (e / sum - o).abs() <= 1e-6,
                    "softmax[{}] {} vs libm {}", i, o, e / sum
                );
            }
        }
    }

    #[test]
    fn maxpool_bitwise_across_geometries(
        b in 1usize..3,
        c in 1usize..3,
        hw_pick in 0usize..6,
        ws_pick in 0usize..3,
        seed in 0u64..1000,
    ) {
        const HW: [(usize, usize); 6] = [(4, 4), (5, 7), (16, 16), (17, 19), (36, 36), (37, 18)];
        const WS: [(usize, usize); 3] = [(2, 2), (3, 2), (2, 1)];
        let (h, w) = HW[hw_pick];
        let (window, stride) = WS[ws_pick];
        prop_assume!(window <= h && window <= w);
        let g = PoolGeometry::new(c, h, w, window, stride).unwrap();
        let mut rng = Rng::seed_from(seed);
        let x: Vec<f32> = (0..b * c * h * w).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let out_len = b * c * g.out_h * g.out_w;
        let mut o_out = vec![0f32; out_len];
        let mut o_arg = vec![0usize; out_len];
        dispatch_on(
            Isa::Scalar,
            MaxPool2d { x: &x, g, planes: b * c, out: &mut o_out, argmax: &mut o_arg },
        );
        for isa in Isa::supported() {
            let mut out = vec![0f32; out_len];
            let mut arg = vec![0usize; out_len];
            dispatch_on(
                isa,
                MaxPool2d { x: &x, g, planes: b * c, out: &mut out, argmax: &mut arg },
            );
            assert_bits_eq(&out, &o_out, "maxpool values");
            prop_assert!(arg == o_arg, "maxpool argmax @ {}", isa.name());
        }
    }
}

/// Large enough to cross the parallel-split threshold: every op must
/// produce identical bits at 1, 2 and 4 threads on every runnable ISA.
#[test]
fn thread_count_never_changes_bits() {
    let mut rng = Rng::seed_from(77);
    let n: usize = 300_000;
    let src: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let grad: Vec<f32> = (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect();
    // Softmax: enough rows × width to split; narrow (paper head
    // width, gather path) and wide (row-at-a-time path).
    let k = 10;
    let soft: Vec<f32> = (0..4096 * k).map(|_| rng.uniform(-12.0, 12.0)).collect();
    let kw = 24;
    let soft_w: Vec<f32> = (0..2048 * kw).map(|_| rng.uniform(-12.0, 12.0)).collect();
    for isa in Isa::supported() {
        let run = |threads: usize| {
            with_threads(threads, || {
                let mut relu = src.clone();
                let mut mask = vec![0u8; n.div_ceil(8)];
                dispatch_on(isa, ReluTrain { buf: &mut relu, mask: &mut mask });
                let mut g = grad.clone();
                dispatch_on(isa, ReluBackward { grad: &mut g, mask: &mask });
                let mut q = vec![0i8; n];
                dispatch_on(isa, QuantizeI8 { src: &src, inv_scale: 93.7, dst: &mut q });
                let mut sm = soft.clone();
                dispatch_on(isa, SoftmaxRows { buf: &mut sm, k });
                let mut smw = soft_w.clone();
                dispatch_on(isa, SoftmaxRows { buf: &mut smw, k: kw });
                (relu, mask, g, q, sm, smw)
            })
        };
        let base = run(1);
        for threads in [2usize, 4] {
            let got = run(threads);
            assert_eq!(got.1, base.1, "mask @ t{threads} {}", isa.name());
            assert_eq!(got.3, base.3, "quantize @ t{threads} {}", isa.name());
            for (name, a, b) in [
                ("relu", &got.0, &base.0),
                ("relu_bwd", &got.2, &base.2),
                ("softmax", &got.4, &base.4),
                ("softmax_wide", &got.5, &base.5),
            ] {
                assert_bits_eq(a, b, &format!("{name} @ t{threads} {}", isa.name()));
            }
        }
    }
}

/// Maxpool at a parallel-sized shape: the public entry point must be
/// thread-invariant too (values and argmax).
#[test]
fn maxpool_thread_invariance_at_scale() {
    let g = PoolGeometry::new(32, 64, 64, 2, 2).unwrap();
    let mut rng = Rng::seed_from(78);
    let x = Tensor::rand_uniform([8, 32, 64, 64], -1.0, 1.0, &mut rng);
    let (base_y, base_arg) = with_threads(1, || maxpool2d_forward(&x, &g).unwrap());
    for threads in [2usize, 4] {
        let (y, arg) = with_threads(threads, || maxpool2d_forward(&x, &g).unwrap());
        assert_bits_eq(y.as_slice(), base_y.as_slice(), "maxpool values");
        assert_eq!(arg, base_arg, "maxpool argmax @ t{threads}");
    }
}

/// Special values: NaN, infinities and -0.0 follow the scalar oracle
/// bit for bit through the bitwise ops.
#[test]
fn special_values_follow_the_oracle() {
    let src = vec![
        f32::NAN,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -0.0,
        0.0,
        1.5,
        -1.5,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        42.0,
        -42.0,
        7.25,
        -7.25,
        1e-40,
        -1e-40,
    ];
    let mut o_relu = src.clone();
    let mut o_mask = vec![0u8; src.len().div_ceil(8)];
    dispatch_on(Isa::Scalar, ReluTrain { buf: &mut o_relu, mask: &mut o_mask });
    let mut o_clamp = src.clone();
    dispatch_on(Isa::Scalar, Clamp { buf: &mut o_clamp, lo: 0.0, hi: 1.0 });
    let mut o_q = vec![0i8; src.len()];
    dispatch_on(Isa::Scalar, QuantizeI8 { src: &src, inv_scale: 2.0, dst: &mut o_q });
    let o_abs = dispatch_on(Isa::Scalar, MaxAbs { src: &src });
    assert_eq!(o_q[0], 0, "NaN must quantize to 0");
    assert_eq!(o_q[1], 127, "inf must saturate to 127");
    assert_eq!(o_q[2], -127, "-inf must saturate to -127");
    assert!(o_abs.is_finite(), "max_abs must skip non-finite values");
    for isa in Isa::supported() {
        let mut relu = src.clone();
        let mut mask = vec![0u8; src.len().div_ceil(8)];
        dispatch_on(isa, ReluTrain { buf: &mut relu, mask: &mut mask });
        assert_bits_eq(&relu, &o_relu, "relu specials");
        assert_eq!(mask, o_mask, "relu mask specials @ {}", isa.name());
        let mut cl = src.clone();
        dispatch_on(isa, Clamp { buf: &mut cl, lo: 0.0, hi: 1.0 });
        assert_bits_eq(&cl, &o_clamp, "clamp specials");
        let mut q = vec![0i8; src.len()];
        dispatch_on(isa, QuantizeI8 { src: &src, inv_scale: 2.0, dst: &mut q });
        assert_eq!(q, o_q, "quantize specials @ {}", isa.name());
        assert_eq!(
            dispatch_on(isa, MaxAbs { src: &src }).to_bits(),
            o_abs.to_bits(),
            "max_abs specials @ {}",
            isa.name()
        );
    }
}

/// The `INSITU_SIMD=scalar` CI leg must actually pin the portable
/// path (and the default leg must resolve to a supported ISA).
#[test]
fn dispatch_env_override_is_honored() {
    let want = std::env::var("INSITU_SIMD").unwrap_or_default();
    if want.trim() == "scalar" {
        assert_eq!(simd_isa_name(), "scalar");
        assert_eq!(Isa::select(), Isa::Scalar);
    } else {
        assert!(Isa::supported().contains(&Isa::select()));
    }
}

/// Every output of one [`op_battery`] run, so ISAs can be compared
/// pairwise field by field.
struct Battery {
    relu: Vec<f32>,
    mask: Vec<u8>,
    bwd: Vec<f32>,
    quant: Vec<i8>,
    softmax: Vec<f32>,
    pool: Vec<f32>,
    argmax: Vec<usize>,
    reductions: [u32; 4],
}

/// One battery of every dispatched op on one ISA at one thread count.
fn op_battery(isa: Isa, threads: usize) -> Battery {
    // Sized past the parallel-split threshold so the thread count is
    // exercised, with denormals / signed zeros from `values`.
    let n: usize = 120_000;
    let src = values(n, 0xC0FFEE);
    let grad = values(n, 0xBEEF);
    with_threads(threads, || {
        let mut relu = src.clone();
        let mut mask = vec![0u8; n.div_ceil(8)];
        dispatch_on(isa, ReluTrain { buf: &mut relu, mask: &mut mask });
        let mut g = grad.clone();
        dispatch_on(isa, ReluBackward { grad: &mut g, mask: &mask });
        dispatch_on(isa, Affine { buf: &mut g, gain: 1.25, bias: -0.5 });
        dispatch_on(isa, Clamp { buf: &mut g, lo: -0.75, hi: 0.75 });
        let mut q = vec![0i8; n];
        dispatch_on(isa, QuantizeI8 { src: &src, inv_scale: 37.5, dst: &mut q });
        let k = 10;
        let mut sm = src[..4096 * k].to_vec();
        dispatch_on(isa, SoftmaxRows { buf: &mut sm, k });
        let pg = PoolGeometry::new(4, 50, 100, 2, 2).unwrap();
        let planes = 6 * 4;
        let mut pool = vec![0f32; planes * pg.out_h * pg.out_w];
        let mut arg = vec![0usize; pool.len()];
        dispatch_on(
            isa,
            MaxPool2d { x: &src[..planes * 50 * 100], g: pg, planes, out: &mut pool, argmax: &mut arg },
        );
        let reds = [
            dispatch_on(isa, MaxAbs { src: &src }).to_bits(),
            dispatch_on(isa, MaxAbsDiff { a: &src, b: &grad }).to_bits(),
            dispatch_on(isa, Sum8 { src: &src }).to_bits(),
            {
                let (lo, hi) = dispatch_on(isa, MinMax { src: &src });
                lo.to_bits() ^ hi.to_bits().rotate_left(16)
            },
        ];
        Battery {
            relu,
            mask,
            bwd: g,
            quant: q,
            softmax: sm,
            pool,
            argmax: arg,
            reductions: reds,
        }
    })
}

/// Cross-ISA equivalence matrix: every host-supported ISA pair must
/// agree **bitwise** on every dispatched op at 1, 2 and 4 threads.
/// ISAs in the universe (`ISA_NAMES` minus `auto`) that this host
/// cannot run are skipped with a visible note, so CI logs show
/// exactly which cells of the matrix were exercised.
#[test]
fn cross_isa_all_pairs_bitwise() {
    let supported = Isa::supported();
    for name in ISA_NAMES.iter().filter(|&&n| n != "auto") {
        if !supported.iter().any(|i| i.name() == *name) {
            eprintln!("skipped: ISA `{name}` not supported on this host");
        }
    }
    for threads in [1usize, 2, 4] {
        let batteries: Vec<_> =
            supported.iter().map(|&isa| (isa, op_battery(isa, threads))).collect();
        for (ai, (isa_a, a)) in batteries.iter().enumerate() {
            for (isa_b, b) in &batteries[ai + 1..] {
                let pair = format!("{} vs {} @ t{threads}", isa_a.name(), isa_b.name());
                assert_bits_eq(&a.relu, &b.relu, &format!("relu_train {pair}"));
                assert_eq!(a.mask, b.mask, "mask {pair}");
                assert_bits_eq(&a.bwd, &b.bwd, &format!("bwd/affine/clamp {pair}"));
                assert_eq!(a.quant, b.quant, "quantize {pair}");
                assert_bits_eq(&a.softmax, &b.softmax, &format!("softmax {pair}"));
                assert_bits_eq(&a.pool, &b.pool, &format!("maxpool {pair}"));
                assert_eq!(a.argmax, b.argmax, "argmax {pair}");
                assert_eq!(a.reductions, b.reductions, "reductions {pair}");
            }
        }
    }
}
