//! The packed register-tiled GEMM kernels against the naive oracle.
//!
//! The micro-kernel computes 8×NR register tiles over zero-padded
//! packed panels, so the dangerous shapes are the ragged ones: a
//! dimension of 1, one lane below/at/above the tile edge, and sizes
//! that leave partial panels at both edges. This suite sweeps exactly
//! that ladder — `{1, MR−1, MR, MR+1, 2·MR+3, …}` in every dimension —
//! and demands **bitwise** equality with [`matmul_naive`] at 1, 2 and
//! 4 threads: packing, tile shape and panel partitioning must never
//! change the per-element accumulation chain.
//!
//! The scratch-arena tests pin the other half of the contract: with
//! stable shapes, the kernel path stops allocating after the first
//! call ([`GemmScratch::reallocations`] goes flat).

use insitu_tensor::{
    gemm_kernels_supported, matmul, matmul_naive, matmul_nt, matmul_nt_ws, matmul_tn,
    matmul_tn_ws, matmul_with_kernel, matmul_ws, num_threads, set_num_threads, GemmScratch, Rng,
    Tensor,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Micro-kernel tile height (fixed across kernel variants; tile width
/// is 4 or 8 depending on the selected kernel, both divide 8's ladder).
const MR: usize = 8;

/// The ragged ladder: dimension 1, tile-edge straddles (MR−1, MR,
/// MR+1), and two-panel-plus-tail sizes.
const RAGGED: &[usize] = &[1, MR - 1, MR, MR + 1, 2 * MR + 3, 4 * MR + 5];

/// Serializes tests that sweep the global kernel thread count.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = num_threads();
    set_num_threads(n);
    let out = f();
    set_num_threads(prev);
    out
}

/// Raw bit patterns — equality here is bitwise, stricter than `==`
/// (which would let `-0.0 == 0.0` slip through).
fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Every (m, k, n) in the ragged ladder, all three GEMM variants, at
/// 1/2/4 threads: bitwise equal to the oracle.
#[test]
fn ragged_ladder_matches_naive_bitwise_at_all_thread_counts() {
    let mut rng = Rng::seed_from(101);
    for &m in RAGGED {
        for &k in RAGGED {
            for &n in RAGGED {
                let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
                let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
                let a_tn = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
                let b_nt = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
                let oracle = bits(&matmul_naive(&a, &b).unwrap());
                let oracle_tn =
                    bits(&matmul_naive(&a_tn.transpose2d().unwrap(), &b).unwrap());
                let oracle_nt =
                    bits(&matmul_naive(&a, &b_nt.transpose2d().unwrap()).unwrap());
                for threads in [1usize, 2, 4] {
                    let (nn, tn, nt) = with_threads(threads, || {
                        (
                            matmul(&a, &b).unwrap(),
                            matmul_tn(&a_tn, &b).unwrap(),
                            matmul_nt(&a, &b_nt).unwrap(),
                        )
                    });
                    assert_eq!(bits(&nn), oracle, "matmul {m}x{k}x{n} @ t{threads}");
                    assert_eq!(bits(&tn), oracle_tn, "matmul_tn {m}x{k}x{n} @ t{threads}");
                    assert_eq!(bits(&nt), oracle_nt, "matmul_nt {m}x{k}x{n} @ t{threads}");
                }
            }
        }
    }
}

/// Every GEMM kernel variant that could exist on any target; entries
/// absent from [`gemm_kernels_supported`] are skipped with a note so
/// CI logs show the coverage this host actually provided.
const KERNEL_UNIVERSE: &[&str] = &["scalar_8x4", "avx2_8x8", "avx512_8x16", "neon_8x8"];

/// The ragged ladder through **every** detected kernel — not just the
/// env-selected one — via [`matmul_with_kernel`], at 1/2/4 threads:
/// each kernel's tile shape must preserve the oracle's per-element
/// accumulation chain bitwise.
#[test]
fn ragged_ladder_all_detected_kernels_bitwise() {
    let supported = gemm_kernels_supported();
    for name in KERNEL_UNIVERSE {
        if !supported.contains(name) {
            eprintln!("skipped: GEMM kernel `{name}` not detected on this host");
        }
    }
    let mut rng = Rng::seed_from(606);
    for &m in RAGGED {
        for &k in RAGGED {
            for &n in RAGGED {
                let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
                let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
                let oracle = bits(&matmul_naive(&a, &b).unwrap());
                for kernel in &supported {
                    for threads in [1usize, 2, 4] {
                        let got =
                            with_threads(threads, || matmul_with_kernel(&a, &b, kernel).unwrap());
                        assert_eq!(
                            bits(&got),
                            oracle,
                            "kernel {kernel} {m}x{k}x{n} @ t{threads}"
                        );
                    }
                }
            }
        }
    }
}

/// Unknown kernel names must be a hard error naming the supported set,
/// not a silent fallback.
#[test]
fn unknown_kernel_name_is_an_error() {
    let mut rng = Rng::seed_from(707);
    let a = Tensor::rand_uniform([4, 4], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform([4, 4], -1.0, 1.0, &mut rng);
    let err = matmul_with_kernel(&a, &b, "avx1024_64x64").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("avx1024_64x64"), "error must name the request: {msg}");
    assert!(msg.contains("scalar_8x4"), "error must list supported kernels: {msg}");
}

/// One warm scratch serves an arbitrary mix of shapes and variants; its
/// growth counter goes flat once the largest shape has been seen, and
/// reuse never changes a bit of any result.
#[test]
fn scratch_reuse_is_allocation_free_and_bitwise_stable() {
    let mut rng = Rng::seed_from(202);
    let mut scratch = GemmScratch::new();
    let shapes: Vec<(Tensor, Tensor, Tensor, Tensor)> = RAGGED
        .iter()
        .map(|&d| {
            (
                Tensor::rand_uniform([d, 2 * MR + 3], -1.0, 1.0, &mut rng),
                Tensor::rand_uniform([2 * MR + 3, d], -1.0, 1.0, &mut rng),
                Tensor::rand_uniform([2 * MR + 3, d], -1.0, 1.0, &mut rng), // tn A: (K, M)
                Tensor::rand_uniform([d, 2 * MR + 3], -1.0, 1.0, &mut rng), // nt B: (N, K)
            )
        })
        .collect();
    let first: Vec<_> = shapes
        .iter()
        .map(|(a, b, atn, bnt)| {
            (
                bits(&matmul_ws(a, b, &mut scratch).unwrap()),
                bits(&matmul_tn_ws(atn, b, &mut scratch).unwrap()),
                bits(&matmul_nt_ws(a, bnt, &mut scratch).unwrap()),
            )
        })
        .collect();
    let warm_grows = scratch.reallocations();
    assert!(warm_grows >= 1, "first pass must size the arena");
    assert!(scratch.capacity_bytes() > 0);
    for _ in 0..3 {
        let again: Vec<_> = shapes
            .iter()
            .map(|(a, b, atn, bnt)| {
                (
                    bits(&matmul_ws(a, b, &mut scratch).unwrap()),
                    bits(&matmul_tn_ws(atn, b, &mut scratch).unwrap()),
                    bits(&matmul_nt_ws(a, bnt, &mut scratch).unwrap()),
                )
            })
            .collect();
        assert_eq!(again, first, "scratch reuse changed results");
    }
    assert_eq!(
        scratch.reallocations(),
        warm_grows,
        "steady-state kernel path must not allocate"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Randomized ragged shapes (biased to hug the tile edges by the
    /// small ranges) stay bitwise equal to the oracle at every thread
    /// count, including through the transpose-absorbing packers.
    #[test]
    fn random_shapes_match_naive_bitwise(
        m in 1usize..(4 * MR + 6), k in 1usize..40, n in 1usize..(4 * MR + 6),
        seed in 0u64..10_000
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
        let oracle = bits(&matmul_naive(&a, &b).unwrap());
        for threads in [1usize, 2, 4] {
            let got = with_threads(threads, || matmul(&a, &b).unwrap());
            prop_assert_eq!(bits(&got), oracle.clone());
        }
        // And through every detected kernel, not just the selected one.
        for kernel in gemm_kernels_supported() {
            let got = matmul_with_kernel(&a, &b, kernel).unwrap();
            prop_assert!(bits(&got) == oracle, "kernel {}", kernel);
        }
    }
}
