//! Tensor shapes and row-major index arithmetic.

use crate::error::TensorError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a tensor, in row-major (C) order.
///
/// A `Shape` is an immutable list of dimension sizes. The rightmost
/// dimension varies fastest in memory.
///
/// # Examples
///
/// ```
/// use insitu_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(s.dims(), &[2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimension sizes.
    ///
    /// A scalar is represented by an empty dimension list and has one
    /// element.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (the product of all dimensions).
    ///
    /// ```
    /// # use insitu_tensor::Shape;
    /// assert_eq!(Shape::new(vec![]).len(), 1); // scalar
    /// assert_eq!(Shape::new(vec![4, 0]).len(), 0);
    /// ```
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides: the linear-offset step for each dimension.
    ///
    /// ```
    /// # use insitu_tensor::Shape;
    /// assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-index into a linear row-major offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank or any
    /// coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len()
            || index.iter().zip(&self.dims).any(|(&i, &d)| i >= d)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let mut off = 0;
        for (&i, s) in index.iter().zip(self.strides()) {
            off += i * s;
        }
        Ok(off)
    }

    /// Converts a linear offset back into a multi-index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= self.len()`.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        debug_assert!(offset < self.len().max(1));
        let mut idx = vec![0; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            let d = self.dims[i];
            idx[i] = offset % d;
            offset /= d;
        }
        idx
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::from([2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::from([5]).strides(), vec![1]);
        assert_eq!(Shape::new(vec![]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_and_unravel_roundtrip() {
        let s = Shape::from([2, 3, 4]);
        for lin in 0..s.len() {
            let idx = s.unravel(lin);
            assert_eq!(s.offset(&idx).unwrap(), lin);
        }
    }

    #[test]
    fn offset_rejects_bad_index() {
        let s = Shape::from([2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(vec![]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::from([3, 224, 224]).to_string(), "(3x224x224)");
    }

    #[test]
    fn zero_sized_dim() {
        let s = Shape::from([4, 0, 2]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
    }
}
