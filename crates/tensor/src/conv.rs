//! 2-D convolution via im2col lowering.
//!
//! This is the same lowering the paper describes for GPU execution
//! (its Fig. 8): `im2col` stretches local input regions into the columns
//! of a data matrix `Dm`, the filters are flattened into a filter matrix
//! `Fm`, and the convolution becomes the GEMM `Fm × Dm`. The backward
//! pass uses the adjoint scatter [`col2im`].
//!
//! Batched passes parallelize over the batch dimension on the shared
//! worker pool (see [`crate::parallel`]): samples are independent, and
//! the per-sample gradients are reduced in ascending sample order, so
//! results are bitwise identical for any thread count. The
//! [`ConvWorkspace`] variants ([`conv2d_forward_ws`] /
//! [`conv2d_backward_ws`]) additionally reuse the im2col and scratch
//! buffers across calls, eliminating steady-state allocations.

use crate::error::TensorError;
use crate::microkernel::Kernel;
use crate::pack::{grow_scratch, pack_a, pack_a_i8, pack_b, pack_b_i8, packed_a_len, packed_b_len};
use crate::parallel::{parallel_for, plan_parts, SendPtr};
use crate::quant::{quantize_i8, QuantizedMatrix};
use crate::tensor::Tensor;
use crate::Result;
use insitu_telemetry as telemetry;

/// Opens the per-call telemetry span and bytes counter for one batched
/// convolution pass (inert while telemetry is disabled). `bytes` counts
/// the f32 traffic of the pass: activations, weights and outputs (the
/// backward pass also reads the saved im2col matrices).
fn conv_telemetry(kernel: &'static str, b: usize, g: &ConvGeometry, bytes: u64) -> telemetry::Span {
    let span = telemetry::span_with(kernel, || {
        format!(
            "b{b} {}x{}x{} -> {}x{}x{} k{} s{} p{}",
            g.in_channels, g.in_h, g.in_w, g.out_channels, g.out_h, g.out_w, g.kernel, g.stride,
            g.pad
        )
    });
    let short = kernel.rsplit('.').next().unwrap_or(kernel);
    telemetry::counter_add("tensor.bytes", short, bytes);
    span
}

/// Static description of one 2-D convolution: input geometry, kernel,
/// stride and zero padding.
///
/// # Examples
///
/// ```
/// use insitu_tensor::ConvGeometry;
/// # fn main() -> Result<(), insitu_tensor::TensorError> {
/// let g = ConvGeometry::new(3, 36, 36, 8, 3, 1, 1)?; // 3→8 channels, 3x3 kernel
/// assert_eq!((g.out_h, g.out_w), (36, 36));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels (the paper's `N`).
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Output channels / number of filters (the paper's `M`).
    pub out_channels: usize,
    /// Square kernel edge (the paper's `K`).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every edge.
    pub pad: usize,
    /// Output height (the paper's `R`).
    pub out_h: usize,
    /// Output width (the paper's `C`).
    pub out_w: usize,
}

impl ConvGeometry {
    /// Computes output geometry, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the stride is zero or
    /// the kernel does not fit in the padded input.
    pub fn new(
        in_channels: usize,
        in_h: usize,
        in_w: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        if stride == 0 {
            return Err(TensorError::InvalidGeometry { reason: "stride must be nonzero".into() });
        }
        if kernel == 0 || in_channels == 0 || out_channels == 0 {
            return Err(TensorError::InvalidGeometry {
                reason: "channels and kernel must be nonzero".into(),
            });
        }
        let padded_h = in_h + 2 * pad;
        let padded_w = in_w + 2 * pad;
        if kernel > padded_h || kernel > padded_w {
            return Err(TensorError::InvalidGeometry {
                reason: format!(
                    "kernel {kernel} larger than padded input {padded_h}x{padded_w}"
                ),
            });
        }
        Ok(ConvGeometry {
            in_channels,
            in_h,
            in_w,
            out_channels,
            kernel,
            stride,
            pad,
            out_h: (padded_h - kernel) / stride + 1,
            out_w: (padded_w - kernel) / stride + 1,
        })
    }

    /// Rows of the im2col matrix: `N·K²`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: `R·C` output positions.
    pub fn col_cols(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Multiply-accumulate operation count for one sample, following the
    /// paper's Eq. (1): `CONVops = 2·M·N·K²·R·C`.
    pub fn ops(&self) -> u64 {
        2 * self.out_channels as u64
            * self.in_channels as u64
            * (self.kernel * self.kernel) as u64
            * self.out_h as u64
            * self.out_w as u64
    }
}

/// Stretches one `(C, H, W)` sample into the `(N·K², R·C)` data matrix.
///
/// # Errors
///
/// Returns an error if `input` does not have shape `(C, H, W)` matching
/// the geometry.
pub fn im2col(input: &Tensor, g: &ConvGeometry) -> Result<Tensor> {
    let expected = [g.in_channels, g.in_h, g.in_w];
    if input.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            actual: input.dims().to_vec(),
            op: "im2col",
        });
    }
    let (rows, cols) = (g.col_rows(), g.col_cols());
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(input.as_slice(), g, &mut out);
    Tensor::from_vec([rows, cols], out)
}

/// Core of [`im2col`]: stretches one flattened `(C, H, W)` sample into
/// `out`. Only the taps that land inside the input are written — padding
/// positions are left untouched, so `out` must hold zeros there (a fresh
/// zeroed buffer, or a workspace last used with the same geometry).
/// Generic over the element so the fixed-point forward can stretch
/// already-quantized samples (`quantize(0) == 0`, so the zero-padding
/// contract is the same in both domains).
fn im2col_into<T: Copy>(x: &[T], g: &ConvGeometry, out: &mut [T]) {
    let cols = g.col_cols();
    let (h, w, k) = (g.in_h, g.in_w, g.kernel);
    for c in 0..g.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..g.out_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..g.out_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_row[oy * g.out_w + ox] =
                            x[(c * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatters a `(N·K², R·C)` matrix back into a
/// `(C, H, W)` tensor, *accumulating* values that came from the same
/// input element.
///
/// # Errors
///
/// Returns an error if `col` does not match the geometry's im2col shape.
pub fn col2im(col: &Tensor, g: &ConvGeometry) -> Result<Tensor> {
    let expected = [g.col_rows(), g.col_cols()];
    if col.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            actual: col.dims().to_vec(),
            op: "col2im",
        });
    }
    let mut out = Tensor::zeros([g.in_channels, g.in_h, g.in_w]);
    col2im_into(col.as_slice(), g, out.as_mut_slice());
    Ok(out)
}

/// Core of [`col2im`]: scatters a flattened `(N·K², R·C)` matrix into
/// the flattened `(C, H, W)` buffer `o`, accumulating into it.
fn col2im_into(c_: &[f32], g: &ConvGeometry, o: &mut [f32]) {
    let (h, w, k, cols) = (g.in_h, g.in_w, g.kernel, g.col_cols());
    for c in 0..g.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let col_row = &c_[row * cols..(row + 1) * cols];
                for oy in 0..g.out_h {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..g.out_w {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        o[(c * h + iy as usize) * w + ix as usize] +=
                            col_row[oy * g.out_w + ox];
                    }
                }
            }
        }
    }
}

/// Reusable scratch buffers for batched convolution passes.
///
/// A fresh workspace allocates on first use; subsequent passes with the
/// same batch size and geometry reuse every buffer, so the steady-state
/// training loop performs no per-call conv allocations beyond the output
/// tensors themselves. The forward pass also records its im2col matrices
/// here, which the backward pass consumes (the paper's C-INTERMEDIATE
/// reuse) — call [`conv2d_forward_ws`] before [`conv2d_backward_ws`].
///
/// Workspaces are cheap to create (`Default`) and independent; use one
/// per layer (or per thread when running models concurrently).
#[derive(Debug, Clone, Default)]
pub struct ConvWorkspace {
    /// Batched im2col matrices, `b × (N·K² · R·C)`. Padding positions
    /// are zeroed on (re)allocation and never dirtied afterwards, since
    /// under a fixed geometry `im2col_into` writes only valid taps.
    cols: Vec<f32>,
    /// Batch size and geometry `cols` currently holds, if any.
    key: Option<(usize, ConvGeometry)>,
    /// Per-sample `dcol` scratch (assigned by the packed kernel, then
    /// scattered by `col2im_into`).
    dcols: Vec<f32>,
    /// Per-sample flattened weight-gradient partials (fully overwritten
    /// each backward pass, then reduced in sample order).
    dw_parts: Vec<f32>,
    /// Per-sample bias-gradient partials (fully overwritten each pass).
    db_parts: Vec<f32>,
    /// Packed filter matrix `Fm` (forward A-operand, shared by the
    /// whole batch).
    packed_w: Vec<f32>,
    /// Packed `Fmᵀ` (backward dcol A-operand, shared by the batch).
    packed_wt: Vec<f32>,
    /// Per-sample packed im2col matrices (forward B-operand).
    packed_cols: Vec<f32>,
    /// Per-sample packed `dY` as A-operand (dW GEMM).
    packed_dy_a: Vec<f32>,
    /// Per-sample packed `colᵀ` (dW B-operand).
    packed_colt: Vec<f32>,
    /// Per-sample packed `dY` as B-operand (dcol GEMM).
    packed_dy_b: Vec<f32>,
    /// Packed quantized filter matrix (i8 forward A-operand).
    packed_w_i8: Vec<i8>,
    /// Per-sample quantized input samples (i8 forward staging): the
    /// input is quantized *once* here, then stretched by `im2col_into`
    /// — quantizing the im2col matrix instead would round every input
    /// element K² times.
    qx: Vec<i8>,
    /// Per-sample quantized im2col matrices (i8 forward staging).
    /// Padding positions are zeroed on (re)allocation and never
    /// dirtied afterwards, exactly like `cols`.
    qcols: Vec<i8>,
    /// Batch size and geometry `qcols` currently holds, if any. Kept
    /// apart from `key`: an f32 pass at a new geometry re-zeros only
    /// `cols`, so the i8 staging must track its own validity.
    key_i8: Option<(usize, ConvGeometry)>,
    /// Per-sample packed quantized im2col matrices (i8 B-operand).
    packed_cols_i8: Vec<i8>,
    /// Per-sample i32 accumulators of the i8 forward, dequantized into
    /// the f32 output.
    acc_i32: Vec<i32>,
    /// How many times any buffer above has grown (see
    /// [`ConvWorkspace::reallocations`]).
    grows: usize,
}

impl ConvWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times any internal buffer has grown. Constant between
    /// two passes ⇒ the kernel path performed no heap allocation in
    /// between (the zero-steady-state-allocation guarantee).
    pub fn reallocations(&self) -> usize {
        self.grows
    }

    /// Grows `buf` (never shrinks) via the shared scratch accounting.
    fn grow(buf: &mut Vec<f32>, len: usize, grows: &mut usize) {
        grow_scratch(buf, len, grows, "conv");
    }

    /// Readies `cols` for `b` samples of geometry `g` (zeroing it only
    /// when the batch size or geometry changed since the last pass) and
    /// sizes the forward packing buffers.
    fn prepare_forward(&mut self, b: usize, g: &ConvGeometry, kern: Kernel) {
        let want = Some((b, *g));
        if self.key != want {
            let len = b * g.col_rows() * g.col_cols();
            // Geometry switches re-zero `cols`, so they intentionally
            // bypass the grow-only accounting.
            self.cols.clear();
            self.cols.resize(len, 0.0);
            self.key = want;
        }
        Self::grow(
            &mut self.packed_w,
            packed_a_len(g.out_channels, g.col_rows(), kern.mr()),
            &mut self.grows,
        );
        Self::grow(
            &mut self.packed_cols,
            b * packed_b_len(g.col_rows(), g.col_cols(), kern.nr()),
            &mut self.grows,
        );
    }

    /// Readies the quantized-forward buffers: the i8 input staging and
    /// im2col matrices (re-zeroing the latter only when the batch size
    /// or geometry changed, mirroring `prepare_forward`) plus the i8
    /// panels and i32 accumulators.
    fn prepare_forward_i8(&mut self, b: usize, g: &ConvGeometry, kern: Kernel) {
        let want = Some((b, *g));
        if self.key_i8 != want {
            let len = b * g.col_rows() * g.col_cols();
            // Geometry switches re-zero `qcols` (padding positions
            // must hold zeros), so they intentionally bypass the
            // grow-only accounting.
            self.qcols.clear();
            self.qcols.resize(len, 0);
            self.key_i8 = want;
        }
        let (nk2, p) = (g.col_rows(), g.col_cols());
        let grows = &mut self.grows;
        grow_scratch(
            &mut self.packed_w_i8,
            packed_a_len(g.out_channels, nk2, kern.mr()),
            grows,
            "conv_i8",
        );
        grow_scratch(&mut self.qx, b * g.in_channels * g.in_h * g.in_w, grows, "conv_i8");
        grow_scratch(&mut self.packed_cols_i8, b * packed_b_len(nk2, p, kern.nr()), grows, "conv_i8");
        grow_scratch(&mut self.acc_i32, b * g.out_channels * p, grows, "conv_i8");
    }

    /// Sizes the backward scratch and packing buffers (contents need no
    /// zeroing: the packed kernels and packers assign every element).
    fn prepare_backward(&mut self, b: usize, g: &ConvGeometry, kern: Kernel) {
        let (m, nk2, p) = (g.out_channels, g.col_rows(), g.col_cols());
        let (mr, nr) = (kern.mr(), kern.nr());
        let grows = &mut self.grows;
        Self::grow(&mut self.dcols, b * nk2 * p, grows);
        Self::grow(&mut self.dw_parts, b * m * nk2, grows);
        Self::grow(&mut self.db_parts, b * m, grows);
        Self::grow(&mut self.packed_wt, packed_a_len(nk2, m, mr), grows);
        Self::grow(&mut self.packed_dy_a, b * packed_a_len(m, p, mr), grows);
        Self::grow(&mut self.packed_colt, b * packed_b_len(p, nk2, nr), grows);
        Self::grow(&mut self.packed_dy_b, b * packed_b_len(m, p, nr), grows);
    }
}

/// Batched convolution forward pass.
///
/// * `input`: `(B, C, H, W)`
/// * `weight`: `(M, C, K, K)`
/// * `bias`: `(M,)`
///
/// Returns the output `(B, M, R, C)` together with the per-sample im2col
/// matrices, which the backward pass reuses (C-INTERMEDIATE).
///
/// # Errors
///
/// Returns an error on any shape disagreement with the geometry.
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
) -> Result<(Tensor, Vec<Tensor>)> {
    let mut ws = ConvWorkspace::new();
    let out = conv2d_forward_ws(input, weight, bias, g, &mut ws)?;
    let b = input.dims()[0];
    let col_len = g.col_rows() * g.col_cols();
    let cols = (0..b)
        .map(|s| {
            Tensor::from_vec(
                [g.col_rows(), g.col_cols()],
                ws.cols[s * col_len..(s + 1) * col_len].to_vec(),
            )
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((out, cols))
}

/// Batched convolution forward pass into a reusable [`ConvWorkspace`].
///
/// Same computation as [`conv2d_forward`] — bitwise identical output for
/// any thread count — but the im2col matrices live in `ws` instead of
/// per-sample tensors, so repeated calls with a stable batch size and
/// geometry do not allocate. Samples are processed in parallel on the
/// shared worker pool when the batch is large enough.
///
/// # Errors
///
/// Returns an error on any shape disagreement with the geometry.
pub fn conv2d_forward_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    g: &ConvGeometry,
    ws: &mut ConvWorkspace,
) -> Result<Tensor> {
    let b = batch_of(input, g)?;
    check_weight_bias(weight, bias, g)?;
    let kern = Kernel::select();
    ws.prepare_forward(b, g, kern);
    let sample_len = g.in_channels * g.in_h * g.in_w;
    let out_len = g.out_channels * g.out_h * g.out_w;
    let _t = conv_telemetry(
        "tensor.conv2d_fwd",
        b,
        g,
        4 * (b * sample_len + weight.len() + bias.len() + b * out_len) as u64,
    );
    let nk2 = g.col_rows();
    let positions = g.col_cols();
    let col_len = nk2 * positions;
    let pa_len = packed_a_len(g.out_channels, nk2, kern.mr());
    let pb_len = packed_b_len(nk2, positions, kern.nr());
    let mut out = Tensor::zeros([b, g.out_channels, g.out_h, g.out_w]);
    let xv = input.as_slice();
    {
        // (M, N, K, K) weights are row-major, so the flat slice *is* the
        // (M, N·K²) filter matrix Fm; pack it once for the whole batch.
        let _p = telemetry::span_with("tensor.pack", || format!("conv_fwd_w b{b}"));
        pack_a(weight.as_slice(), g.out_channels, nk2, false, kern.mr(), &mut ws.packed_w[..pa_len]);
    }
    let bv = bias.as_slice();
    let parts = plan_parts(b, b as u64 * g.ops());
    {
        let out_base = SendPtr(out.as_mut_slice().as_mut_ptr());
        let cols_base = SendPtr(ws.cols.as_mut_ptr());
        let pcols_base = SendPtr(ws.packed_cols.as_mut_ptr());
        let pw = &ws.packed_w[..pa_len];
        let run = |s: usize| {
            // SAFETY: task `s` touches only sample `s`'s slice of each
            // buffer; samples are disjoint.
            let col = unsafe {
                std::slice::from_raw_parts_mut(cols_base.get().add(s * col_len), col_len)
            };
            let pcol = unsafe {
                std::slice::from_raw_parts_mut(pcols_base.get().add(s * pb_len), pb_len)
            };
            let dst = unsafe {
                std::slice::from_raw_parts_mut(out_base.get().add(s * out_len), out_len)
            };
            let xs = &xv[s * sample_len..(s + 1) * sample_len];
            im2col_into(xs, g, col);
            // Fm × Dm: the micro-kernel assigns every output element,
            // then the bias is added on top.
            pack_b(col, nk2, positions, false, kern.nr(), pcol);
            kern.run_band(pw, pcol, nk2, positions, 0..g.out_channels, dst);
            for m in 0..g.out_channels {
                let bm = bv[m];
                for v in &mut dst[m * positions..(m + 1) * positions] {
                    *v += bm;
                }
            }
        };
        if parts == 1 {
            for s in 0..b {
                run(s);
            }
        } else {
            parallel_for(b, run);
        }
    }
    Ok(out)
}

/// Batched **quantized** convolution forward pass (the software twin of
/// the paper's fixed-point FPGA PEs).
///
/// * `input`: `(B, C, H, W)` f32 activations, quantized per tensor with
///   the static `in_scale` from calibration (see [`crate::quant`]).
/// * `qweight`: the filter bank flattened to `(M, N·K²)` and quantized
///   per output channel ([`QuantizedMatrix`]).
///
/// Each sample is quantized once, then im2col runs in the i8 domain
/// (it only moves values, and `quantize(0) == 0` keeps the padding
/// contract — quantizing the stretched matrix instead would round each
/// element K² times for bit-identical output), the GEMM runs in i8
/// with i32 accumulation, and each output channel dequantizes with
/// `in_scale · w_scale[m]` before the f32 bias is added. Integer
/// accumulation is exact and the dequantization is element-wise, so the
/// result is deterministic at any kernel and thread count. Buffers live
/// in `ws` and only ever grow: steady state allocates nothing beyond
/// the returned output tensor.
///
/// # Errors
///
/// Returns an error on any shape disagreement with the geometry.
pub fn conv2d_forward_i8_ws(
    input: &Tensor,
    qweight: &QuantizedMatrix,
    bias: &Tensor,
    g: &ConvGeometry,
    in_scale: f32,
    ws: &mut ConvWorkspace,
) -> Result<Tensor> {
    let b = batch_of(input, g)?;
    if qweight.rows() != g.out_channels || qweight.cols() != g.col_rows() {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "conv2d_forward_i8: quantized weight {}x{} incompatible with geometry \
                 ({} filters of {} taps)",
                qweight.rows(),
                qweight.cols(),
                g.out_channels,
                g.col_rows()
            ),
        });
    }
    if bias.len() != g.out_channels {
        return Err(TensorError::InvalidGeometry {
            reason: format!(
                "conv2d_forward_i8: bias {} != out channels {}",
                bias.len(),
                g.out_channels
            ),
        });
    }
    let kern = Kernel::select();
    ws.prepare_forward_i8(b, g, kern);
    let sample_len = g.in_channels * g.in_h * g.in_w;
    let out_len = g.out_channels * g.out_h * g.out_w;
    let _t = telemetry::span_with("tensor.quant.conv2d_fwd", || {
        format!(
            "b{b} {}x{}x{} -> {}x{}x{} k{} s{} p{}",
            g.in_channels, g.in_h, g.in_w, g.out_channels, g.out_h, g.out_w, g.kernel, g.stride,
            g.pad
        )
    });
    telemetry::counter_add(
        "tensor.quant.bytes",
        "conv_i8",
        (4 * b * sample_len + qweight.data().len() + b * g.col_rows() * g.col_cols()
            + 4 * b * out_len) as u64,
    );
    let nk2 = g.col_rows();
    let positions = g.col_cols();
    let col_len = nk2 * positions;
    let pa_len = packed_a_len(g.out_channels, nk2, kern.mr());
    let pb_len = packed_b_len(nk2, positions, kern.nr());
    let acc_len = g.out_channels * positions;
    let mut out = Tensor::zeros([b, g.out_channels, g.out_h, g.out_w]);
    let xv = input.as_slice();
    {
        let _p = telemetry::span_with("tensor.quant.pack", || format!("conv_fwd_w_i8 b{b}"));
        pack_a_i8(
            qweight.data(),
            g.out_channels,
            nk2,
            false,
            kern.mr(),
            &mut ws.packed_w_i8[..pa_len],
        );
    }
    let bv = bias.as_slice();
    let scales = qweight.scales();
    let parts = plan_parts(b, b as u64 * g.ops());
    {
        let out_base = SendPtr(out.as_mut_slice().as_mut_ptr());
        let qx_base = SendPtr(ws.qx.as_mut_ptr());
        let qcols_base = SendPtr(ws.qcols.as_mut_ptr());
        let pcols_base = SendPtr(ws.packed_cols_i8.as_mut_ptr());
        let acc_base = SendPtr(ws.acc_i32.as_mut_ptr());
        let pw = &ws.packed_w_i8[..pa_len];
        let run = |s: usize| {
            // SAFETY: task `s` touches only sample `s`'s slice of each
            // buffer; samples are disjoint.
            let qxs = unsafe {
                std::slice::from_raw_parts_mut(qx_base.get().add(s * sample_len), sample_len)
            };
            let qcol = unsafe {
                std::slice::from_raw_parts_mut(qcols_base.get().add(s * col_len), col_len)
            };
            let pcol = unsafe {
                std::slice::from_raw_parts_mut(pcols_base.get().add(s * pb_len), pb_len)
            };
            let acc = unsafe {
                std::slice::from_raw_parts_mut(acc_base.get().add(s * acc_len), acc_len)
            };
            let dst = unsafe {
                std::slice::from_raw_parts_mut(out_base.get().add(s * out_len), out_len)
            };
            let xs = &xv[s * sample_len..(s + 1) * sample_len];
            // Quantize the sample once, then stretch in the i8 domain:
            // im2col duplicates each element up to K² times, so
            // rounding after the stretch would do K² times the work
            // for bit-identical output.
            quantize_i8(xs, in_scale, qxs);
            im2col_into(qxs, g, qcol);
            pack_b_i8(qcol, nk2, positions, false, kern.nr(), pcol);
            kern.run_band_i8(pw, pcol, nk2, positions, 0..g.out_channels, acc);
            for m in 0..g.out_channels {
                let factor = in_scale * scales[m];
                let bm = bv[m];
                let arow = &acc[m * positions..(m + 1) * positions];
                let drow = &mut dst[m * positions..(m + 1) * positions];
                for (d, &a) in drow.iter_mut().zip(arow) {
                    *d = a as f32 * factor + bm;
                }
            }
        };
        if parts == 1 {
            for s in 0..b {
                run(s);
            }
        } else {
            parallel_for(b, run);
        }
    }
    Ok(out)
}

/// Gradients of a batched convolution.
///
/// Given the upstream gradient `dout: (B, M, R, C)` and the im2col
/// matrices saved by [`conv2d_forward`], returns
/// `(dinput, dweight, dbias)`.
///
/// # Errors
///
/// Returns an error on any shape disagreement with the geometry.
pub fn conv2d_backward(
    dout: &Tensor,
    weight: &Tensor,
    cols: &[Tensor],
    g: &ConvGeometry,
) -> Result<(Tensor, Tensor, Tensor)> {
    let b = cols.len();
    let col_len = g.col_rows() * g.col_cols();
    let mut ws = ConvWorkspace::new();
    ws.prepare_forward(b, g, Kernel::select());
    for (s, col) in cols.iter().enumerate() {
        let expected = [g.col_rows(), g.col_cols()];
        if col.dims() != expected {
            return Err(TensorError::ShapeMismatch {
                expected: expected.to_vec(),
                actual: col.dims().to_vec(),
                op: "conv2d_backward",
            });
        }
        ws.cols[s * col_len..(s + 1) * col_len].copy_from_slice(col.as_slice());
    }
    conv2d_backward_ws(dout, weight, g, &mut ws)
}

/// Gradients of a batched convolution, reading the im2col matrices that
/// [`conv2d_forward_ws`] saved in `ws`.
///
/// Same computation as [`conv2d_backward`] — bitwise identical gradients
/// for any thread count: samples run in parallel into per-sample partial
/// buffers, which are then reduced in ascending sample order exactly as
/// the sequential loop accumulates them.
///
/// # Errors
///
/// Returns an error if `ws` holds no forward pass for this geometry, or
/// on any shape disagreement with the geometry.
pub fn conv2d_backward_ws(
    dout: &Tensor,
    weight: &Tensor,
    g: &ConvGeometry,
    ws: &mut ConvWorkspace,
) -> Result<(Tensor, Tensor, Tensor)> {
    let b = match ws.key {
        Some((b, key_g)) if key_g == *g => b,
        _ => {
            return Err(TensorError::InvalidGeometry {
                reason: "conv2d_backward_ws: workspace holds no forward pass for this geometry"
                    .into(),
            })
        }
    };
    let expected = [b, g.out_channels, g.out_h, g.out_w];
    if dout.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            actual: dout.dims().to_vec(),
            op: "conv2d_backward",
        });
    }
    let nk2 = g.col_rows();
    if weight.len() != g.out_channels * nk2 {
        return Err(TensorError::ShapeMismatch {
            expected: vec![g.out_channels, g.in_channels, g.kernel, g.kernel],
            actual: weight.dims().to_vec(),
            op: "conv2d_backward(weight)",
        });
    }
    let kern = Kernel::select();
    ws.prepare_backward(b, g, kern);
    let (mr, nr) = (kern.mr(), kern.nr());
    let m_ch = g.out_channels;
    let positions = g.col_cols();
    let out_len = m_ch * positions;
    let sample_len = g.in_channels * g.in_h * g.in_w;
    let col_len = nk2 * positions;
    let dw_len = m_ch * nk2;
    let _t = conv_telemetry(
        "tensor.conv2d_bwd",
        b,
        g,
        4 * (b * (out_len + col_len + sample_len) + weight.len() + dw_len) as u64,
    );

    let mut dinput = Tensor::zeros([b, g.in_channels, g.in_h, g.in_w]);
    let dv = dout.as_slice();
    let pwt_len = packed_a_len(nk2, m_ch, mr);
    {
        // W is flat (M, N·K²) — i.e. (k, m) for the dcol GEMM — so the
        // transposed packing of it serves every sample; pack it once.
        let _p = telemetry::span_with("tensor.pack", || format!("conv_bwd_wt b{b}"));
        pack_a(weight.as_slice(), nk2, m_ch, true, mr, &mut ws.packed_wt[..pwt_len]);
    }
    let pdya_len = packed_a_len(m_ch, positions, mr);
    let pcolt_len = packed_b_len(positions, nk2, nr);
    let pdyb_len = packed_b_len(m_ch, positions, nr);
    let parts = plan_parts(b, 2 * b as u64 * g.ops());
    {
        let din_base = SendPtr(dinput.as_mut_slice().as_mut_ptr());
        let dcol_base = SendPtr(ws.dcols.as_mut_ptr());
        let dw_base = SendPtr(ws.dw_parts.as_mut_ptr());
        let db_base = SendPtr(ws.db_parts.as_mut_ptr());
        let pdya_base = SendPtr(ws.packed_dy_a.as_mut_ptr());
        let pcolt_base = SendPtr(ws.packed_colt.as_mut_ptr());
        let pdyb_base = SendPtr(ws.packed_dy_b.as_mut_ptr());
        let cols = &ws.cols;
        let pwt = &ws.packed_wt[..pwt_len];
        let run = |s: usize| {
            let dy = &dv[s * out_len..(s + 1) * out_len]; // (M, P)
            let col = &cols[s * col_len..(s + 1) * col_len]; // (N·K², P)
            // SAFETY: task `s` touches only sample `s`'s slice of each
            // scratch/output buffer; samples are disjoint.
            let pdya = unsafe {
                std::slice::from_raw_parts_mut(pdya_base.get().add(s * pdya_len), pdya_len)
            };
            let pcolt = unsafe {
                std::slice::from_raw_parts_mut(pcolt_base.get().add(s * pcolt_len), pcolt_len)
            };
            let pdyb = unsafe {
                std::slice::from_raw_parts_mut(pdyb_base.get().add(s * pdyb_len), pdyb_len)
            };
            let dw = unsafe { std::slice::from_raw_parts_mut(dw_base.get().add(s * dw_len), dw_len) };
            // dW_s = dY · colᵀ → (M, N·K²); col is (N·K², P) = (n, k),
            // so its transposed packing is the B-operand. The kernel
            // assigns every element, so `dw` needs no pre-zeroing.
            pack_a(dy, m_ch, positions, false, mr, pdya);
            pack_b(col, positions, nk2, true, nr, pcolt);
            kern.run_band(pdya, pcolt, positions, nk2, 0..m_ch, dw);
            // db_s = row sums of dY.
            let db = unsafe {
                std::slice::from_raw_parts_mut(db_base.get().add(s * m_ch), m_ch)
            };
            for m in 0..m_ch {
                db[m] = dy[m * positions..(m + 1) * positions].iter().sum::<f32>();
            }
            // dX_s = col2im(Wᵀ · dY); the kernel assigns every element
            // of dcol, which col2im then scatters into dx.
            let dcol =
                unsafe { std::slice::from_raw_parts_mut(dcol_base.get().add(s * col_len), col_len) };
            pack_b(dy, m_ch, positions, false, nr, pdyb);
            kern.run_band(pwt, pdyb, m_ch, positions, 0..nk2, dcol);
            let dx = unsafe {
                std::slice::from_raw_parts_mut(din_base.get().add(s * sample_len), sample_len)
            };
            col2im_into(dcol, g, dx);
        };
        if parts == 1 {
            for s in 0..b {
                run(s);
            }
        } else {
            parallel_for(b, run);
        }
    }

    // Deterministic reduction: ascending sample order, independent of
    // which worker produced each partial — the same fold the sequential
    // loop performs.
    let mut dwmat = vec![0.0f32; dw_len];
    let mut dbias = Tensor::zeros([g.out_channels]);
    let dbv = dbias.as_mut_slice();
    for s in 0..b {
        for (acc, &p) in dwmat.iter_mut().zip(&ws.dw_parts[s * dw_len..(s + 1) * dw_len]) {
            *acc += p;
        }
        let db = &ws.db_parts[s * g.out_channels..(s + 1) * g.out_channels];
        for (acc, &p) in dbv.iter_mut().zip(db) {
            *acc += p;
        }
    }
    let dweight =
        Tensor::from_vec([g.out_channels, g.in_channels, g.kernel, g.kernel], dwmat)?;
    Ok((dinput, dweight, dbias))
}

fn batch_of(input: &Tensor, g: &ConvGeometry) -> Result<usize> {
    let d = input.dims();
    if d.len() != 4 || d[1] != g.in_channels || d[2] != g.in_h || d[3] != g.in_w {
        return Err(TensorError::ShapeMismatch {
            expected: vec![0, g.in_channels, g.in_h, g.in_w],
            actual: d.to_vec(),
            op: "conv2d",
        });
    }
    Ok(d[0])
}

fn check_weight_bias(weight: &Tensor, bias: &Tensor, g: &ConvGeometry) -> Result<()> {
    let expected = [g.out_channels, g.in_channels, g.kernel, g.kernel];
    if weight.dims() != expected {
        return Err(TensorError::ShapeMismatch {
            expected: expected.to_vec(),
            actual: weight.dims().to_vec(),
            op: "conv2d(weight)",
        });
    }
    if bias.dims() != [g.out_channels] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![g.out_channels],
            actual: bias.dims().to_vec(),
            op: "conv2d(bias)",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn small_geom() -> ConvGeometry {
        ConvGeometry::new(2, 5, 5, 3, 3, 1, 1).unwrap()
    }

    #[test]
    fn geometry_math() {
        let g = ConvGeometry::new(3, 36, 36, 8, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (36, 36));
        let g2 = ConvGeometry::new(3, 227, 227, 96, 11, 4, 0).unwrap();
        assert_eq!((g2.out_h, g2.out_w), (55, 55)); // AlexNet conv1
        assert!(ConvGeometry::new(1, 4, 4, 1, 3, 0, 0).is_err());
        assert!(ConvGeometry::new(1, 2, 2, 1, 5, 1, 0).is_err());
    }

    #[test]
    fn ops_matches_eq1() {
        // AlexNet conv1: 2*96*3*11^2*55*55 = 210,830,400 ops
        let g = ConvGeometry::new(3, 227, 227, 96, 11, 4, 0).unwrap();
        assert_eq!(g.ops(), 2 * 96 * 3 * 121 * 55 * 55);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: col matrix equals input flattened.
        let g = ConvGeometry::new(2, 3, 3, 1, 1, 1, 0).unwrap();
        let x = Tensor::from_vec([2, 3, 3], (0..18).map(|i| i as f32).collect()).unwrap();
        let col = im2col(&x, &g).unwrap();
        assert_eq!(col.dims(), &[2, 9]);
        assert_eq!(col.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_known_values() {
        // 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad.
        let g = ConvGeometry::new(1, 3, 3, 1, 2, 1, 0).unwrap();
        let x = Tensor::from_vec([1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let col = im2col(&x, &g).unwrap();
        // Rows: k-position; cols: 4 output positions (2x2).
        assert_eq!(col.dims(), &[4, 4]);
        assert_eq!(col.row(0).unwrap().as_slice(), &[1.0, 2.0, 4.0, 5.0]); // top-left taps
        assert_eq!(col.row(3).unwrap().as_slice(), &[5.0, 6.0, 8.0, 9.0]); // bottom-right taps
    }

    #[test]
    fn conv_forward_known_values() {
        // Sum filter over 2x2 windows.
        let g = ConvGeometry::new(1, 3, 3, 1, 2, 1, 0).unwrap();
        let x = Tensor::from_vec([1, 1, 3, 3], (1..=9).map(|i| i as f32).collect()).unwrap();
        let w = Tensor::filled([1, 1, 2, 2], 1.0);
        let bias = Tensor::zeros([1]);
        let (y, _) = conv2d_forward(&x, &w, &bias, &g).unwrap();
        assert_eq!(y.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn bias_is_added_per_filter() {
        let g = ConvGeometry::new(1, 2, 2, 2, 1, 1, 0).unwrap();
        let x = Tensor::zeros([1, 1, 2, 2]);
        let w = Tensor::zeros([2, 1, 1, 1]);
        let bias = Tensor::from_vec([2], vec![0.5, -1.5]).unwrap();
        let (y, _) = conv2d_forward(&x, &w, &bias, &g).unwrap();
        assert_eq!(&y.as_slice()[0..4], &[0.5; 4]);
        assert_eq!(&y.as_slice()[4..8], &[-1.5; 4]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let g = small_geom();
        let mut rng = Rng::seed_from(6);
        let x = Tensor::rand_uniform([2, 5, 5], -1.0, 1.0, &mut rng);
        let y = Tensor::rand_uniform([g.col_rows(), g.col_cols()], -1.0, 1.0, &mut rng);
        let lhs: f32 = im2col(&x, &g)
            .unwrap()
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(col2im(&y, &g).unwrap().as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn gradient_check_weights_and_input() {
        // Central finite differences against analytic gradients on a tiny conv.
        let g = ConvGeometry::new(2, 4, 4, 2, 3, 1, 1).unwrap();
        let mut rng = Rng::seed_from(7);
        let x = Tensor::rand_uniform([1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([2, 2, 3, 3], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([2], -0.1, 0.1, &mut rng);
        // Loss = sum(output); so dout = ones.
        let (_, cols) = conv2d_forward(&x, &w, &bias, &g).unwrap();
        let dout = Tensor::filled([1, 2, g.out_h, g.out_w], 1.0);
        let (dx, dw, db) = conv2d_backward(&dout, &w, &cols, &g).unwrap();

        let eps = 1e-2f32;
        let loss = |x: &Tensor, w: &Tensor, b: &Tensor| -> f32 {
            conv2d_forward(x, w, b, &g).unwrap().0.sum()
        };
        // Check a scattering of weight coordinates.
        for idx in [0usize, 5, 17, 35] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (loss(&x, &wp, &bias) - loss(&x, &wm, &bias)) / (2.0 * eps);
            let ana = dw.as_slice()[idx];
            assert!((num - ana).abs() < 2e-2, "dW[{idx}]: num {num} vs ana {ana}");
        }
        for idx in [0usize, 9, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (loss(&xp, &w, &bias) - loss(&xm, &w, &bias)) / (2.0 * eps);
            let ana = dx.as_slice()[idx];
            assert!((num - ana).abs() < 2e-2, "dX[{idx}]: num {num} vs ana {ana}");
        }
        for idx in [0usize, 1] {
            let mut bp = bias.clone();
            bp.as_mut_slice()[idx] += eps;
            let mut bm = bias.clone();
            bm.as_mut_slice()[idx] -= eps;
            let num = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps);
            let ana = db.as_slice()[idx];
            assert!((num - ana).abs() < 2e-1, "db[{idx}]: num {num} vs ana {ana}");
        }
    }

    #[test]
    fn batch_independence() {
        // Convolving a batch equals convolving each sample separately.
        let g = small_geom();
        let mut rng = Rng::seed_from(8);
        let x = Tensor::rand_uniform([3, 2, 5, 5], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([3], -0.1, 0.1, &mut rng);
        let (y, _) = conv2d_forward(&x, &w, &bias, &g).unwrap();
        let sample_len = 2 * 5 * 5;
        let out_len = 3 * g.out_h * g.out_w;
        for s in 0..3 {
            let xs = Tensor::from_vec(
                [1, 2, 5, 5],
                x.as_slice()[s * sample_len..(s + 1) * sample_len].to_vec(),
            )
            .unwrap();
            let (ys, _) = conv2d_forward(&xs, &w, &bias, &g).unwrap();
            assert_eq!(&y.as_slice()[s * out_len..(s + 1) * out_len], ys.as_slice());
        }
    }

    #[test]
    fn shape_errors() {
        let g = small_geom();
        let bad_x = Tensor::zeros([1, 3, 5, 5]);
        let w = Tensor::zeros([3, 2, 3, 3]);
        let bias = Tensor::zeros([3]);
        assert!(conv2d_forward(&bad_x, &w, &bias, &g).is_err());
        let x = Tensor::zeros([1, 2, 5, 5]);
        assert!(conv2d_forward(&x, &Tensor::zeros([3, 2, 2, 2]), &bias, &g).is_err());
        assert!(conv2d_forward(&x, &w, &Tensor::zeros([4]), &g).is_err());
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn workspace_reuse_matches_fresh() {
        // The whole point of the workspace is that reusing it across
        // passes — same geometry, different inputs — changes nothing.
        let g = small_geom();
        let mut rng = Rng::seed_from(31);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, &mut rng);
        let bias = Tensor::rand_uniform([3], -0.1, 0.1, &mut rng);
        let mut ws = ConvWorkspace::new();
        for _ in 0..4 {
            let x = Tensor::rand_uniform([2, 2, 5, 5], -1.0, 1.0, &mut rng);
            let dout = Tensor::rand_uniform([2, 3, g.out_h, g.out_w], -1.0, 1.0, &mut rng);
            let y = conv2d_forward_ws(&x, &w, &bias, &g, &mut ws).unwrap();
            let (dx, dw, db) = conv2d_backward_ws(&dout, &w, &g, &mut ws).unwrap();
            let (y2, cols) = conv2d_forward(&x, &w, &bias, &g).unwrap();
            let (dx2, dw2, db2) = conv2d_backward(&dout, &w, &cols, &g).unwrap();
            assert_eq!(bits(&y), bits(&y2));
            assert_eq!(bits(&dx), bits(&dx2));
            assert_eq!(bits(&dw), bits(&dw2));
            assert_eq!(bits(&db), bits(&db2));
        }
    }

    #[test]
    fn workspace_survives_geometry_switch() {
        // Switching batch size or geometry must re-zero the column
        // buffer; stale padding taps from the previous shape would
        // otherwise leak into the new pass.
        let g1 = small_geom();
        let g2 = ConvGeometry::new(2, 7, 7, 4, 3, 1, 1).unwrap();
        let mut rng = Rng::seed_from(32);
        let mut ws = ConvWorkspace::new();
        for (g, b, m) in [(&g1, 3usize, 3usize), (&g2, 2, 4), (&g1, 1, 3), (&g1, 3, 3)] {
            let x = Tensor::rand_uniform([b, 2, g.in_h, g.in_w], -1.0, 1.0, &mut rng);
            let w = Tensor::rand_uniform([m, 2, 3, 3], -0.5, 0.5, &mut rng);
            let bias = Tensor::rand_uniform([m], -0.1, 0.1, &mut rng);
            let y = conv2d_forward_ws(&x, &w, &bias, g, &mut ws).unwrap();
            let (y2, _) = conv2d_forward(&x, &w, &bias, g).unwrap();
            assert_eq!(bits(&y), bits(&y2));
        }
    }

    #[test]
    fn workspace_backward_needs_matching_forward() {
        let g = small_geom();
        let mut rng = Rng::seed_from(33);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -0.5, 0.5, &mut rng);
        let dout = Tensor::rand_uniform([2, 3, g.out_h, g.out_w], -1.0, 1.0, &mut rng);
        // No forward pass at all.
        let mut ws = ConvWorkspace::new();
        assert!(conv2d_backward_ws(&dout, &w, &g, &mut ws).is_err());
        // Forward ran, but with a different batch size than dout claims.
        let x = Tensor::rand_uniform([1, 2, 5, 5], -1.0, 1.0, &mut rng);
        let bias = Tensor::zeros([3]);
        conv2d_forward_ws(&x, &w, &bias, &g, &mut ws).unwrap();
        assert!(conv2d_backward_ws(&dout, &w, &g, &mut ws).is_err());
    }
}
