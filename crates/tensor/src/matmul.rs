//! Matrix multiplication kernels.
//!
//! The convolution layers lower to GEMM via im2col (exactly the lowering
//! the paper describes for GPU execution in its Fig. 8), so GEMM is the
//! hot kernel of the whole reproduction. The production path is a
//! BLIS-style packed kernel: both operands are packed into register-tile
//! panels inside a reusable [`GemmScratch`] arena (see [`crate::pack`]),
//! then a fixed-order MR×NR micro-kernel (see [`crate::microkernel`])
//! computes every output tile with its accumulators in registers.
//! [`matmul_naive`] is the trivially-correct reference used by the
//! property tests.
//!
//! ## Determinism
//!
//! Every output element is one ascending-k accumulation chain starting
//! at `0.0` — the same chain [`matmul_naive`] performs — so the packed
//! kernels are **bitwise identical to the naive oracle**, for every
//! operand transpose, ragged edge, micro-kernel variant and thread
//! count (large products split over output-row panel bands on the
//! shared worker pool; see [`crate::parallel`]). Relative to the
//! pre-packing cache-blocked kernel the only representable difference
//! is that zero `A` elements are no longer skipped, which can flip
//! `-0.0` to `+0.0` or materialize NaN/∞ propagation for non-finite
//! inputs; for finite data results match that kernel bitwise too.
//!
//! ## Allocation
//!
//! The `*_ws` variants pack into a caller-owned [`GemmScratch`] that
//! only ever grows, so steady-state training/inference performs zero
//! heap allocations in the kernel path (the returned output tensor is
//! the one remaining allocation). The scratch-free entry points use a
//! thread-local arena with the same property.

use crate::error::TensorError;
use crate::microkernel::Kernel;
use crate::pack::{pack_a, pack_b, packed_a_len, packed_b_len};
pub use crate::pack::GemmScratch;
use crate::parallel::{parallel_for, plan_parts, split_range, SendPtr};
use crate::tensor::Tensor;
use crate::Result;
use insitu_telemetry as telemetry;
use std::cell::RefCell;

/// Opens the per-call telemetry span and bytes counter for one GEMM
/// kernel (inert while telemetry is disabled). `m`/`k`/`n` describe the
/// logical product; the bytes counter accounts both operands plus the
/// output at `f32` width.
fn gemm_telemetry(kernel: &'static str, m: usize, k: usize, n: usize) -> telemetry::Span {
    let span = telemetry::span_with(kernel, || format!("{m}x{k}x{n}"));
    let short = kernel.rsplit('.').next().unwrap_or(kernel);
    telemetry::counter_add("tensor.bytes", short, 4 * (m * k + k * n + m * n) as u64);
    span
}

/// Name of the GEMM micro-kernel variant this process selected (e.g.
/// `"avx2_8x8"` on an AVX2+FMA host, `"scalar_8x4"` otherwise or under
/// `INSITU_GEMM_KERNEL=scalar`). Selection happens once; benchmarks
/// record this so results are attributable to a kernel.
pub fn gemm_kernel_name() -> &'static str {
    Kernel::select().name()
}

/// Names of every GEMM micro-kernel variant the current host can run,
/// portable baseline first (e.g. `["scalar_8x4", "avx2_8x8",
/// "avx512_8x16"]` on an AVX-512 host). The cross-kernel property
/// tests and the benchmark iterate this together with
/// [`matmul_with_kernel`].
pub fn gemm_kernels_supported() -> Vec<&'static str> {
    Kernel::supported().into_iter().map(Kernel::name).collect()
}

thread_local! {
    /// Arena behind the scratch-free `matmul*` entry points. One per
    /// thread, so pool workers and user threads never contend; grows to
    /// the largest shape a thread has multiplied and then stays put.
    static TL_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

fn with_tl_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    TL_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

fn check_2d(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.shape().ndim() != 2 {
        return Err(TensorError::InvalidGeometry {
            reason: format!("`{op}` requires 2-D operands, got {}", t.shape()),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Reference `O(M·N·K)` triple-loop matrix product, `C = A·B`.
///
/// Use [`matmul`] in production code; this exists as the oracle for
/// property tests and for readability. The packed production kernels
/// reproduce this function's results bitwise (see the module docs).
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the inner dimensions
/// disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_2d(a, "matmul_naive")?;
    let (kb, n) = check_2d(b, "matmul_naive")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![kb, n],
            op: "matmul_naive",
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for k in 0..ka {
            let aik = av[i * ka + k];
            for j in 0..n {
                out[i * n + j] += aik * bv[k * n + j];
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Packs both operands into `scratch` and drives the micro-kernel over
/// the whole output, splitting panel-aligned row bands across the
/// worker pool when the product is large enough.
///
/// `a_trans`/`b_trans` select the `Aᵀ`/`Bᵀ` readings of the flat
/// operand slices; `out` is the row-major `m × n` output buffer, every
/// element of which is assigned.
#[allow(clippy::too_many_arguments)] // flat GEMM signature: operands + dims + scratch
pub(crate) fn gemm_packed(
    av: &[f32],
    a_trans: bool,
    bv: &[f32],
    b_trans: bool,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    out: &mut [f32],
) {
    gemm_packed_with(Kernel::select(), av, a_trans, bv, b_trans, m, k, n, scratch, out);
}

/// [`gemm_packed`] on an explicit micro-kernel variant — the entry
/// point behind [`matmul_with_kernel`] and the cross-kernel tests.
#[allow(clippy::too_many_arguments)] // flat GEMM signature: operands + dims + scratch
pub(crate) fn gemm_packed_with(
    kern: Kernel,
    av: &[f32],
    a_trans: bool,
    bv: &[f32],
    b_trans: bool,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let (mr, nr) = (kern.mr(), kern.nr());
    let (pa, pb) = scratch.panels(packed_a_len(m, k, mr), packed_b_len(k, n, nr));
    {
        let _p = telemetry::span_with("tensor.pack", || format!("{m}x{k}x{n}"));
        pack_a(av, m, k, a_trans, mr, pa);
        pack_b(bv, k, n, b_trans, nr, pb);
    }
    gemm_packed_prepacked(kern, pa, pb, m, k, n, out);
}

/// The compute half of [`gemm_packed`], for callers that pre-pack (the
/// convolution passes share one packed operand across a batch).
pub(crate) fn gemm_packed_prepacked(
    kern: Kernel,
    pa: &[f32],
    pb: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    let mr = kern.mr();
    let mp = m.div_ceil(mr);
    let parts = plan_parts(mp, 2 * m as u64 * k as u64 * n as u64);
    if parts <= 1 {
        kern.run_band(pa, pb, k, n, 0..m, out);
        return;
    }
    let base = SendPtr(out.as_mut_ptr());
    parallel_for(parts, move |p| {
        let pr = split_range(mp, parts, p);
        let (r0, r1) = (pr.start * mr, (pr.end * mr).min(m));
        // SAFETY: `split_range` partitions the panel index space, so
        // each task's row band `r0..r1` of `out` is disjoint.
        let band =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(r0 * n), (r1 - r0) * n) };
        kern.run_band(pa, pb, k, n, r0..r1, band);
    });
}

/// Packed register-tiled matrix product, `C = A·B`.
///
/// Equivalent to [`matmul_ws`] with a per-thread scratch arena.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the inner dimensions
/// disagree.
///
/// # Examples
///
/// ```
/// use insitu_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), insitu_tensor::TensorError> {
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    with_tl_scratch(|s| matmul_ws(a, b, s))
}

/// [`matmul`] packing into a caller-owned [`GemmScratch`], so repeated
/// calls with stable shapes perform no kernel-path allocations.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the inner dimensions
/// disagree.
pub fn matmul_ws(a: &Tensor, b: &Tensor, scratch: &mut GemmScratch) -> Result<Tensor> {
    let (m, ka) = check_2d(a, "matmul")?;
    let (kb, n) = check_2d(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![kb, n],
            op: "matmul",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_nn", m, ka, n);
    let mut out = vec![0.0f32; m * n];
    gemm_packed(a.as_slice(), false, b.as_slice(), false, m, ka, n, scratch, &mut out);
    Tensor::from_vec([m, n], out)
}

/// [`matmul`] forced onto a specific micro-kernel variant by name
/// (one of [`gemm_kernels_supported`]), regardless of the process-wide
/// selection. This is how the property tests and the benchmark sweep
/// every runnable kernel in one process; production code should use
/// [`matmul`] and let selection pick the widest.
///
/// # Errors
///
/// Returns an error if `kernel` is not a host-supported kernel name,
/// either operand is not 2-D, or the inner dimensions disagree.
pub fn matmul_with_kernel(a: &Tensor, b: &Tensor, kernel: &str) -> Result<Tensor> {
    let kern = Kernel::from_name(kernel).ok_or_else(|| TensorError::InvalidGeometry {
        reason: format!(
            "unknown or host-unsupported GEMM kernel `{kernel}`; this host supports {:?}",
            gemm_kernels_supported()
        ),
    })?;
    let (m, ka) = check_2d(a, "matmul")?;
    let (kb, n) = check_2d(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![kb, n],
            op: "matmul",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_nn", m, ka, n);
    let mut out = vec![0.0f32; m * n];
    with_tl_scratch(|s| {
        gemm_packed_with(kern, a.as_slice(), false, b.as_slice(), false, m, ka, n, s, &mut out)
    });
    Tensor::from_vec([m, n], out)
}

/// Computes `C = Aᵀ·B` without materializing the transpose.
///
/// With `A: (K, M)` and `B: (K, N)`, the result is `(M, N)`. This is the
/// shape that appears in weight-gradient computations
/// (`dW = dYᵀ·X` style products); the packing stage absorbs the
/// transpose, so it costs nothing over the plain product.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the shared leading
/// dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    with_tl_scratch(|s| matmul_tn_ws(a, b, s))
}

/// [`matmul_tn`] packing into a caller-owned [`GemmScratch`].
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the shared leading
/// dimensions disagree.
pub fn matmul_tn_ws(a: &Tensor, b: &Tensor, scratch: &mut GemmScratch) -> Result<Tensor> {
    let (ka, m) = check_2d(a, "matmul_tn")?;
    let (kb, n) = check_2d(b, "matmul_tn")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![ka, m],
            actual: vec![kb, n],
            op: "matmul_tn",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_tn", m, ka, n);
    let mut out = vec![0.0f32; m * n];
    gemm_packed(a.as_slice(), true, b.as_slice(), false, m, ka, n, scratch, &mut out);
    Tensor::from_vec([m, n], out)
}

/// Computes `C = A·Bᵀ` without materializing the transpose.
///
/// With `A: (M, K)` and `B: (N, K)`, the result is `(M, N)`. This is the
/// shape that appears in input-gradient computations; as with
/// [`matmul_tn`], the packing stage absorbs the transpose.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the trailing
/// dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    with_tl_scratch(|s| matmul_nt_ws(a, b, s))
}

/// [`matmul_nt`] packing into a caller-owned [`GemmScratch`].
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the trailing
/// dimensions disagree.
pub fn matmul_nt_ws(a: &Tensor, b: &Tensor, scratch: &mut GemmScratch) -> Result<Tensor> {
    let (m, ka) = check_2d(a, "matmul_nt")?;
    let (n, kb) = check_2d(b, "matmul_nt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![n, kb],
            op: "matmul_nt",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_nt", m, ka, n);
    let mut out = vec![0.0f32; m * n];
    gemm_packed(a.as_slice(), false, b.as_slice(), true, m, ka, n, scratch, &mut out);
    Tensor::from_vec([m, n], out)
}

/// Matrix-vector product `y = A·x` for `A: (M, N)`, `x: (N,)`.
///
/// Deliberately *not* routed through the packed kernel: a matvec reads
/// every `A` element exactly once, so it is bandwidth-bound and packing
/// would double its memory traffic for zero reuse. Row dot products
/// (parallelized over row bands) are optimal here.
///
/// # Errors
///
/// Returns an error if `a` is not 2-D, `x` is not 1-D, or sizes disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, n) = check_2d(a, "matvec")?;
    if x.shape().ndim() != 1 || x.len() != n {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n],
            actual: x.dims().to_vec(),
            op: "matvec",
        });
    }
    let _t = gemm_telemetry("tensor.matvec", m, n, 1);
    let (av, xv) = (a.as_slice(), x.as_slice());
    let mut out = vec![0.0f32; m];
    let parts = plan_parts(m, 2 * m as u64 * n as u64);
    if parts <= 1 {
        for (y, arow) in out.iter_mut().zip(av.chunks_exact(n.max(1))) {
            *y = arow.iter().zip(xv).map(|(&a, &b)| a * b).sum();
        }
    } else {
        let base = SendPtr(out.as_mut_ptr());
        parallel_for(parts, move |p| {
            let rows = split_range(m, parts, p);
            // SAFETY: `split_range` partitions `0..m`; bands disjoint.
            let band = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(rows.start), rows.len())
            };
            for (local, i) in rows.enumerate() {
                let arow = &av[i * n..(i + 1) * n];
                band[local] = arow.iter().zip(xv).map(|(&a, &b)| a * b).sum();
            }
        });
    }
    Tensor::from_vec([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn identity_product() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn rectangular_matches_naive_bitwise() {
        let mut rng = Rng::seed_from(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (70, 65, 130), (128, 64, 1), (8, 9, 4)] {
            let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = matmul_naive(&a, &b).unwrap();
            assert_eq!(bits(&fast), bits(&slow), "{m}x{k}x{n} diverged from the oracle");
        }
    }

    #[test]
    fn all_supported_kernels_agree_bitwise() {
        // Every runnable micro-kernel variant (scalar baseline plus any
        // runtime-detected SIMD tile) must produce identical bits: the
        // per-element op chain does not depend on tile width.
        let mut rng = Rng::seed_from(9);
        let (m, k, n) = (13, 27, 21);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([n, k], -1.0, 1.0, &mut rng); // (N, K): packed transposed
        let oracle = bits(&matmul_naive(&a, &b.transpose2d().unwrap()).unwrap());
        for kern in Kernel::supported() {
            let (mr, nr) = (kern.mr(), kern.nr());
            let mut scratch = GemmScratch::new();
            let (pa, pb) = scratch.panels(packed_a_len(m, k, mr), packed_b_len(k, n, nr));
            pack_a(a.as_slice(), m, k, false, mr, pa);
            pack_b(b.as_slice(), k, n, true, nr, pb);
            let mut out = vec![0.0f32; m * n];
            gemm_packed_prepacked(kern, pa, pb, m, k, n, &mut out);
            let got: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, oracle, "kernel {} diverged", kern.name());
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::rand_uniform([7, 4], -1.0, 1.0, &mut rng); // (K, M)
        let b = Tensor::rand_uniform([7, 5], -1.0, 1.0, &mut rng); // (K, N)
        let via_tn = matmul_tn(&a, &b).unwrap();
        let via_t = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        assert_eq!(bits(&via_tn), bits(&via_t));
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::rand_uniform([4, 7], -1.0, 1.0, &mut rng); // (M, K)
        let b = Tensor::rand_uniform([5, 7], -1.0, 1.0, &mut rng); // (N, K)
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose2d().unwrap()).unwrap();
        assert_eq!(bits(&via_nt), bits(&via_t));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::rand_uniform([6, 9], -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform([9], -1.0, 1.0, &mut rng);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape([9, 1]).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert!(y.max_abs_diff(&ym.reshape([6]).unwrap()).unwrap() < 1e-5);
    }

    #[test]
    fn explicit_scratch_reuse_matches_and_stops_allocating() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::rand_uniform([17, 23], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([23, 11], -1.0, 1.0, &mut rng);
        let fresh = matmul(&a, &b).unwrap();
        let mut s = GemmScratch::new();
        let first = matmul_ws(&a, &b, &mut s).unwrap();
        let grows = s.reallocations();
        assert!(grows >= 1);
        for _ in 0..3 {
            let again = matmul_ws(&a, &b, &mut s).unwrap();
            assert_eq!(bits(&again), bits(&first));
        }
        assert_eq!(s.reallocations(), grows, "steady state must not grow the arena");
        assert_eq!(bits(&first), bits(&fresh));
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        assert!(matmul(&a, &b).is_err()); // inner dims 3 vs 2
        assert!(matmul(&a, &Tensor::zeros([3])).is_err()); // not 2-D
        assert!(matvec(&a, &Tensor::zeros([2])).is_err());
    }
}
