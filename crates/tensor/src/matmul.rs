//! Matrix multiplication kernels.
//!
//! The convolution layers lower to GEMM via im2col (exactly the lowering
//! the paper describes for GPU execution in its Fig. 8), so GEMM is the
//! hot kernel of the whole reproduction. [`matmul`] uses a cache-blocked
//! kernel; [`matmul_naive`] is the trivially-correct reference used by the
//! property tests.
//!
//! Large products are split over output-row bands and run on the shared
//! worker pool (see [`crate::parallel`]). Each output element is always
//! accumulated in the same order as the sequential kernel, so results are
//! bitwise identical for any thread count.

use crate::error::TensorError;
use crate::parallel::{par_row_chunks, plan_parts};
use crate::tensor::Tensor;
use crate::Result;
use insitu_telemetry as telemetry;
use std::ops::Range;

/// Opens the per-call telemetry span and bytes counter for one GEMM
/// kernel (inert while telemetry is disabled). `m`/`k`/`n` describe the
/// logical product; the bytes counter accounts both operands plus the
/// output at `f32` width.
fn gemm_telemetry(kernel: &'static str, m: usize, k: usize, n: usize) -> telemetry::Span {
    let span = telemetry::span_with(kernel, || format!("{m}x{k}x{n}"));
    let short = kernel.rsplit('.').next().unwrap_or(kernel);
    telemetry::counter_add("tensor.bytes", short, 4 * (m * k + k * n + m * n) as u64);
    span
}

/// Cache block edge for the tiled GEMM kernel.
const BLOCK: usize = 64;

fn check_2d(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.shape().ndim() != 2 {
        return Err(TensorError::InvalidGeometry {
            reason: format!("`{op}` requires 2-D operands, got {}", t.shape()),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Reference `O(M·N·K)` triple-loop matrix product, `C = A·B`.
///
/// Use [`matmul`] in production code; this exists as the oracle for
/// property tests and for readability.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the inner dimensions
/// disagree.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_2d(a, "matmul_naive")?;
    let (kb, n) = check_2d(b, "matmul_naive")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![kb, n],
            op: "matmul_naive",
        });
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for k in 0..ka {
            let aik = av[i * ka + k];
            for j in 0..n {
                out[i * n + j] += aik * bv[k * n + j];
            }
        }
    }
    Tensor::from_vec([m, n], out)
}

/// Cache-blocked matrix product, `C = A·B`.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the inner dimensions
/// disagree.
///
/// # Examples
///
/// ```
/// use insitu_tensor::{matmul, Tensor};
/// # fn main() -> Result<(), insitu_tensor::TensorError> {
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let i = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(matmul(&a, &i)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_2d(a, "matmul")?;
    let (kb, n) = check_2d(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![kb, n],
            op: "matmul",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_nn", m, ka, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    let parts = plan_parts(m, 2 * m as u64 * ka as u64 * n as u64);
    par_row_chunks(&mut out, m, n, parts, |rows, band| {
        gemm_nn_rows(av, bv, band, rows, ka, n);
    });
    Tensor::from_vec([m, n], out)
}

/// Cache-blocked `C[rows] = A[rows]·B` into `band` (the rows' sub-slice
/// of the output, pre-zeroed).
///
/// For a fixed output element, the k-blocks and the k values inside each
/// block are visited in ascending order regardless of `rows`, so row
/// partitioning never changes the accumulation order.
pub(crate) fn gemm_nn_rows(
    av: &[f32],
    bv: &[f32],
    band: &mut [f32],
    rows: Range<usize>,
    ka: usize,
    n: usize,
) {
    let r0 = rows.start;
    for ib in (rows.start..rows.end).step_by(BLOCK) {
        let imax = (ib + BLOCK).min(rows.end);
        for kb_ in (0..ka).step_by(BLOCK) {
            let kmax = (kb_ + BLOCK).min(ka);
            for jb in (0..n).step_by(BLOCK) {
                let jmax = (jb + BLOCK).min(n);
                for i in ib..imax {
                    let arow = &av[i * ka..(i + 1) * ka];
                    let orow = &mut band[(i - r0) * n..(i - r0 + 1) * n];
                    for k in kb_..kmax {
                        let aik = arow[k];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &bv[k * n..(k + 1) * n];
                        for j in jb..jmax {
                            orow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Computes `C = Aᵀ·B` without materializing the transpose.
///
/// With `A: (K, M)` and `B: (K, N)`, the result is `(M, N)`. This is the
/// shape that appears in weight-gradient computations
/// (`dW = dYᵀ·X` style products).
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the shared leading
/// dimensions disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check_2d(a, "matmul_tn")?;
    let (kb, n) = check_2d(b, "matmul_tn")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![ka, m],
            actual: vec![kb, n],
            op: "matmul_tn",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_tn", m, ka, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    let parts = plan_parts(m, 2 * m as u64 * ka as u64 * n as u64);
    par_row_chunks(&mut out, m, n, parts, |rows, band| {
        gemm_tn_rows(av, bv, band, rows, ka, m, n);
    });
    Tensor::from_vec([m, n], out)
}

/// `C[rows] = Aᵀ·B` restricted to output rows `rows`, into `band`
/// (pre-zeroed). Keeps the k-outer loop of the sequential kernel, so each
/// element accumulates over k in ascending order for any row partition.
pub(crate) fn gemm_tn_rows(
    av: &[f32],
    bv: &[f32],
    band: &mut [f32],
    rows: Range<usize>,
    ka: usize,
    m: usize,
    n: usize,
) {
    let r0 = rows.start;
    for k in 0..ka {
        let arow = &av[k * m..(k + 1) * m];
        let brow = &bv[k * n..(k + 1) * n];
        for i in rows.clone() {
            let aki = arow[i];
            if aki == 0.0 {
                continue;
            }
            let orow = &mut band[(i - r0) * n..(i - r0 + 1) * n];
            for j in 0..n {
                orow[j] += aki * brow[j];
            }
        }
    }
}

/// Computes `C = A·Bᵀ` without materializing the transpose.
///
/// With `A: (M, K)` and `B: (N, K)`, the result is `(M, N)`. This is the
/// shape that appears in input-gradient computations.
///
/// # Errors
///
/// Returns an error if either operand is not 2-D or the trailing
/// dimensions disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_2d(a, "matmul_nt")?;
    let (n, kb) = check_2d(b, "matmul_nt")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            expected: vec![m, ka],
            actual: vec![n, kb],
            op: "matmul_nt",
        });
    }
    let _t = gemm_telemetry("tensor.gemm_nt", m, ka, n);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let mut out = vec![0.0f32; m * n];
    let parts = plan_parts(m, 2 * m as u64 * ka as u64 * n as u64);
    par_row_chunks(&mut out, m, n, parts, |rows, band| {
        gemm_nt_rows(av, bv, band, rows, ka, n);
    });
    Tensor::from_vec([m, n], out)
}

/// `C[rows] = A·Bᵀ` restricted to output rows `rows`, into `band`. Every
/// element is an independent assigned dot product, so any partition is
/// trivially order-preserving.
pub(crate) fn gemm_nt_rows(
    av: &[f32],
    bv: &[f32],
    band: &mut [f32],
    rows: Range<usize>,
    ka: usize,
    n: usize,
) {
    let r0 = rows.start;
    for i in rows.clone() {
        let arow = &av[i * ka..(i + 1) * ka];
        for j in 0..n {
            let brow = &bv[j * ka..(j + 1) * ka];
            let mut acc = 0.0;
            for k in 0..ka {
                acc += arow[k] * brow[k];
            }
            band[(i - r0) * n + j] = acc;
        }
    }
}

/// Matrix-vector product `y = A·x` for `A: (M, N)`, `x: (N,)`.
///
/// # Errors
///
/// Returns an error if `a` is not 2-D, `x` is not 1-D, or sizes disagree.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, n) = check_2d(a, "matvec")?;
    if x.shape().ndim() != 1 || x.len() != n {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n],
            actual: x.dims().to_vec(),
            op: "matvec",
        });
    }
    let _t = gemm_telemetry("tensor.matvec", m, n, 1);
    let (av, xv) = (a.as_slice(), x.as_slice());
    let mut out = vec![0.0f32; m];
    let parts = plan_parts(m, 2 * m as u64 * n as u64);
    par_row_chunks(&mut out, m, 1, parts, |rows, band| {
        let r0 = rows.start;
        for i in rows.clone() {
            let arow = &av[i * n..(i + 1) * n];
            band[i - r0] = arow.iter().zip(xv).map(|(&a, &b)| a * b).sum();
        }
    });
    Tensor::from_vec([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn identity_product() {
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let i = Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec([2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn rectangular_matches_naive() {
        let mut rng = Rng::seed_from(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (70, 65, 130), (128, 64, 1)] {
            let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = matmul_naive(&a, &b).unwrap();
            assert!(fast.max_abs_diff(&slow).unwrap() < 1e-4);
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::rand_uniform([7, 4], -1.0, 1.0, &mut rng); // (K, M)
        let b = Tensor::rand_uniform([7, 5], -1.0, 1.0, &mut rng); // (K, N)
        let via_tn = matmul_tn(&a, &b).unwrap();
        let via_t = matmul(&a.transpose2d().unwrap(), &b).unwrap();
        assert!(via_tn.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::rand_uniform([4, 7], -1.0, 1.0, &mut rng); // (M, K)
        let b = Tensor::rand_uniform([5, 7], -1.0, 1.0, &mut rng); // (N, K)
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose2d().unwrap()).unwrap();
        assert!(via_nt.max_abs_diff(&via_t).unwrap() < 1e-5);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::rand_uniform([6, 9], -1.0, 1.0, &mut rng);
        let x = Tensor::rand_uniform([9], -1.0, 1.0, &mut rng);
        let y = matvec(&a, &x).unwrap();
        let xm = x.reshape([9, 1]).unwrap();
        let ym = matmul(&a, &xm).unwrap();
        assert!(y.max_abs_diff(&ym.reshape([6]).unwrap()).unwrap() < 1e-5);
    }

    #[test]
    fn dimension_errors() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 3]);
        assert!(matmul(&a, &b).is_err()); // inner dims 3 vs 2
        assert!(matmul(&a, &Tensor::zeros([3])).is_err()); // not 2-D
        assert!(matvec(&a, &Tensor::zeros([2])).is_err());
    }
}
