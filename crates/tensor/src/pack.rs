//! Operand packing and the reusable GEMM scratch arena.
//!
//! The packed layouts are the classic BLIS panels the micro-kernel
//! (see [`crate::microkernel`]) consumes:
//!
//! ```text
//! A (M×K)  → ⌈M/MR⌉ panels, each MR rows stored k-major:
//!            pa[p·MR·K + k·MR + r] = A[p·MR + r, k]
//! B (K×N)  → ⌈N/NR⌉ panels, each NR columns stored k-major:
//!            pb[q·NR·K + k·NR + c] = B[k, q·NR + c]
//! ```
//!
//! so the micro-kernel's k loop reads both operands with stride-1
//! streams regardless of the original layout. Transposed operands
//! (`Aᵀ·B`, `A·Bᵀ`) are handled *here*, by reading the source with
//! swapped strides — packing makes the transpose free and lets one
//! micro-kernel serve the whole GEMM family. Rows/columns beyond the
//! matrix edge are zero-filled, which is what lets the micro-kernel
//! always compute full tiles (padded lanes contribute `0·x` to lanes
//! that are then discarded).
//!
//! [`GemmScratch`] owns the packed-panel buffers. It only ever grows
//! ([`grow_scratch`]), so a workload with stable shapes reaches a
//! steady state in which the kernel path performs **zero heap
//! allocations**; [`GemmScratch::reallocations`] exposes the growth
//! count so tests can assert exactly that. Growth is also accounted to
//! the `tensor.scratch_bytes` telemetry counter, making arena
//! footprints visible in traces.
//!
//! The packers are generic over the element type: the i8 quantized
//! GEMM (see [`crate::quant`]) packs `i8` operands into the *same*
//! panel layout, so one pair of packers and one set of layout tests
//! covers both datapaths.

use insitu_telemetry as telemetry;

/// Length of the packed-A buffer for an `m × k` operand at tile height
/// `mr`: whole panels, zero-padded in the row direction.
pub(crate) fn packed_a_len(m: usize, k: usize, mr: usize) -> usize {
    m.div_ceil(mr) * mr * k
}

/// Length of the packed-B buffer for a `k × n` operand at tile width
/// `nr`: whole panels, zero-padded in the column direction.
pub(crate) fn packed_b_len(k: usize, n: usize, nr: usize) -> usize {
    n.div_ceil(nr) * nr * k
}

/// Packs the left operand into MR-tall k-major panels.
///
/// `src` is row-major `(m, k)` — or `(k, m)` when `trans` is set, in
/// which case the packed result represents `srcᵀ`. `dst` must hold
/// [`packed_a_len`] elements; every element is written (valid lanes
/// copied, padding zeroed), so `dst` needs no pre-clearing.
pub(crate) fn pack_a<T: Copy + Default>(
    src: &[T],
    m: usize,
    k: usize,
    trans: bool,
    mr: usize,
    dst: &mut [T],
) {
    debug_assert_eq!(src.len(), m * k);
    debug_assert_eq!(dst.len(), packed_a_len(m, k, mr));
    if k == 0 {
        return; // degenerate product: nothing to pack (dst is empty)
    }
    for (p, panel) in dst.chunks_exact_mut(mr * k).enumerate() {
        let i0 = p * mr;
        let rows = mr.min(m - i0);
        if trans {
            // src[k', i]: a packed k-step is a contiguous run of src.
            for (kk, d) in panel.chunks_exact_mut(mr).enumerate() {
                d[..rows].copy_from_slice(&src[kk * m + i0..][..rows]);
                d[rows..].fill(T::default());
            }
        } else {
            // src[i, k']: gather one source row into lane r of every
            // k-step (a small strided transpose, O(M·K) total).
            for r in 0..rows {
                let row = &src[(i0 + r) * k..][..k];
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * mr + r] = v;
                }
            }
            for r in rows..mr {
                for kk in 0..k {
                    panel[kk * mr + r] = T::default();
                }
            }
        }
    }
}

/// Packs the right operand into NR-wide k-major panels.
///
/// `src` is row-major `(k, n)` — or `(n, k)` when `trans` is set, in
/// which case the packed result represents `srcᵀ`. `dst` must hold
/// [`packed_b_len`] elements; every element is written.
pub(crate) fn pack_b<T: Copy + Default>(
    src: &[T],
    k: usize,
    n: usize,
    trans: bool,
    nr: usize,
    dst: &mut [T],
) {
    debug_assert_eq!(src.len(), k * n);
    debug_assert_eq!(dst.len(), packed_b_len(k, n, nr));
    if k == 0 {
        return; // degenerate product: nothing to pack (dst is empty)
    }
    for (q, panel) in dst.chunks_exact_mut(nr * k).enumerate() {
        let j0 = q * nr;
        let cols = nr.min(n - j0);
        if trans {
            // src[j, k']: one source row feeds lane c of every k-step.
            for c in 0..cols {
                let row = &src[(j0 + c) * k..][..k];
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * nr + c] = v;
                }
            }
            for c in cols..nr {
                for kk in 0..k {
                    panel[kk * nr + c] = T::default();
                }
            }
        } else {
            // src[k', j]: a packed k-step is a contiguous run of src.
            for (kk, d) in panel.chunks_exact_mut(nr).enumerate() {
                d[..cols].copy_from_slice(&src[kk * n + j0..][..cols]);
                d[cols..].fill(T::default());
            }
        }
    }
}

/// Transposes an 8×8 byte square held as eight little-endian u64 rows
/// in place: byte `j` of output word `r` = byte `r` of input word `j`.
/// Three levels of block swaps (4-, 2-, 1-byte blocks), ~9 bit ops per
/// level — about one op per byte, versus one strided load *and* store
/// per byte for the scalar gather.
#[inline(always)]
fn transpose8x8_bytes(w: &mut [u64; 8]) {
    const M4: u64 = 0x0000_0000_FFFF_FFFF;
    const M2: u64 = 0x0000_FFFF_0000_FFFF;
    const M1: u64 = 0x00FF_00FF_00FF_00FF;
    for r in 0..4 {
        let (u, v) = (w[r], w[r + 4]);
        w[r] = (u & M4) | ((v & M4) << 32);
        w[r + 4] = ((u >> 32) & M4) | (v & !M4);
    }
    for r in [0usize, 1, 4, 5] {
        let (u, v) = (w[r], w[r + 2]);
        w[r] = (u & M2) | ((v & M2) << 16);
        w[r + 2] = ((u >> 16) & M2) | (v & !M2);
    }
    for r in [0usize, 2, 4, 6] {
        let (u, v) = (w[r], w[r + 1]);
        w[r] = (u & M1) | ((v & M1) << 8);
        w[r + 1] = ((u >> 8) & M1) | (v & !M1);
    }
}

/// Packs one 8-row k-major half-band from contiguous source rows into
/// a panel of `lanes` byte lanes per k-step, starting at lane `lane0`:
/// `panel[kk·lanes + lane0 + r] = src[(row0 + r)·k + kk]`, lanes
/// `lane0 + r` for `r ≥ nrows` zeroed. Full bands go through
/// [`transpose8x8_bytes`] eight k-steps at a time; ragged edges fall
/// back to the scalar gather. `lanes == 8, lane0 == 0` is the classic
/// 8-wide panel; a 16-wide panel is two calls at `lane0 ∈ {0, 8}`.
fn pack_band_transpose_i8(
    src: &[i8],
    row0: usize,
    nrows: usize,
    k: usize,
    lanes: usize,
    lane0: usize,
    panel: &mut [i8],
) {
    debug_assert!(nrows <= 8);
    debug_assert!(lane0 + 8 <= lanes);
    debug_assert_eq!(panel.len(), lanes * k);
    if nrows == 8 {
        let k8 = k - k % 8;
        let mut kk = 0;
        while kk < k8 {
            let mut w = [0u64; 8];
            for (r, wr) in w.iter_mut().enumerate() {
                let s: &[i8; 8] = src[(row0 + r) * k + kk..][..8].try_into().unwrap();
                *wr = u64::from_le_bytes(s.map(|b| b as u8));
            }
            transpose8x8_bytes(&mut w);
            for (j, wj) in w.iter().enumerate() {
                let d: &mut [i8; 8] =
                    (&mut panel[(kk + j) * lanes + lane0..][..8]).try_into().unwrap();
                *d = wj.to_le_bytes().map(|b| b as i8);
            }
            kk += 8;
        }
        for r in 0..8 {
            let row = &src[(row0 + r) * k..][..k];
            for kk in k8..k {
                panel[kk * lanes + lane0 + r] = row[kk];
            }
        }
    } else {
        for r in 0..nrows {
            let row = &src[(row0 + r) * k..][..k];
            for (kk, &v) in row.iter().enumerate() {
                panel[kk * lanes + lane0 + r] = v;
            }
        }
        for r in nrows..8 {
            for kk in 0..k {
                panel[kk * lanes + lane0 + r] = 0;
            }
        }
    }
}

/// i8 left-operand packer: the layout contract of [`pack_a`], with a
/// word-at-a-time byte transpose on the dominant non-transposed
/// `mr == 8` path (the strided scalar gather is the packing cost that
/// dilutes the i8 kernel's edge on small GEMMs). Other configurations
/// delegate to the generic packer.
pub(crate) fn pack_a_i8(src: &[i8], m: usize, k: usize, trans: bool, mr: usize, dst: &mut [i8]) {
    if trans || mr != 8 {
        return pack_a(src, m, k, trans, mr, dst);
    }
    debug_assert_eq!(src.len(), m * k);
    debug_assert_eq!(dst.len(), packed_a_len(m, k, 8));
    if k == 0 {
        return; // degenerate product: nothing to pack (dst is empty)
    }
    for (p, panel) in dst.chunks_exact_mut(8 * k).enumerate() {
        let i0 = p * 8;
        pack_band_transpose_i8(src, i0, 8.min(m - i0), k, 8, 0, panel);
    }
}

/// i8 right-operand packer: the layout contract of [`pack_b`]. The
/// transposed `nr == 8` case (Linear weights stored `(out, in)`) is
/// the same band transpose as [`pack_a_i8`], and `nr == 16` (the
/// AVX-512 tile) is two such half-band transposes at lane offsets 0
/// and 8; the non-transposed full panel copies fixed-width words
/// instead of runtime-length slices. Other configurations delegate to
/// the generic packer.
pub(crate) fn pack_b_i8(src: &[i8], k: usize, n: usize, trans: bool, nr: usize, dst: &mut [i8]) {
    if nr != 8 && nr != 16 {
        return pack_b(src, k, n, trans, nr, dst);
    }
    debug_assert_eq!(src.len(), k * n);
    debug_assert_eq!(dst.len(), packed_b_len(k, n, nr));
    if k == 0 {
        return; // degenerate product: nothing to pack (dst is empty)
    }
    for (q, panel) in dst.chunks_exact_mut(nr * k).enumerate() {
        let j0 = q * nr;
        let cols = nr.min(n - j0);
        if trans {
            pack_band_transpose_i8(src, j0, cols.min(8), k, nr, 0, panel);
            if nr == 16 {
                pack_band_transpose_i8(src, j0 + 8, cols.saturating_sub(8), k, nr, 8, panel);
            }
        } else if cols == nr {
            for (kk, d) in panel.chunks_exact_mut(nr).enumerate() {
                d.copy_from_slice(&src[kk * n + j0..][..nr]);
            }
        } else {
            for (kk, d) in panel.chunks_exact_mut(nr).enumerate() {
                d[..cols].copy_from_slice(&src[kk * n + j0..][..cols]);
                d[cols..].fill(0);
            }
        }
    }
}

/// Grows `buf` to at least `len` elements, counting the growth in
/// `grows` and accounting the new bytes to the `tensor.scratch_bytes`
/// telemetry counter under `label`. Never shrinks: with stable shapes
/// the second and every later call is free, which is the property the
/// zero-steady-state-allocation tests pin down.
pub(crate) fn grow_scratch<T: Copy + Default>(
    buf: &mut Vec<T>,
    len: usize,
    grows: &mut usize,
    label: &'static str,
) {
    if buf.len() < len {
        *grows += 1;
        let bytes = (len - buf.len()) * std::mem::size_of::<T>();
        telemetry::counter_add("tensor.scratch_bytes", label, bytes as u64);
        buf.resize(len, T::default());
    }
}

/// Reusable packed-operand arena for the GEMM family.
///
/// One scratch serves any sequence of GEMM calls: each call packs its
/// operands into the arena, growing it only when a larger shape than
/// ever before arrives. The `matmul*` entry points without an explicit
/// scratch use a thread-local one; layers that sit in a training loop
/// (see `insitu-nn`'s `Linear`) own a scratch so their steady state
/// allocates nothing in the kernel path.
///
/// Cloning yields a fresh empty scratch: the buffers hold no data that
/// outlives a call, so there is nothing meaningful to copy and cloned
/// layers should not drag warmed-up capacity around.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pa: Vec<f32>,
    pb: Vec<f32>,
    pa_i8: Vec<i8>,
    pb_i8: Vec<i8>,
    qa: Vec<i8>,
    acc: Vec<i32>,
    grows: usize,
}

impl Clone for GemmScratch {
    fn clone(&self) -> Self {
        GemmScratch::new()
    }
}

impl GemmScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times any internal buffer has grown. Constant between
    /// two calls ⇒ the kernel path performed no heap allocation in
    /// between.
    pub fn reallocations(&self) -> usize {
        self.grows
    }

    /// Current arena footprint in bytes.
    pub fn capacity_bytes(&self) -> usize {
        4 * (self.pa.len() + self.pb.len() + self.acc.len())
            + self.pa_i8.len()
            + self.pb_i8.len()
            + self.qa.len()
    }

    /// The packed-A / packed-B destination slices for one GEMM call,
    /// growing the arena if this is the largest shape seen so far.
    pub(crate) fn panels(&mut self, a_len: usize, b_len: usize) -> (&mut [f32], &mut [f32]) {
        grow_scratch(&mut self.pa, a_len, &mut self.grows, "gemm");
        grow_scratch(&mut self.pb, b_len, &mut self.grows, "gemm");
        (&mut self.pa[..a_len], &mut self.pb[..b_len])
    }

    /// The i8 packed-A / packed-B destination slices for one quantized
    /// GEMM call. Separate from the f32 panels so mixed f32/i8
    /// workloads on one scratch never thrash each other's capacity.
    pub(crate) fn panels_i8(&mut self, a_len: usize, b_len: usize) -> (&mut [i8], &mut [i8]) {
        grow_scratch(&mut self.pa_i8, a_len, &mut self.grows, "gemm_i8");
        grow_scratch(&mut self.pb_i8, b_len, &mut self.grows, "gemm_i8");
        (&mut self.pa_i8[..a_len], &mut self.pb_i8[..b_len])
    }

    /// Every buffer one quantized layer forward needs, in one borrow:
    /// (packed-A i8, packed-B i8, quantized-activation staging, i32
    /// accumulator). Split this way because the caller quantizes into
    /// `qa`, packs it into the panels, then accumulates into `acc` —
    /// all four must be live at once.
    pub(crate) fn quant_buffers(
        &mut self,
        a_len: usize,
        b_len: usize,
        qa_len: usize,
        acc_len: usize,
    ) -> (&mut [i8], &mut [i8], &mut [i8], &mut [i32]) {
        grow_scratch(&mut self.pa_i8, a_len, &mut self.grows, "gemm_i8");
        grow_scratch(&mut self.pb_i8, b_len, &mut self.grows, "gemm_i8");
        grow_scratch(&mut self.qa, qa_len, &mut self.grows, "gemm_i8");
        grow_scratch(&mut self.acc, acc_len, &mut self.grows, "gemm_i8");
        (
            &mut self.pa_i8[..a_len],
            &mut self.pb_i8[..b_len],
            &mut self.qa[..qa_len],
            &mut self.acc[..acc_len],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layout_and_padding() {
        // 3×2 matrix, mr = 2: two panels, second padded with one row.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows [1 2] [3 4] [5 6]
        let mut dst = vec![f32::NAN; packed_a_len(3, 2, 2)];
        pack_a(&src, 3, 2, false, 2, &mut dst);
        // Panel 0: k0 -> [1, 3], k1 -> [2, 4]; panel 1: [5, 0], [6, 0].
        assert_eq!(dst, vec![1.0, 3.0, 2.0, 4.0, 5.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_a_trans_matches_explicit_transpose() {
        // src (k=2, m=3) packed with trans == its transpose packed flat.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // (2,3): [[1 2 3],[4 5 6]]
        let t = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // (3,2)
        let mut a = vec![0.0; packed_a_len(3, 2, 2)];
        let mut b = vec![0.0; packed_a_len(3, 2, 2)];
        pack_a(&src, 3, 2, true, 2, &mut a);
        pack_a(&t, 3, 2, false, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2×3 matrix, nr = 2: panel 0 = cols {0,1}, panel 1 = col 2 + pad.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // (2,3): [[1 2 3],[4 5 6]]
        let mut dst = vec![f32::NAN; packed_b_len(2, 3, 2)];
        pack_b(&src, 2, 3, false, 2, &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 4.0, 5.0, 3.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_b_trans_matches_explicit_transpose() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // (n=3, k=2)
        let t = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0]; // (k=2, n=3)
        let mut a = vec![0.0; packed_b_len(2, 3, 2)];
        let mut b = vec![0.0; packed_b_len(2, 3, 2)];
        pack_b(&src, 2, 3, true, 2, &mut a);
        pack_b(&t, 2, 3, false, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn generic_packers_give_same_layout_for_i8() {
        // Same panel layout as the f32 packers, element type aside.
        let src = [1i8, 2, 3, 4, 5, 6];
        let mut a = vec![i8::MIN; packed_a_len(3, 2, 2)];
        pack_a(&src, 3, 2, false, 2, &mut a);
        assert_eq!(a, vec![1, 3, 2, 4, 5, 0, 6, 0]);
        let mut b = vec![i8::MIN; packed_b_len(2, 3, 2)];
        pack_b(&src, 2, 3, false, 2, &mut b);
        assert_eq!(b, vec![1, 2, 4, 5, 3, 0, 6, 0]);
    }

    #[test]
    fn i8_packers_match_the_generic_packers_bitwise() {
        // The specialized word-transpose / fixed-copy paths must
        // produce exactly the generic layout at every raggedness:
        // full and partial bands, k tails, both orientations.
        let mut rng = crate::rng::Rng::seed_from(91);
        for &(m, k) in &[(1, 1), (7, 9), (8, 8), (8, 19), (9, 16), (24, 21), (17, 40)] {
            let src: Vec<i8> =
                (0..m * k).map(|_| (rng.below(255) as i32 - 127) as i8).collect();
            for mr in [4usize, 8] {
                let mut want = vec![i8::MIN; packed_a_len(m, k, mr)];
                let mut got = vec![i8::MAX; packed_a_len(m, k, mr)];
                pack_a(&src, m, k, false, mr, &mut want);
                pack_a_i8(&src, m, k, false, mr, &mut got);
                assert_eq!(got, want, "pack_a_i8 {m}x{k} mr{mr}");
                pack_a(&src, m, k, true, mr, &mut want);
                pack_a_i8(&src, m, k, true, mr, &mut got);
                assert_eq!(got, want, "pack_a_i8ᵀ {m}x{k} mr{mr}");
            }
            let (kk, n) = (m, k); // reuse the buffer as a (k, n) operand
            for nr in [4usize, 8] {
                let mut want = vec![i8::MIN; packed_b_len(kk, n, nr)];
                let mut got = vec![i8::MAX; packed_b_len(kk, n, nr)];
                pack_b(&src, kk, n, false, nr, &mut want);
                pack_b_i8(&src, kk, n, false, nr, &mut got);
                assert_eq!(got, want, "pack_b_i8 {kk}x{n} nr{nr}");
                pack_b(&src, kk, n, true, nr, &mut want);
                pack_b_i8(&src, kk, n, true, nr, &mut got);
                assert_eq!(got, want, "pack_b_i8ᵀ {kk}x{n} nr{nr}");
            }
        }
    }

    #[test]
    fn byte_transpose_is_an_exact_transpose() {
        let mut w = [0u64; 8];
        for (r, wr) in w.iter_mut().enumerate() {
            let row: [u8; 8] = std::array::from_fn(|j| (r * 8 + j) as u8);
            *wr = u64::from_le_bytes(row);
        }
        transpose8x8_bytes(&mut w);
        for (r, wr) in w.iter().enumerate() {
            let row = wr.to_le_bytes();
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, (j * 8 + r) as u8, "({r},{j})");
            }
        }
    }

    #[test]
    fn quant_buffers_grow_only_on_larger_shapes() {
        let mut s = GemmScratch::new();
        let _ = s.quant_buffers(16, 32, 8, 8);
        let g1 = s.reallocations();
        assert!(g1 >= 1);
        let _ = s.quant_buffers(16, 32, 8, 8);
        let _ = s.quant_buffers(4, 4, 4, 4);
        assert_eq!(s.reallocations(), g1, "smaller or equal shapes must not grow");
        let _ = s.panels_i8(17, 32);
        assert!(s.reallocations() > g1);
        assert!(s.capacity_bytes() >= 17 + 32 + 8 + 4 * 8);
    }

    #[test]
    fn scratch_grows_only_on_larger_shapes() {
        let mut s = GemmScratch::new();
        let _ = s.panels(64, 128);
        let g1 = s.reallocations();
        assert!(g1 >= 1);
        let _ = s.panels(64, 128);
        let _ = s.panels(32, 16);
        assert_eq!(s.reallocations(), g1, "smaller or equal shapes must not grow");
        let _ = s.panels(65, 128);
        assert!(s.reallocations() > g1);
        assert!(s.capacity_bytes() >= 4 * (65 + 128));
        // Clones start cold: scratch capacity is not model state.
        assert_eq!(s.clone().capacity_bytes(), 0);
    }
}
