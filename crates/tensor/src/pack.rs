//! Operand packing and the reusable GEMM scratch arena.
//!
//! The packed layouts are the classic BLIS panels the micro-kernel
//! (see [`crate::microkernel`]) consumes:
//!
//! ```text
//! A (M×K)  → ⌈M/MR⌉ panels, each MR rows stored k-major:
//!            pa[p·MR·K + k·MR + r] = A[p·MR + r, k]
//! B (K×N)  → ⌈N/NR⌉ panels, each NR columns stored k-major:
//!            pb[q·NR·K + k·NR + c] = B[k, q·NR + c]
//! ```
//!
//! so the micro-kernel's k loop reads both operands with stride-1
//! streams regardless of the original layout. Transposed operands
//! (`Aᵀ·B`, `A·Bᵀ`) are handled *here*, by reading the source with
//! swapped strides — packing makes the transpose free and lets one
//! micro-kernel serve the whole GEMM family. Rows/columns beyond the
//! matrix edge are zero-filled, which is what lets the micro-kernel
//! always compute full tiles (padded lanes contribute `0·x` to lanes
//! that are then discarded).
//!
//! [`GemmScratch`] owns the packed-panel buffers. It only ever grows
//! ([`grow_scratch`]), so a workload with stable shapes reaches a
//! steady state in which the kernel path performs **zero heap
//! allocations**; [`GemmScratch::reallocations`] exposes the growth
//! count so tests can assert exactly that. Growth is also accounted to
//! the `tensor.scratch_bytes` telemetry counter, making arena
//! footprints visible in traces.

use insitu_telemetry as telemetry;

/// Length of the packed-A buffer for an `m × k` operand at tile height
/// `mr`: whole panels, zero-padded in the row direction.
pub(crate) fn packed_a_len(m: usize, k: usize, mr: usize) -> usize {
    m.div_ceil(mr) * mr * k
}

/// Length of the packed-B buffer for a `k × n` operand at tile width
/// `nr`: whole panels, zero-padded in the column direction.
pub(crate) fn packed_b_len(k: usize, n: usize, nr: usize) -> usize {
    n.div_ceil(nr) * nr * k
}

/// Packs the left operand into MR-tall k-major panels.
///
/// `src` is row-major `(m, k)` — or `(k, m)` when `trans` is set, in
/// which case the packed result represents `srcᵀ`. `dst` must hold
/// [`packed_a_len`] elements; every element is written (valid lanes
/// copied, padding zeroed), so `dst` needs no pre-clearing.
pub(crate) fn pack_a(src: &[f32], m: usize, k: usize, trans: bool, mr: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), m * k);
    debug_assert_eq!(dst.len(), packed_a_len(m, k, mr));
    if k == 0 {
        return; // degenerate product: nothing to pack (dst is empty)
    }
    for (p, panel) in dst.chunks_exact_mut(mr * k).enumerate() {
        let i0 = p * mr;
        let rows = mr.min(m - i0);
        if trans {
            // src[k', i]: a packed k-step is a contiguous run of src.
            for (kk, d) in panel.chunks_exact_mut(mr).enumerate() {
                d[..rows].copy_from_slice(&src[kk * m + i0..][..rows]);
                d[rows..].fill(0.0);
            }
        } else {
            // src[i, k']: gather one source row into lane r of every
            // k-step (a small strided transpose, O(M·K) total).
            for r in 0..rows {
                let row = &src[(i0 + r) * k..][..k];
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * mr + r] = v;
                }
            }
            for r in rows..mr {
                for kk in 0..k {
                    panel[kk * mr + r] = 0.0;
                }
            }
        }
    }
}

/// Packs the right operand into NR-wide k-major panels.
///
/// `src` is row-major `(k, n)` — or `(n, k)` when `trans` is set, in
/// which case the packed result represents `srcᵀ`. `dst` must hold
/// [`packed_b_len`] elements; every element is written.
pub(crate) fn pack_b(src: &[f32], k: usize, n: usize, trans: bool, nr: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), k * n);
    debug_assert_eq!(dst.len(), packed_b_len(k, n, nr));
    if k == 0 {
        return; // degenerate product: nothing to pack (dst is empty)
    }
    for (q, panel) in dst.chunks_exact_mut(nr * k).enumerate() {
        let j0 = q * nr;
        let cols = nr.min(n - j0);
        if trans {
            // src[j, k']: one source row feeds lane c of every k-step.
            for c in 0..cols {
                let row = &src[(j0 + c) * k..][..k];
                for (kk, &v) in row.iter().enumerate() {
                    panel[kk * nr + c] = v;
                }
            }
            for c in cols..nr {
                for kk in 0..k {
                    panel[kk * nr + c] = 0.0;
                }
            }
        } else {
            // src[k', j]: a packed k-step is a contiguous run of src.
            for (kk, d) in panel.chunks_exact_mut(nr).enumerate() {
                d[..cols].copy_from_slice(&src[kk * n + j0..][..cols]);
                d[cols..].fill(0.0);
            }
        }
    }
}

/// Grows `buf` to at least `len` elements, counting the growth in
/// `grows` and accounting the new bytes to the `tensor.scratch_bytes`
/// telemetry counter under `label`. Never shrinks: with stable shapes
/// the second and every later call is free, which is the property the
/// zero-steady-state-allocation tests pin down.
pub(crate) fn grow_scratch(buf: &mut Vec<f32>, len: usize, grows: &mut usize, label: &'static str) {
    if buf.len() < len {
        *grows += 1;
        telemetry::counter_add("tensor.scratch_bytes", label, ((len - buf.len()) * 4) as u64);
        buf.resize(len, 0.0);
    }
}

/// Reusable packed-operand arena for the GEMM family.
///
/// One scratch serves any sequence of GEMM calls: each call packs its
/// operands into the arena, growing it only when a larger shape than
/// ever before arrives. The `matmul*` entry points without an explicit
/// scratch use a thread-local one; layers that sit in a training loop
/// (see `insitu-nn`'s `Linear`) own a scratch so their steady state
/// allocates nothing in the kernel path.
///
/// Cloning yields a fresh empty scratch: the buffers hold no data that
/// outlives a call, so there is nothing meaningful to copy and cloned
/// layers should not drag warmed-up capacity around.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pa: Vec<f32>,
    pb: Vec<f32>,
    grows: usize,
}

impl Clone for GemmScratch {
    fn clone(&self) -> Self {
        GemmScratch::new()
    }
}

impl GemmScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many times any internal buffer has grown. Constant between
    /// two calls ⇒ the kernel path performed no heap allocation in
    /// between.
    pub fn reallocations(&self) -> usize {
        self.grows
    }

    /// Current arena footprint in bytes.
    pub fn capacity_bytes(&self) -> usize {
        4 * (self.pa.len() + self.pb.len())
    }

    /// The packed-A / packed-B destination slices for one GEMM call,
    /// growing the arena if this is the largest shape seen so far.
    pub(crate) fn panels(&mut self, a_len: usize, b_len: usize) -> (&mut [f32], &mut [f32]) {
        grow_scratch(&mut self.pa, a_len, &mut self.grows, "gemm");
        grow_scratch(&mut self.pb, b_len, &mut self.grows, "gemm");
        (&mut self.pa[..a_len], &mut self.pb[..b_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_layout_and_padding() {
        // 3×2 matrix, mr = 2: two panels, second padded with one row.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows [1 2] [3 4] [5 6]
        let mut dst = vec![f32::NAN; packed_a_len(3, 2, 2)];
        pack_a(&src, 3, 2, false, 2, &mut dst);
        // Panel 0: k0 -> [1, 3], k1 -> [2, 4]; panel 1: [5, 0], [6, 0].
        assert_eq!(dst, vec![1.0, 3.0, 2.0, 4.0, 5.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_a_trans_matches_explicit_transpose() {
        // src (k=2, m=3) packed with trans == its transpose packed flat.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // (2,3): [[1 2 3],[4 5 6]]
        let t = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0]; // (3,2)
        let mut a = vec![0.0; packed_a_len(3, 2, 2)];
        let mut b = vec![0.0; packed_a_len(3, 2, 2)];
        pack_a(&src, 3, 2, true, 2, &mut a);
        pack_a(&t, 3, 2, false, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn pack_b_layout_and_padding() {
        // 2×3 matrix, nr = 2: panel 0 = cols {0,1}, panel 1 = col 2 + pad.
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // (2,3): [[1 2 3],[4 5 6]]
        let mut dst = vec![f32::NAN; packed_b_len(2, 3, 2)];
        pack_b(&src, 2, 3, false, 2, &mut dst);
        assert_eq!(dst, vec![1.0, 2.0, 4.0, 5.0, 3.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_b_trans_matches_explicit_transpose() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // (n=3, k=2)
        let t = [1.0, 3.0, 5.0, 2.0, 4.0, 6.0]; // (k=2, n=3)
        let mut a = vec![0.0; packed_b_len(2, 3, 2)];
        let mut b = vec![0.0; packed_b_len(2, 3, 2)];
        pack_b(&src, 2, 3, true, 2, &mut a);
        pack_b(&t, 2, 3, false, 2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_grows_only_on_larger_shapes() {
        let mut s = GemmScratch::new();
        let _ = s.panels(64, 128);
        let g1 = s.reallocations();
        assert!(g1 >= 1);
        let _ = s.panels(64, 128);
        let _ = s.panels(32, 16);
        assert_eq!(s.reallocations(), g1, "smaller or equal shapes must not grow");
        let _ = s.panels(65, 128);
        assert!(s.reallocations() > g1);
        assert!(s.capacity_bytes() >= 4 * (65 + 128));
        // Clones start cold: scratch capacity is not model state.
        assert_eq!(s.clone().capacity_bytes(), 0);
    }
}
