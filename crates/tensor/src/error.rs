//! Error type for tensor operations.

use std::fmt;

/// Error produced by shape-checked tensor operations.
///
/// All fallible public functions in this crate return
/// [`Result<T, TensorError>`](crate::Result). The error carries enough
/// context (the offending shapes or indices) to diagnose the call site
/// without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// The number of elements does not match the requested shape.
    LengthMismatch {
        /// Element count implied by the shape.
        expected: usize,
        /// Element count actually supplied.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A multi-dimensional index is out of bounds.
    IndexOutOfBounds {
        /// Offending index.
        index: Vec<usize>,
        /// Shape of the indexed tensor.
        shape: Vec<usize>,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger
    /// than padded input, or zero stride).
    InvalidGeometry {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual, op } => write!(
                f,
                "shape mismatch in `{op}`: expected {expected:?}, got {actual:?}"
            ),
            TensorError::LengthMismatch { expected, actual, op } => write!(
                f,
                "length mismatch in `{op}`: shape implies {expected} elements, got {actual}"
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry { reason } => {
                write!(f, "invalid geometry: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            actual: vec![3, 2],
            op: "add",
        };
        let s = e.to_string();
        assert!(s.contains("add"));
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn invalid_geometry_display() {
        let e = TensorError::InvalidGeometry { reason: "stride must be nonzero".into() };
        assert!(e.to_string().contains("stride"));
    }
}
