//! Row-wise three-pass shift-invariant softmax.
//!
//! Softmax probabilities feed training gradients and diagnosis
//! decisions, and this repository's contract is that those are
//! **bitwise identical** at any ISA and any thread count — a 1e-7
//! probability wobble between the scalar and AVX2 paths would fork
//! the whole end-to-end trajectory of a session depending on the
//! host. So unlike the other ops, the scalar body here is not "the
//! loop we always had": both bodies compute the *same* polynomial
//! `exp` ([`vexp`], Cephes-style degree-5, ≤ ~1.2e-7 vs libm) with
//! the same fold orders, and the scalar body replicates the vector
//! lanes bit for bit (`f32::mul_add` guarantees fused semantics;
//! rounding uses the same magic-constant trick). The semantics
//! changed once — from libm `exp` to `vexp`, well inside every
//! consumer's tolerance — and in exchange softmax joins the bitwise
//! class of the equivalence policy.
//!
//! Two strategies, chosen by row width `k` (both ISAs use the same
//! cutoff and the same per-row op sequence):
//!
//! * `k < 16` (the paper's classifier heads: CIFAR k=10, jigsaw k=4):
//!   AVX2 processes eight rows at a time, lane `i` = row `i`,
//!   gathering column `j` across the rows; leftover rows — and the
//!   whole scalar body — run the identical per-row chain with
//!   [`scalar_vexp`]. A row's bits never depend on whether it landed
//!   in a gather group, a ragged tail, or the scalar path.
//! * `k >= 16`: row at a time, 8 columns per step, 8-lane virtual
//!   max/sum accumulators folded in a fixed tree order. The scalar
//!   body walks the same virtual lanes, so the horizontal reductions
//!   match bitwise too.
//!
//! Rows are independent, so parallelism is a plain row split.

use super::dispatch::SimdOp;
use crate::parallel::{parallel_for, plan_parts, split_range, SendPtr};

/// Row widths at or above this use the row-at-a-time wide path.
const WIDE_K: usize = 16;

/// Approximate flops per element; sizes the parallel split.
const EXP_COST: u64 = 32;

/// `exp(x)` for `x <= 0`, matching the AVX2 [`vexp`] lane computation
/// bit for bit: same clamp, same magic-constant round-to-nearest-even,
/// same fused polynomial steps (`f32::mul_add` guarantees single
/// rounding), same exponent-bits scaling.
// 0.693359375 = 355/512: ln(2)'s leading bits with an exactly
// representable tail of zeros, so `n * c1` is exact — the whole point
// of the Cephes two-constant reduction. Spelling it shorter would
// hide that.
#[allow(clippy::excessive_precision)]
fn scalar_vexp(x: f32) -> f32 {
    // 1.5 * 2^23: adding then subtracting rounds to nearest-even for
    // |t| < 2^22; t = x * log2(e) is in [-126, 0] after the clamp.
    const MAGIC: f32 = 12_582_912.0;
    let x = x.max(-87.336_55);
    let n = (x * std::f32::consts::LOG2_E + MAGIC) - MAGIC;
    // Two-constant Cephes range reduction — plain mul and sub, no FMA,
    // mirroring the vector body exactly.
    let r = x - n * 0.693_359_375;
    let r = r - n * (-2.121_944_4e-4);
    let mut p = 1.987_569_1e-4_f32;
    p = p.mul_add(r, 1.398_199_9e-3);
    p = p.mul_add(r, 8.333_452e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 1.666_666_5e-1);
    p = p.mul_add(r, 0.5);
    let y = p.mul_add(r * r, r) + 1.0;
    let pow2 = f32::from_bits((((n as i32) + 127) << 23) as u32);
    y * pow2
}

/// Vectorized `exp` for all lanes `<= 0` (softmax shifts by the row
/// max first). Max error vs libm measured at ~1.2e-7 over the softmax
/// input range.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::excessive_precision)] // 0.693359375 is exact; see scalar_vexp
unsafe fn vexp(x: std::arch::x86_64::__m256) -> std::arch::x86_64::__m256 {
    use std::arch::x86_64::*;
    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let c1 = _mm256_set1_ps(0.693_359_375);
    let c2 = _mm256_set1_ps(-2.121_944_4e-4);
    let x = _mm256_max_ps(x, _mm256_set1_ps(-87.336_55));
    let n = _mm256_round_ps(
        _mm256_mul_ps(x, log2e),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
    );
    let r = _mm256_sub_ps(x, _mm256_mul_ps(n, c1));
    let r = _mm256_sub_ps(r, _mm256_mul_ps(n, c2));
    let mut p = _mm256_set1_ps(1.987_569_1e-4);
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.398_199_9e-3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.333_452e-3));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.166_579_6e-2));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.666_666_5e-1));
    p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(0.5));
    let r2 = _mm256_mul_ps(r, r);
    let y = _mm256_add_ps(_mm256_fmadd_ps(p, r2, r), _mm256_set1_ps(1.0));
    let ni = _mm256_cvtps_epi32(n);
    let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32(
        _mm256_add_epi32(ni, _mm256_set1_epi32(127)),
        23,
    ));
    _mm256_mul_ps(y, pow2)
}

/// Softmax of one row using [`scalar_vexp`] — the scalar body for
/// narrow rows and the gather path's ragged tail, bit-identical to
/// what the same row would get inside a gather group (same max order,
/// same exp bits, same in-order sum, same divide).
fn softmax_row_scalar_vexp(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = scalar_vexp(*v - max);
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// `_mm256_max_ps` per-lane semantics: returns `b` unless `a > b`
/// (so ties and unordered comparisons pick the second operand).
#[inline]
fn maxps(a: f32, b: f32) -> f32 {
    if a > b {
        a
    } else {
        b
    }
}

/// Scalar body for wide rows (`k >= WIDE_K`): walks the same virtual
/// 8-lane max/sum accumulators as [`softmax_wide`] and folds them in
/// the same tree order, so the result matches the AVX2 path bit for
/// bit.
fn softmax_row_scalar_wide(row: &mut [f32]) {
    let k = row.len();
    let full = k - k % 8;
    let mut m = [f32::NEG_INFINITY; 8];
    for block in row[..full].chunks_exact(8) {
        for (l, &v) in block.iter().enumerate() {
            m[l] = maxps(m[l], v);
        }
    }
    // Horizontal max: hi/lo halves, then movehl pairs, then the last
    // two lanes — the exact shuffle sequence of the vector reduction.
    let m4 = [
        maxps(m[4], m[0]),
        maxps(m[5], m[1]),
        maxps(m[6], m[2]),
        maxps(m[7], m[3]),
    ];
    let mut mm = maxps(maxps(m4[0], m4[2]), maxps(m4[1], m4[3]));
    for &v in &row[full..] {
        mm = mm.max(v);
    }
    let mut s = [0.0f32; 8];
    let mut sum_tail = 0.0f32;
    for block in row[..full].chunks_exact_mut(8) {
        for (l, v) in block.iter_mut().enumerate() {
            *v = scalar_vexp(*v - mm);
            s[l] += *v;
        }
    }
    for v in &mut row[full..] {
        *v = scalar_vexp(*v - mm);
        sum_tail += *v;
    }
    let s4 = [s[4] + s[0], s[5] + s[1], s[6] + s[2], s[7] + s[3]];
    let sum = ((s4[0] + s4[2]) + (s4[1] + s4[3])) + sum_tail;
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// The scalar dispatch body: same `WIDE_K` split, same per-row
/// computation as the AVX2 paths, lane for lane.
fn softmax_rows_scalar(buf: &mut [f32], k: usize) {
    if k >= WIDE_K {
        for row in buf.chunks_mut(k) {
            softmax_row_scalar_wide(row);
        }
    } else {
        for row in buf.chunks_mut(k) {
            softmax_row_scalar_vexp(row);
        }
    }
}

/// Narrow rows (`k < WIDE_K`): eight rows per iteration, lane `i` =
/// row `i`, gathering each column across the rows.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_gather8(buf: &mut [f32], k: usize) {
    use std::arch::x86_64::*;
    let rows = buf.len() / k;
    let p = buf.as_mut_ptr();
    let mut r = 0;
    while r + 8 <= rows {
        // SAFETY: rows r..r+8 are in bounds; every access below stays
        // within base[0 .. 8 * k].
        let base = p.add(r * k);
        let gather = |j: usize| -> __m256 {
            _mm256_setr_ps(
                *base.add(j),
                *base.add(k + j),
                *base.add(2 * k + j),
                *base.add(3 * k + j),
                *base.add(4 * k + j),
                *base.add(5 * k + j),
                *base.add(6 * k + j),
                *base.add(7 * k + j),
            )
        };
        let mut m = _mm256_set1_ps(f32::NEG_INFINITY);
        for j in 0..k {
            m = _mm256_max_ps(m, gather(j));
        }
        let mut s = _mm256_setzero_ps();
        for j in 0..k {
            let e = vexp(_mm256_sub_ps(gather(j), m));
            s = _mm256_add_ps(s, e);
            let mut lane = [0f32; 8];
            _mm256_storeu_ps(lane.as_mut_ptr(), e);
            for (i, &l) in lane.iter().enumerate() {
                *base.add(i * k + j) = l;
            }
        }
        for j in 0..k {
            let q = _mm256_div_ps(gather(j), s);
            let mut lane = [0f32; 8];
            _mm256_storeu_ps(lane.as_mut_ptr(), q);
            for (i, &l) in lane.iter().enumerate() {
                *base.add(i * k + j) = l;
            }
        }
        r += 8;
    }
    for row in buf[r * k..].chunks_mut(k) {
        softmax_row_scalar_vexp(row);
    }
}

/// Wide rows (`k >= WIDE_K`): one row at a time, 8 columns per step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_wide(buf: &mut [f32], k: usize) {
    use std::arch::x86_64::*;
    for row in buf.chunks_mut(k) {
        // SAFETY: all pointer offsets below are < k = row.len().
        let p = row.as_mut_ptr();
        let mut m = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut j = 0;
        while j + 8 <= k {
            m = _mm256_max_ps(m, _mm256_loadu_ps(p.add(j)));
            j += 8;
        }
        let mut mm = {
            let hi = _mm256_extractf128_ps(m, 1);
            let lo = _mm256_castps256_ps128(m);
            let m4 = _mm_max_ps(hi, lo);
            let m2 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
            let m1 = _mm_max_ss(m2, _mm_shuffle_ps(m2, m2, 1));
            _mm_cvtss_f32(m1)
        };
        while j < k {
            mm = mm.max(*p.add(j));
            j += 1;
        }
        let mv = _mm256_set1_ps(mm);
        let mut sv = _mm256_setzero_ps();
        let mut sum_tail = 0.0f32;
        j = 0;
        while j + 8 <= k {
            let e = vexp(_mm256_sub_ps(_mm256_loadu_ps(p.add(j)), mv));
            _mm256_storeu_ps(p.add(j), e);
            sv = _mm256_add_ps(sv, e);
            j += 8;
        }
        while j < k {
            let e = scalar_vexp(*p.add(j) - mm);
            *p.add(j) = e;
            sum_tail += e;
            j += 1;
        }
        let sum = {
            let hi = _mm256_extractf128_ps(sv, 1);
            let lo = _mm256_castps256_ps128(sv);
            let s4 = _mm_add_ps(hi, lo);
            let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
            let s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 1));
            _mm_cvtss_f32(s1)
        } + sum_tail;
        let sumv = _mm256_set1_ps(sum);
        j = 0;
        while j + 8 <= k {
            _mm256_storeu_ps(p.add(j), _mm256_div_ps(_mm256_loadu_ps(p.add(j)), sumv));
            j += 8;
        }
        while j < k {
            *p.add(j) /= sum;
            j += 1;
        }
    }
}

/// In-place softmax over `rows = buf.len() / k` independent rows of
/// width `k`. Parallelized by splitting rows; every per-row result is
/// independent of the split, so output bits do not depend on the
/// thread count.
pub struct SoftmaxRows<'a> {
    /// Row-major logits, overwritten with probabilities.
    pub buf: &'a mut [f32],
    /// Row width (class count).
    pub k: usize,
}

impl SoftmaxRows<'_> {
    fn for_row_ranges(&mut self, f: impl Fn(&mut [f32]) + Sync) {
        let k = self.k;
        let rows = self.buf.len() / k;
        let parts = plan_parts(rows, (rows * k) as u64 * EXP_COST);
        if parts <= 1 {
            f(self.buf);
            return;
        }
        let base = SendPtr(self.buf.as_mut_ptr());
        parallel_for(parts, |part| {
            let rr = split_range(rows, parts, part);
            if rr.is_empty() {
                return;
            }
            // SAFETY: split_range yields disjoint row ranges, so the
            // element ranges are disjoint too.
            f(unsafe {
                std::slice::from_raw_parts_mut(base.get().add(rr.start * k), rr.len() * k)
            });
        });
    }
}

impl SimdOp for SoftmaxRows<'_> {
    const NAME: &'static str = "tensor.simd.softmax";
    type Output = ();

    fn bytes(&self) -> u64 {
        8 * self.buf.len() as u64
    }

    fn scalar(mut self) {
        let k = self.k;
        self.for_row_ranges(move |chunk| softmax_rows_scalar(chunk, k));
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(mut self) {
        let k = self.k;
        if k >= WIDE_K {
            // SAFETY: AVX2+FMA verified by the dispatcher.
            self.for_row_ranges(move |chunk| unsafe { softmax_wide(chunk, k) });
        } else {
            // SAFETY: as above.
            self.for_row_ranges(move |chunk| unsafe { softmax_gather8(chunk, k) });
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;

    /// The whole thread-invariance story rests on `scalar_vexp`
    /// reproducing the vector lanes bit for bit — pin it down.
    #[test]
    fn scalar_vexp_matches_vector_lanes_bitwise() {
        if !(std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")) {
            return;
        }
        let mut xs = Vec::new();
        let mut x = 0.0f32;
        while x > -90.0 {
            xs.push(x);
            x -= 0.137;
        }
        xs.extend_from_slice(&[-1e-8, -0.5, -1.0, -20.25, -87.0, -88.0, -200.0]);
        for chunk in xs.chunks(8) {
            let mut lanes = [0.0f32; 8];
            lanes[..chunk.len()].copy_from_slice(chunk);
            let mut out = [0.0f32; 8];
            unsafe {
                use std::arch::x86_64::*;
                let v = vexp(_mm256_loadu_ps(lanes.as_ptr()));
                _mm256_storeu_ps(out.as_mut_ptr(), v);
            }
            for (i, &xi) in lanes.iter().enumerate() {
                assert_eq!(
                    scalar_vexp(xi).to_bits(),
                    out[i].to_bits(),
                    "scalar_vexp({xi}) diverged from vexp lane"
                );
            }
        }
    }

    #[test]
    fn vexp_tracks_libm_closely() {
        if !(std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")) {
            return;
        }
        let mut worst = 0.0f32;
        let mut x = 0.0f32;
        while x > -30.0 {
            let got = scalar_vexp(x);
            let want = x.exp();
            worst = worst.max((got - want).abs() / want.max(1e-30));
            x -= 0.013;
        }
        assert!(worst < 5e-7, "relative error {worst} too large");
    }
}
