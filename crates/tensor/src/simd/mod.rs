//! The SIMD dispatch layer: every non-GEMM hot op as a [`SimdOp`]
//! with a scalar oracle body and runtime-detected vector bodies
//! (AVX2 and AVX-512 on x86-64, NEON on aarch64).
//!
//! # Equivalence policy
//!
//! The scalar body of each op is the reference semantics — it is what
//! the op *means* — and every vector body is **bitwise exact** against
//! it (compared with `to_bits`): ReLU forward / train / backward,
//! clamp, affine, `quantize_i8`, max-abs, max-abs-diff, the 8-lane
//! sum, softmax, and maxpool (values *and* argmax). Exactness includes
//! NaN, infinities and `-0.0` for the elementwise ops, and holds at
//! any thread count — parallel splits are aligned so no partial result
//! crosses a task boundary, and ragged tails replicate the vector
//! computation lane for lane. The property tests in
//! `tests/simd_ops.rs` hold every op to this under both
//! `INSITU_SIMD` modes.
//!
//! Softmax earns its bitwise slot differently from the rest: instead
//! of the vector body chasing libm, *both* bodies compute the same
//! polynomial `exp` (~1.2e-7 max relative error vs libm — see
//! `softmax.rs`). That accuracy delta is documented semantics, not a
//! cross-ISA divergence; it is also why the `nn` loss layer keeps its
//! own libm softmax for the seeded training/diagnosis feedback loop.
//!
//! # Selection
//!
//! [`Isa::select`] resolves the ISA once per process: the widest the
//! host supports (AVX-512 > AVX2 > scalar on x86-64, NEON > scalar on
//! aarch64), and `INSITU_SIMD=scalar|avx2|avx512|neon` pins it
//! explicitly — an unrecognized or host-unsupported value is a
//! startup error, never a silent fallback (the GEMM micro-kernels
//! obey the same knob; their legacy `INSITU_GEMM_KERNEL` override
//! still works on top, with the same validation). Each dispatch runs
//! under a `tensor.simd.*` telemetry span labeled with the ISA, and
//! feeds the `tensor.simd.bytes` counter. DESIGN.md §12 has the
//! op-by-op ISA support matrix.

mod dispatch;
mod elementwise;
mod maxpool;
mod quantize;
mod reduce;
mod softmax;

pub use dispatch::{dispatch, dispatch_on, simd_isa_name, Isa, SimdOp, ISA_NAMES};
pub(crate) use dispatch::parse_isa_request;
pub use elementwise::{Affine, Clamp, Relu, ReluBackward, ReluTrain};
pub use maxpool::MaxPool2d;
pub use quantize::QuantizeI8;
pub use reduce::{MaxAbs, MaxAbsDiff, MinMax, Sum8};
pub use softmax::SoftmaxRows;

/// In-place eval-mode ReLU.
pub fn relu(buf: &mut [f32]) {
    dispatch(Relu { buf });
}

/// In-place train-mode ReLU; writes the bit-packed keep mask
/// (`mask.len() == buf.len().div_ceil(8)`).
pub fn relu_train(buf: &mut [f32], mask: &mut [u8]) {
    dispatch(ReluTrain { buf, mask });
}

/// Zeroes `grad` wherever the bit-packed `mask` says the forward
/// input was not positive.
pub fn relu_backward(grad: &mut [f32], mask: &[u8]) {
    dispatch(ReluBackward { grad, mask });
}

/// In-place row-wise softmax over rows of width `k`.
///
/// # Panics
///
/// Panics if `k == 0` or `buf.len()` is not a multiple of `k`.
pub fn softmax_rows(buf: &mut [f32], k: usize) {
    assert!(k > 0, "softmax row width must be nonzero");
    assert_eq!(buf.len() % k, 0, "softmax buffer must be whole rows");
    dispatch(SoftmaxRows { buf, k });
}

/// In-place `x = x * gain + bias`.
pub fn affine(buf: &mut [f32], gain: f32, bias: f32) {
    dispatch(Affine { buf, gain, bias });
}

/// In-place clamp to `[lo, hi]` with `f32::clamp` semantics.
pub fn clamp(buf: &mut [f32], lo: f32, hi: f32) {
    dispatch(Clamp { buf, lo, hi });
}

/// `max |x|` over finite elements.
pub fn max_abs(src: &[f32]) -> f32 {
    dispatch(MaxAbs { src })
}

/// `max |a - b|` over two equal-length slices.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    dispatch(MaxAbsDiff { a, b })
}

/// Deterministic 8-lane-accumulator sum.
pub fn sum8(src: &[f32]) -> f32 {
    dispatch(Sum8 { src })
}

/// `(min, max)` over a slice, NaN skipped; `(inf, -inf)` when empty.
pub fn min_max(src: &[f32]) -> (f32, f32) {
    dispatch(MinMax { src })
}
