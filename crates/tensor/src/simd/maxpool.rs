//! Max-pool forward: window max plus argmax, vectorized for the
//! window-2 / stride-2 geometry every pool layer in the paper's
//! networks uses.
//!
//! The AVX2 body computes 8 output columns at once: two unaligned row
//! loads are deinterleaved into even/odd columns
//! (`shuffle_ps` + `permute4x64`), and the four window candidates are
//! folded with the same first-strictly-greater compare chain the
//! scalar loop runs (`_CMP_GT_OQ` ≡ `>`), carrying i32 absolute-index
//! lanes alongside the values. That makes value *and* argmax selection
//! — including NaN windows and the all-`-inf` `best_idx = 0` corner —
//! **bitwise exact** against the scalar oracle. Other geometries, and
//! tensors whose linear indices overflow `i32`, fall back to the
//! scalar plane kernel inside the AVX2 body.
//!
//! The NEON body runs the same scheme 4 outputs at a time: `vld2q_f32`
//! deinterleaves even/odd columns in one load, and the candidate fold
//! uses `vcgtq`/`vbslq` — the identical first-strictly-greater chain.
//! There is no dedicated AVX-512 body: maxpool is load-bound and the
//! AVX2 body (inherited through the trait default) already saturates
//! the two load ports, so wider registers buy nothing.
//!
//! Planes (batch × channel) are independent, so parallelism splits
//! planes; outputs never depend on the split.

use super::dispatch::SimdOp;
use crate::parallel::{parallel_for, plan_parts, split_range, SendPtr};
use crate::pool::PoolGeometry;

/// One output plane, naive windows. `x` is the full input slice;
/// `plane` the linear offset of this plane; `out`/`arg` the plane's
/// own output slices.
fn pool_plane_scalar(x: &[f32], plane: usize, g: &PoolGeometry, out: &mut [f32], arg: &mut [usize]) {
    let mut oi = 0;
    for oy in 0..g.out_h {
        for ox in 0..g.out_w {
            let mut best = f32::NEG_INFINITY;
            let mut best_idx = 0;
            for wy in 0..g.window {
                let iy = oy * g.stride + wy;
                for wx in 0..g.window {
                    let ix = ox * g.stride + wx;
                    let idx = plane + iy * g.in_w + ix;
                    if x[idx] > best {
                        best = x[idx];
                        best_idx = idx;
                    }
                }
            }
            out[oi] = best;
            arg[oi] = best_idx;
            oi += 1;
        }
    }
}

/// Window-2 / stride-2 plane: 8 outputs per step. Caller guarantees
/// the geometry and that `plane + in_h * in_w <= i32::MAX`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pool_plane_avx2_w2s2(
    x: &[f32],
    plane: usize,
    g: &PoolGeometry,
    out: &mut [f32],
    arg: &mut [usize],
) {
    use std::arch::x86_64::*;
    debug_assert!(g.window == 2 && g.stride == 2);
    // Even/odd column deinterleave of two consecutive 8-float loads.
    let deint = |v0: __m256, v1: __m256, imm_evens: bool| -> __m256 {
        let s = if imm_evens {
            _mm256_shuffle_ps(v0, v1, 0x88)
        } else {
            _mm256_shuffle_ps(v0, v1, 0xDD)
        };
        _mm256_castpd_ps(_mm256_permute4x64_pd(_mm256_castps_pd(s), 0xD8))
    };
    let iota = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
    let xp = x.as_ptr();
    let neg_inf = _mm256_set1_ps(f32::NEG_INFINITY);
    for oy in 0..g.out_h {
        let row0 = plane + (2 * oy) * g.in_w;
        let row1 = row0 + g.in_w;
        let orow = oy * g.out_w;
        let mut ox = 0;
        while ox + 8 <= g.out_w && 2 * ox + 16 <= g.in_w {
            // SAFETY: 2*ox + 16 <= in_w keeps both 8-lane loads of each
            // row inside the plane; row1 < in_h rows by geometry.
            let t0 = _mm256_loadu_ps(xp.add(row0 + 2 * ox));
            let t1 = _mm256_loadu_ps(xp.add(row0 + 2 * ox + 8));
            let b0 = _mm256_loadu_ps(xp.add(row1 + 2 * ox));
            let b1 = _mm256_loadu_ps(xp.add(row1 + 2 * ox + 8));
            let cands = [
                (deint(t0, t1, true), row0 + 2 * ox),
                (deint(t0, t1, false), row0 + 2 * ox + 1),
                (deint(b0, b1, true), row1 + 2 * ox),
                (deint(b0, b1, false), row1 + 2 * ox + 1),
            ];
            let mut best = neg_inf;
            let mut bidx = _mm256_setzero_si256();
            for (v, base) in cands {
                // Same order and predicate as the scalar `if x > best`.
                let vidx = _mm256_add_epi32(_mm256_set1_epi32(base as i32), iota);
                let m = _mm256_cmp_ps(v, best, _CMP_GT_OQ);
                best = _mm256_blendv_ps(best, v, m);
                bidx = _mm256_castps_si256(_mm256_blendv_ps(
                    _mm256_castsi256_ps(bidx),
                    _mm256_castsi256_ps(vidx),
                    m,
                ));
            }
            _mm256_storeu_ps(out.as_mut_ptr().add(orow + ox), best);
            let mut idx_lanes = [0i32; 8];
            _mm256_storeu_si256(idx_lanes.as_mut_ptr().cast(), bidx);
            for (l, &il) in idx_lanes.iter().enumerate() {
                *arg.get_unchecked_mut(orow + ox + l) = il as usize;
            }
            ox += 8;
        }
        // Ragged output columns: the identical scalar chain.
        while ox < g.out_w {
            let mut best = f32::NEG_INFINITY;
            let mut best_idx = 0;
            for (row, base) in [(row0, 2 * ox), (row1, 2 * ox)] {
                for dx in 0..2 {
                    let idx = row + base + dx;
                    if x[idx] > best {
                        best = x[idx];
                        best_idx = idx;
                    }
                }
            }
            out[orow + ox] = best;
            arg[orow + ox] = best_idx;
            ox += 1;
        }
    }
}

/// Window-2 / stride-2 plane: 4 outputs per step. Caller guarantees
/// the geometry and that `plane + in_h * in_w <= i32::MAX`.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn pool_plane_neon_w2s2(
    x: &[f32],
    plane: usize,
    g: &PoolGeometry,
    out: &mut [f32],
    arg: &mut [usize],
) {
    use std::arch::aarch64::*;
    debug_assert!(g.window == 2 && g.stride == 2);
    // SAFETY: geometry checked by the caller; every load below is
    // bounds-justified at its site.
    unsafe {
        let iota = vld1q_s32([0i32, 2, 4, 6].as_ptr());
        let xp = x.as_ptr();
        let neg_inf = vdupq_n_f32(f32::NEG_INFINITY);
        for oy in 0..g.out_h {
            let row0 = plane + (2 * oy) * g.in_w;
            let row1 = row0 + g.in_w;
            let orow = oy * g.out_w;
            let mut ox = 0;
            while ox + 4 <= g.out_w && 2 * ox + 8 <= g.in_w {
                // SAFETY: 2*ox + 8 <= in_w keeps each deinterleaving
                // 8-float load inside the plane row; row1 < in_h rows
                // by geometry. `.0` holds even columns, `.1` odd.
                let top = vld2q_f32(xp.add(row0 + 2 * ox));
                let bot = vld2q_f32(xp.add(row1 + 2 * ox));
                let cands = [
                    (top.0, row0 + 2 * ox),
                    (top.1, row0 + 2 * ox + 1),
                    (bot.0, row1 + 2 * ox),
                    (bot.1, row1 + 2 * ox + 1),
                ];
                let mut best = neg_inf;
                let mut bidx = vdupq_n_s32(0);
                for (v, base) in cands {
                    // Same order and predicate as the scalar
                    // `if x > best` (vcgtq is false for NaN, like `>`).
                    let vidx = vaddq_s32(vdupq_n_s32(base as i32), iota);
                    let m = vcgtq_f32(v, best);
                    best = vbslq_f32(m, v, best);
                    bidx = vbslq_s32(m, vidx, bidx);
                }
                vst1q_f32(out.as_mut_ptr().add(orow + ox), best);
                let mut idx_lanes = [0i32; 4];
                vst1q_s32(idx_lanes.as_mut_ptr(), bidx);
                for (l, &il) in idx_lanes.iter().enumerate() {
                    *arg.get_unchecked_mut(orow + ox + l) = il as usize;
                }
                ox += 4;
            }
            // Ragged output columns: the identical scalar chain.
            while ox < g.out_w {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for (row, base) in [(row0, 2 * ox), (row1, 2 * ox)] {
                    for dx in 0..2 {
                        let idx = row + base + dx;
                        if x[idx] > best {
                            best = x[idx];
                            best_idx = idx;
                        }
                    }
                }
                out[orow + ox] = best;
                arg[orow + ox] = best_idx;
                ox += 1;
            }
        }
    }
}

/// Batched max-pool forward over `planes = batch * channels`
/// independent planes of `x`, writing window maxima to `out` and the
/// absolute input index of each maximum to `argmax`.
pub struct MaxPool2d<'a> {
    /// Full input, `planes * in_h * in_w` elements.
    pub x: &'a [f32],
    /// Pooling geometry.
    pub g: PoolGeometry,
    /// Batch × channels.
    pub planes: usize,
    /// Output values, `planes * out_h * out_w`.
    pub out: &'a mut [f32],
    /// Argmax indices, same length as `out`.
    pub argmax: &'a mut [usize],
}

impl MaxPool2d<'_> {
    /// Splits planes across threads and hands each plane to `f`.
    fn for_planes(self, f: impl Fn(&[f32], usize, &PoolGeometry, &mut [f32], &mut [usize]) + Sync) {
        let g = self.g;
        let in_sz = g.in_h * g.in_w;
        let out_sz = g.out_h * g.out_w;
        assert_eq!(self.x.len(), self.planes * in_sz);
        assert_eq!(self.out.len(), self.planes * out_sz);
        assert_eq!(self.argmax.len(), self.out.len());
        let flops = self.out.len() as u64 * (g.window * g.window) as u64;
        let parts = plan_parts(self.planes, flops);
        let x = self.x;
        let (op, ap) = (SendPtr(self.out.as_mut_ptr()), SendPtr(self.argmax.as_mut_ptr()));
        let run = |plane_range: std::ops::Range<usize>| {
            for pi in plane_range {
                // SAFETY: each plane's output slice is disjoint.
                let (out, arg) = unsafe {
                    (
                        std::slice::from_raw_parts_mut(op.get().add(pi * out_sz), out_sz),
                        std::slice::from_raw_parts_mut(ap.get().add(pi * out_sz), out_sz),
                    )
                };
                f(x, pi * in_sz, &g, out, arg);
            }
        };
        if parts <= 1 {
            run(0..self.planes);
        } else {
            let planes = self.planes;
            parallel_for(parts, |p| run(split_range(planes, parts, p)));
        }
    }
}

impl SimdOp for MaxPool2d<'_> {
    const NAME: &'static str = "tensor.simd.maxpool";
    type Output = ();

    fn bytes(&self) -> u64 {
        4 * self.x.len() as u64 + 12 * self.out.len() as u64
    }

    fn scalar(self) {
        self.for_planes(pool_plane_scalar);
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        let g = self.g;
        // Index lanes are i32: bail to scalar if the input can outgrow
        // them (no real workload here comes close).
        let fast = g.window == 2
            && g.stride == 2
            && g.in_w >= 16
            && self.x.len() <= i32::MAX as usize;
        if fast {
            self.for_planes(|x, plane, g, out, arg| {
                // SAFETY: AVX2 verified by the dispatcher; geometry and
                // index range checked above.
                unsafe { pool_plane_avx2_w2s2(x, plane, g, out, arg) }
            });
        } else {
            self.for_planes(pool_plane_scalar);
        }
    }

    // No `avx512` override: load-bound op, the inherited AVX2 body
    // already saturates the load ports.

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) {
        let g = self.g;
        // Index lanes are i32: bail to scalar if the input can outgrow
        // them (no real workload here comes close).
        let fast = g.window == 2
            && g.stride == 2
            && g.in_w >= 8
            && self.x.len() <= i32::MAX as usize;
        if fast {
            self.for_planes(|x, plane, g, out, arg| {
                // SAFETY: NEON verified by the dispatcher; geometry and
                // index range checked above.
                unsafe { pool_plane_neon_w2s2(x, plane, g, out, arg) }
            });
        } else {
            self.for_planes(pool_plane_scalar);
        }
    }
}
