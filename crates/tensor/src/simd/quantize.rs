//! Fixed-point quantization: `f32 -> i8` with magic-constant rounding.
//!
//! Every vector body (AVX2, AVX-512, NEON) is **bitwise exact**
//! against the scalar oracle for every input, NaN and infinities
//! included. The subtle parts:
//!
//! * the scalar `clamp` is replicated with compare+blend (not
//!   `min`/`max` ps, whose NaN operand rules differ): NaN stays NaN
//!   through the clamp, exactly like `f32::clamp`;
//! * scalar `NaN as i8` saturates to 0, but `_mm256_cvtps_epi32(NaN)`
//!   yields `i32::MIN`, which would pack-saturate to -128 — so NaN
//!   lanes are zeroed (ordered-compare mask) *before* the convert;
//! * rounding is the same `(v + 1.5·2^23) - 1.5·2^23` trick in both
//!   bodies, so ties break identically (to even).

use super::dispatch::SimdOp;
use super::elementwise::par_groups;
use crate::parallel::SendPtr;

/// Clamp limit: i8 range is symmetric at ±127 so a negated scale
/// never overflows.
const QUANT_MAX: f32 = 127.0;
/// 1.5 * 2^23 — add/subtract rounds to nearest-even for |v| <= 127.
const MAGIC: f32 = 12_582_912.0;

fn quantize_scalar_range(src: &[f32], inv: f32, dst: &mut [i8]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        let v = (s * inv).clamp(-QUANT_MAX, QUANT_MAX);
        *d = ((v + MAGIC) - MAGIC) as i8;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_avx2_range(src: &[f32], inv: f32, dst: &mut [i8]) {
    use std::arch::x86_64::*;
    let vinv = _mm256_set1_ps(inv);
    let lo = _mm256_set1_ps(-QUANT_MAX);
    let hi = _mm256_set1_ps(QUANT_MAX);
    let magic = _mm256_set1_ps(MAGIC);
    // Restores sequential byte order after the two 128-bit-lane packs.
    let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    let n = src.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0;
    while i + 32 <= n {
        let mut q = [_mm256_setzero_si256(); 4];
        for (u, qu) in q.iter_mut().enumerate() {
            // SAFETY: i + 32 <= n bounds all four 8-lane loads.
            let v = _mm256_mul_ps(_mm256_loadu_ps(sp.add(i + 8 * u)), vinv);
            // f32::clamp replica: blend on ordered compares so NaN
            // lanes pass through untouched.
            let v = _mm256_blendv_ps(v, lo, _mm256_cmp_ps(v, lo, _CMP_LT_OQ));
            let v = _mm256_blendv_ps(v, hi, _mm256_cmp_ps(v, hi, _CMP_GT_OQ));
            let v = _mm256_sub_ps(_mm256_add_ps(v, magic), magic);
            // Zero NaN lanes: scalar `NaN as i8` is 0, while cvtps
            // would give i32::MIN and pack to -128.
            let v = _mm256_and_ps(v, _mm256_cmp_ps(v, v, _CMP_ORD_Q));
            *qu = _mm256_cvtps_epi32(v);
        }
        // 4×8 i32 -> 32 i8; values are already in [-127, 127] so the
        // saturating packs never clip.
        let ab = _mm256_packs_epi32(q[0], q[1]);
        let cd = _mm256_packs_epi32(q[2], q[3]);
        let bytes = _mm256_permutevar8x32_epi32(_mm256_packs_epi16(ab, cd), fix);
        _mm256_storeu_si256(dp.add(i).cast(), bytes);
        i += 32;
    }
    quantize_scalar_range(&src[i..], inv, &mut dst[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_avx512_range(src: &[f32], inv: f32, dst: &mut [i8]) {
    use std::arch::x86_64::*;
    let vinv = _mm512_set1_ps(inv);
    let lo = _mm512_set1_ps(-QUANT_MAX);
    let hi = _mm512_set1_ps(QUANT_MAX);
    let magic = _mm512_set1_ps(MAGIC);
    let n = src.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n bounds the 16-lane load and 16-byte store.
        let v = _mm512_mul_ps(_mm512_loadu_ps(sp.add(i)), vinv);
        // f32::clamp replica: masked moves on ordered compares, so NaN
        // lanes fail both compares and pass through untouched.
        let v = _mm512_mask_mov_ps(v, _mm512_cmp_ps_mask::<_CMP_LT_OQ>(v, lo), lo);
        let v = _mm512_mask_mov_ps(v, _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, hi), hi);
        let v = _mm512_sub_ps(_mm512_add_ps(v, magic), magic);
        // Zero NaN lanes: scalar `NaN as i8` is 0, while cvtps would
        // give i32::MIN and saturate to -128.
        let v = _mm512_maskz_mov_ps(_mm512_cmp_ps_mask::<_CMP_ORD_Q>(v, v), v);
        let q = _mm512_cvtps_epi32(v);
        // Saturating 16×i32 -> 16×i8 narrow in one instruction; values
        // are already in [-127, 127] so it never clips.
        _mm_storeu_si128(dp.add(i).cast(), _mm512_cvtsepi32_epi8(q));
        i += 16;
    }
    quantize_scalar_range(&src[i..], inv, &mut dst[i..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn quantize_neon_range(src: &[f32], inv: f32, dst: &mut [i8]) {
    use std::arch::aarch64::*;
    let vinv = vdupq_n_f32(inv);
    let lo = vdupq_n_f32(-QUANT_MAX);
    let hi = vdupq_n_f32(QUANT_MAX);
    let magic = vdupq_n_f32(MAGIC);
    let n = src.len();
    let sp = src.as_ptr();
    let dp = dst.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let mut q = [vdupq_n_s32(0); 2];
        for (u, qu) in q.iter_mut().enumerate() {
            // SAFETY: i + 8 <= n bounds both 4-lane loads.
            let v = vmulq_f32(vld1q_f32(sp.add(i + 4 * u)), vinv);
            // f32::clamp replica: bit-select on ordered compares, so
            // NaN lanes fail both compares and pass through untouched.
            let v = vbslq_f32(vcltq_f32(v, lo), lo, v);
            let v = vbslq_f32(vcgtq_f32(v, hi), hi, v);
            let v = vsubq_f32(vaddq_f32(v, magic), magic);
            // Zero NaN lanes (vceqq is false for NaN): scalar
            // `NaN as i8` is 0.
            let v =
                vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(v), vceqq_f32(v, v)));
            // Truncating convert — exact, the value is already integral
            // after the magic round.
            *qu = vcvtq_s32_f32(v);
        }
        // 2×4 i32 -> 8 i8 via saturating narrows; never clips in ±127.
        let h = vcombine_s16(vqmovn_s32(q[0]), vqmovn_s32(q[1]));
        vst1_s8(dp.add(i), vqmovn_s16(h));
        i += 8;
    }
    quantize_scalar_range(&src[i..], inv, &mut dst[i..]);
}

/// Quantize `src` to `dst[i] = round(src[i] * inv_scale)` clamped to
/// ±127, with NaN mapping to 0.
pub struct QuantizeI8<'a> {
    /// Source activations.
    pub src: &'a [f32],
    /// Reciprocal of the quantization scale.
    pub inv_scale: f32,
    /// Destination, same length as `src`.
    pub dst: &'a mut [i8],
}

impl SimdOp for QuantizeI8<'_> {
    const NAME: &'static str = "tensor.simd.quantize_i8";
    type Output = ();

    fn bytes(&self) -> u64 {
        5 * self.src.len() as u64
    }

    fn scalar(self) {
        assert_eq!(self.src.len(), self.dst.len());
        let inv = self.inv_scale;
        let (sp, dp) = (SendPtr(self.src.as_ptr().cast_mut()), SendPtr(self.dst.as_mut_ptr()));
        par_groups(self.src.len(), self.src.len() as u64 * 4, move |r| {
            // SAFETY: disjoint sub-ranges of src/dst per task.
            unsafe {
                quantize_scalar_range(
                    std::slice::from_raw_parts(sp.get().add(r.start), r.len()),
                    inv,
                    std::slice::from_raw_parts_mut(dp.get().add(r.start), r.len()),
                );
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        assert_eq!(self.src.len(), self.dst.len());
        let inv = self.inv_scale;
        let (sp, dp) = (SendPtr(self.src.as_ptr().cast_mut()), SendPtr(self.dst.as_mut_ptr()));
        par_groups(self.src.len(), self.src.len() as u64 * 4, move |r| {
            // SAFETY: disjoint sub-ranges; AVX2 verified by the caller.
            unsafe {
                quantize_avx2_range(
                    std::slice::from_raw_parts(sp.get().add(r.start), r.len()),
                    inv,
                    std::slice::from_raw_parts_mut(dp.get().add(r.start), r.len()),
                );
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) {
        assert_eq!(self.src.len(), self.dst.len());
        let inv = self.inv_scale;
        let (sp, dp) = (SendPtr(self.src.as_ptr().cast_mut()), SendPtr(self.dst.as_mut_ptr()));
        par_groups(self.src.len(), self.src.len() as u64 * 4, move |r| {
            // SAFETY: disjoint sub-ranges; AVX-512 verified by the caller.
            unsafe {
                quantize_avx512_range(
                    std::slice::from_raw_parts(sp.get().add(r.start), r.len()),
                    inv,
                    std::slice::from_raw_parts_mut(dp.get().add(r.start), r.len()),
                );
            }
        });
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) {
        assert_eq!(self.src.len(), self.dst.len());
        let inv = self.inv_scale;
        let (sp, dp) = (SendPtr(self.src.as_ptr().cast_mut()), SendPtr(self.dst.as_mut_ptr()));
        par_groups(self.src.len(), self.src.len() as u64 * 4, move |r| {
            // SAFETY: disjoint sub-ranges; NEON verified by the caller.
            unsafe {
                quantize_neon_range(
                    std::slice::from_raw_parts(sp.get().add(r.start), r.len()),
                    inv,
                    std::slice::from_raw_parts_mut(dp.get().add(r.start), r.len()),
                );
            }
        });
    }
}
