//! Reductions: max-abs (quantization calibration), max-abs-diff
//! (tensor comparison), 8-lane sum and min/max (drift and verdict
//! metrics).
//!
//! Max-style reductions are order-independent over their filtered
//! inputs, so the vector bodies (AVX2, AVX-512, NEON) are bitwise
//! exact. The sum is made exact a different way: *every* body
//! accumulates into the same 8-lane virtual accumulator (lane `i % 8`)
//! folded in a fixed order at the end, so the scalar oracle and the
//! vector bodies perform the identical sequence of additions per lane.
//! Because the 8-lane chain is part of the contract, [`Sum8`] has no
//! AVX-512 override — a 16-lane accumulator would change lane
//! assignment — and inherits the AVX2 body through the trait default;
//! the NEON body splits the virtual accumulator across two `float32x4`
//! registers to keep the same per-lane chains. Reductions here run
//! over small buffers (scores, calibration scans), so they stay
//! sequential.

use super::dispatch::SimdOp;

/// `max |x|` over finite elements (NaN and infinities are skipped) —
/// the quantization calibration scan. Returns 0 for an empty or
/// all-non-finite slice.
pub struct MaxAbs<'a> {
    /// Values to scan.
    pub src: &'a [f32],
}

fn max_abs_scalar(src: &[f32]) -> f32 {
    src.iter().map(|v| v.abs()).filter(|v| v.is_finite()).fold(0.0, f32::max)
}

impl SimdOp for MaxAbs<'_> {
    const NAME: &'static str = "tensor.simd.max_abs";
    type Output = f32;

    fn bytes(&self) -> u64 {
        4 * self.src.len() as u64
    }

    fn scalar(self) -> f32 {
        max_abs_scalar(self.src)
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) -> f32 {
        use std::arch::x86_64::*;
        let sign = _mm256_set1_ps(-0.0);
        let inf = _mm256_set1_ps(f32::INFINITY);
        let mut acc = _mm256_setzero_ps();
        let n = self.src.len();
        let p = self.src.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the load.
            let a = _mm256_andnot_ps(sign, _mm256_loadu_ps(p.add(i)));
            // Non-finite lanes (|x| not < inf, including NaN) drop to
            // 0, which is the fold's identity — same as scalar's
            // filter.
            let finite = _mm256_cmp_ps(a, inf, _CMP_LT_OQ);
            acc = _mm256_max_ps(acc, _mm256_and_ps(a, finite));
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut best = lanes.iter().copied().fold(0.0, f32::max);
        best = best.max(max_abs_scalar(&self.src[i..]));
        best
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) -> f32 {
        use std::arch::x86_64::*;
        let inf = _mm512_set1_ps(f32::INFINITY);
        let mut acc = _mm512_setzero_ps();
        let n = self.src.len();
        let p = self.src.as_ptr();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: i + 16 <= n bounds the load.
            let a = _mm512_abs_ps(_mm512_loadu_ps(p.add(i)));
            // Non-finite lanes (|x| not < inf, including NaN) drop to
            // 0, the fold's identity — same as scalar's filter.
            let finite = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(a, inf);
            acc = _mm512_max_ps(acc, _mm512_maskz_mov_ps(finite, a));
            i += 16;
        }
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut best = lanes.iter().copied().fold(0.0, f32::max);
        best = best.max(max_abs_scalar(&self.src[i..]));
        best
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) -> f32 {
        use std::arch::aarch64::*;
        // SAFETY: caller verified NEON; loads below stay in bounds.
        unsafe {
            let inf = vdupq_n_f32(f32::INFINITY);
            let mut acc = vdupq_n_f32(0.0);
            let n = self.src.len();
            let p = self.src.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let a = vabsq_f32(vld1q_f32(p.add(i)));
                // Non-finite lanes drop to 0 — same as scalar's filter.
                let finite = vcltq_f32(a, inf);
                acc = vmaxq_f32(acc, vreinterpretq_f32_u32(vandq_u32(
                    vreinterpretq_u32_f32(a),
                    finite,
                )));
                i += 4;
            }
            // No NaN survives the mask, so the horizontal max is exact.
            let mut best = vmaxvq_f32(acc);
            best = best.max(max_abs_scalar(&self.src[i..]));
            best
        }
    }
}

/// `max |a - b|`, the tensor comparison metric. NaN differences are
/// ignored (as the scalar fold's `f32::max` does); infinite
/// differences propagate.
pub struct MaxAbsDiff<'a> {
    /// Left operand.
    pub a: &'a [f32],
    /// Right operand, same length.
    pub b: &'a [f32],
}

fn max_abs_diff_scalar(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, f32::max)
}

impl SimdOp for MaxAbsDiff<'_> {
    const NAME: &'static str = "tensor.simd.max_abs_diff";
    type Output = f32;

    fn bytes(&self) -> u64 {
        8 * self.a.len() as u64
    }

    fn scalar(self) -> f32 {
        max_abs_diff_scalar(self.a, self.b)
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) -> f32 {
        use std::arch::x86_64::*;
        assert_eq!(self.a.len(), self.b.len());
        let sign = _mm256_set1_ps(-0.0);
        let mut acc = _mm256_setzero_ps();
        let n = self.a.len();
        let (pa, pb) = (self.a.as_ptr(), self.b.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds both loads.
            let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
            let ad = _mm256_andnot_ps(sign, d);
            // NaN lanes drop to 0 — scalar's fold ignores them too
            // (f32::max returns the non-NaN operand).
            let ord = _mm256_cmp_ps(ad, ad, _CMP_ORD_Q);
            acc = _mm256_max_ps(acc, _mm256_and_ps(ad, ord));
            i += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut best = lanes.iter().copied().fold(0.0, f32::max);
        best = best.max(max_abs_diff_scalar(&self.a[i..], &self.b[i..]));
        best
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) -> f32 {
        use std::arch::x86_64::*;
        assert_eq!(self.a.len(), self.b.len());
        let mut acc = _mm512_setzero_ps();
        let n = self.a.len();
        let (pa, pb) = (self.a.as_ptr(), self.b.as_ptr());
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: i + 16 <= n bounds both loads.
            let d = _mm512_sub_ps(_mm512_loadu_ps(pa.add(i)), _mm512_loadu_ps(pb.add(i)));
            let ad = _mm512_abs_ps(d);
            // NaN lanes drop to 0 — scalar's fold ignores them too
            // (f32::max returns the non-NaN operand).
            let ord = _mm512_cmp_ps_mask::<_CMP_ORD_Q>(ad, ad);
            acc = _mm512_max_ps(acc, _mm512_maskz_mov_ps(ord, ad));
            i += 16;
        }
        let mut lanes = [0.0f32; 16];
        _mm512_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut best = lanes.iter().copied().fold(0.0, f32::max);
        best = best.max(max_abs_diff_scalar(&self.a[i..], &self.b[i..]));
        best
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) -> f32 {
        use std::arch::aarch64::*;
        assert_eq!(self.a.len(), self.b.len());
        // SAFETY: caller verified NEON; loads below stay in bounds.
        unsafe {
            let mut acc = vdupq_n_f32(0.0);
            let n = self.a.len();
            let (pa, pb) = (self.a.as_ptr(), self.b.as_ptr());
            let mut i = 0;
            while i + 4 <= n {
                let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
                let ad = vabsq_f32(d);
                // NaN lanes drop to 0 (vceqq is false for NaN), matching
                // the scalar fold that ignores them.
                let ord = vceqq_f32(ad, ad);
                acc = vmaxq_f32(acc, vreinterpretq_f32_u32(vandq_u32(
                    vreinterpretq_u32_f32(ad),
                    ord,
                )));
                i += 4;
            }
            let mut best = vmaxvq_f32(acc);
            best = best.max(max_abs_diff_scalar(&self.a[i..], &self.b[i..]));
            best
        }
    }
}

/// Sum with an 8-lane virtual accumulator: element `i` adds into lane
/// `i % 8`, lanes fold left-to-right at the end. Deterministic and
/// identical across ISAs by construction.
pub struct Sum8<'a> {
    /// Values to sum.
    pub src: &'a [f32],
}

fn sum8_lanes_scalar(src: &[f32], acc: &mut [f32; 8]) {
    let mut chunks = src.chunks_exact(8);
    for c in &mut chunks {
        for (l, &v) in acc.iter_mut().zip(c) {
            *l += v;
        }
    }
    for (l, &v) in acc.iter_mut().zip(chunks.remainder()) {
        *l += v;
    }
}

fn fold_lanes(acc: [f32; 8]) -> f32 {
    acc.into_iter().fold(0.0, |s, l| s + l)
}

impl SimdOp for Sum8<'_> {
    const NAME: &'static str = "tensor.simd.sum8";
    type Output = f32;

    fn bytes(&self) -> u64 {
        4 * self.src.len() as u64
    }

    fn scalar(self) -> f32 {
        let mut acc = [0.0f32; 8];
        sum8_lanes_scalar(self.src, &mut acc);
        fold_lanes(acc)
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) -> f32 {
        use std::arch::x86_64::*;
        let mut vacc = _mm256_setzero_ps();
        let n = self.src.len();
        let p = self.src.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the load. Lane l accumulates
            // elements ≡ l (mod 8) in index order — the exact additions
            // the scalar body performs on acc[l].
            vacc = _mm256_add_ps(vacc, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let mut acc = [0.0f32; 8];
        _mm256_storeu_ps(acc.as_mut_ptr(), vacc);
        sum8_lanes_scalar(&self.src[i..], &mut acc);
        fold_lanes(acc)
    }

    // No `avx512` override: the 8-lane virtual accumulator is part of
    // the op's contract (a 16-lane accumulator would change which
    // elements share an addition chain), so AVX-512 inherits the AVX2
    // body through the trait default.

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) -> f32 {
        use std::arch::aarch64::*;
        // SAFETY: caller verified NEON; loads below stay in bounds.
        unsafe {
            // The 8-lane virtual accumulator split across two q
            // registers: a0 holds lanes 0-3, a1 lanes 4-7 — the exact
            // per-lane addition chains of the scalar body.
            let mut a0 = vdupq_n_f32(0.0);
            let mut a1 = vdupq_n_f32(0.0);
            let n = self.src.len();
            let p = self.src.as_ptr();
            let mut i = 0;
            while i + 8 <= n {
                a0 = vaddq_f32(a0, vld1q_f32(p.add(i)));
                a1 = vaddq_f32(a1, vld1q_f32(p.add(i + 4)));
                i += 8;
            }
            let mut acc = [0.0f32; 8];
            vst1q_f32(acc.as_mut_ptr(), a0);
            vst1q_f32(acc.as_mut_ptr().add(4), a1);
            sum8_lanes_scalar(&self.src[i..], &mut acc);
            fold_lanes(acc)
        }
    }
}

/// `(min, max)` over a slice, NaN elements skipped. Returns
/// `(inf, -inf)` for an empty (or all-NaN) slice, like the scalar
/// fold. Exact by value; for inputs mixing `-0.0` and `+0.0` the sign
/// of a zero result may differ between ISAs (the values still compare
/// equal).
pub struct MinMax<'a> {
    /// Values to scan.
    pub src: &'a [f32],
}

fn min_max_scalar(src: &[f32], mut lo: f32, mut hi: f32) -> (f32, f32) {
    for &v in src {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

impl SimdOp for MinMax<'_> {
    const NAME: &'static str = "tensor.simd.min_max";
    type Output = (f32, f32);

    fn bytes(&self) -> u64 {
        4 * self.src.len() as u64
    }

    fn scalar(self) -> (f32, f32) {
        min_max_scalar(self.src, f32::INFINITY, f32::NEG_INFINITY)
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) -> (f32, f32) {
        use std::arch::x86_64::*;
        let pinf = _mm256_set1_ps(f32::INFINITY);
        let ninf = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut vlo = pinf;
        let mut vhi = ninf;
        let n = self.src.len();
        let p = self.src.as_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the load. NaN lanes are
            // replaced with the fold identity so min/max ps never see
            // an unordered operand — matching scalar f32::min/max,
            // which skip NaN.
            let v = _mm256_loadu_ps(p.add(i));
            let ord = _mm256_cmp_ps(v, v, _CMP_ORD_Q);
            vlo = _mm256_min_ps(vlo, _mm256_blendv_ps(pinf, v, ord));
            vhi = _mm256_max_ps(vhi, _mm256_blendv_ps(ninf, v, ord));
            i += 8;
        }
        let mut lo_lanes = [0.0f32; 8];
        let mut hi_lanes = [0.0f32; 8];
        _mm256_storeu_ps(lo_lanes.as_mut_ptr(), vlo);
        _mm256_storeu_ps(hi_lanes.as_mut_ptr(), vhi);
        let lo = lo_lanes.into_iter().fold(f32::INFINITY, f32::min);
        let hi = hi_lanes.into_iter().fold(f32::NEG_INFINITY, f32::max);
        min_max_scalar(&self.src[i..], lo, hi)
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) -> (f32, f32) {
        use std::arch::x86_64::*;
        let pinf = _mm512_set1_ps(f32::INFINITY);
        let ninf = _mm512_set1_ps(f32::NEG_INFINITY);
        let mut vlo = pinf;
        let mut vhi = ninf;
        let n = self.src.len();
        let p = self.src.as_ptr();
        let mut i = 0;
        while i + 16 <= n {
            // SAFETY: i + 16 <= n bounds the load. NaN lanes are
            // replaced with the fold identity so min/max ps never see
            // an unordered operand — matching scalar f32::min/max,
            // which skip NaN.
            let v = _mm512_loadu_ps(p.add(i));
            let ord = _mm512_cmp_ps_mask::<_CMP_ORD_Q>(v, v);
            vlo = _mm512_min_ps(vlo, _mm512_mask_mov_ps(pinf, ord, v));
            vhi = _mm512_max_ps(vhi, _mm512_mask_mov_ps(ninf, ord, v));
            i += 16;
        }
        let mut lo_lanes = [0.0f32; 16];
        let mut hi_lanes = [0.0f32; 16];
        _mm512_storeu_ps(lo_lanes.as_mut_ptr(), vlo);
        _mm512_storeu_ps(hi_lanes.as_mut_ptr(), vhi);
        let lo = lo_lanes.into_iter().fold(f32::INFINITY, f32::min);
        let hi = hi_lanes.into_iter().fold(f32::NEG_INFINITY, f32::max);
        min_max_scalar(&self.src[i..], lo, hi)
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) -> (f32, f32) {
        use std::arch::aarch64::*;
        // SAFETY: caller verified NEON; loads below stay in bounds.
        unsafe {
            let pinf = vdupq_n_f32(f32::INFINITY);
            let ninf = vdupq_n_f32(f32::NEG_INFINITY);
            let mut vlo = pinf;
            let mut vhi = ninf;
            let n = self.src.len();
            let p = self.src.as_ptr();
            let mut i = 0;
            while i + 4 <= n {
                // NaN lanes swap to the fold identity (vceqq is false
                // for NaN) so vminq/vmaxq never see an unordered
                // operand — matching scalar f32::min/max.
                let v = vld1q_f32(p.add(i));
                let ord = vceqq_f32(v, v);
                vlo = vminq_f32(vlo, vbslq_f32(ord, v, pinf));
                vhi = vmaxq_f32(vhi, vbslq_f32(ord, v, ninf));
                i += 4;
            }
            // The accumulators are NaN-free, so the horizontal folds
            // are exact.
            let lo = vminvq_f32(vlo);
            let hi = vmaxvq_f32(vhi);
            min_max_scalar(&self.src[i..], lo, hi)
        }
    }
}
