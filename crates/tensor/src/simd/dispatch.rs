//! The instruction-set selector and the [`SimdOp`] dispatcher.
//!
//! Every vectorized non-GEMM kernel in this crate is a [`SimdOp`]: a
//! small struct borrowing its operands, with one `scalar` body (the
//! portable oracle, always available) and one `avx2` body (hand-written
//! intrinsics, runtime-detected on x86-64). [`dispatch`] resolves the
//! ISA once per process and runs the matching body under a
//! `tensor.simd.*` telemetry span, so traces show exactly how much time
//! each op spends on which path.
//!
//! The GEMM micro-kernels predate this layer and keep their own
//! [`Kernel`](crate::microkernel::Kernel) enum (their dispatch carries
//! tile-geometry state no other op needs), but their ISA choice now
//! comes from [`SimdIsa::select`] too, so one knob governs the whole
//! crate: `INSITU_SIMD=scalar` pins every op — GEMM included — to the
//! portable path, and the legacy `INSITU_GEMM_KERNEL` override keeps
//! working for the GEMM alone.

use insitu_telemetry as telemetry;
use std::sync::OnceLock;

/// An instruction set the op bodies can be compiled for.
///
/// `Scalar` is plain safe Rust — whatever the autovectorizer makes of
/// it at the portable baseline (SSE2 on x86-64). It is the bitwise (or
/// documented-ULP, see the module docs of [`crate::simd`]) oracle every
/// other variant is property-tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdIsa {
    /// Portable baseline; always available.
    Scalar,
    /// AVX2 + FMA, runtime-detected on x86-64.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl SimdIsa {
    /// The ISA every dispatched op in this process uses: the widest the
    /// host supports, resolved once and cached. The `INSITU_SIMD`
    /// environment variable (`scalar` / `avx2` / `auto`) overrides
    /// detection; an unsupported request falls back to the portable
    /// path rather than faulting.
    pub fn select() -> SimdIsa {
        static SELECTED: OnceLock<SimdIsa> = OnceLock::new();
        *SELECTED.get_or_init(|| {
            let want = std::env::var("INSITU_SIMD").unwrap_or_default();
            match want.trim() {
                "scalar" => SimdIsa::Scalar,
                _ => SimdIsa::detect(),
            }
        })
    }

    /// The widest ISA the host supports.
    pub fn detect() -> SimdIsa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdIsa::Avx2;
            }
        }
        SimdIsa::Scalar
    }

    /// Every ISA the current host can run — the portable baseline is
    /// always included. The equivalence tests iterate this to assert
    /// that every runnable body agrees with the scalar oracle.
    pub fn supported() -> Vec<SimdIsa> {
        let mut v = vec![SimdIsa::Scalar];
        #[cfg(target_arch = "x86_64")]
        if let isa @ SimdIsa::Avx2 = SimdIsa::detect() {
            v.push(isa);
        }
        v
    }

    /// Stable name, for telemetry labels and benchmark rows.
    pub fn name(self) -> &'static str {
        match self {
            SimdIsa::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            SimdIsa::Avx2 => "avx2",
        }
    }
}

/// The name of the ISA the dispatcher resolved for this process.
pub fn simd_isa_name() -> &'static str {
    SimdIsa::select().name()
}

/// One vectorizable operation: operands borrowed in the struct, one
/// body per ISA. `scalar` is mandatory and is the oracle; `avx2`
/// defaults to the scalar body so an op can be added portably first and
/// gain a vector body later without touching its call sites.
pub trait SimdOp {
    /// Span name recorded by the dispatcher, e.g. `"tensor.simd.relu"`.
    const NAME: &'static str;

    /// What the op produces (often `()` for in-place ops).
    type Output;

    /// Bytes the op reads plus writes; fed to the
    /// `tensor.simd.bytes` counter so traces can derive per-op
    /// bandwidth.
    fn bytes(&self) -> u64;

    /// The portable body — the oracle all other bodies must match.
    fn scalar(self) -> Self::Output;

    /// The AVX2+FMA body.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the host supports AVX2 and
    /// FMA (the dispatcher only passes ISAs from [`SimdIsa::select`] or
    /// [`SimdIsa::supported`], which both check).
    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) -> Self::Output
    where
        Self: Sized,
    {
        self.scalar()
    }
}

/// Runs `op` on the process-wide ISA from [`SimdIsa::select`].
pub fn dispatch<O: SimdOp>(op: O) -> O::Output {
    dispatch_on(SimdIsa::select(), op)
}

/// Runs `op` on an explicit ISA — the entry point the equivalence
/// tests and the benchmark's scalar-vs-vector timing use. The ISA must
/// come from [`SimdIsa::select`] or [`SimdIsa::supported`] so the
/// vector body's feature requirement is known to hold.
pub fn dispatch_on<O: SimdOp>(isa: SimdIsa, op: O) -> O::Output {
    let _t = telemetry::span_with(O::NAME, || isa.name().to_string());
    telemetry::counter_add("tensor.simd.bytes", O::NAME, op.bytes());
    match isa {
        SimdIsa::Scalar => op.scalar(),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` values only come from `select`/`supported`,
        // which gate Avx2 behind runtime detection of AVX2 and FMA.
        SimdIsa::Avx2 => unsafe { op.avx2() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        let isas = SimdIsa::supported();
        assert_eq!(isas[0], SimdIsa::Scalar);
        assert!(isas.contains(&SimdIsa::select()) || SimdIsa::select() == SimdIsa::Scalar);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimdIsa::Scalar.name(), "scalar");
        assert!(!simd_isa_name().is_empty());
    }

    struct Double<'a>(&'a mut [f32]);
    impl SimdOp for Double<'_> {
        const NAME: &'static str = "tensor.simd.test_double";
        type Output = ();
        fn bytes(&self) -> u64 {
            8 * self.0.len() as u64
        }
        fn scalar(self) {
            for v in self.0 {
                *v *= 2.0;
            }
        }
        // No avx2 body: the default must fall back to scalar.
    }

    #[test]
    fn default_avx2_body_falls_back_to_scalar() {
        for isa in SimdIsa::supported() {
            let mut x = [1.0f32, -2.0, 3.5];
            dispatch_on(isa, Double(&mut x));
            assert_eq!(x, [2.0, -4.0, 7.0]);
        }
    }
}
