//! The instruction-set selector and the [`SimdOp`] dispatcher.
//!
//! Every vectorized non-GEMM kernel in this crate is a [`SimdOp`]: a
//! small struct borrowing its operands, with one `scalar` body (the
//! portable oracle, always available) and optional vector bodies
//! (hand-written intrinsics, runtime-detected: AVX2 and AVX-512 on
//! x86-64, NEON on aarch64). [`dispatch`] resolves the ISA once per
//! process and runs the matching body under a `tensor.simd.*`
//! telemetry span, so traces show exactly how much time each op spends
//! on which path.
//!
//! The GEMM micro-kernels predate this layer and keep their own
//! [`Kernel`](crate::microkernel::Kernel) enum (their dispatch carries
//! tile-geometry state no other op needs), but their ISA choice now
//! comes from [`Isa::select`] too, so one knob governs the whole
//! crate: `INSITU_SIMD=scalar` pins every op — GEMM included — to the
//! portable path, and the legacy `INSITU_GEMM_KERNEL` override keeps
//! working for the GEMM alone.
//!
//! Both environment knobs are validated, not best-effort: an
//! unrecognized or host-unsupported value aborts at first use with a
//! message listing the valid set, instead of silently degrading to a
//! different ISA than the operator asked for.

use insitu_telemetry as telemetry;
use std::sync::OnceLock;

/// Every ISA name the override knobs accept, in precedence-note order.
/// `auto` (or an unset/empty variable) means "detect the widest".
pub const ISA_NAMES: &[&str] = &["scalar", "avx2", "avx512", "neon", "auto"];

/// An instruction set the op bodies can be compiled for.
///
/// `Scalar` is plain safe Rust — whatever the autovectorizer makes of
/// it at the portable baseline (SSE2 on x86-64). It is the bitwise (or
/// documented-ULP, see the module docs of [`crate::simd`]) oracle every
/// other variant is property-tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable baseline; always available.
    Scalar,
    /// AVX2 + FMA, runtime-detected on x86-64.
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512 (F+BW+DQ+VL, implying AVX2+FMA for the fallback chain),
    /// runtime-detected on x86-64.
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// Arm Advanced SIMD, runtime-detected on aarch64.
    #[cfg(target_arch = "aarch64")]
    Neon,
}

/// Resolves an override string from `INSITU_SIMD` / `INSITU_GEMM_KERNEL`
/// into an ISA, or panics with the valid set. Shared by [`Isa::select`]
/// and [`Kernel::select`](crate::microkernel::Kernel::select) so both
/// knobs reject bad input identically.
pub(crate) fn parse_isa_request(var: &str, want: &str) -> Isa {
    match want {
        "" | "auto" => Isa::detect(),
        "scalar" => Isa::Scalar,
        "avx2" => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    return Isa::Avx2;
                }
                panic!("{var}=avx2: this x86-64 host does not support AVX2+FMA");
            }
            #[cfg(not(target_arch = "x86_64"))]
            panic!("{var}=avx2: AVX2 is an x86-64 ISA; this build targets {}", ARCH);
        }
        "avx512" => {
            #[cfg(target_arch = "x86_64")]
            {
                if avx512_detected() {
                    return Isa::Avx512;
                }
                panic!("{var}=avx512: this x86-64 host does not support AVX-512 F+BW+DQ+VL");
            }
            #[cfg(not(target_arch = "x86_64"))]
            panic!("{var}=avx512: AVX-512 is an x86-64 ISA; this build targets {}", ARCH);
        }
        "neon" => {
            #[cfg(target_arch = "aarch64")]
            {
                if std::arch::is_aarch64_feature_detected!("neon") {
                    return Isa::Neon;
                }
                panic!("{var}=neon: this aarch64 host does not report NEON support");
            }
            #[cfg(not(target_arch = "aarch64"))]
            panic!("{var}=neon: NEON is an aarch64 ISA; this build targets {}", ARCH);
        }
        other => panic!("{var}={other}: unrecognized ISA; valid values are {ISA_NAMES:?}"),
    }
}

const ARCH: &str = std::env::consts::ARCH;

/// True when the host supports the AVX-512 subset our bodies compile
/// for (F+BW+DQ+VL), plus AVX2+FMA so the default fallback chain
/// (`avx512` body defaulting to the `avx2` body) is always sound.
#[cfg(target_arch = "x86_64")]
pub(crate) fn avx512_detected() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512bw")
        && std::arch::is_x86_feature_detected!("avx512dq")
        && std::arch::is_x86_feature_detected!("avx512vl")
        && std::arch::is_x86_feature_detected!("avx2")
        && std::arch::is_x86_feature_detected!("fma")
}

impl Isa {
    /// The ISA every dispatched op in this process uses: the widest the
    /// host supports, resolved once and cached. The `INSITU_SIMD`
    /// environment variable (`scalar` / `avx2` / `avx512` / `neon` /
    /// `auto`) overrides detection; an unrecognized or host-unsupported
    /// request panics with the valid set rather than silently running a
    /// different ISA than the one asked for.
    pub fn select() -> Isa {
        static SELECTED: OnceLock<Isa> = OnceLock::new();
        *SELECTED.get_or_init(|| {
            let want = std::env::var("INSITU_SIMD").unwrap_or_default();
            parse_isa_request("INSITU_SIMD", want.trim())
        })
    }

    /// The widest ISA the host supports.
    pub fn detect() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if avx512_detected() {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return Isa::Neon;
            }
        }
        Isa::Scalar
    }

    /// Every ISA the current host can run — the portable baseline is
    /// always included, and narrower vector ISAs are listed before
    /// wider ones. The equivalence tests iterate this to assert that
    /// every runnable body agrees with every other, all pairs.
    pub fn supported() -> Vec<Isa> {
        let mut v = vec![Isa::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                v.push(Isa::Avx2);
            }
            if avx512_detected() {
                v.push(Isa::Avx512);
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                v.push(Isa::Neon);
            }
        }
        v
    }

    /// Stable name, for telemetry labels and benchmark rows.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => "avx2",
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => "avx512",
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => "neon",
        }
    }
}

/// The name of the ISA the dispatcher resolved for this process.
pub fn simd_isa_name() -> &'static str {
    Isa::select().name()
}

/// One vectorizable operation: operands borrowed in the struct, one
/// body per ISA. `scalar` is mandatory and is the oracle; each vector
/// body defaults to the next-narrower one (`avx512` → `avx2` →
/// `scalar`, `neon` → `scalar`) so an op can be added portably first
/// and gain vector bodies later without touching its call sites.
pub trait SimdOp {
    /// Span name recorded by the dispatcher, e.g. `"tensor.simd.relu"`.
    const NAME: &'static str;

    /// What the op produces (often `()` for in-place ops).
    type Output;

    /// Bytes the op reads plus writes; fed to the
    /// `tensor.simd.bytes` counter so traces can derive per-op
    /// bandwidth.
    fn bytes(&self) -> u64;

    /// The portable body — the oracle all other bodies must match.
    fn scalar(self) -> Self::Output;

    /// The AVX2+FMA body.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the host supports AVX2 and
    /// FMA (the dispatcher only passes ISAs from [`Isa::select`] or
    /// [`Isa::supported`], which both check).
    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) -> Self::Output
    where
        Self: Sized,
    {
        self.scalar()
    }

    /// The AVX-512 body. Defaults to the AVX2 body: [`avx512_detected`]
    /// requires AVX2+FMA alongside the AVX-512 subset, so the fallback
    /// is always sound.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the host supports AVX-512
    /// F+BW+DQ+VL and AVX2+FMA (the dispatcher only passes ISAs from
    /// [`Isa::select`] or [`Isa::supported`], which both check).
    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) -> Self::Output
    where
        Self: Sized,
    {
        // SAFETY: the avx512 contract includes AVX2+FMA support.
        unsafe { self.avx2() }
    }

    /// The NEON body.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the host supports NEON (the
    /// dispatcher only passes ISAs from [`Isa::select`] or
    /// [`Isa::supported`], which both check).
    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) -> Self::Output
    where
        Self: Sized,
    {
        self.scalar()
    }
}

/// Runs `op` on the process-wide ISA from [`Isa::select`].
pub fn dispatch<O: SimdOp>(op: O) -> O::Output {
    dispatch_on(Isa::select(), op)
}

/// Runs `op` on an explicit ISA — the entry point the equivalence
/// tests and the benchmark's scalar-vs-vector timing use. The ISA must
/// come from [`Isa::select`] or [`Isa::supported`] so the vector
/// body's feature requirement is known to hold.
pub fn dispatch_on<O: SimdOp>(isa: Isa, op: O) -> O::Output {
    let _t = telemetry::span_with(O::NAME, || isa.name().to_string());
    telemetry::counter_add("tensor.simd.bytes", O::NAME, op.bytes());
    match isa {
        Isa::Scalar => op.scalar(),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` values only come from `select`/`supported`,
        // which gate Avx2 behind runtime detection of AVX2 and FMA.
        Isa::Avx2 => unsafe { op.avx2() },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa` values only come from `select`/`supported`,
        // which gate Avx512 behind runtime detection of the AVX-512
        // subset plus AVX2+FMA.
        Isa::Avx512 => unsafe { op.avx512() },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: `isa` values only come from `select`/`supported`,
        // which gate Neon behind runtime detection of NEON.
        Isa::Neon => unsafe { op.neon() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        let isas = Isa::supported();
        assert_eq!(isas[0], Isa::Scalar);
        assert!(isas.contains(&Isa::select()) || Isa::select() == Isa::Scalar);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert!(!simd_isa_name().is_empty());
        for isa in Isa::supported() {
            assert!(ISA_NAMES.contains(&isa.name()));
        }
    }

    #[test]
    fn auto_and_empty_resolve_to_detection() {
        assert_eq!(parse_isa_request("INSITU_SIMD", ""), Isa::detect());
        assert_eq!(parse_isa_request("INSITU_SIMD", "auto"), Isa::detect());
        assert_eq!(parse_isa_request("INSITU_SIMD", "scalar"), Isa::Scalar);
    }

    #[test]
    #[should_panic(expected = "unrecognized ISA")]
    fn unknown_isa_request_panics_with_valid_set() {
        parse_isa_request("INSITU_SIMD", "sse42");
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[should_panic(expected = "aarch64 ISA")]
    fn wrong_arch_request_panics() {
        parse_isa_request("INSITU_SIMD", "neon");
    }

    struct Double<'a>(&'a mut [f32]);
    impl SimdOp for Double<'_> {
        const NAME: &'static str = "tensor.simd.test_double";
        type Output = ();
        fn bytes(&self) -> u64 {
            8 * self.0.len() as u64
        }
        fn scalar(self) {
            for v in self.0 {
                *v *= 2.0;
            }
        }
        // No vector bodies: every default must fall back to scalar.
    }

    #[test]
    fn default_vector_bodies_fall_back_to_scalar() {
        for isa in Isa::supported() {
            let mut x = [1.0f32, -2.0, 3.5];
            dispatch_on(isa, Double(&mut x));
            assert_eq!(x, [2.0, -4.0, 7.0]);
        }
    }
}
