//! Elementwise ops: ReLU (eval, fused train forward, backward) and the
//! drift model's affine/clamp passes.
//!
//! The train-mode ReLU is fused: one pass writes the rectified values
//! *and* a bit-packed keep mask (bit `i % 8` of byte `i / 8`, 1 ⇔
//! `x > 0`). Packing the mask to bits is what makes the op worth a
//! hand-written body twice over — the mask costs 1/32 the memory
//! traffic of the `Vec<bool>` it replaces, and the scalar byte
//! accumulation is a serial dependency chain the autovectorizer cannot
//! break, while AVX2 gets the whole byte in one `movmskps`, AVX-512
//! gets two bytes straight from the `__mmask16` compare result, and
//! NEON sums per-lane bit weights with `vaddvq_u32` (no movemask on
//! aarch64; the weights are disjoint powers of two, so the sum *is*
//! the OR).
//!
//! All bodies here are **bitwise exact** against the scalar oracle for
//! every input (NaN and `-0.0` included) at any thread count: elements
//! are independent, and the parallel split is aligned to mask-byte
//! boundaries so no two tasks touch one byte.

use super::dispatch::SimdOp;
use crate::parallel::{parallel_for, plan_parts, split_range, SendPtr};

/// Runs `f` over 8-aligned element sub-ranges of `0..n`, in parallel
/// when `flops` is large enough. Alignment keeps mask bytes (one per 8
/// elements) private to one task; only the final range is ragged.
pub(crate) fn par_groups(n: usize, flops: u64, f: impl Fn(std::ops::Range<usize>) + Sync) {
    let groups = n.div_ceil(8);
    let parts = plan_parts(groups, flops);
    if parts <= 1 {
        if n > 0 {
            f(0..n);
        }
        return;
    }
    parallel_for(parts, |p| {
        let gr = split_range(groups, parts, p);
        let (e0, e1) = (gr.start * 8, (gr.end * 8).min(n));
        if e0 < e1 {
            f(e0..e1);
        }
    });
}

/// In-place eval-mode ReLU: `x = if x > 0 { x } else { 0.0 }`.
///
/// (Maps NaN and `-0.0` to `+0.0`, like the training mask's `x > 0`
/// convention — forward and mask can never disagree.)
pub struct Relu<'a> {
    /// The activation buffer, rectified in place.
    pub buf: &'a mut [f32],
}

fn relu_scalar_range(buf: &mut [f32]) {
    for v in buf {
        *v = if *v > 0.0 { *v } else { 0.0 };
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn relu_avx2_range(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let zero = _mm256_setzero_ps();
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the 8-lane load/store.
        let v = _mm256_loadu_ps(p.add(i));
        let keep = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(p.add(i), _mm256_and_ps(v, keep));
        i += 8;
    }
    relu_scalar_range(&mut buf[i..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn relu_avx512_range(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let zero = _mm512_setzero_ps();
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n bounds the 16-lane load/store.
        let v = _mm512_loadu_ps(p.add(i));
        let keep = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, zero);
        // maskz_mov writes +0.0 into non-keep lanes, exactly the
        // scalar `else { 0.0 }` (NaN and -0.0 both fail `> 0`).
        _mm512_storeu_ps(p.add(i), _mm512_maskz_mov_ps(keep, v));
        i += 16;
    }
    relu_scalar_range(&mut buf[i..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn relu_neon_range(buf: &mut [f32]) {
    use std::arch::aarch64::*;
    let zero = vdupq_n_f32(0.0);
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n bounds the 4-lane load/store. Compare+AND,
        // not vmaxq_f32: max would propagate NaN, the oracle zeroes it.
        let v = vld1q_f32(p.add(i));
        let keep = vcgtq_f32(v, zero);
        let r = vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(v), keep));
        vst1q_f32(p.add(i), r);
        i += 4;
    }
    relu_scalar_range(&mut buf[i..]);
}

impl SimdOp for Relu<'_> {
    const NAME: &'static str = "tensor.simd.relu";
    type Output = ();

    fn bytes(&self) -> u64 {
        8 * self.buf.len() as u64
    }

    fn scalar(self) {
        let base = SendPtr(self.buf.as_mut_ptr());
        par_groups(self.buf.len(), self.buf.len() as u64, move |r| {
            // SAFETY: par_groups hands out disjoint sub-ranges of buf.
            relu_scalar_range(unsafe {
                std::slice::from_raw_parts_mut(base.get().add(r.start), r.len())
            });
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        let base = SendPtr(self.buf.as_mut_ptr());
        par_groups(self.buf.len(), self.buf.len() as u64, move |r| {
            // SAFETY: disjoint sub-ranges; AVX2 verified by the caller.
            unsafe {
                relu_avx2_range(std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()));
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) {
        let base = SendPtr(self.buf.as_mut_ptr());
        par_groups(self.buf.len(), self.buf.len() as u64, move |r| {
            // SAFETY: disjoint sub-ranges; AVX-512 verified by the caller.
            unsafe {
                relu_avx512_range(std::slice::from_raw_parts_mut(
                    base.get().add(r.start),
                    r.len(),
                ));
            }
        });
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) {
        let base = SendPtr(self.buf.as_mut_ptr());
        par_groups(self.buf.len(), self.buf.len() as u64, move |r| {
            // SAFETY: disjoint sub-ranges; NEON verified by the caller.
            unsafe {
                relu_neon_range(std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()));
            }
        });
    }
}

/// Fused train-mode ReLU: rectifies `buf` in place and writes the
/// bit-packed keep mask (`mask.len() == buf.len().div_ceil(8)`; bit
/// `i % 8` of `mask[i / 8]` is 1 ⇔ input element `i` was `> 0`).
/// Trailing bits of a ragged final byte are 0.
pub struct ReluTrain<'a> {
    /// The activation buffer, rectified in place.
    pub buf: &'a mut [f32],
    /// Bit-packed keep mask, one bit per element.
    pub mask: &'a mut [u8],
}

fn relu_train_scalar_range(buf: &mut [f32], mask: &mut [u8]) {
    debug_assert_eq!(mask.len(), buf.len().div_ceil(8));
    for (chunk, m) in buf.chunks_mut(8).zip(mask) {
        let mut bits = 0u8;
        for (b, v) in chunk.iter_mut().enumerate() {
            let keep = *v > 0.0;
            bits |= u8::from(keep) << b;
            *v = if keep { *v } else { 0.0 };
        }
        *m = bits;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn relu_train_avx2_range(buf: &mut [f32], mask: &mut [u8]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(mask.len(), buf.len().div_ceil(8));
    let zero = _mm256_setzero_ps();
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    let mut mi = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the lanes; mi = i / 8 < mask.len().
        let v = _mm256_loadu_ps(p.add(i));
        let keep = _mm256_cmp_ps(v, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(p.add(i), _mm256_and_ps(v, keep));
        // movmskps collects the 8 lane sign bits — exactly the packed
        // `x > 0` byte the scalar chain assembles bit by bit.
        *mask.get_unchecked_mut(mi) = _mm256_movemask_ps(keep) as u8;
        i += 8;
        mi += 1;
    }
    relu_train_scalar_range(&mut buf[i..], &mut mask[mi..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn relu_train_avx512_range(buf: &mut [f32], mask: &mut [u8]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(mask.len(), buf.len().div_ceil(8));
    let zero = _mm512_setzero_ps();
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    let mut mi = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n bounds the lanes; mi + 1 = i / 8 + 1 is
        // within mask. The __mmask16 compare result *is* the two
        // packed `x > 0` bytes, low lanes in the low byte.
        let v = _mm512_loadu_ps(p.add(i));
        let keep = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, zero);
        _mm512_storeu_ps(p.add(i), _mm512_maskz_mov_ps(keep, v));
        *mask.get_unchecked_mut(mi) = (keep & 0xFF) as u8;
        *mask.get_unchecked_mut(mi + 1) = (keep >> 8) as u8;
        i += 16;
        mi += 2;
    }
    relu_train_scalar_range(&mut buf[i..], &mut mask[mi..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn relu_train_neon_range(buf: &mut [f32], mask: &mut [u8]) {
    use std::arch::aarch64::*;
    debug_assert_eq!(mask.len(), buf.len().div_ceil(8));
    let zero = vdupq_n_f32(0.0);
    // Per-lane bit weights: ANDed with the all-ones compare lanes and
    // summed across the vector, they assemble the packed mask byte —
    // the weights are disjoint powers of two, so the sum is the OR.
    let (lo_w, hi_w) = ([1u32, 2, 4, 8], [16u32, 32, 64, 128]);
    let bits_lo = vld1q_u32(lo_w.as_ptr());
    let bits_hi = vld1q_u32(hi_w.as_ptr());
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    let mut mi = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the lanes; mi = i / 8 < mask.len().
        let v0 = vld1q_f32(p.add(i));
        let v1 = vld1q_f32(p.add(i + 4));
        let k0 = vcgtq_f32(v0, zero);
        let k1 = vcgtq_f32(v1, zero);
        vst1q_f32(p.add(i), vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(v0), k0)));
        vst1q_f32(p.add(i + 4), vreinterpretq_f32_u32(vandq_u32(vreinterpretq_u32_f32(v1), k1)));
        let byte = vaddvq_u32(vandq_u32(k0, bits_lo)) + vaddvq_u32(vandq_u32(k1, bits_hi));
        *mask.get_unchecked_mut(mi) = byte as u8;
        i += 8;
        mi += 1;
    }
    relu_train_scalar_range(&mut buf[i..], &mut mask[mi..]);
}

impl SimdOp for ReluTrain<'_> {
    const NAME: &'static str = "tensor.simd.relu_train";
    type Output = ();

    fn bytes(&self) -> u64 {
        8 * self.buf.len() as u64 + self.mask.len() as u64
    }

    fn scalar(self) {
        assert_eq!(self.mask.len(), self.buf.len().div_ceil(8), "mask must be 1 bit per element");
        let (base, mbase) = (SendPtr(self.buf.as_mut_ptr()), SendPtr(self.mask.as_mut_ptr()));
        let n = self.buf.len();
        par_groups(n, n as u64, move |r| {
            // SAFETY: 8-aligned disjoint ranges — each task owns its
            // elements and the mask bytes covering exactly them.
            unsafe {
                relu_train_scalar_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    std::slice::from_raw_parts_mut(
                        mbase.get().add(r.start / 8),
                        r.len().div_ceil(8),
                    ),
                );
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        assert_eq!(self.mask.len(), self.buf.len().div_ceil(8), "mask must be 1 bit per element");
        let (base, mbase) = (SendPtr(self.buf.as_mut_ptr()), SendPtr(self.mask.as_mut_ptr()));
        let n = self.buf.len();
        par_groups(n, n as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges as above; AVX2 verified.
            unsafe {
                relu_train_avx2_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    std::slice::from_raw_parts_mut(
                        mbase.get().add(r.start / 8),
                        r.len().div_ceil(8),
                    ),
                );
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) {
        assert_eq!(self.mask.len(), self.buf.len().div_ceil(8), "mask must be 1 bit per element");
        let (base, mbase) = (SendPtr(self.buf.as_mut_ptr()), SendPtr(self.mask.as_mut_ptr()));
        let n = self.buf.len();
        par_groups(n, n as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges as above; AVX-512
            // verified. (Ranges are 8-aligned, not 16-: the 16-lane
            // loop just leaves a ≤15-element scalar tail per range.)
            unsafe {
                relu_train_avx512_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    std::slice::from_raw_parts_mut(
                        mbase.get().add(r.start / 8),
                        r.len().div_ceil(8),
                    ),
                );
            }
        });
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) {
        assert_eq!(self.mask.len(), self.buf.len().div_ceil(8), "mask must be 1 bit per element");
        let (base, mbase) = (SendPtr(self.buf.as_mut_ptr()), SendPtr(self.mask.as_mut_ptr()));
        let n = self.buf.len();
        par_groups(n, n as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges as above; NEON verified.
            unsafe {
                relu_train_neon_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    std::slice::from_raw_parts_mut(
                        mbase.get().add(r.start / 8),
                        r.len().div_ceil(8),
                    ),
                );
            }
        });
    }
}

/// ReLU backward through a bit-packed mask: zeroes `grad[i]` wherever
/// mask bit `i` is 0.
pub struct ReluBackward<'a> {
    /// Upstream gradient, masked in place.
    pub grad: &'a mut [f32],
    /// Bit-packed keep mask from [`ReluTrain`].
    pub mask: &'a [u8],
}

fn relu_bwd_scalar_range(grad: &mut [f32], mask: &[u8]) {
    debug_assert_eq!(mask.len(), grad.len().div_ceil(8));
    for (chunk, &bits) in grad.chunks_mut(8).zip(mask) {
        for (b, v) in chunk.iter_mut().enumerate() {
            *v = if bits & (1 << b) != 0 { *v } else { 0.0 };
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn relu_bwd_avx2_range(grad: &mut [f32], mask: &[u8]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(mask.len(), grad.len().div_ceil(8));
    // Expand bit b of the mask byte to lane b: broadcast the byte,
    // AND with each lane's bit, compare-equal against the bit.
    let bitsel = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    let n = grad.len();
    let p = grad.as_mut_ptr();
    let mut i = 0;
    let mut mi = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the lanes; mi = i / 8 < mask.len().
        let byte = _mm256_set1_epi32(i32::from(*mask.get_unchecked(mi)));
        let keep = _mm256_cmpeq_epi32(_mm256_and_si256(byte, bitsel), bitsel);
        let g = _mm256_and_ps(_mm256_loadu_ps(p.add(i)), _mm256_castsi256_ps(keep));
        _mm256_storeu_ps(p.add(i), g);
        i += 8;
        mi += 1;
    }
    relu_bwd_scalar_range(&mut grad[i..], &mask[mi..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn relu_bwd_avx512_range(grad: &mut [f32], mask: &[u8]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(mask.len(), grad.len().div_ceil(8));
    let n = grad.len();
    let p = grad.as_mut_ptr();
    let mut i = 0;
    let mut mi = 0;
    while i + 16 <= n {
        // SAFETY: i + 16 <= n bounds the lanes; mi + 1 is within mask.
        // Two packed mask bytes reassemble into the __mmask16 directly
        // — the inverse of the train body's mask split.
        let keep = u16::from_le_bytes([*mask.get_unchecked(mi), *mask.get_unchecked(mi + 1)]);
        let g = _mm512_maskz_mov_ps(keep, _mm512_loadu_ps(p.add(i)));
        _mm512_storeu_ps(p.add(i), g);
        i += 16;
        mi += 2;
    }
    relu_bwd_scalar_range(&mut grad[i..], &mask[mi..]);
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn relu_bwd_neon_range(grad: &mut [f32], mask: &[u8]) {
    use std::arch::aarch64::*;
    debug_assert_eq!(mask.len(), grad.len().div_ceil(8));
    // Expand bit b of the mask byte to lane b: broadcast the byte, AND
    // with each lane's bit weight, compare-equal against the weight.
    let (lo_w, hi_w) = ([1u32, 2, 4, 8], [16u32, 32, 64, 128]);
    let bits_lo = vld1q_u32(lo_w.as_ptr());
    let bits_hi = vld1q_u32(hi_w.as_ptr());
    let n = grad.len();
    let p = grad.as_mut_ptr();
    let mut i = 0;
    let mut mi = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the lanes; mi = i / 8 < mask.len().
        let byte = vdupq_n_u32(u32::from(*mask.get_unchecked(mi)));
        let k0 = vceqq_u32(vandq_u32(byte, bits_lo), bits_lo);
        let k1 = vceqq_u32(vandq_u32(byte, bits_hi), bits_hi);
        let g0 = vandq_u32(vreinterpretq_u32_f32(vld1q_f32(p.add(i))), k0);
        let g1 = vandq_u32(vreinterpretq_u32_f32(vld1q_f32(p.add(i + 4))), k1);
        vst1q_f32(p.add(i), vreinterpretq_f32_u32(g0));
        vst1q_f32(p.add(i + 4), vreinterpretq_f32_u32(g1));
        i += 8;
        mi += 1;
    }
    relu_bwd_scalar_range(&mut grad[i..], &mask[mi..]);
}

impl SimdOp for ReluBackward<'_> {
    const NAME: &'static str = "tensor.simd.relu_bwd";
    type Output = ();

    fn bytes(&self) -> u64 {
        8 * self.grad.len() as u64 + self.mask.len() as u64
    }

    fn scalar(self) {
        assert_eq!(self.mask.len(), self.grad.len().div_ceil(8), "mask must be 1 bit per element");
        let base = SendPtr(self.grad.as_mut_ptr());
        let mask = self.mask;
        par_groups(self.grad.len(), self.grad.len() as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges of grad; mask is shared
            // read-only.
            unsafe {
                relu_bwd_scalar_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    &mask[r.start / 8..r.start / 8 + r.len().div_ceil(8)],
                );
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        assert_eq!(self.mask.len(), self.grad.len().div_ceil(8), "mask must be 1 bit per element");
        let base = SendPtr(self.grad.as_mut_ptr());
        let mask = self.mask;
        par_groups(self.grad.len(), self.grad.len() as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges; AVX2 verified.
            unsafe {
                relu_bwd_avx2_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    &mask[r.start / 8..r.start / 8 + r.len().div_ceil(8)],
                );
            }
        });
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx512(self) {
        assert_eq!(self.mask.len(), self.grad.len().div_ceil(8), "mask must be 1 bit per element");
        let base = SendPtr(self.grad.as_mut_ptr());
        let mask = self.mask;
        par_groups(self.grad.len(), self.grad.len() as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges; AVX-512 verified.
            unsafe {
                relu_bwd_avx512_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    &mask[r.start / 8..r.start / 8 + r.len().div_ceil(8)],
                );
            }
        });
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn neon(self) {
        assert_eq!(self.mask.len(), self.grad.len().div_ceil(8), "mask must be 1 bit per element");
        let base = SendPtr(self.grad.as_mut_ptr());
        let mask = self.mask;
        par_groups(self.grad.len(), self.grad.len() as u64, move |r| {
            // SAFETY: disjoint 8-aligned ranges; NEON verified.
            unsafe {
                relu_bwd_neon_range(
                    std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()),
                    &mask[r.start / 8..r.start / 8 + r.len().div_ceil(8)],
                );
            }
        });
    }
}

/// In-place affine map `x = x * gain + bias` (the drift model's
/// illumination pass). Plain multiply-then-add in both bodies — no FMA
/// contraction — so results are bitwise identical across ISAs.
pub struct Affine<'a> {
    /// The buffer, transformed in place.
    pub buf: &'a mut [f32],
    /// Multiplicative gain.
    pub gain: f32,
    /// Additive bias.
    pub bias: f32,
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn affine_avx2_range(buf: &mut [f32], gain: f32, bias: f32) {
    use std::arch::x86_64::*;
    let (g, b) = (_mm256_set1_ps(gain), _mm256_set1_ps(bias));
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the lanes. mul then add, not FMA:
        // must match the scalar `x * gain + bias` bit for bit.
        let v = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(p.add(i)), g), b);
        _mm256_storeu_ps(p.add(i), v);
        i += 8;
    }
    for v in &mut buf[i..] {
        *v = *v * gain + bias;
    }
}

impl SimdOp for Affine<'_> {
    const NAME: &'static str = "tensor.simd.affine";
    type Output = ();

    fn bytes(&self) -> u64 {
        8 * self.buf.len() as u64
    }

    fn scalar(self) {
        let (gain, bias) = (self.gain, self.bias);
        for v in self.buf {
            *v = *v * gain + bias;
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe { affine_avx2_range(self.buf, self.gain, self.bias) }
    }
}

/// In-place clamp to `[lo, hi]`, replicating `f32::clamp` exactly:
/// NaN passes through unchanged and `-0.0` survives a `0.0` lower
/// bound (it is not `< 0.0`).
pub struct Clamp<'a> {
    /// The buffer, clamped in place.
    pub buf: &'a mut [f32],
    /// Lower bound (must not be NaN).
    pub lo: f32,
    /// Upper bound (must not be NaN).
    pub hi: f32,
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn clamp_avx2_range(buf: &mut [f32], lo: f32, hi: f32) {
    use std::arch::x86_64::*;
    let (lov, hiv) = (_mm256_set1_ps(lo), _mm256_set1_ps(hi));
    let n = buf.len();
    let p = buf.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        // SAFETY: i + 8 <= n bounds the lanes. Two compare+blend steps
        // mirror f32::clamp's `if x < lo` / `if x > hi` chain — unlike
        // min/max ps, this keeps NaN lanes and -0.0 bit-identical.
        let v = _mm256_loadu_ps(p.add(i));
        let v = _mm256_blendv_ps(v, lov, _mm256_cmp_ps(v, lov, _CMP_LT_OQ));
        let v = _mm256_blendv_ps(v, hiv, _mm256_cmp_ps(v, hiv, _CMP_GT_OQ));
        _mm256_storeu_ps(p.add(i), v);
        i += 8;
    }
    for v in &mut buf[i..] {
        *v = v.clamp(lo, hi);
    }
}

impl SimdOp for Clamp<'_> {
    const NAME: &'static str = "tensor.simd.clamp";
    type Output = ();

    fn bytes(&self) -> u64 {
        8 * self.buf.len() as u64
    }

    fn scalar(self) {
        let (lo, hi) = (self.lo, self.hi);
        for v in self.buf {
            *v = v.clamp(lo, hi);
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn avx2(self) {
        // SAFETY: AVX2 verified by the dispatcher.
        unsafe { clamp_avx2_range(self.buf, self.lo, self.hi) }
    }
}
